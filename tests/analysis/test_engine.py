"""Engine behaviors: suppression scopes, allowlists, path matching, the
registry, directory walking and the ``repro lint`` CLI front end."""

from __future__ import annotations

import pytest

from repro.analysis import (
    LintConfig,
    RuleRegistry,
    analyze_paths,
    analyze_source,
    build_suppression_index,
    default_registry,
    path_matches,
)
from repro.analysis.engine import PARSE_ERROR_RULE, STALE_SUPPRESSION_RULE
from repro.cli import main

FLOAT_EQ = "def f(x):\n    return x == 0.0\n"
ROUTING_PATH = "src/repro/routing/fixture.py"


class TestSuppressions:
    def test_trailing_comment_suppresses_only_its_line(self):
        source = (
            "def f(x, y):\n"
            "    a = x == 0.0  # reprolint: disable=R004\n"
            "    b = y == 0.0\n"
            "    return a or b\n"
        )
        report = analyze_source(source, ROUTING_PATH)
        assert [f.line for f in report.findings if f.rule_id == "R004"] == [3]
        assert [f.line for f in report.suppressed if f.rule_id == "R004"] == [2]

    def test_standalone_comment_suppresses_whole_file(self):
        source = "# reprolint: disable=R004\n" + FLOAT_EQ + "def g(y):\n    return y != 1.0\n"
        report = analyze_source(source, ROUTING_PATH)
        assert report.findings == []
        assert len(report.suppressed) == 2

    def test_disable_all(self):
        source = "import random  # reprolint: disable=all\n"
        report = analyze_source(source, ROUTING_PATH)
        assert report.findings == []
        assert report.suppressed

    def test_comma_separated_rule_list(self):
        index = build_suppression_index("# reprolint: disable=R001, R004\n")
        assert index.is_suppressed("R001", 99)
        assert index.is_suppressed("R004", 1)
        assert not index.is_suppressed("R003", 1)

    def test_directive_inside_string_is_ignored(self):
        source = 'TEXT = "# reprolint: disable=all"\nimport random\n'
        report = analyze_source(source, ROUTING_PATH)
        assert any(f.rule_id == "R001" for f in report.findings)
        assert report.directive_count == 0

    def test_multi_rule_comment_suppresses_both_rules(self):
        source = (
            "import time\n"
            "\n"
            "def f(x):\n"
            "    return time.time() == 0.0  # reprolint: disable=R002,R004\n"
        )
        report = analyze_source(source, ROUTING_PATH)
        assert report.findings == []
        assert {f.rule_id for f in report.suppressed} == {"R002", "R004"}

    def test_directive_on_decorator_line_covers_the_decorated_def(self):
        # R012 anchors at the ``def`` line; the suppression sits on the
        # decorator line above it and must still cover the finding.
        source = (
            "class Grid:\n"
            "    def __init__(self):\n"
            "        self._cells = {}\n"
            "\n"
            "    @locked  # reprolint: disable=R012\n"
            "    def drop(self, key):\n"
            "        self._cells.pop(key, None)\n"
        )
        report = analyze_source(source, "src/repro/network/fixture.py")
        assert [f for f in report.findings if f.rule_id == "R012"] == []
        assert any(f.rule_id == "R012" for f in report.suppressed)


class TestStaleSuppressions:
    def test_unused_directive_reports_w001(self):
        source = "def f():\n    return 1  # reprolint: disable=R004\n"
        report = analyze_source(source, ROUTING_PATH)
        assert [f.rule_id for f in report.findings] == [STALE_SUPPRESSION_RULE]
        finding = report.findings[0]
        assert finding.line == 2
        assert "R004" in finding.message

    def test_used_directive_reports_nothing(self):
        source = "def f(x):\n    return x == 0.0  # reprolint: disable=R004\n"
        report = analyze_source(source, ROUTING_PATH)
        assert report.findings == []

    def test_w001_is_itself_suppressible(self):
        source = "def f():\n    return 1  # reprolint: disable=R004,W001\n"
        report = analyze_source(source, ROUTING_PATH)
        assert report.findings == []

    def test_stale_file_level_directive_reports_w001(self):
        source = "# reprolint: disable=R001\ndef f():\n    return 1\n"
        report = analyze_source(source, ROUTING_PATH)
        assert [f.rule_id for f in report.findings] == [STALE_SUPPRESSION_RULE]
        assert report.findings[0].line == 1

    def test_stale_decorator_line_directive_stays_quiet_when_used(self):
        # The decorator-line alias makes the directive "used" by the def's
        # finding, so no W001 fires.
        source = (
            "class Grid:\n"
            "    def __init__(self):\n"
            "        self._cells = {}\n"
            "\n"
            "    @locked  # reprolint: disable=R012\n"
            "    def drop(self, key):\n"
            "        self._cells.pop(key, None)\n"
        )
        report = analyze_source(source, "src/repro/network/fixture.py")
        assert report.findings == []


class TestAllowlists:
    def test_rng_module_may_build_generators(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        report = analyze_source(source, "src/repro/simkit/rng.py")
        assert [f for f in report.findings if f.rule_id == "R001"] == []

    def test_unseeded_default_rng_flagged_elsewhere(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        report = analyze_source(source, ROUTING_PATH)
        assert any(f.rule_id == "R001" for f in report.findings)

    def test_epsilon_module_may_compare_floats(self):
        report = analyze_source(FLOAT_EQ, "src/repro/geometry/primitives.py")
        assert [f for f in report.findings if f.rule_id == "R004"] == []

    def test_r003_only_applies_to_decision_layers(self):
        source = "def f(xs):\n    s = set(xs)\n    return [x for x in s]\n"
        outside = analyze_source(source, "src/repro/experiments/fixture.py")
        inside = analyze_source(source, ROUTING_PATH)
        assert [f for f in outside.findings if f.rule_id == "R003"] == []
        assert any(f.rule_id == "R003" for f in inside.findings)

    def test_abstract_protocol_base_is_exempt_from_r006(self):
        source = (
            "import abc\n"
            "from repro.routing.base import RoutingProtocol\n"
            "\n"
            "class PartialProtocol(RoutingProtocol, abc.ABC):\n"
            "    @abc.abstractmethod\n"
            "    def helper(self):\n"
            "        ...\n"
        )
        report = analyze_source(source, ROUTING_PATH)
        assert [f for f in report.findings if f.rule_id == "R006"] == []


class TestPathMatching:
    def test_directory_pattern(self):
        assert path_matches("src/repro/routing/gmp.py", ("repro/routing/",))
        assert not path_matches("src/repro/geometry/point.py", ("repro/routing/",))

    def test_file_pattern_is_suffix_anchored(self):
        assert path_matches("src/repro/simkit/rng.py", ("repro/simkit/rng.py",))
        assert not path_matches("src/repro/simkit/not_rng.py", ("repro/simkit/rng.py",))

    def test_windows_separators_normalize(self):
        assert path_matches("src\\repro\\routing\\gmp.py", ("repro/routing/",))


class TestEngine:
    def test_syntax_error_becomes_e000_finding(self):
        report = analyze_source("def broken(:\n", ROUTING_PATH)
        assert [f.rule_id for f in report.findings] == [PARSE_ERROR_RULE]

    def test_findings_are_sorted_by_location(self):
        source = "def g(y):\n    return y != 1.0\n" + FLOAT_EQ
        report = analyze_source(source, ROUTING_PATH)
        lines = [f.line for f in report.findings]
        assert lines == sorted(lines)

    def test_registry_rejects_duplicate_ids(self):
        registry = RuleRegistry()
        rule_cls = next(iter(default_registry().create_rules())).__class__
        registry.register(rule_cls)
        with pytest.raises(ValueError):
            registry.register(rule_cls)

    def test_registry_rejects_unknown_rule_selection(self):
        with pytest.raises(KeyError):
            default_registry().create_rules(only=["R999"])

    def test_seventeen_builtin_rules(self):
        assert default_registry().rule_ids() == [f"R{n:03d}" for n in range(1, 18)]

    def test_analyze_paths_walks_directories(self, tmp_path):
        package = tmp_path / "src" / "repro" / "routing"
        package.mkdir(parents=True)
        (package / "dirty.py").write_text(FLOAT_EQ)
        (package / "clean.py").write_text("def f():\n    return 1\n")
        hidden = tmp_path / "src" / ".cache"
        hidden.mkdir()
        (hidden / "skipme.py").write_text("import random\n")
        report = analyze_paths([str(tmp_path)])
        assert report.files_checked == 2
        assert [f.rule_id for f in report.findings] == ["R004"]

    def test_report_render_has_summary_line(self):
        report = analyze_source(FLOAT_EQ, ROUTING_PATH)
        assert "reprolint: 1 finding in 1 file(s)" in report.render()


class TestLintCli:
    def test_exit_one_on_findings(self, tmp_path, capsys):
        dirty = tmp_path / "repro" / "routing"
        dirty.mkdir(parents=True)
        (dirty / "bad.py").write_text(FLOAT_EQ)
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "R004" in out

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("def f():\n    return 1\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in default_registry().rule_ids():
            assert rule_id in out

    def test_show_suppressed(self, tmp_path, capsys):
        target = tmp_path / "repro" / "routing"
        target.mkdir(parents=True)
        (target / "hushed.py").write_text(
            "# reprolint: disable=R004\n" + FLOAT_EQ
        )
        assert main(["lint", "--show-suppressed", str(tmp_path)]) == 0
        assert "[suppressed]" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        import json

        dirty = tmp_path / "repro" / "routing"
        dirty.mkdir(parents=True)
        (dirty / "bad.py").write_text(FLOAT_EQ)
        assert main(["lint", "--format", "json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["findings"][0]["rule_id"] == "R004"
        assert payload["findings"][0]["fingerprint"]

    def test_sarif_format_written_to_file(self, tmp_path, capsys):
        import json

        dirty = tmp_path / "repro" / "routing"
        dirty.mkdir(parents=True)
        (dirty / "bad.py").write_text(FLOAT_EQ)
        out_path = tmp_path / "lint.sarif"
        assert (
            main(
                [
                    "lint",
                    "--format",
                    "sarif",
                    "--output",
                    str(out_path),
                    str(tmp_path / "repro"),
                ]
            )
            == 1
        )
        assert capsys.readouterr().out == ""
        log = json.loads(out_path.read_text(encoding="utf-8"))
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        result = run["results"][0]
        assert result["ruleId"] == "R004"
        assert result["partialFingerprints"]["reprolint/v1"]
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"R001", "R016", "E000", "W001"} <= rule_ids
