"""Engine behaviors: suppression scopes, allowlists, path matching, the
registry, directory walking and the ``repro lint`` CLI front end."""

from __future__ import annotations

import pytest

from repro.analysis import (
    LintConfig,
    RuleRegistry,
    analyze_paths,
    analyze_source,
    build_suppression_index,
    default_registry,
    path_matches,
)
from repro.analysis.engine import PARSE_ERROR_RULE
from repro.cli import main

FLOAT_EQ = "def f(x):\n    return x == 0.0\n"
ROUTING_PATH = "src/repro/routing/fixture.py"


class TestSuppressions:
    def test_trailing_comment_suppresses_only_its_line(self):
        source = (
            "def f(x, y):\n"
            "    a = x == 0.0  # reprolint: disable=R004\n"
            "    b = y == 0.0\n"
            "    return a or b\n"
        )
        report = analyze_source(source, ROUTING_PATH)
        assert [f.line for f in report.findings if f.rule_id == "R004"] == [3]
        assert [f.line for f in report.suppressed if f.rule_id == "R004"] == [2]

    def test_standalone_comment_suppresses_whole_file(self):
        source = "# reprolint: disable=R004\n" + FLOAT_EQ + "def g(y):\n    return y != 1.0\n"
        report = analyze_source(source, ROUTING_PATH)
        assert report.findings == []
        assert len(report.suppressed) == 2

    def test_disable_all(self):
        source = "import random  # reprolint: disable=all\n"
        report = analyze_source(source, ROUTING_PATH)
        assert report.findings == []
        assert report.suppressed

    def test_comma_separated_rule_list(self):
        index = build_suppression_index("# reprolint: disable=R001, R004\n")
        assert index.is_suppressed("R001", 99)
        assert index.is_suppressed("R004", 1)
        assert not index.is_suppressed("R003", 1)

    def test_directive_inside_string_is_ignored(self):
        source = 'TEXT = "# reprolint: disable=all"\nimport random\n'
        report = analyze_source(source, ROUTING_PATH)
        assert any(f.rule_id == "R001" for f in report.findings)
        assert report.directive_count == 0


class TestAllowlists:
    def test_rng_module_may_build_generators(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        report = analyze_source(source, "src/repro/simkit/rng.py")
        assert [f for f in report.findings if f.rule_id == "R001"] == []

    def test_unseeded_default_rng_flagged_elsewhere(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        report = analyze_source(source, ROUTING_PATH)
        assert any(f.rule_id == "R001" for f in report.findings)

    def test_epsilon_module_may_compare_floats(self):
        report = analyze_source(FLOAT_EQ, "src/repro/geometry/primitives.py")
        assert [f for f in report.findings if f.rule_id == "R004"] == []

    def test_r003_only_applies_to_decision_layers(self):
        source = "def f(xs):\n    s = set(xs)\n    return [x for x in s]\n"
        outside = analyze_source(source, "src/repro/experiments/fixture.py")
        inside = analyze_source(source, ROUTING_PATH)
        assert [f for f in outside.findings if f.rule_id == "R003"] == []
        assert any(f.rule_id == "R003" for f in inside.findings)

    def test_abstract_protocol_base_is_exempt_from_r006(self):
        source = (
            "import abc\n"
            "from repro.routing.base import RoutingProtocol\n"
            "\n"
            "class PartialProtocol(RoutingProtocol, abc.ABC):\n"
            "    @abc.abstractmethod\n"
            "    def helper(self):\n"
            "        ...\n"
        )
        report = analyze_source(source, ROUTING_PATH)
        assert [f for f in report.findings if f.rule_id == "R006"] == []


class TestPathMatching:
    def test_directory_pattern(self):
        assert path_matches("src/repro/routing/gmp.py", ("repro/routing/",))
        assert not path_matches("src/repro/geometry/point.py", ("repro/routing/",))

    def test_file_pattern_is_suffix_anchored(self):
        assert path_matches("src/repro/simkit/rng.py", ("repro/simkit/rng.py",))
        assert not path_matches("src/repro/simkit/not_rng.py", ("repro/simkit/rng.py",))

    def test_windows_separators_normalize(self):
        assert path_matches("src\\repro\\routing\\gmp.py", ("repro/routing/",))


class TestEngine:
    def test_syntax_error_becomes_e000_finding(self):
        report = analyze_source("def broken(:\n", ROUTING_PATH)
        assert [f.rule_id for f in report.findings] == [PARSE_ERROR_RULE]

    def test_findings_are_sorted_by_location(self):
        source = "def g(y):\n    return y != 1.0\n" + FLOAT_EQ
        report = analyze_source(source, ROUTING_PATH)
        lines = [f.line for f in report.findings]
        assert lines == sorted(lines)

    def test_registry_rejects_duplicate_ids(self):
        registry = RuleRegistry()
        rule_cls = next(iter(default_registry().create_rules())).__class__
        registry.register(rule_cls)
        with pytest.raises(ValueError):
            registry.register(rule_cls)

    def test_registry_rejects_unknown_rule_selection(self):
        with pytest.raises(KeyError):
            default_registry().create_rules(only=["R999"])

    def test_ten_builtin_rules(self):
        assert default_registry().rule_ids() == [f"R{n:03d}" for n in range(1, 11)]

    def test_analyze_paths_walks_directories(self, tmp_path):
        package = tmp_path / "src" / "repro" / "routing"
        package.mkdir(parents=True)
        (package / "dirty.py").write_text(FLOAT_EQ)
        (package / "clean.py").write_text("def f():\n    return 1\n")
        hidden = tmp_path / "src" / ".cache"
        hidden.mkdir()
        (hidden / "skipme.py").write_text("import random\n")
        report = analyze_paths([str(tmp_path)])
        assert report.files_checked == 2
        assert [f.rule_id for f in report.findings] == ["R004"]

    def test_report_render_has_summary_line(self):
        report = analyze_source(FLOAT_EQ, ROUTING_PATH)
        assert "reprolint: 1 finding in 1 file(s)" in report.render()


class TestLintCli:
    def test_exit_one_on_findings(self, tmp_path, capsys):
        dirty = tmp_path / "repro" / "routing"
        dirty.mkdir(parents=True)
        (dirty / "bad.py").write_text(FLOAT_EQ)
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "R004" in out

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("def f():\n    return 1\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in default_registry().rule_ids():
            assert rule_id in out

    def test_show_suppressed(self, tmp_path, capsys):
        target = tmp_path / "repro" / "routing"
        target.mkdir(parents=True)
        (target / "hushed.py").write_text(
            "# reprolint: disable=R004\n" + FLOAT_EQ
        )
        assert main(["lint", "--show-suppressed", str(tmp_path)]) == 0
        assert "[suppressed]" in capsys.readouterr().out
