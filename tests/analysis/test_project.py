"""The whole-program substrate: module naming, import graph, call graph."""

from __future__ import annotations

import pathlib
import time

from repro.analysis import LintConfig, Project, analyze_paths, module_name_for

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


class TestModuleNaming:
    def test_src_layout_prefix_is_dropped(self):
        assert module_name_for("src/repro/network/graph.py") == "repro.network.graph"

    def test_init_names_the_package(self):
        assert module_name_for("src/repro/routing/__init__.py") == "repro.routing"

    def test_windows_separators(self):
        assert module_name_for("src\\repro\\geometry\\point.py") == (
            "repro.geometry.point"
        )

    def test_directory_root_anchors_names(self, tmp_path):
        corpus = tmp_path / "corpus"
        (corpus / "proj").mkdir(parents=True)
        target = corpus / "proj" / "mod.py"
        target.write_text("x = 1\n")
        assert module_name_for(str(target), str(corpus)) == "proj.mod"


class TestImportGraph:
    def test_from_import_resolves_to_defining_module(self):
        project = Project.from_sources(
            {
                "src/repro/a.py": "from repro.b import helper\n",
                "src/repro/b.py": "def helper():\n    return 1\n",
            }
        )
        assert project.internal_import_graph() == {
            "repro.a": ["repro.b"],
            "repro.b": [],
        }

    def test_lazy_imports_do_not_count_as_cycle_edges(self):
        project = Project.from_sources(
            {
                "src/repro/a.py": (
                    "def use_b():\n    import repro.b\n    return repro.b\n"
                ),
                "src/repro/b.py": "import repro.a\n",
            }
        )
        assert project.import_cycles() == []
        lazy = project.internal_import_graph(include_lazy=True)
        assert lazy["repro.a"] == ["repro.b"]

    def test_type_checking_imports_are_lazy(self):
        project = Project.from_sources(
            {
                "src/repro/a.py": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    import repro.b\n"
                ),
                "src/repro/b.py": "import repro.a\n",
            }
        )
        assert project.import_cycles() == []

    def test_three_module_cycle_is_one_component(self):
        project = Project.from_sources(
            {
                "src/repro/a.py": "import repro.b\n",
                "src/repro/b.py": "import repro.c\n",
                "src/repro/c.py": "import repro.a\n",
            }
        )
        assert project.import_cycles() == [("repro.a", "repro.b", "repro.c")]

    def test_relative_import_resolution(self):
        project = Project.from_sources(
            {
                "src/repro/pkg/__init__.py": "",
                "src/repro/pkg/a.py": "from . import b\nfrom .b import helper\n",
                "src/repro/pkg/b.py": "def helper():\n    return 1\n",
            }
        )
        graph = project.internal_import_graph()
        # ``from . import b`` also executes the package __init__, so the
        # package itself is a legitimate (conservative) edge target.
        assert graph["repro.pkg.a"] == ["repro.pkg", "repro.pkg.b"]

    def test_parse_error_is_recorded_not_raised(self):
        project = Project.from_sources({"src/repro/bad.py": "def broken(:\n"})
        assert project.modules == []
        assert "src/repro/bad.py" in project.parse_errors


class TestCallGraph:
    def test_cross_module_call_resolution(self):
        project = Project.from_sources(
            {
                "src/repro/a.py": (
                    "from repro.b import helper\n"
                    "\n"
                    "def caller():\n"
                    "    return helper()\n"
                ),
                "src/repro/b.py": "def helper():\n    return 1\n",
            }
        )
        graph = project.callgraph
        assert ("repro.a.caller", "repro.b.helper") in {
            (e.caller, e.callee) for e in graph.edges
        }

    def test_self_method_dispatch(self):
        project = Project.from_sources(
            {
                "src/repro/a.py": (
                    "class Box:\n"
                    "    def outer(self):\n"
                    "        return self.inner()\n"
                    "\n"
                    "    def inner(self):\n"
                    "        return 1\n"
                )
            }
        )
        graph = project.callgraph
        assert ("repro.a.Box.outer", "repro.a.Box.inner") in {
            (e.caller, e.callee) for e in graph.edges
        }

    def test_inherited_method_dispatch(self):
        project = Project.from_sources(
            {
                "src/repro/a.py": (
                    "class Base:\n"
                    "    def ping(self):\n"
                    "        return 1\n"
                    "\n"
                    "class Child(Base):\n"
                    "    def run(self):\n"
                    "        return self.ping()\n"
                )
            }
        )
        graph = project.callgraph
        assert ("repro.a.Child.run", "repro.a.Base.ping") in {
            (e.caller, e.callee) for e in graph.edges
        }

    def test_constructor_resolves_to_init(self):
        project = Project.from_sources(
            {
                "src/repro/a.py": (
                    "class Box:\n"
                    "    def __init__(self):\n"
                    "        self.x = 1\n"
                    "\n"
                    "def make():\n"
                    "    return Box()\n"
                )
            }
        )
        graph = project.callgraph
        assert ("repro.a.make", "repro.a.Box.__init__") in {
            (e.caller, e.callee) for e in graph.edges
        }

    def test_reachable_from_is_transitive(self):
        project = Project.from_sources(
            {
                "src/repro/a.py": (
                    "def top():\n"
                    "    return mid()\n"
                    "\n"
                    "def mid():\n"
                    "    return leaf()\n"
                    "\n"
                    "def leaf():\n"
                    "    return 1\n"
                )
            }
        )
        reachable = project.callgraph.reachable_from("repro.a.top")
        assert {"repro.a.mid", "repro.a.leaf"} <= reachable

    def test_shortest_caller_path_is_goal_first(self):
        project = Project.from_sources(
            {
                "src/repro/a.py": (
                    "def top():\n"
                    "    return mid()\n"
                    "\n"
                    "def mid():\n"
                    "    return leaf()\n"
                    "\n"
                    "def leaf():\n"
                    "    return 1\n"
                )
            }
        )
        path = project.callgraph.shortest_caller_path(
            "repro.a.leaf", lambda q: q == "repro.a.top"
        )
        assert path == ["repro.a.top", "repro.a.mid", "repro.a.leaf"]


class TestWholeRepoPerformance:
    def test_full_lint_pass_stays_fast(self):
        # Operator-side stopwatch, not simulation state: the analyzer must
        # stay cheap enough to run on every commit.
        start = time.perf_counter()
        report = analyze_paths(
            [str(REPO_ROOT / p) for p in ("src", "tests", "scripts", "benchmarks")],
            config=LintConfig(),
        )
        elapsed = time.perf_counter() - start
        assert report.files_checked > 100
        assert elapsed < 5.0, f"whole-repo lint took {elapsed:.2f}s"
