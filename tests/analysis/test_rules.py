"""Per-rule fixtures: one snippet that triggers, one that is clean, one
that suppresses the finding with ``# reprolint: disable=...``."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import pytest

from repro.analysis import Project, analyze_project, default_registry


@dataclass(frozen=True)
class RuleCase:
    """Fixture pair for one rule, analyzed under ``path``.

    ``extra`` holds companion modules for the whole-program rules whose
    contract spans two files (digest policy, import cycles); the finding
    itself always lands in ``path``.
    """

    path: str
    bad: str
    good: str
    extra: Tuple[Tuple[str, str], ...] = ()


CASES: Dict[str, RuleCase] = {
    "R001": RuleCase(
        path="src/repro/experiments/fixture.py",
        bad=(
            "import random\n"
            "\n"
            "def jitter():\n"
            "    return random.random()\n"
        ),
        good=(
            "import numpy as np\n"
            "from repro.simkit.rng import derive_seed\n"
            "\n"
            "def jitter(master_seed):\n"
            "    stream = np.random.default_rng(derive_seed(master_seed, 'jitter'))\n"
            "    return stream.normal()\n"
        ),
    ),
    "R002": RuleCase(
        path="src/repro/engine/fixture.py",
        bad=(
            "import time\n"
            "\n"
            "def stamp():\n"
            "    return time.time()\n"
        ),
        good=(
            "def stamp(simulator):\n"
            "    return simulator.now\n"
        ),
    ),
    "R003": RuleCase(
        path="src/repro/routing/fixture.py",
        bad=(
            "def pick_next_hops(neighbor_ids):\n"
            "    candidates = set(neighbor_ids)\n"
            "    return [n for n in candidates]\n"
        ),
        good=(
            "def pick_next_hops(neighbor_ids):\n"
            "    candidates = set(neighbor_ids)\n"
            "    return [n for n in sorted(candidates)]\n"
        ),
    ),
    "R004": RuleCase(
        path="src/repro/routing/fixture.py",
        bad=(
            "def coincident(a, b):\n"
            "    return distance(a, b) == 0.0\n"
        ),
        good=(
            "from repro.geometry.primitives import points_coincide\n"
            "\n"
            "def coincident(a, b):\n"
            "    return points_coincide(a, b)\n"
        ),
    ),
    "R005": RuleCase(
        path="src/repro/network/fixture.py",
        bad=(
            "def collect(into=[]):\n"
            "    into.append(1)\n"
            "    return into\n"
        ),
        good=(
            "def collect(into=None):\n"
            "    into = [] if into is None else into\n"
            "    into.append(1)\n"
            "    return into\n"
        ),
    ),
    "R006": RuleCase(
        path="src/repro/routing/fixture.py",
        bad=(
            "from repro.routing.base import RoutingProtocol\n"
            "\n"
            "class HalfProtocol(RoutingProtocol):\n"
            "    def handle(self, view):\n"
            "        return []\n"
        ),
        good=(
            "from repro.routing.base import RoutingProtocol\n"
            "\n"
            "class WholeProtocol(RoutingProtocol):\n"
            "    name = 'WHOLE'\n"
            "\n"
            "    def prepare_task(self, network, source_id, destination_ids):\n"
            "        pass\n"
            "\n"
            "    def handle(self, view, packet):\n"
            "        return []\n"
        ),
    ),
    "R007": RuleCase(
        path="src/repro/routing/fixture.py",
        bad=(
            "from repro.routing.base import RoutingProtocol\n"
            "\n"
            "class SneakyProtocol(RoutingProtocol):\n"
            "    name = 'SNEAKY'\n"
            "\n"
            "    def handle(self, view, packet):\n"
            "        packet.hop_count = 0\n"
            "        return []\n"
        ),
        good=(
            "from repro.routing.base import RoutingProtocol\n"
            "\n"
            "class HonestProtocol(RoutingProtocol):\n"
            "    name = 'HONEST'\n"
            "\n"
            "    def handle(self, view, packet):\n"
            "        trimmed = packet.with_destinations(packet.destinations[:1])\n"
            "        return [(view.neighbor_ids[0], trimmed)]\n"
        ),
    ),
    "R008": RuleCase(
        path="src/repro/routing/__init__.py",
        bad=(
            "from repro.routing.base import NodeView, RoutingProtocol\n"
            "\n"
            "__all__ = ['NodeView']\n"
        ),
        good=(
            "from repro.routing.base import NodeView, RoutingProtocol\n"
            "\n"
            "__all__ = ['NodeView', 'RoutingProtocol']\n"
        ),
    ),
    "R009": RuleCase(
        path="src/repro/experiments/fixture.py",
        bad=(
            "def load(path):\n"
            "    try:\n"
            "        return open(path).read()\n"
            "    except:\n"
            "        return None\n"
        ),
        good=(
            "def load(path):\n"
            "    try:\n"
            "        return open(path).read()\n"
            "    except OSError:\n"
            "        return None\n"
        ),
    ),
    "R010": RuleCase(
        path="src/repro/network/fixture.py",
        bad=(
            "a = compute()  # type: ignore\n"
            "b = compute()  # type: ignore\n"
            "c = compute()  # type: ignore\n"
        ),
        good=(
            "a = compute()  # type: ignore\n"
            "b = compute()\n"
            "c = compute()\n"
        ),
    ),
    "R011": RuleCase(
        path="src/repro/engine/fixture.py",
        bad=(
            "import time\n"
            "\n"
            "def stamp():\n"
            "    return time.time()\n"
        ),
        good=(
            "def stamp(simulator):\n"
            "    return simulator.now\n"
        ),
    ),
    "R012": RuleCase(
        path="src/repro/network/fixture.py",
        bad=(
            "class Grid:\n"
            "    def __init__(self):\n"
            "        self._cells = {}\n"
            "\n"
            "    def drop(self, key):\n"
            "        self._cells.pop(key, None)\n"
        ),
        good=(
            "class Grid:\n"
            "    def __init__(self):\n"
            "        self._cells = {}\n"
            "\n"
            "    def drop(self, key):\n"
            "        self._cells.pop(key, None)\n"
            "        self._refresh_cell(key)\n"
            "\n"
            "    def _refresh_cell(self, key):\n"
            "        pass\n"
        ),
    ),
    "R013": RuleCase(
        path="src/repro/perf/kernels.py",
        bad=(
            "def scale_batch(values):\n"
            "    return [v * 2.0 for v in values]\n"
        ),
        good=(
            "SCALAR_REFERENCES = {\n"
            "    'scale_batch': 'repro.perf.kernels._scale_one',\n"
            "}\n"
            "\n"
            "def _scale_one(value):\n"
            "    return value * 2.0\n"
            "\n"
            "def scale_batch(values):\n"
            "    return [_scale_one(v) for v in values]\n"
        ),
    ),
    "R014": RuleCase(
        path="src/repro/engine/trace.py",
        bad=(
            "from dataclasses import dataclass\n"
            "\n"
            "@dataclass\n"
            "class FrameRecord:\n"
            "    time_s: float\n"
            "    debug_note: str\n"
        ),
        good=(
            "from dataclasses import dataclass\n"
            "\n"
            "@dataclass\n"
            "class FrameRecord:\n"
            "    time_s: float\n"
        ),
        extra=(
            (
                "src/repro/engine/digest.py",
                "DIGEST_INCLUDED_FIELDS = {\n"
                "    'FrameRecord': ('time_s',),\n"
                "}\n"
                "\n"
                "DIGEST_EXCLUDED_FIELDS = {}\n",
            ),
        ),
    ),
    "R015": RuleCase(
        path="src/repro/alpha.py",
        bad="import repro.beta\n",
        good=(
            "def use_beta():\n"
            "    import repro.beta\n"
            "    return repro.beta\n"
        ),
        extra=(("src/repro/beta.py", "import repro.alpha\n"),),
    ),
    "R016": RuleCase(
        path="src/repro/network/fixture.py",
        bad=(
            "def _lonely():\n"
            "    return 0\n"
        ),
        good=(
            "def _helper():\n"
            "    return 0\n"
            "\n"
            "def use():\n"
            "    return _helper()\n"
        ),
    ),
    "R017": RuleCase(
        path="src/repro/network/fixture.py",
        bad=(
            "class Net:\n"
            "    def kill(self, idx):\n"
            "        self.alive[idx] = False\n"
            "        self._invalidate_node(idx)\n"
            "\n"
            "    def _invalidate_node(self, idx):\n"
            "        pass\n"
        ),
        good=(
            "class Net:\n"
            "    def kill(self, idx):\n"
            "        self._ensure_private_node_state()\n"
            "        self.alive[idx] = False\n"
            "        self._invalidate_node(idx)\n"
            "\n"
            "    def _ensure_private_node_state(self):\n"
            "        self.alive = self.alive.copy()\n"
            "\n"
            "    def _invalidate_node(self, idx):\n"
            "        pass\n"
        ),
    ),
}


def _analyze(case: RuleCase, source: str):
    sources = {case.path: source}
    sources.update(dict(case.extra))
    return analyze_project(Project.from_sources(sources))


def _findings_for(rule_id: str, case: RuleCase, source: str):
    report = _analyze(case, source)
    return [f for f in report.findings if f.rule_id == rule_id]


def test_every_builtin_rule_has_a_case():
    assert sorted(CASES) == default_registry().rule_ids()


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_bad_fixture_triggers(rule_id):
    case = CASES[rule_id]
    findings = _findings_for(rule_id, case, case.bad)
    assert findings, f"{rule_id} did not fire on its trigger fixture"
    for finding in findings:
        assert finding.path == case.path
        assert finding.line >= 1
        assert finding.message
        assert finding.fix_hint, f"{rule_id} findings must carry a fix hint"


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_good_fixture_is_clean(rule_id):
    case = CASES[rule_id]
    assert _findings_for(rule_id, case, case.good) == []


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_file_level_suppression_silences(rule_id):
    case = CASES[rule_id]
    report = _analyze(case, f"# reprolint: disable={rule_id}\n" + case.bad)
    assert [f for f in report.findings if f.rule_id == rule_id] == []
    assert any(f.rule_id == rule_id for f in report.suppressed)
    assert report.directive_count == 1


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_rendered_finding_names_the_rule(rule_id):
    case = CASES[rule_id]
    findings = _findings_for(rule_id, case, case.bad)
    rendered = findings[0].render()
    assert rule_id in rendered
    assert case.path in rendered
