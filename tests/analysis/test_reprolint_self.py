"""The lint gate: the shipped tree must satisfy its own analyzer.

This is the pytest face of ``repro lint`` — CI runs both, but this test
keeps the gate active for anyone who only runs the test suite.  The walk
covers the whole program (src + tests + scripts + benchmarks): the
graph-aware rules R011–R016 are only sound when the kernels, their parity
tests and the digest policy are all loaded into one project.
"""

from __future__ import annotations

import pathlib

from repro.analysis import analyze_paths, default_registry
from repro.analysis.engine import PARSE_ERROR_RULE, STALE_SUPPRESSION_RULE

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"
WHOLE_PROGRAM = [
    str(REPO_ROOT / part) for part in ("src", "tests", "scripts", "benchmarks")
]

#: Acceptance budget: the tree must stand on fixes, not on silencing.
MAX_SUPPRESSION_DIRECTIVES = 4


def test_source_tree_has_no_findings():
    report = analyze_paths([str(SRC)])
    assert report.files_checked > 50, "lint walk missed most of the tree"
    assert report.clean, "reprolint findings in src/:\n" + report.render()


def test_whole_program_has_no_findings():
    report = analyze_paths(WHOLE_PROGRAM)
    assert report.files_checked > 150, "whole-program walk missed files"
    assert report.clean, "reprolint findings:\n" + report.render()


def test_linklayer_package_is_covered_and_clean():
    # The MAC subsystem is all timing-sensitive event code; hold it to the
    # determinism rules on its own so a src/-walk regression can't hide it.
    package = SRC / "linklayer"
    report = analyze_paths([str(package)])
    assert report.files_checked >= 6, "lint walk missed linklayer modules"
    assert report.clean, "reprolint findings in linklayer/:\n" + report.render()


def test_suppression_directives_stay_rare():
    report = analyze_paths(WHOLE_PROGRAM)
    assert report.directive_count <= MAX_SUPPRESSION_DIRECTIVES, (
        f"{report.directive_count} suppression comments exceed the budget "
        f"of {MAX_SUPPRESSION_DIRECTIVES}; fix the code instead"
    )


def test_docs_cover_every_rule():
    guide = (REPO_ROOT / "docs" / "ANALYSIS.md").read_text(encoding="utf-8")
    for rule_id in default_registry().rule_ids():
        assert rule_id in guide, f"docs/ANALYSIS.md does not document {rule_id}"
    for engine_rule in (PARSE_ERROR_RULE, STALE_SUPPRESSION_RULE):
        assert engine_rule in guide, (
            f"docs/ANALYSIS.md does not document {engine_rule}"
        )
