"""Half of the module-level import cycle (R015)."""

import proj.cyc_b


def ping():
    return proj.cyc_b.pong()
