"""Scalar references for the kernel corpus."""


def scale_one(value, factor):
    return value * factor
