"""Kernel parity corpus: one registered kernel, one missing both (R013)."""

from proj.perf.scalar import scale_one

SCALAR_REFERENCES = {
    "scale_batch": "proj.perf.scalar.scale_one",
}


def scale_batch(values, factor):
    return [scale_one(value, factor) for value in values]


def offset_batch(values, delta):
    return [value + delta for value in values]
