"""Middle hop of the taint chain, plus a dead private helper (R016)."""

from proj.util.clock import now


def jitter():
    return now() * 0.5


def _unused_helper():
    return 0
