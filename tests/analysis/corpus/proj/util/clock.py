"""Wall-clock helper: the corpus's nondeterminism source (R002 + R011)."""

import time


def now():
    return time.time()
