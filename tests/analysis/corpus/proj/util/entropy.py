"""From-imported entropy sources: bare-name R011 taint sources.

``from os import urandom`` / ``from numpy.random import default_rng`` shed
the module prefix the dotted taint tables key on — these two calls pin the
bare-name handling.
"""

from os import urandom

from numpy.random import default_rng


def fresh_salt():
    return urandom(8)


def fresh_stream():
    return default_rng()
