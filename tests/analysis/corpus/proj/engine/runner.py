"""Digest-relevant sink layer: functions here are R011 taint sinks."""

from proj.util.chain import jitter
from proj.util.entropy import fresh_salt, fresh_stream


def run(tasks):
    return [task + jitter() for task in tasks]


def reseed():
    return fresh_salt(), fresh_stream()
