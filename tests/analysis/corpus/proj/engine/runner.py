"""Digest-relevant sink layer: functions here are R011 taint sinks."""

from proj.util.chain import jitter


def run(tasks):
    return [task + jitter() for task in tasks]
