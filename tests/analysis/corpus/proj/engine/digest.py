"""Digest policy tables for the corpus records (``debug_note`` missing)."""

DIGEST_INCLUDED_FIELDS = {
    "Frame": ("time_s", "sender"),
}

DIGEST_EXCLUDED_FIELDS = {}
