"""Digest policy corpus: one record field escapes the policy tables (R014)."""

from dataclasses import dataclass


@dataclass
class Frame:
    time_s: float
    sender: int
    debug_note: str
