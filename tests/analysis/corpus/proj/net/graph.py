"""Cache-invalidation corpus: one compliant mutator, one violation (R012)."""


class Grid:
    def __init__(self):
        self._cells = {}

    def add(self, key, value):
        self._cells[key] = value
        self._invalidate()

    def drop(self, key):
        self._cells.pop(key, None)

    def _invalidate(self):
        pass
