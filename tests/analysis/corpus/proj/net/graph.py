"""Mutation corpus: compliant mutators and one violation each (R012, R017)."""


class Grid:
    def __init__(self):
        self._cells = {}

    def add(self, key, value):
        self._cells[key] = value
        self._invalidate()

    def drop(self, key):
        self._cells.pop(key, None)

    def _invalidate(self):
        pass


class Plane:
    def adopt(self, xs):
        self._xs = xs

    def scale(self, factor):
        self._xs = [x * factor for x in self._xs]

    def shift(self, dx):
        self._materialize()
        self._xs = [x + dx for x in self._xs]

    def _materialize(self):
        self._xs = list(self._xs)
