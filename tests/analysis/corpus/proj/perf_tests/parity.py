"""Parity-test stand-in (not named test_*.py so pytest ignores it).

References ``scale_batch`` but not ``offset_batch`` — the gap R013 reports.
"""

from proj.perf.kernels import scale_batch
from proj.perf.scalar import scale_one


def check_parity():
    assert scale_batch([1.0], 2.0) == [scale_one(1.0, 2.0)]
