"""Other half of the module-level import cycle (R015)."""

import proj.cyc_a


def pong():
    return len(proj.cyc_a.__name__)
