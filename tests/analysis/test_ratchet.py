"""The ratchet gate: new findings fail, fixes require a baseline update."""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

spec = importlib.util.spec_from_file_location(
    "lint_ratchet", REPO_ROOT / "scripts" / "lint_ratchet.py"
)
assert spec is not None and spec.loader is not None
lint_ratchet = importlib.util.module_from_spec(spec)
spec.loader.exec_module(lint_ratchet)

DIRTY = "def f(x):\n    return x == 0.0\n"
CLEAN = "def f(x):\n    return x\n"


@pytest.fixture()
def tree(tmp_path):
    package = tmp_path / "repro" / "routing"
    package.mkdir(parents=True)
    return tmp_path, package / "mod.py"


def _run(tmp_path, *extra):
    baseline = tmp_path / "baseline.json"
    return lint_ratchet.main(
        [str(tmp_path), "--baseline", str(baseline), *extra]
    )


def test_missing_baseline_is_an_error(tree, capsys):
    tmp_path, mod = tree
    mod.write_text(CLEAN)
    assert _run(tmp_path) == 2
    assert "not found" in capsys.readouterr().err


def test_update_then_pass(tree):
    tmp_path, mod = tree
    mod.write_text(DIRTY)
    assert _run(tmp_path, "--update") == 0
    assert _run(tmp_path) == 0


def test_new_finding_fails_the_gate(tree, capsys):
    tmp_path, mod = tree
    mod.write_text(CLEAN)
    assert _run(tmp_path, "--update") == 0
    mod.write_text(DIRTY)
    assert _run(tmp_path) == 1
    assert "NEW R004" in capsys.readouterr().out


def test_fixed_finding_requires_a_baseline_update(tree, capsys):
    tmp_path, mod = tree
    mod.write_text(DIRTY)
    assert _run(tmp_path, "--update") == 0
    mod.write_text(CLEAN)
    assert _run(tmp_path) == 1
    assert "FIXED" in capsys.readouterr().out
    assert _run(tmp_path, "--update") == 0
    assert _run(tmp_path) == 0


def test_sarif_side_output(tree, tmp_path_factory):
    tmp_path, mod = tree
    mod.write_text(DIRTY)
    sarif_path = tmp_path / "out.sarif"
    assert _run(tmp_path, "--update", "--sarif", str(sarif_path)) == 0
    log = json.loads(sarif_path.read_text(encoding="utf-8"))
    assert log["version"] == "2.1.0"
    assert log["runs"][0]["results"][0]["ruleId"] == "R004"


def test_committed_baseline_is_empty():
    payload = json.loads(
        (REPO_ROOT / "lint_baseline.json").read_text(encoding="utf-8")
    )
    assert payload["findings"] == {}
