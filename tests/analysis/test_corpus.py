"""The fixture corpus must produce exactly its seeded findings.

``tests/analysis/corpus/proj`` is a miniature project with one violation of
each whole-program rule (see its README).  Linting it with the
corpus-scoped config must report precisely those findings — no more, no
less — which pins both the triggers and the false-positive behavior of
R011–R017 against real multi-module input.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import LintConfig, analyze_paths

CORPUS = pathlib.Path(__file__).resolve().parent / "corpus"

CORPUS_CONFIG = LintConfig(
    exclude_paths=(),
    relaxed_scopes=(),
    taint_sink_scopes=("proj/engine/",),
    mutation_scopes=("proj/net/",),
    mutation_guarded_attrs=("_cells",),
    invalidation_calls=("_invalidate",),
    shared_mutation_scopes=("proj/net/",),
    shared_guarded_attrs=("_xs",),
    cow_calls=("_materialize", "adopt"),
    kernel_modules=("proj/perf/kernels.py",),
    kernel_test_scopes=("proj/perf_tests/",),
    digest_policy_modules=("proj/engine/digest.py",),
    digest_record_scopes=("proj/engine/records.py",),
    dead_code_scopes=("proj/",),
)


@pytest.fixture(scope="module")
def corpus_report():
    return analyze_paths([str(CORPUS)], config=CORPUS_CONFIG)


def _by_rule(report, rule_id):
    return [f for f in report.sorted_findings() if f.rule_id == rule_id]


def test_exact_finding_set(corpus_report):
    got = [
        (f.rule_id, pathlib.Path(f.path).name, f.line)
        for f in corpus_report.sorted_findings()
    ]
    assert got == [
        ("R015", "cyc_a.py", 1),
        ("R014", "records.py", 10),
        ("R012", "graph.py", 12),
        ("R017", "graph.py", 23),
        ("R013", "kernels.py", 14),
        ("R013", "kernels.py", 14),
        ("R016", "chain.py", 10),
        ("R002", "clock.py", 7),
        ("R011", "clock.py", 7),
        ("R011", "entropy.py", 14),
        ("R011", "entropy.py", 18),
    ]
    assert corpus_report.suppressed == []


def test_taint_reports_the_full_multi_hop_chain(corpus_report):
    findings = _by_rule(corpus_report, "R011")
    (clock_finding,) = [f for f in findings if f.path.endswith("clock.py")]
    assert clock_finding.message == (
        "nondeterministic value from time.time() reaches digest-relevant "
        "function proj.engine.runner.run via call chain "
        "proj.engine.runner.run -> proj.util.chain.jitter -> "
        "proj.util.clock.now"
    )


def test_taint_catches_bare_name_from_imported_sources(corpus_report):
    messages = sorted(
        f.message
        for f in _by_rule(corpus_report, "R011")
        if f.path.endswith("entropy.py")
    )
    assert len(messages) == 2
    assert "os.urandom()" in messages[0]
    assert "unseeded default_rng()" in messages[1]
    assert all("proj.engine.runner.reseed" in m for m in messages)


def test_cycle_message_names_the_loop(corpus_report):
    (finding,) = _by_rule(corpus_report, "R015")
    assert finding.message == (
        "module-level import cycle: proj.cyc_a -> proj.cyc_b -> proj.cyc_a"
    )


def test_kernel_findings_cover_registry_and_test_reference(corpus_report):
    messages = sorted(f.message for f in _by_rule(corpus_report, "R013"))
    assert "no SCALAR_REFERENCES entry" in messages[0]
    assert "not referenced by any parity test module" in messages[1]
    assert all("offset_batch" in m for m in messages)


def test_mutation_finding_names_the_attribute(corpus_report):
    (finding,) = _by_rule(corpus_report, "R012")
    assert "proj.net.graph.Grid.drop" in finding.message
    assert "'_cells'" in finding.message


def test_shared_mutation_finding_names_the_attribute(corpus_report):
    (finding,) = _by_rule(corpus_report, "R017")
    assert "proj.net.graph.Plane.scale" in finding.message
    assert "'_xs'" in finding.message
    assert "copy-on-write" in finding.message


def test_digest_finding_names_the_field(corpus_report):
    (finding,) = _by_rule(corpus_report, "R014")
    assert "debug_note" in finding.message


def test_dead_code_finding_names_the_function(corpus_report):
    (finding,) = _by_rule(corpus_report, "R016")
    assert "proj.util.chain._unused_helper" in finding.message


def test_default_config_excludes_the_corpus():
    report = analyze_paths([str(CORPUS)])
    assert report.files_checked == 0
