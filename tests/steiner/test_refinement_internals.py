"""White-box tests for the rrSTR refinement moves."""

import pytest

from repro.geometry import Point, distance
from repro.steiner.rrstr import _root_path_length, refine_tree
from repro.steiner.tree import SteinerTree


def build(edges, vertices):
    """vertices: vid -> (location, kind, ref); edges: (parent, child)."""
    locations = dict(vertices)
    tree = SteinerTree(locations[0][0])
    ids = {0: 0}
    for vid in sorted(locations):
        if vid == 0:
            continue
        loc, kind, ref = locations[vid]
        if kind == "virtual":
            ids[vid] = tree.add_virtual(loc)
        else:
            ids[vid] = tree.add_terminal(loc, ref)
    for parent, child in edges:
        tree.attach(ids[parent], ids[child])
    return tree, ids


class TestSplice:
    def test_childless_virtual_removed(self):
        tree, ids = build(
            edges=[(0, 1), (0, 2)],
            vertices={
                0: (Point(0, 0), "source", None),
                1: (Point(100, 0), "terminal", 7),
                2: (Point(50, 50), "virtual", None),
            },
        )
        refined = refine_tree(tree)
        assert not any(v.is_virtual for v in refined.vertices())
        assert refined.is_spanning()

    def test_single_child_virtual_spliced(self):
        tree, ids = build(
            edges=[(0, 1), (1, 2)],
            vertices={
                0: (Point(0, 0), "source", None),
                1: (Point(100, 10), "virtual", None),
                2: (Point(200, 0), "terminal", 7),
            },
        )
        refined = refine_tree(tree)
        assert not any(v.is_virtual for v in refined.vertices())
        # The terminal now hangs straight off the root.
        terminal = next(v for v in refined.vertices() if v.is_terminal)
        assert refined.parent_of(terminal.vid) == 0
        # Splicing never lengthens (triangle inequality).
        assert refined.total_length() <= 100.5 + 100.5


class TestReparent:
    def test_orphan_moves_to_nearby_terminal(self):
        # Terminal 2 attached to the root across the field although
        # terminal 1 sits right next to it.
        tree, ids = build(
            edges=[(0, 1), (0, 2)],
            vertices={
                0: (Point(0, 0), "source", None),
                1: (Point(500, 0), "terminal", 1),
                2: (Point(520, 10), "terminal", 2),
            },
        )
        before = tree.total_length()
        refined = refine_tree(tree, max_stretch=1.1)
        assert refined.total_length() < before - 400
        # The two terminals now share a chain (either orientation).
        t1 = next(v for v in refined.vertices() if v.ref == 1)
        t2 = next(v for v in refined.vertices() if v.ref == 2)
        assert refined.parent_of(t1.vid) == t2.vid or refined.parent_of(
            t2.vid
        ) == t1.vid

    def test_stretch_guard_blocks_chains(self):
        # Re-parenting 2 under 1 would shorten the tree but give terminal 2
        # a root path of ~2x its radial distance; a tight stretch budget
        # must reject the move.
        tree, ids = build(
            edges=[(0, 1), (0, 2)],
            vertices={
                0: (Point(0, 0), "source", None),
                1: (Point(0, 500), "terminal", 1),
                2: (Point(140, 260), "terminal", 2),
            },
        )
        refined = refine_tree(tree, max_stretch=1.05)
        from repro.steiner.rrstr import _root_path_length

        t2 = next(v for v in refined.vertices() if v.ref == 2)
        radial = distance(Point(0, 0), t2.location)
        # Terminal 2 must not hang below terminal 1 (that chain would give
        # it ~2x stretch); whatever structure emerged, its root path stays
        # within the budget plus the Fermat-insertion detour bound.
        t1 = next(v for v in refined.vertices() if v.ref == 1)
        assert refined.parent_of(t2.vid) != t1.vid
        assert _root_path_length(refined, t2.vid) <= 1.2 * radial

    def test_root_path_length_helper(self):
        tree, ids = build(
            edges=[(0, 1), (1, 2)],
            vertices={
                0: (Point(0, 0), "source", None),
                1: (Point(100, 0), "terminal", 1),
                2: (Point(200, 0), "terminal", 2),
            },
        )
        assert _root_path_length(tree, ids[2]) == pytest.approx(200.0)


class TestInvariantsAfterRefinement:
    def test_terminals_preserved(self):
        tree, ids = build(
            edges=[(0, 1), (1, 2), (1, 3), (0, 4)],
            vertices={
                0: (Point(0, 0), "source", None),
                1: (Point(300, 0), "virtual", None),
                2: (Point(400, 80), "terminal", 11),
                3: (Point(400, -80), "terminal", 12),
                4: (Point(-200, 0), "terminal", 13),
            },
        )
        refined = refine_tree(tree)
        refs = sorted(v.ref for v in refined.vertices() if v.is_terminal)
        assert refs == [11, 12, 13]
        assert refined.is_spanning()

    def test_idempotent_at_fixpoint(self):
        tree, _ = build(
            edges=[(0, 1), (1, 2), (1, 3)],
            vertices={
                0: (Point(0, 0), "source", None),
                1: (Point(300, 0), "virtual", None),
                2: (Point(400, 80), "terminal", 1),
                3: (Point(400, -80), "terminal", 2),
            },
        )
        once = refine_tree(tree)
        twice = refine_tree(once)
        assert twice.total_length() == pytest.approx(once.total_length(), abs=1e-9)
