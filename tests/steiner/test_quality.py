"""Tests for the tree-quality analytics."""

import numpy as np
import pytest

from repro.geometry import Point
from repro.steiner import (
    RRStrConfig,
    compare_with_mst,
    euclidean_mst,
    mean_length_ratio,
    rrstr,
    tree_stretch,
)
from repro.steiner.quality import root_path_length


def random_instance(rng, k=10):
    source = Point(*rng.uniform(0, 1000, 2))
    dests = [(i, Point(*rng.uniform(0, 1000, 2))) for i in range(k)]
    return source, dests


class TestRootPathLength:
    def test_chain(self):
        tree = euclidean_mst(
            Point(0, 0), [(1, Point(100, 0)), (2, Point(200, 0))]
        )
        deepest = next(v.vid for v in tree.vertices() if v.ref == 2)
        assert root_path_length(tree, deepest) == pytest.approx(200.0)

    def test_detached_raises(self):
        from repro.steiner.tree import SteinerTree

        tree = SteinerTree(Point(0, 0))
        vid = tree.add_terminal(Point(1, 1), ref=1)
        with pytest.raises(ValueError):
            root_path_length(tree, vid)


class TestStretch:
    def test_star_has_unit_stretch(self):
        tree = euclidean_mst(
            Point(0, 0), [(1, Point(300, 0)), (2, Point(-300, 0))]
        )
        stats = tree_stretch(tree)
        assert stats.mean == pytest.approx(1.0)
        assert stats.maximum == pytest.approx(1.0)
        assert stats.terminal_count == 2

    def test_detour_increases_stretch(self):
        # Chain 0 -> far -> near-ish off axis: the second terminal's path
        # goes through the first.
        tree = euclidean_mst(
            Point(0, 0), [(1, Point(300, 0)), (2, Point(320, 150))]
        )
        stats = tree_stretch(tree)
        assert stats.maximum > 1.0

    def test_refined_rrstr_respects_stretch_budget_on_average(self):
        rng = np.random.default_rng(3)
        config = RRStrConfig(refine_max_stretch=1.05)
        means = []
        for _ in range(30):
            source, dests = random_instance(rng, k=12)
            tree = rrstr(source, dests, 150.0, config)
            means.append(tree_stretch(tree).mean)
        # The guard bounds *accepted re-parent moves*; combined with the
        # greedy construction the average terminal stretch stays modest.
        assert sum(means) / len(means) < 1.35


class TestComparison:
    def test_report_fields(self):
        rng = np.random.default_rng(8)
        source, dests = random_instance(rng)
        report = compare_with_mst(source, dests, 150.0)
        assert report.rrstr_length > 0
        assert report.mst_length > 0
        assert 0.5 < report.length_ratio < 1.5
        assert report.rrstr_stretch.terminal_count == 10
        assert report.virtual_vertex_count >= 0

    def test_mean_length_ratio_near_one(self):
        rng = np.random.default_rng(9)
        instances = [random_instance(rng, k=12) for _ in range(25)]
        ratio = mean_length_ratio(instances, 150.0)
        assert 0.9 < ratio < 1.12

    def test_mean_length_ratio_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_length_ratio([], 150.0)

    def test_unrefined_is_longer_on_average(self):
        rng = np.random.default_rng(10)
        instances = [random_instance(rng, k=12) for _ in range(20)]
        refined = mean_length_ratio(instances, 150.0, RRStrConfig(refine=True))
        raw = mean_length_ratio(instances, 150.0, RRStrConfig(refine=False))
        assert refined < raw
