"""Tests for the rrSTR heuristic (paper Section 3, Figures 3-6)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Point, distance
from repro.steiner import RRStrConfig, rrstr
from repro.steiner.mst import euclidean_mst
from repro.steiner.rrstr import refine_tree

RAW_BASIC = RRStrConfig(radio_aware=False, refine=False)
RAW_AWARE = RRStrConfig(radio_aware=True, refine=False)

coords = st.floats(min_value=0, max_value=1000, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)
dest_lists = st.lists(points, min_size=1, max_size=12).map(
    lambda locs: [(i, loc) for i, loc in enumerate(locs)]
)


def star_length(source, destinations):
    return sum(distance(source, loc) for _, loc in destinations)


def terminal_refs(tree):
    return sorted(v.ref for v in tree.vertices() if v.is_terminal)


class TestBasicStructure:
    def test_empty_destinations(self):
        tree = rrstr(Point(0, 0), [], 150.0)
        assert len(tree) == 1
        assert tree.pivots() == ()

    def test_single_destination_direct_edge(self):
        tree = rrstr(Point(0, 0), [(7, Point(400, 0))], 150.0)
        assert terminal_refs(tree) == [7]
        assert tree.is_spanning()
        assert tree.total_length() == pytest.approx(400.0)

    def test_invalid_radio_range(self):
        with pytest.raises(ValueError):
            rrstr(Point(0, 0), [(1, Point(1, 1))], 0.0)

    def test_close_far_pair_shares_trunk(self):
        # Two destinations far from the source and near each other must be
        # merged under a shared virtual destination (Observation 1).
        s = Point(0, 0)
        dests = [(1, Point(800, 40)), (2, Point(800, -40))]
        tree = rrstr(s, dests, 150.0, RAW_BASIC)
        virtuals = [v for v in tree.vertices() if v.is_virtual]
        assert len(virtuals) == 1
        w = virtuals[0]
        assert set(tree.children_of(w.vid)) == {1, 2}
        # The tree must beat two independent spokes.
        assert tree.total_length() < star_length(s, dests) - 1.0

    def test_opposite_destinations_attach_directly(self):
        # Steiner point of an angle >= 120 degrees pair is the source: both
        # destinations hang straight off the root.
        s = Point(0, 0)
        tree = rrstr(s, [(1, Point(500, 0)), (2, Point(-500, 0))], 150.0, RAW_BASIC)
        assert set(tree.pivots()) == {1, 2}
        assert tree.total_length() == pytest.approx(1000.0)

    def test_figure4_walkthrough_topology(self):
        # The paper's Figure 4: far pair (u, v) merges first under w1, then
        # (w1, d) under w2, then c chains toward w2, and finally s-c.
        s = Point(0, 0)
        c = Point(140, 30)
        d = Point(380, 20)
        u = Point(620, 110)
        v = Point(650, 30)
        tree = rrstr(
            s, [(1, c), (2, d), (3, u), (4, v)], 150.0, RAW_BASIC
        )
        assert tree.is_spanning()
        # u and v share a virtual parent.
        u_vid = next(x.vid for x in tree.vertices() if x.ref == 3)
        v_vid = next(x.vid for x in tree.vertices() if x.ref == 4)
        assert tree.parent_of(u_vid) == tree.parent_of(v_vid)
        assert tree.vertex(tree.parent_of(u_vid)).is_virtual


class TestRadioRangeRules:
    def test_both_in_range_attach_directly(self):
        # Both destinations one hop away: no virtual detour (Section 3.3).
        s = Point(0, 0)
        dests = [(1, Point(100, 20)), (2, Point(100, -20))]
        tree = rrstr(s, dests, 150.0, RAW_AWARE)
        assert set(tree.pivots()) == {1, 2}
        assert not any(v.is_virtual for v in tree.vertices())

    def test_basic_variant_creates_virtual_in_range(self):
        # Without radio awareness the same pair gets a (redundant) virtual.
        s = Point(0, 0)
        dests = [(1, Point(100, 20)), (2, Point(100, -20))]
        tree = rrstr(s, dests, 150.0, RAW_BASIC)
        assert any(v.is_virtual for v in tree.vertices())

    def test_one_in_range_chains_when_beneficial(self):
        # u within range, v far beyond and roughly behind u: u plays the
        # Steiner point, giving the chain s -> u -> v.
        s = Point(0, 0)
        u = Point(140, 0)
        v = Point(600, 30)
        tree = rrstr(s, [(1, u), (2, v)], 150.0, RAW_AWARE)
        v_vid = next(x.vid for x in tree.vertices() if x.ref == 2)
        u_vid = next(x.vid for x in tree.vertices() if x.ref == 1)
        assert tree.parent_of(v_vid) == u_vid

    def test_one_in_range_not_beneficial_pair_dies(self):
        # u in range but v off at a wide angle: no sharing is worth a hop;
        # the pseudocode deactivates the pair and both attach via other
        # means (here, directly to the source).
        s = Point(0, 0)
        u = Point(100, 0)
        v = Point(100, 500)
        tree = rrstr(s, [(1, u), (2, v)], 150.0, RAW_AWARE)
        assert set(tree.pivots()) == {1, 2}

    def test_prose_variant_also_spans(self):
        cfg = RRStrConfig(radio_aware=True, prose_one_in_range_rule=True, refine=False)
        s = Point(0, 0)
        dests = [(i, Point(100 + 90 * i, 37.0 * ((-1) ** i))) for i in range(6)]
        tree = rrstr(s, dests, 150.0, cfg)
        assert tree.is_spanning()
        assert terminal_refs(tree) == list(range(6))


class TestDegenerateInputs:
    def test_duplicate_destination_locations(self):
        s = Point(0, 0)
        dests = [(1, Point(300, 0)), (2, Point(300, 0))]
        tree = rrstr(s, dests, 150.0)
        assert terminal_refs(tree) == [1, 2]
        assert tree.is_spanning()
        # One rides for free on the other's position.
        assert tree.total_length() == pytest.approx(300.0, abs=1e-6)

    def test_destination_at_source(self):
        s = Point(0, 0)
        tree = rrstr(s, [(1, Point(0, 0)), (2, Point(200, 0))], 150.0)
        assert tree.is_spanning()
        assert terminal_refs(tree) == [1, 2]

    def test_many_collinear_destinations(self):
        s = Point(0, 0)
        dests = [(i, Point(100.0 * (i + 1), 0)) for i in range(6)]
        tree = rrstr(s, dests, 150.0)
        assert tree.is_spanning()
        # Optimal is the straight path.
        assert tree.total_length() == pytest.approx(600.0, abs=1e-6)


class TestInvariants:
    @given(dest_lists)
    @settings(max_examples=120, deadline=None)
    def test_spans_all_terminals(self, dests):
        tree = rrstr(Point(500, 500), dests, 150.0)
        assert tree.is_spanning()
        assert terminal_refs(tree) == sorted(r for r, _ in dests)

    @given(dest_lists)
    @settings(max_examples=120, deadline=None)
    def test_never_longer_than_star(self, dests):
        # Connecting every destination straight to the source is always
        # available (self-pairs); the heuristic must never do worse.
        s = Point(500, 500)
        tree = rrstr(s, dests, 150.0)
        assert tree.total_length() <= star_length(s, dests) + 1e-6

    @given(dest_lists)
    @settings(max_examples=60, deadline=None)
    def test_basic_variant_spans(self, dests):
        tree = rrstr(Point(500, 500), dests, 150.0, RAW_BASIC)
        assert tree.is_spanning()

    @given(dest_lists)
    @settings(max_examples=60, deadline=None)
    def test_refined_virtuals_have_two_children(self, dests):
        tree = rrstr(Point(500, 500), dests, 150.0)
        for vertex in tree.vertices():
            if vertex.is_virtual:
                assert len(tree.children_of(vertex.vid)) >= 2

    @given(dest_lists)
    @settings(max_examples=60, deadline=None)
    def test_refinement_never_lengthens(self, dests):
        s = Point(500, 500)
        raw = rrstr(s, dests, 150.0, RAW_AWARE)
        refined = rrstr(s, dests, 150.0, RRStrConfig(radio_aware=True))
        assert refined.total_length() <= raw.total_length() + 1e-6

    def test_deterministic(self):
        rng = np.random.default_rng(3)
        dests = [(i, Point(*rng.uniform(0, 1000, 2))) for i in range(10)]
        a = rrstr(Point(0, 0), dests, 150.0)
        b = rrstr(Point(0, 0), dests, 150.0)
        assert a.edges() == b.edges()
        assert a.total_length() == b.total_length()


class TestQuality:
    def test_close_to_mst_on_random_workloads(self):
        # Averaged over seeded workloads the refined tree sits within a few
        # percent of the destination MST (and often below it).
        rng = np.random.default_rng(11)
        ratios = []
        for _ in range(40):
            s = Point(*rng.uniform(0, 1000, 2))
            dests = [(i, Point(*rng.uniform(0, 1000, 2))) for i in range(12)]
            tree = rrstr(s, dests, 150.0)
            mst = euclidean_mst(s, dests)
            ratios.append(tree.total_length() / mst.total_length())
        assert sum(ratios) / len(ratios) < 1.08

    def test_refinement_fixes_orphan_attachment(self):
        # A far destination whose natural partners were consumed early must
        # be re-attached near them by the refinement pass.
        s = Point(97, 1000)
        dests = [
            (0, Point(957, 114)),
            (1, Point(357, 580)),
            (2, Point(229, 840)),
            (3, Point(368, 359)),
        ]
        raw = rrstr(s, dests, 150.0, RAW_AWARE)
        refined = refine_tree(
            rrstr(s, dests, 150.0, RAW_AWARE), max_stretch=1.25, radio_range=150.0
        )
        assert refined.total_length() < raw.total_length() - 100.0
