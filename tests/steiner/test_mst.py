"""Tests for the Euclidean MST used by LGS."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Point, distance
from repro.steiner import euclidean_mst

coords = st.floats(min_value=0, max_value=1000, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)
dest_lists = st.lists(points, min_size=1, max_size=10).map(
    lambda locs: [(i, loc) for i, loc in enumerate(locs)]
)


class TestStructure:
    def test_empty(self):
        tree = euclidean_mst(Point(0, 0), [])
        assert len(tree) == 1

    def test_single_destination(self):
        tree = euclidean_mst(Point(0, 0), [(5, Point(3, 4))])
        assert tree.total_length() == pytest.approx(5.0)
        assert tree.pivots() == (1,)

    def test_chain_topology(self):
        # Collinear points: the MST is the path through them.
        dests = [(i, Point(100.0 * (i + 1), 0)) for i in range(4)]
        tree = euclidean_mst(Point(0, 0), dests)
        assert tree.total_length() == pytest.approx(400.0)
        assert len(tree.pivots()) == 1

    def test_figure13_sequential_chain(self):
        # The paper's Figure 13: from c, the MST of {c, u, v, d} is the
        # chain c-u-v-d, so LGS will not split.
        c = Point(0, 0)
        u = Point(120, 40)
        v = Point(240, 30)
        d = Point(380, 60)
        tree = euclidean_mst(c, [(1, u), (2, v), (3, d)])
        assert len(tree.pivots()) == 1
        # Path structure: each vertex has at most one child.
        for vertex in tree.vertices():
            assert len(tree.children_of(vertex.vid)) <= 1

    @given(dest_lists)
    @settings(max_examples=100, deadline=None)
    def test_spans_everything(self, dests):
        tree = euclidean_mst(Point(500, 500), dests)
        assert tree.is_spanning()
        assert sorted(v.ref for v in tree.vertices() if v.is_terminal) == sorted(
            r for r, _ in dests
        )

    @given(dest_lists)
    @settings(max_examples=100, deadline=None)
    def test_no_virtual_vertices(self, dests):
        tree = euclidean_mst(Point(500, 500), dests)
        assert not any(v.is_virtual for v in tree.vertices())


class TestOptimality:
    @given(dest_lists)
    @settings(max_examples=60, deadline=None)
    def test_matches_networkx_mst_weight(self, dests):
        source = Point(500, 500)
        tree = euclidean_mst(source, dests)
        graph = nx.Graph()
        locations = {0: source}
        for i, (_, loc) in enumerate(dests, start=1):
            locations[i] = loc
        for a in locations:
            for b in locations:
                if a < b:
                    graph.add_edge(a, b, weight=distance(locations[a], locations[b]))
        expected = sum(
            d["weight"] for _, _, d in nx.minimum_spanning_edges(graph, data=True)
        )
        assert tree.total_length() == pytest.approx(expected, rel=1e-9)

    def test_deterministic(self):
        rng = np.random.default_rng(5)
        dests = [(i, Point(*rng.uniform(0, 1000, 2))) for i in range(8)]
        assert euclidean_mst(Point(0, 0), dests).edges() == euclidean_mst(
            Point(0, 0), dests
        ).edges()
