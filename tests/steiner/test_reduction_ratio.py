"""Tests for the reduction-ratio measure (paper Section 3.1).

The paper states three properties (proofs omitted there); we verify all
three, by construction and property-based.
"""

import math

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.geometry import Point, distance
from repro.steiner import reduction_ratio, reduction_ratio_point

coords = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestBasics:
    def test_steiner_point_returned(self):
        rr, t = reduction_ratio_point(Point(0, 0), Point(100, 10), Point(100, -10))
        assert rr > 0
        # The Steiner point lies between the source and the pair.
        assert 0 < t.x < 100

    def test_zero_when_collinear_opposite(self):
        # Destinations on opposite sides of the source share nothing.
        ratio = reduction_ratio(Point(0, 0), Point(100, 0), Point(-100, 0))
        assert ratio == pytest.approx(0.0, abs=1e-9)

    def test_degenerate_all_at_source(self):
        p = Point(5, 5)
        assert reduction_ratio(p, p, p) == 0.0


class TestPaperProperties:
    @given(points, points, points)
    @settings(max_examples=300)
    def test_always_at_most_half(self, s, u, v):
        # Strict < 1/2 for distinct destinations (the paper's property 1);
        # the supremum 1/2 is attained exactly when u and v coincide.
        rr = reduction_ratio(s, u, v)
        assert rr <= 0.5
        if u != v and distance(u, v) > 1e-9:
            assert rr < 0.5

    @given(points, points, points)
    @settings(max_examples=300)
    def test_never_negative(self, s, u, v):
        # The 3-point Steiner tree is never longer than the two spokes.
        assert reduction_ratio(s, u, v) >= -1e-9

    def test_half_approached_by_far_collocated_pair(self):
        # Two destinations at the same far point: RR -> 1/2 from below.
        s = Point(0, 0)
        rr = reduction_ratio(s, Point(1000, 0), Point(1000, 1e-6))
        assert 0.49 < rr < 0.5

    @given(
        st.floats(min_value=50, max_value=400),
        st.floats(min_value=0.05, max_value=0.8),
    )
    @settings(max_examples=100)
    def test_monotone_in_distance(self, base_distance, half_angle):
        # Equidistant pairs under the same angle: the farther pair has the
        # larger reduction ratio (paper property 2, Figure 2a).
        s = Point(0, 0)

        def pair_at(dist):
            return (
                Point(dist * math.cos(half_angle), dist * math.sin(half_angle)),
                Point(dist * math.cos(-half_angle), dist * math.sin(-half_angle)),
            )

        near_u, near_v = pair_at(base_distance)
        far_u, far_v = pair_at(base_distance * 2.0)
        assert reduction_ratio(s, far_u, far_v) >= reduction_ratio(s, near_u, near_v) - 1e-9

    @given(
        st.floats(min_value=50, max_value=400),
        st.floats(min_value=0.05, max_value=0.7),
        st.floats(min_value=1.1, max_value=2.5),
    )
    @settings(max_examples=100)
    def test_monotone_in_angle(self, dist, angle, widening):
        # Same distances, smaller subtended angle => larger reduction ratio
        # (paper property 3, Figure 2b).
        assume(angle * widening < math.pi * 0.9)
        s = Point(0, 0)

        def pair_at(theta):
            return (
                Point(dist, 0.0),
                Point(dist * math.cos(theta), dist * math.sin(theta)),
            )

        narrow_u, narrow_v = pair_at(angle)
        wide_u, wide_v = pair_at(angle * widening)
        assert reduction_ratio(s, narrow_u, narrow_v) >= reduction_ratio(s, wide_u, wide_v) - 1e-9

    @given(points, points, points)
    @settings(max_examples=200)
    def test_consistent_with_steiner_length(self, s, u, v):
        rr, t = reduction_ratio_point(s, u, v)
        direct = distance(s, u) + distance(s, v)
        assume(direct > 1e-6)
        steiner_len = distance(s, t) + distance(t, u) + distance(t, v)
        assert rr == pytest.approx(1.0 - steiner_len / direct, abs=1e-9)
