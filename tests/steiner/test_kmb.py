"""Tests for the Kou-Markowsky-Berman graph Steiner heuristic (SMT)."""

import networkx as nx
import pytest

from repro.steiner import kmb_steiner_tree
from repro.steiner.kmb import tree_as_routing_schedule, tree_depths


def weighted_path_graph(n, weight=1.0):
    graph = nx.Graph()
    for i in range(n - 1):
        graph.add_edge(i, i + 1, weight=weight)
    return graph


class TestKMB:
    def test_path_graph(self):
        graph = weighted_path_graph(6)
        tree = kmb_steiner_tree(graph, [0, 5])
        assert tree.number_of_edges() == 5

    def test_prunes_useless_branches(self):
        # A star with extra arms: only the terminal arms survive.
        graph = nx.Graph()
        for leaf in (1, 2, 3, 4):
            graph.add_edge(0, leaf, weight=1.0)
        tree = kmb_steiner_tree(graph, [1, 2])
        assert set(tree.nodes()) == {0, 1, 2}

    def test_single_terminal(self):
        graph = weighted_path_graph(3)
        tree = kmb_steiner_tree(graph, [1])
        assert set(tree.nodes()) == {1}
        assert tree.number_of_edges() == 0

    def test_is_tree_and_spans_terminals(self):
        graph = nx.grid_2d_graph(5, 5)
        graph = nx.convert_node_labels_to_integers(graph)
        for u, v in graph.edges():
            graph[u][v]["weight"] = 1.0
        terminals = [0, 12, 24, 4]
        tree = kmb_steiner_tree(graph, terminals)
        assert nx.is_tree(tree)
        assert all(t in tree for t in terminals)

    def test_approximation_bound(self):
        # KMB is a 2(1 - 1/L) approximation; check against brute force on a
        # small instance.
        graph = nx.Graph()
        edges = [
            (0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 4, 2.5),
            (4, 3, 2.5), (1, 4, 1.2), (2, 4, 1.2),
        ]
        for u, v, w in edges:
            graph.add_edge(u, v, weight=w)
        terminals = [0, 3, 4]
        tree = kmb_steiner_tree(graph, terminals)
        kmb_weight = sum(d["weight"] for _, _, d in tree.edges(data=True))

        best = float("inf")
        import itertools

        nodes = list(graph.nodes())
        for r in range(len(terminals), len(nodes) + 1):
            for subset in itertools.combinations(nodes, r):
                if not set(terminals) <= set(subset):
                    continue
                sub = graph.subgraph(subset)
                if not nx.is_connected(sub):
                    continue
                mst_w = sum(
                    d["weight"]
                    for _, _, d in nx.minimum_spanning_edges(sub, data=True)
                )
                best = min(best, mst_w)
        assert kmb_weight <= 2.0 * best + 1e-9

    def test_missing_terminal_rejected(self):
        with pytest.raises(ValueError):
            kmb_steiner_tree(weighted_path_graph(3), [0, 99])

    def test_disconnected_terminals_rejected(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=1.0)
        graph.add_edge(2, 3, weight=1.0)
        with pytest.raises(ValueError):
            kmb_steiner_tree(graph, [0, 3])

    def test_no_terminals_rejected(self):
        with pytest.raises(ValueError):
            kmb_steiner_tree(weighted_path_graph(3), [])

    def test_hop_metric_changes_tree(self):
        # Two routes between terminals: one with 2 long edges, one with 3
        # short edges.  Distance metric picks the short edges; hop metric
        # picks the 2-edge route.
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=10.0)
        graph.add_edge(1, 5, weight=10.0)
        graph.add_edge(0, 2, weight=4.0)
        graph.add_edge(2, 3, weight=4.0)
        graph.add_edge(3, 5, weight=4.0)
        by_distance = kmb_steiner_tree(graph, [0, 5])
        by_hops = kmb_steiner_tree(graph, [0, 5], weight=lambda u, v, d: 1.0)
        assert by_distance.number_of_edges() == 3
        assert by_hops.number_of_edges() == 2


class TestRoutingSchedule:
    def test_orients_away_from_root(self):
        graph = weighted_path_graph(4)
        tree = kmb_steiner_tree(graph, [0, 3])
        schedule = tree_as_routing_schedule(tree, 0)
        assert schedule[0] == (1,)
        assert schedule[1] == (2,)
        assert schedule[3] == ()

    def test_depths(self):
        graph = weighted_path_graph(5)
        tree = kmb_steiner_tree(graph, [0, 4])
        assert tree_depths(tree, 0, [4]) == {4: 4}

    def test_root_not_in_tree_rejected(self):
        graph = weighted_path_graph(3)
        tree = kmb_steiner_tree(graph, [0, 2])
        with pytest.raises(ValueError):
            tree_as_routing_schedule(tree, 99)
