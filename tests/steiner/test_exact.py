"""Tests for the exact small-instance Steiner oracle."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Point, distance
from repro.steiner import rrstr
from repro.steiner.exact import optimal_steiner_length
from repro.steiner.mst import euclidean_mst

coords = st.floats(min_value=0, max_value=1000, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestKnownOptima:
    def test_two_points(self):
        assert optimal_steiner_length([Point(0, 0), Point(3, 4)]) == pytest.approx(5.0)

    def test_three_points_equilateral(self):
        # Unit equilateral triangle: SMT length is sqrt(3).
        pts = [Point(0, 0), Point(1, 0), Point(0.5, math.sqrt(3) / 2)]
        assert optimal_steiner_length(pts) == pytest.approx(math.sqrt(3), abs=1e-9)

    def test_unit_square(self):
        # Classic: the SMT of a unit square has length 1 + sqrt(3).
        pts = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
        assert optimal_steiner_length(pts) == pytest.approx(1 + math.sqrt(3), abs=1e-6)

    def test_collinear_four(self):
        pts = [Point(0, 0), Point(1, 0), Point(2, 0), Point(3, 0)]
        assert optimal_steiner_length(pts) == pytest.approx(3.0, abs=1e-9)

    def test_degenerate_duplicates(self):
        pts = [Point(0, 0), Point(0, 0), Point(1, 0)]
        assert optimal_steiner_length(pts) == pytest.approx(1.0)

    def test_single_point(self):
        assert optimal_steiner_length([Point(5, 5)]) == 0.0

    def test_too_many_points_rejected(self):
        pts = [Point(i, 0) for i in range(5)]
        with pytest.raises(ValueError):
            optimal_steiner_length(pts)


class TestBounds:
    @given(points, points, points, points)
    @settings(max_examples=100, deadline=None)
    def test_never_longer_than_mst(self, a, b, c, d):
        pts = [a, b, c, d]
        opt = optimal_steiner_length(pts)
        mst = euclidean_mst(a, [(1, b), (2, c), (3, d)]).total_length()
        assert opt <= mst + 1e-6 * max(1.0, mst)

    @given(points, points, points, points)
    @settings(max_examples=100, deadline=None)
    def test_steiner_ratio(self, a, b, c, d):
        # The Gilbert–Pollak bound: MST <= (2/sqrt(3)) * SMT.
        pts = [a, b, c, d]
        opt = optimal_steiner_length(pts)
        mst = euclidean_mst(a, [(1, b), (2, c), (3, d)]).total_length()
        assert mst <= opt * (2 / math.sqrt(3)) + 1e-6 * max(1.0, opt)


class TestRRStrOptimalityGap:
    def test_rrstr_within_ten_percent_on_small_instances(self):
        rng = np.random.default_rng(20)
        gaps = []
        for _ in range(60):
            source = Point(*rng.uniform(0, 1000, 2))
            dests = [(i, Point(*rng.uniform(0, 1000, 2))) for i in range(3)]
            opt = optimal_steiner_length([source] + [loc for _, loc in dests])
            if opt < 1e-9:
                continue
            tree = rrstr(source, dests, 150.0)
            gaps.append(tree.total_length() / opt)
        assert max(gaps) < 1.25
        assert sum(gaps) / len(gaps) < 1.08

    def test_rrstr_never_beats_optimal(self):
        rng = np.random.default_rng(21)
        for _ in range(40):
            source = Point(*rng.uniform(0, 1000, 2))
            dests = [(i, Point(*rng.uniform(0, 1000, 2))) for i in range(3)]
            opt = optimal_steiner_length([source] + [loc for _, loc in dests])
            tree = rrstr(source, dests, 150.0)
            assert tree.total_length() >= opt - 1e-6
