"""Tests for the rooted, ordered Steiner tree structure."""

import pytest

from repro.geometry import Point
from repro.steiner import SteinerTree, VertexKind


def small_tree():
    """root -> virtual w -> terminals a, b; root -> terminal c."""
    tree = SteinerTree(Point(0, 0))
    w = tree.add_virtual(Point(10, 0))
    a = tree.add_terminal(Point(20, 5), ref=101)
    b = tree.add_terminal(Point(20, -5), ref=102)
    c = tree.add_terminal(Point(0, 10), ref=103)
    tree.attach(0, w)
    tree.attach(w, a)
    tree.attach(w, b)
    tree.attach(0, c)
    return tree, w, a, b, c


class TestConstruction:
    def test_root_properties(self):
        tree = SteinerTree(Point(1, 2))
        assert tree.root.kind is VertexKind.SOURCE
        assert tree.root.location == Point(1, 2)
        assert len(tree) == 1

    def test_attach_detach_roundtrip(self):
        tree, w, a, b, c = small_tree()
        assert tree.parent_of(a) == w
        old_parent = tree.detach(a)
        assert old_parent == w
        assert tree.parent_of(a) is None
        tree.attach(0, a)
        assert tree.parent_of(a) == 0

    def test_double_attach_rejected(self):
        tree, w, a, b, c = small_tree()
        with pytest.raises(ValueError):
            tree.attach(0, a)

    def test_attach_root_rejected(self):
        tree = SteinerTree(Point(0, 0))
        v = tree.add_virtual(Point(1, 1))
        tree.attach(0, v)
        with pytest.raises(ValueError):
            tree.attach(v, 0)

    def test_self_attach_rejected(self):
        tree = SteinerTree(Point(0, 0))
        v = tree.add_virtual(Point(1, 1))
        with pytest.raises(ValueError):
            tree.attach(v, v)

    def test_detach_unattached_rejected(self):
        tree = SteinerTree(Point(0, 0))
        v = tree.add_virtual(Point(1, 1))
        with pytest.raises(ValueError):
            tree.detach(v)

    def test_bad_vid_rejected(self):
        tree = SteinerTree(Point(0, 0))
        with pytest.raises(IndexError):
            tree.vertex(5)


class TestQueries:
    def test_children_preserve_insertion_order(self):
        tree, w, a, b, c = small_tree()
        assert tree.children_of(w) == (a, b)
        assert tree.pivots() == (w, c)

    def test_terminals_under(self):
        tree, w, a, b, c = small_tree()
        under_w = {v.ref for v in tree.terminals_under(w)}
        assert under_w == {101, 102}
        under_root = {v.ref for v in tree.terminals_under(0)}
        assert under_root == {101, 102, 103}

    def test_terminal_pivot_is_in_own_group(self):
        tree, w, a, b, c = small_tree()
        assert [v.ref for v in tree.terminals_under(c)] == [103]

    def test_total_length(self):
        tree = SteinerTree(Point(0, 0))
        a = tree.add_terminal(Point(3, 4), ref=1)
        tree.attach(0, a)
        assert tree.total_length() == pytest.approx(5.0)

    def test_depth(self):
        tree, w, a, b, c = small_tree()
        assert tree.depth_of(0) == 0
        assert tree.depth_of(w) == 1
        assert tree.depth_of(a) == 2

    def test_depth_of_detached_raises(self):
        tree = SteinerTree(Point(0, 0))
        v = tree.add_virtual(Point(1, 1))
        with pytest.raises(ValueError):
            tree.depth_of(v)

    def test_is_spanning(self):
        tree, *_ = small_tree()
        assert tree.is_spanning()
        dangling = SteinerTree(Point(0, 0))
        dangling.add_terminal(Point(1, 1), ref=1)
        assert not dangling.is_spanning()

    def test_edges_and_subtree(self):
        tree, w, a, b, c = small_tree()
        assert set(tree.edges()) == {(0, w), (w, a), (w, b), (0, c)}
        assert set(tree.subtree_vids(w)) == {w, a, b}
