"""Tests for unit-disk connectivity and spatial queries."""

import numpy as np
import pytest

from repro.geometry import Point, distance
from repro.network import RadioConfig, SpatialGrid, build_network
from repro.network.topology import uniform_random_topology
from tests.conftest import make_grid_network, make_line_network


class TestSpatialGrid:
    def test_finds_points_in_radius(self):
        pts = [Point(0, 0), Point(10, 0), Point(100, 100)]
        grid = SpatialGrid(pts, cell_size=50.0)
        hits = grid.indices_within(Point(0, 0), 20.0)
        assert sorted(hits) == [0, 1]

    def test_radius_is_inclusive(self):
        grid = SpatialGrid([Point(0, 0), Point(10, 0)], cell_size=5.0)
        assert sorted(grid.indices_within(Point(0, 0), 10.0)) == [0, 1]

    def test_matches_brute_force(self, rng):
        pts = [Point(*rng.uniform(0, 1000, 2)) for _ in range(300)]
        grid = SpatialGrid(pts, cell_size=150.0)
        center = Point(500, 500)
        expected = sorted(
            i for i, p in enumerate(pts) if distance(p, center) <= 180.0
        )
        assert sorted(grid.indices_within(center, 180.0)) == expected

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            SpatialGrid([Point(0, 0)], cell_size=0)
        grid = SpatialGrid([Point(0, 0)], cell_size=10)
        with pytest.raises(ValueError):
            grid.indices_within(Point(0, 0), -1)

    @staticmethod
    def _reference_scan(pts, cell_size, center, radius):
        """The unpruned cell scan the optimized query must match exactly."""
        import math

        cells = {}
        for idx, p in enumerate(pts):
            key = (
                int(math.floor(p[0] / cell_size)),
                int(math.floor(p[1] / cell_size)),
            )
            cells.setdefault(key, []).append(idx)
        reach = int(math.ceil(radius / cell_size))
        cx = int(math.floor(center[0] / cell_size))
        cy = int(math.floor(center[1] / cell_size))
        hits = []
        for gx in range(cx - reach, cx + reach + 1):
            for gy in range(cy - reach, cy + reach + 1):
                for idx in cells.get((gx, gy), []):
                    p = pts[idx]
                    if (p[0] - center[0]) ** 2 + (p[1] - center[1]) ** 2 <= radius**2:
                        hits.append(idx)
        return hits

    def test_pruned_query_matches_reference_order_exactly(self, rng):
        """Cell-bounds pruning (reject and bulk-accept) must not change the
        returned indices *or their order* relative to the plain scan."""
        pts = [Point(*rng.uniform(0, 1000, 2)) for _ in range(500)]
        for cell_size in (40.0, 150.0):
            grid = SpatialGrid(pts, cell_size=cell_size)
            for center in (Point(500, 500), Point(10, 990), Point(-50, 420)):
                # Small radii exercise the reject prune, large ones the
                # bulk-accept (cell entirely inside the disk) path.
                for radius in (0.0, 30.0, 160.0, 700.0):
                    assert grid.indices_within(center, radius) == (
                        self._reference_scan(pts, cell_size, center, radius)
                    )


class TestWirelessNetwork:
    def test_line_neighbors(self):
        net = make_line_network(5, spacing=100.0, radio_range=150.0)
        assert net.neighbors_of(0) == (1,)
        assert net.neighbors_of(2) == (1, 3)

    def test_symmetry(self, dense_network):
        for node in range(0, dense_network.node_count, 17):
            for other in dense_network.neighbors_of(node):
                assert node in dense_network.neighbors_of(other)

    def test_neighbor_distances_within_range(self, dense_network):
        rr = dense_network.radio.radio_range_m
        for node in range(0, dense_network.node_count, 23):
            loc = dense_network.location_of(node)
            for other in dense_network.neighbors_of(node):
                assert distance(loc, dense_network.location_of(other)) <= rr

    def test_listeners_equal_neighbors(self, grid_network):
        assert grid_network.listeners_of(5) == grid_network.neighbors_of(5)

    def test_nodes_within_arbitrary_point(self, grid_network):
        hits = grid_network.nodes_within(Point(50, 50), 100.0)
        assert 0 in hits and 11 in hits

    def test_closest_node_to(self, grid_network):
        # Grid spacing is 100; node 0 is at (0, 0).
        assert grid_network.closest_node_to(Point(10, -5)) == 0

    def test_average_degree_line(self):
        net = make_line_network(4, spacing=100.0, radio_range=150.0)
        # Degrees: 1, 2, 2, 1.
        assert net.average_degree() == pytest.approx(1.5)

    def test_connectivity(self):
        connected = make_line_network(5, spacing=100.0)
        assert connected.is_connected()
        split = make_line_network(5, spacing=200.0, radio_range=150.0)
        assert not split.is_connected()

    def test_networkx_weights_are_distances(self, grid_network):
        graph = grid_network.to_networkx()
        for u, v, data in list(graph.edges(data=True))[:20]:
            assert data["weight"] == pytest.approx(
                distance(grid_network.location_of(u), grid_network.location_of(v))
            )

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            build_network([], RadioConfig())

    def test_locations_array_matches_nodes(self, dense_network):
        arr = dense_network.locations
        assert arr.shape == (dense_network.node_count, 2)
        loc = dense_network.location_of(42)
        assert arr[42, 0] == loc.x and arr[42, 1] == loc.y

    def test_density_scaling(self, rng):
        sparse_pts = uniform_random_topology(200, 1000, 1000, rng)
        dense_pts = uniform_random_topology(800, 1000, 1000, rng)
        sparse = build_network(sparse_pts)
        dense = build_network(dense_pts)
        assert dense.average_degree() > sparse.average_degree() * 2
