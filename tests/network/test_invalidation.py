"""Cache-invalidation regression tests for in-place network mutation.

The array-backed hot paths (per-cell SpatialGrid member arrays,
``neighbor_location_array``, planarization caches) are all derived state;
``fail_node`` and ``move_node`` must invalidate exactly enough of it that
every subsequent query answers as if the network had been rebuilt from
scratch.  These tests warm every cache with a real multicast task first,
mutate mid-run, and then diff the mutated network against a fresh build.
"""

import numpy as np
import pytest

from repro.engine import run_task
from repro.engine.digest import task_digest
from repro.geometry import Point
from repro.network import RadioConfig, build_network
from repro.network.graph import SpatialGrid
from repro.network.topology import uniform_random_topology
from repro.routing.gmp import GMPProtocol


def _make_points(n=300, seed=23, side=1000.0):
    rng = np.random.default_rng(seed)
    return uniform_random_topology(n, side, side, rng)


def _warm_all_caches(network):
    """Touch every derived structure so stale state cannot hide."""
    for node in range(network.node_count):
        network.neighbors_of(node)
        network.neighbor_location_array(node)
        network.gabriel_neighbors_of(node)
        network.rng_neighbors_of(node)
    network.to_networkx()


def _assert_matches_fresh_build(mutated, fresh, id_map):
    """Every query on the mutated network == the fresh build, remapped.

    ``id_map`` maps surviving original ids to the fresh network's ids.
    """
    reverse = {new: old for old, new in id_map.items()}
    for old_id, new_id in id_map.items():
        assert mutated.location_of(old_id) == fresh.location_of(new_id)
        expected_neighbors = tuple(
            sorted(reverse[v] for v in fresh.neighbors_of(new_id))
        )
        assert mutated.neighbors_of(old_id) == expected_neighbors, old_id
        expected_gabriel = tuple(
            sorted(reverse[v] for v in fresh.gabriel_neighbors_of(new_id))
        )
        assert tuple(sorted(mutated.gabriel_neighbors_of(old_id))) == expected_gabriel
        expected_rng = tuple(
            sorted(reverse[v] for v in fresh.rng_neighbors_of(new_id))
        )
        assert tuple(sorted(mutated.rng_neighbors_of(old_id))) == expected_rng
        # The cached location array must be aligned with the neighbor list.
        arr = mutated.neighbor_location_array(old_id)
        assert arr.shape == (len(mutated.neighbors_of(old_id)), 2)
        for row, neighbor in zip(arr, mutated.neighbors_of(old_id)):
            assert tuple(row) == tuple(mutated.location_of(neighbor))


def _grid_queries_match(mutated, fresh, id_map, side=1000.0, seed=91):
    """Range queries return the same ids in the same (rebuilt-grid) order."""
    rng = np.random.default_rng(seed)
    for _ in range(60):
        center = Point(float(rng.uniform(0, side)), float(rng.uniform(0, side)))
        radius = float(rng.uniform(20.0, 350.0))
        got = mutated.nodes_within(center, radius)
        expected = [
            old
            for old, new in sorted(id_map.items(), key=lambda kv: kv[1])
            if new in set(fresh.nodes_within(center, radius))
        ]
        assert sorted(got) == sorted(expected), (center, radius)
        # Order contract: identical to a grid built fresh from the survivors.
        remapped = [id_map[i] for i in got]
        assert remapped == fresh.nodes_within(center, radius), (center, radius)


class TestNodeFailures:
    def test_failures_mid_run_match_rebuilt_network(self):
        points = _make_points()
        network = build_network(points, RadioConfig())
        # Warm every cache with a real task before any mutation.
        run_task(network, GMPProtocol(), 0, [40, 120, 200, 280])
        _warm_all_caches(network)

        doomed = [17, 64, 133, 208, 271]
        for node_id in doomed:
            network.fail_node(node_id)
        assert network.failed_nodes == frozenset(doomed)

        survivors = [i for i in range(len(points)) if i not in set(doomed)]
        fresh = build_network([points[i] for i in survivors], RadioConfig())
        id_map = {old: new for new, old in enumerate(survivors)}

        _assert_matches_fresh_build(network, fresh, id_map)
        _grid_queries_match(network, fresh, id_map)
        # Failed nodes are gone from every view.
        for node_id in doomed:
            assert network.neighbors_of(node_id) == ()
            assert node_id not in network.to_networkx()
            for survivor in survivors:
                assert node_id not in network.neighbors_of(survivor)
        assert network.to_networkx().number_of_nodes() == len(survivors)

    def test_closest_node_skips_failed(self):
        points = _make_points(n=100, seed=5)
        network = build_network(points, RadioConfig())
        target = network.location_of(42)
        assert network.closest_node_to(target) == 42
        network.fail_node(42)
        replacement = network.closest_node_to(target)
        assert replacement != 42
        survivors = [i for i in range(100) if i != 42]
        fresh = build_network([points[i] for i in survivors], RadioConfig())
        id_map = {old: new for new, old in enumerate(survivors)}
        assert id_map[replacement] == fresh.closest_node_to(target)

    def test_double_failure_rejected(self):
        network = build_network(_make_points(n=50, seed=7), RadioConfig())
        network.fail_node(10)
        with pytest.raises(ValueError):
            network.fail_node(10)


class TestMobility:
    def test_moves_mid_run_match_rebuilt_network(self):
        points = list(_make_points())
        network = build_network(points, RadioConfig())
        run_task(network, GMPProtocol(), 0, [40, 120, 200, 280])
        _warm_all_caches(network)

        rng = np.random.default_rng(77)
        moved = {}
        for node_id in (12, 89, 157, 230, 295):
            new_location = Point(float(rng.uniform(0, 1000)), float(rng.uniform(0, 1000)))
            network.move_node(node_id, new_location)
            moved[node_id] = new_location

        fresh_points = [moved.get(i, p) for i, p in enumerate(points)]
        fresh = build_network(fresh_points, RadioConfig())
        id_map = {i: i for i in range(len(points))}

        _assert_matches_fresh_build(network, fresh, id_map)
        _grid_queries_match(network, fresh, id_map)
        # Same ids, same topology: a task must produce a byte-identical result.
        mutated_result = run_task(network, GMPProtocol(), 0, [40, 120, 200, 280])
        fresh_result = run_task(fresh, GMPProtocol(), 0, [40, 120, 200, 280])
        assert task_digest(mutated_result) == task_digest(fresh_result)

    def test_move_cross_cell_and_back(self):
        """A node leaving its grid cell and returning restores exact state."""
        points = list(_make_points(n=120, seed=3))
        network = build_network(points, RadioConfig())
        _warm_all_caches(network)
        original = points[30]
        far = Point(original.x + 500.0 if original.x < 500.0 else original.x - 500.0,
                    original.y)
        network.move_node(30, far)
        network.move_node(30, original)
        fresh = build_network(points, RadioConfig())
        id_map = {i: i for i in range(len(points))}
        _assert_matches_fresh_build(network, fresh, id_map)
        _grid_queries_match(network, fresh, id_map)

    def test_move_failed_node_rejected(self):
        network = build_network(_make_points(n=50, seed=7), RadioConfig())
        network.fail_node(10)
        with pytest.raises(ValueError):
            network.move_node(10, Point(1.0, 1.0))


class TestSpatialGridMutation:
    def test_remove_point_queries(self):
        rng = np.random.default_rng(11)
        pts = [Point(float(x), float(y)) for x, y in rng.uniform(0, 500, size=(80, 2))]
        grid = SpatialGrid(pts, 75.0)
        grid.remove_point(13)
        grid.remove_point(55)
        for _ in range(40):
            center = Point(float(rng.uniform(0, 500)), float(rng.uniform(0, 500)))
            radius = float(rng.uniform(10.0, 200.0))
            got = grid.indices_within(center, radius)
            assert 13 not in got and 55 not in got
            expected = [
                i
                for i, p in enumerate(pts)
                if i not in (13, 55)
                and (p.x - center.x) ** 2 + (p.y - center.y) ** 2 <= radius * radius
            ]
            assert sorted(got) == sorted(expected)

    def test_remove_missing_point_raises(self):
        grid = SpatialGrid([Point(0.0, 0.0), Point(10.0, 10.0)], 5.0)
        grid.remove_point(0)
        with pytest.raises(KeyError):
            grid.remove_point(0)

    def test_move_point_order_matches_fresh_build(self):
        rng = np.random.default_rng(17)
        pts = [Point(float(x), float(y)) for x, y in rng.uniform(0, 500, size=(60, 2))]
        grid = SpatialGrid(pts, 60.0)
        moves = {7: Point(480.0, 20.0), 31: Point(15.0, 470.0), 48: Point(250.0, 250.0)}
        for idx, where in moves.items():
            grid.move_point(idx, where)
        fresh_pts = [moves.get(i, p) for i, p in enumerate(pts)]
        fresh = SpatialGrid(fresh_pts, 60.0)
        for _ in range(40):
            center = Point(float(rng.uniform(0, 500)), float(rng.uniform(0, 500)))
            radius = float(rng.uniform(10.0, 250.0))
            assert grid.indices_within(center, radius) == fresh.indices_within(
                center, radius
            )
