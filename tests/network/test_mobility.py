"""Tests for the random-waypoint mobility model."""

import numpy as np
import pytest

from repro.geometry import Point, distance
from repro.network.mobility import RandomWaypointMobility


def make_model(n=20, seed=1, **kwargs):
    rng = np.random.default_rng(seed)
    initial = [
        Point(float(x), float(y))
        for x, y in rng.uniform(0, 1000, size=(n, 2))
    ]
    return RandomWaypointMobility(
        initial, 1000.0, 1000.0, np.random.default_rng(seed + 1), **kwargs
    )


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RandomWaypointMobility([], 100, 100, np.random.default_rng(0))

    def test_bad_speed_range(self):
        with pytest.raises(ValueError):
            make_model(speed_range_mps=(0.0, 1.0))
        with pytest.raises(ValueError):
            make_model(speed_range_mps=(2.0, 1.0))

    def test_negative_pause(self):
        with pytest.raises(ValueError):
            make_model(pause_time_s=-1.0)

    def test_out_of_field_initial_position(self):
        with pytest.raises(ValueError):
            RandomWaypointMobility(
                [Point(5000, 0)], 100, 100, np.random.default_rng(0)
            )

    def test_negative_dt(self):
        model = make_model()
        with pytest.raises(ValueError):
            model.advance(-1.0)


class TestMovement:
    def test_positions_stay_in_field(self):
        model = make_model(speed_range_mps=(5.0, 20.0))
        for _ in range(50):
            for p in model.advance(10.0):
                assert 0 <= p.x <= 1000 and 0 <= p.y <= 1000

    def test_displacement_bounded_by_speed(self):
        model = make_model(speed_range_mps=(1.0, 3.0))
        before = model.positions
        after = model.advance(10.0)
        for a, b in zip(before, after):
            assert distance(a, b) <= 3.0 * 10.0 + 1e-9

    def test_nodes_actually_move(self):
        model = make_model(speed_range_mps=(5.0, 10.0))
        before = model.positions
        after = model.advance(30.0)
        moved = sum(1 for a, b in zip(before, after) if distance(a, b) > 1.0)
        assert moved == len(before)

    def test_zero_dt_is_identity(self):
        model = make_model()
        before = model.positions
        assert model.advance(0.0) == before

    def test_deterministic_for_seed(self):
        a = make_model(seed=9).advance(25.0)
        b = make_model(seed=9).advance(25.0)
        assert a == b

    def test_pause_slows_progress(self):
        fast = make_model(seed=3, speed_range_mps=(5.0, 5.01), pause_time_s=0.0)
        slow = make_model(seed=3, speed_range_mps=(5.0, 5.01), pause_time_s=50.0)
        start_fast = fast.positions
        start_slow = slow.positions
        # Long horizon: the pausing population covers less total ground.
        total_fast = total_slow = 0.0
        for _ in range(20):
            pf, ps = fast.positions, slow.positions
            nf, ns = fast.advance(20.0), slow.advance(20.0)
            total_fast += sum(distance(a, b) for a, b in zip(pf, nf))
            total_slow += sum(distance(a, b) for a, b in zip(ps, ns))
        assert total_slow < total_fast


class TestTrajectoryDeterminism:
    def test_multi_step_trajectory_identical_for_seed(self):
        # Same seed, same irregular dt sequence -> bit-identical trajectory,
        # including waypoint re-draws and pause bookkeeping along the way.
        kwargs = dict(speed_range_mps=(2.0, 8.0), pause_time_s=3.0)
        a = make_model(seed=11, **kwargs)
        b = make_model(seed=11, **kwargs)
        for dt in [5.0, 0.5, 12.0, 1.0] * 8:
            assert a.advance(dt) == b.advance(dt)

    def test_same_start_different_rng_diverges(self):
        initial = [Point(100.0 + 10.0 * i, 200.0) for i in range(10)]
        a = RandomWaypointMobility(
            initial, 1000.0, 1000.0, np.random.default_rng(1)
        )
        b = RandomWaypointMobility(
            initial, 1000.0, 1000.0, np.random.default_rng(2)
        )
        assert a.advance(60.0) != b.advance(60.0)

    def test_positions_property_returns_a_copy(self):
        model = make_model()
        snapshot = model.positions
        snapshot[0] = Point(-1.0, -1.0)
        assert model.positions[0] != Point(-1.0, -1.0)


class TestBoundsAndPause:
    def test_corner_starts_high_speed_stay_clamped(self):
        # Waypoints are drawn inside the field, so even fast nodes starting
        # on the boundary must never leave it, whatever the step size.
        initial = [Point(0.0, 0.0), Point(1000.0, 1000.0), Point(0.0, 1000.0)]
        model = RandomWaypointMobility(
            initial,
            1000.0,
            1000.0,
            np.random.default_rng(7),
            speed_range_mps=(50.0, 80.0),
            pause_time_s=1.0,
        )
        for _ in range(200):
            for p in model.advance(7.3):
                assert 0.0 <= p.x <= 1000.0
                assert 0.0 <= p.y <= 1000.0

    @staticmethod
    def _longest_idle_run(trajectory):
        longest = run = 0
        for before, after in zip(trajectory, trajectory[1:]):
            run = run + 1 if before == after else 0
            longest = max(longest, run)
        return longest

    def test_pause_holds_node_at_waypoint_then_releases(self):
        model = RandomWaypointMobility(
            [Point(50.0, 50.0)],
            100.0,
            100.0,
            np.random.default_rng(3),
            speed_range_mps=(2.0, 2.0000001),
            pause_time_s=5.0,
        )
        trajectory = [model.advance(1.0)[0] for _ in range(120)]
        # Arriving mid-step burns part of the pause; the node must then sit
        # exactly still for at least the four following whole steps...
        assert self._longest_idle_run(trajectory) >= 4
        # ...but never longer than the pause itself allows.
        assert self._longest_idle_run(trajectory) <= 5

    def test_zero_pause_never_idles(self):
        model = RandomWaypointMobility(
            [Point(50.0, 50.0)],
            100.0,
            100.0,
            np.random.default_rng(3),
            speed_range_mps=(2.0, 2.0000001),
            pause_time_s=0.0,
        )
        trajectory = [model.advance(1.0)[0] for _ in range(120)]
        assert self._longest_idle_run(trajectory) == 0


class TestRoutingAcrossEpochs:
    def test_stateless_protocol_survives_movement(self):
        from repro.network import RadioConfig, build_network
        from repro.engine import run_task
        from repro.routing.gmp import GMPProtocol

        model = make_model(n=250, seed=5, speed_range_mps=(2.0, 6.0))
        protocol = GMPProtocol()
        delivered_epochs = 0
        for epoch in range(4):
            network = build_network(model.positions, RadioConfig())
            result = run_task(network, protocol, 0, [50, 100, 150])
            if result.success:
                delivered_epochs += 1
            model.advance(60.0)
        # The topology changes every epoch; a stateless protocol needs no
        # repair and keeps delivering whenever the graph is connected.
        assert delivered_epochs >= 3
