"""Struct-of-arrays network core: CSR adjacency, liveness, residual energy.

The SoA layout is a pure representation change: a network built with
``soa_enabled()`` must answer every topology query identically to one built
through the per-node object-graph path (``soa_disabled()``), including after
mutations.  These tests pin that A/B contract plus the new flat-array state
(``alive``, ``residual_energy_j``) and the shared planar CSR overlays.
"""

import math
import random

import numpy as np
import pytest

from repro.geometry import Point
from repro.network import CSRAdjacency, RadioConfig, WirelessNetwork
from repro.network.topology import uniform_random_topology
from repro.perf.soa import set_soa_enabled, soa_disabled, soa_enabled


@pytest.fixture(autouse=True)
def _restore_soa():
    yield
    set_soa_enabled(True)


def _deployment(seed: int = 11, count: int = 300) -> list:
    rng = np.random.default_rng(seed)
    return uniform_random_topology(count, 1000.0, 1000.0, rng)


class TestCSRAdjacency:
    def test_from_rows_round_trips(self):
        rows = [(1, 2), (0,), (0, 3), (2,), ()]
        csr = CSRAdjacency.from_rows(rows)
        assert len(csr) == 5
        assert csr.indptr.tolist() == [0, 2, 3, 5, 6, 6]
        for i, row in enumerate(rows):
            assert csr.row_tuple(i) == row
            assert csr.row(i).tolist() == list(row)
            assert csr.degree(i) == len(row)

    def test_row_is_read_only_slice(self):
        csr = CSRAdjacency.from_rows([(1,), (0,)])
        with pytest.raises(ValueError):
            csr.row(0)[0] = 99

    def test_row_tuple_holds_plain_hashable_ints(self):
        csr = CSRAdjacency.from_rows([(1, 2), (0,), (0,)])
        row = csr.row_tuple(0)
        assert all(type(i) is int for i in row)
        assert hash(row) == hash((1, 2))  # memo-key compatible

    def test_contains_binary_search(self):
        csr = CSRAdjacency.from_rows([tuple(range(1, 100, 2)), ()])
        for j in range(100):
            assert csr.contains(0, j) == (j % 2 == 1 and j >= 1)
        assert not csr.contains(1, 0)

    def test_set_row_overrides_without_touching_base(self):
        csr = CSRAdjacency.from_rows([(1, 2), (0, 2), (0, 1)])
        csr.set_row(1, (2,))
        assert csr.row_tuple(1) == (2,)
        assert csr.degree(1) == 1
        assert csr.contains(1, 2) and not csr.contains(1, 0)
        # untouched rows still read from the packed base
        assert csr.row_tuple(0) == (1, 2) and csr.row_tuple(2) == (0, 1)
        csr.set_row(1, ())
        assert csr.row_tuple(1) == () and csr.degree(1) == 0


class TestSoAObjectGraphEquivalence:
    def test_construction_paths_identical(self):
        points = _deployment()
        assert soa_enabled()
        soa_net = WirelessNetwork(points, RadioConfig())
        with soa_disabled():
            legacy_net = WirelessNetwork(points, RadioConfig())
        assert soa_net.adjacency.indptr.tolist() == legacy_net.adjacency.indptr.tolist()
        assert np.array_equal(soa_net.adjacency.indices, legacy_net.adjacency.indices)
        for i in range(len(points)):
            assert soa_net.neighbors_of(i) == legacy_net.neighbors_of(i)
            assert soa_net.gabriel_neighbors_of(i) == legacy_net.gabriel_neighbors_of(i)
            assert soa_net.rng_neighbors_of(i) == legacy_net.rng_neighbors_of(i)
        assert soa_net.average_degree() == legacy_net.average_degree()

    def test_are_neighbors_both_paths_match_membership(self):
        points = _deployment(seed=5, count=200)
        soa_net = WirelessNetwork(points, RadioConfig())
        with soa_disabled():
            legacy_net = WirelessNetwork(points, RadioConfig())
        rng = random.Random(3)
        for _ in range(500):
            a = rng.randrange(len(points))
            b = rng.randrange(len(points))
            expected = b in soa_net.neighbors_of(a)
            assert soa_net.are_neighbors(a, b) == expected
            assert legacy_net.are_neighbors(a, b) == expected

    def test_mutations_identical_across_paths(self):
        points = _deployment(seed=8, count=150)
        soa_net = WirelessNetwork(points, RadioConfig())
        with soa_disabled():
            legacy_net = WirelessNetwork(points, RadioConfig())
        victim = soa_net.neighbors_of(0)[0]
        soa_net.fail_node(victim)
        legacy_net.fail_node(victim)
        soa_net.move_node(3, Point(500.0, 500.0))
        legacy_net.move_node(3, Point(500.0, 500.0))
        for i in range(len(points)):
            assert soa_net.neighbors_of(i) == legacy_net.neighbors_of(i), i
        assert not soa_net.are_neighbors(0, victim)
        assert not legacy_net.are_neighbors(0, victim)


class TestFlatNodeState:
    def test_alive_array_tracks_failures(self):
        net = WirelessNetwork(_deployment(count=50), RadioConfig())
        assert net.alive.all() and net.alive.dtype == np.bool_
        net.fail_node(7)
        assert not net.alive[7] and net.alive.sum() == 49
        assert net.failed_nodes == frozenset({7})

    def test_closest_node_skips_dead_nodes(self):
        points = [Point(0.0, 0.0), Point(10.0, 0.0), Point(100.0, 0.0)]
        net = WirelessNetwork(points, RadioConfig())
        assert net.closest_node_to(Point(1.0, 0.0)) == 0
        net.fail_node(0)
        assert net.closest_node_to(Point(1.0, 0.0)) == 1

    def test_residual_energy_defaults_unbounded(self):
        net = WirelessNetwork(_deployment(count=10), RadioConfig())
        assert math.isinf(net.residual_energy_of(0))
        assert math.isinf(net.drain_energy(0, 1e12))

    def test_residual_energy_drains_and_clamps(self):
        net = WirelessNetwork(
            _deployment(count=10), RadioConfig(), initial_energy_j=2.5
        )
        assert net.residual_energy_of(3) == 2.5
        assert net.drain_energy(3, 1.0) == 1.5
        assert net.drain_energy(3, 9.0) == 0.0  # clamped, node NOT auto-failed
        assert net.residual_energy_of(3) == 0.0
        assert net.alive[3]
        assert net.residual_energy_of(4) == 2.5  # others untouched
        with pytest.raises(ValueError):
            net.drain_energy(3, -0.1)

    def test_neighbor_ids_array_matches_tuple_api(self):
        net = WirelessNetwork(_deployment(count=120), RadioConfig())
        for i in range(120):
            ids = net.neighbor_ids_array(i)
            assert tuple(ids.tolist()) == net.neighbors_of(i)
        with pytest.raises(ValueError):
            net.neighbor_ids_array(0)[0] = 1


class TestPlanarCSROverlays:
    def test_overlay_rows_equal_per_node_queries(self):
        net = WirelessNetwork(_deployment(count=150), RadioConfig())
        gabriel = net.gabriel_adjacency()
        rng_csr = net.rng_adjacency()
        assert gabriel is net.gabriel_adjacency()  # cached
        for i in range(150):
            assert gabriel.row_tuple(i) == net.gabriel_neighbors_of(i)
            assert rng_csr.row_tuple(i) == net.rng_neighbors_of(i)
            # RNG ⊆ Gabriel ⊆ unit-disk, all in one representation
            assert set(rng_csr.row_tuple(i)) <= set(gabriel.row_tuple(i))
            assert set(gabriel.row_tuple(i)) <= set(net.neighbors_of(i))

    def test_overlays_invalidated_by_mutation(self):
        net = WirelessNetwork(_deployment(seed=2, count=100), RadioConfig())
        stale = net.gabriel_adjacency()
        victim = net.neighbors_of(0)[0]
        net.fail_node(victim)
        fresh = net.gabriel_adjacency()
        assert fresh is not stale
        with soa_disabled():
            rebuilt = WirelessNetwork(
                [net.location_of(i) for i in range(100)], RadioConfig()
            )
            rebuilt.fail_node(victim)
        for i in range(100):
            assert fresh.row_tuple(i) == rebuilt.gabriel_neighbors_of(i), i
