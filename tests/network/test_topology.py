"""Tests for node placement generators."""

import math

import numpy as np
import pytest

from repro.geometry import Point
from repro.network.topology import (
    clustered_topology,
    grid_topology,
    topology_with_voids,
    uniform_random_topology,
)


class TestUniform:
    def test_count_and_bounds(self, rng):
        pts = uniform_random_topology(200, 500.0, 300.0, rng)
        assert len(pts) == 200
        assert all(0 <= p.x <= 500 and 0 <= p.y <= 300 for p in pts)

    def test_deterministic_for_seed(self):
        a = uniform_random_topology(50, 100, 100, np.random.default_rng(3))
        b = uniform_random_topology(50, 100, 100, np.random.default_rng(3))
        assert a == b

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            uniform_random_topology(0, 100, 100, rng)
        with pytest.raises(ValueError):
            uniform_random_topology(10, -1, 100, rng)


class TestGrid:
    def test_exact_count(self):
        pts = grid_topology(37, 1000, 1000)
        assert len(pts) == 37

    def test_no_duplicates_without_jitter(self):
        pts = grid_topology(100, 1000, 1000)
        assert len(set(pts)) == 100

    def test_jitter_requires_rng(self):
        with pytest.raises(ValueError):
            grid_topology(10, 100, 100, jitter=5.0)

    def test_jitter_stays_in_field(self, rng):
        pts = grid_topology(100, 100, 100, jitter=50.0, rng=rng)
        assert all(0 <= p.x <= 100 and 0 <= p.y <= 100 for p in pts)


class TestClustered:
    def test_count_and_bounds(self, rng):
        pts = clustered_topology(150, 1000, 1000, cluster_count=4, cluster_spread=50, rng=rng)
        assert len(pts) == 150
        assert all(0 <= p.x <= 1000 and 0 <= p.y <= 1000 for p in pts)

    def test_clusters_are_tighter_than_uniform(self, rng):
        clustered = clustered_topology(
            300, 1000, 1000, cluster_count=3, cluster_spread=30, rng=rng
        )
        uniform = uniform_random_topology(300, 1000, 1000, rng)

        def mean_nn(pts):
            total = 0.0
            for p in pts[:50]:
                total += min(
                    math.hypot(p.x - q.x, p.y - q.y) for q in pts if q != p
                )
            return total / 50

        assert mean_nn(clustered) < mean_nn(uniform)

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            clustered_topology(10, 100, 100, cluster_count=0, cluster_spread=10, rng=rng)
        with pytest.raises(ValueError):
            clustered_topology(10, 100, 100, cluster_count=2, cluster_spread=0, rng=rng)


class TestVoids:
    def test_no_node_inside_void(self, rng):
        void = (Point(500, 500), 200.0)
        pts = topology_with_voids(300, 1000, 1000, [void], rng)
        assert len(pts) == 300
        assert all(math.hypot(p.x - 500, p.y - 500) >= 200 for p in pts)

    def test_multiple_voids(self, rng):
        voids = [(Point(250, 250), 100.0), (Point(750, 750), 150.0)]
        pts = topology_with_voids(200, 1000, 1000, voids, rng)
        for center, radius in voids:
            assert all(
                math.hypot(p.x - center.x, p.y - center.y) >= radius for p in pts
            )

    def test_impossible_void_raises(self, rng):
        with pytest.raises(RuntimeError):
            topology_with_voids(
                10, 100, 100, [(Point(50, 50), 1000.0)], rng, max_attempts_per_node=10
            )

    def test_invalid_void_spec(self, rng):
        with pytest.raises(ValueError):
            topology_with_voids(10, 100, 100, [(Point(50, 50), -5.0)], rng)
        with pytest.raises(ValueError):
            topology_with_voids(10, 100, 100, [(Point(500, 50), 5.0)], rng)
