"""Tests for the radio parameters and the Section-5.3 energy model."""

import pytest

from repro.network import EnergyMeter, EnergyModel, RadioConfig


class TestRadioConfig:
    def test_table1_defaults(self):
        radio = RadioConfig()
        assert radio.radio_range_m == 150.0
        assert radio.data_rate_bps == 1_000_000.0
        assert radio.tx_power_w == 1.3
        assert radio.rx_power_w == 0.9
        assert radio.message_size_bytes == 128

    def test_transmission_time_of_paper_message(self):
        # 128 bytes at 1 Mbps = 1.024 ms.
        assert RadioConfig().transmission_time() == pytest.approx(1.024e-3)

    def test_transmission_time_custom_size(self):
        assert RadioConfig().transmission_time(256) == pytest.approx(2.048e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            RadioConfig(radio_range_m=0)
        with pytest.raises(ValueError):
            RadioConfig(data_rate_bps=-1)
        with pytest.raises(ValueError):
            RadioConfig(tx_power_w=-0.1)
        with pytest.raises(ValueError):
            RadioConfig(message_size_bytes=0)
        with pytest.raises(ValueError):
            RadioConfig().transmission_time(0)


class TestEnergyModel:
    def test_sender_plus_listeners(self):
        model = EnergyModel(RadioConfig())
        t = 1.024e-3
        # One sender, three listeners: t * (1.3 + 3 * 0.9).
        assert model.transmission_energy(3) == pytest.approx(t * (1.3 + 2.7))

    def test_zero_listeners(self):
        model = EnergyModel(RadioConfig())
        assert model.transmission_energy(0) == pytest.approx(1.024e-3 * 1.3)

    def test_negative_listeners_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(RadioConfig()).transmission_energy(-1)

    def test_split_identity(self):
        model = EnergyModel(RadioConfig())
        assert model.transmission_energy(5) == pytest.approx(
            model.tx_energy() + 5 * model.rx_energy()
        )


class TestEnergyMeter:
    def test_accumulates_by_node_and_role(self):
        meter = EnergyMeter(EnergyModel(RadioConfig()))
        total = meter.record_transmission(0, [1, 2])
        assert meter.transmissions == 1
        assert meter.tx_joules_by_node[0] == pytest.approx(1.024e-3 * 1.3)
        assert meter.rx_joules_by_node[1] == pytest.approx(1.024e-3 * 0.9)
        assert total == pytest.approx(meter.total_joules)

    def test_accounting_identity(self):
        meter = EnergyMeter(EnergyModel(RadioConfig()))
        meter.record_transmission(0, [1, 2, 3])
        meter.record_transmission(1, [0])
        meter.record_transmission(2, [])
        assert meter.transmissions == 3
        assert meter.total_joules == pytest.approx(
            meter.total_tx_joules + meter.total_rx_joules
        )
        # 3 transmissions, 4 listener receptions in total.
        t = 1.024e-3
        assert meter.total_joules == pytest.approx(t * (3 * 1.3 + 4 * 0.9))
