"""Tests for Gabriel / RNG planarization.

Perimeter routing is only correct on a planar, connected overlay, so these
invariants matter: symmetry, RNG-subset-of-Gabriel, planarity (no two
overlay edges cross), and connectivity preservation.
"""

import networkx as nx
import pytest

from repro.geometry import Point, segments_cross
from repro.network.planar import gabriel_neighbors, rng_neighbors
from tests.conftest import make_grid_network


def overlay_graph(network, neighbor_fn):
    graph = nx.Graph()
    graph.add_nodes_from(range(network.node_count))
    for node in range(network.node_count):
        for other in neighbor_fn(node):
            graph.add_edge(node, other)
    return graph


class TestGabriel:
    def test_square_diagonals_removed(self):
        # Four corners of a square plus its center: the center witnesses
        # every diagonal, so only the sides survive.
        pts = [Point(0, 0), Point(100, 0), Point(100, 100), Point(0, 100), Point(50, 50)]
        from repro.network import RadioConfig, build_network

        net = build_network(pts, RadioConfig(radio_range_m=200.0))
        gabriel = net.gabriel_neighbors_of(0)
        assert 2 not in gabriel  # The diagonal (0,0)-(100,100) is witnessed.
        assert 4 in gabriel

    def test_symmetry(self, dense_network):
        for node in range(0, dense_network.node_count, 13):
            for other in dense_network.gabriel_neighbors_of(node):
                assert node in dense_network.gabriel_neighbors_of(other)

    def test_subset_of_neighbors(self, dense_network):
        for node in range(0, dense_network.node_count, 13):
            assert set(dense_network.gabriel_neighbors_of(node)) <= set(
                dense_network.neighbors_of(node)
            )

    def test_planarity_no_crossing_edges(self, dense_network):
        graph = overlay_graph(dense_network, dense_network.gabriel_neighbors_of)
        edges = list(graph.edges())[:400]
        loc = dense_network.location_of
        for i, (a, b) in enumerate(edges):
            for c, d in edges[i + 1 :]:
                if len({a, b, c, d}) < 4:
                    continue  # Shared endpoint is not a crossing.
                assert not segments_cross(loc(a), loc(b), loc(c), loc(d)), (
                    f"Gabriel edges ({a},{b}) and ({c},{d}) cross"
                )

    def test_preserves_connectivity(self, dense_network):
        gabriel = overlay_graph(dense_network, dense_network.gabriel_neighbors_of)
        assert nx.is_connected(gabriel)

    def test_grid_connectivity(self, grid_network):
        gabriel = overlay_graph(grid_network, grid_network.gabriel_neighbors_of)
        assert nx.is_connected(gabriel)


class TestRNG:
    def test_rng_subset_of_gabriel(self, dense_network):
        # The relative neighborhood graph is a subgraph of the Gabriel graph.
        for node in range(0, dense_network.node_count, 13):
            assert set(dense_network.rng_neighbors_of(node)) <= set(
                dense_network.gabriel_neighbors_of(node)
            )

    def test_symmetry(self, dense_network):
        for node in range(0, dense_network.node_count, 13):
            for other in dense_network.rng_neighbors_of(node):
                assert node in dense_network.rng_neighbors_of(other)

    def test_preserves_connectivity(self, dense_network):
        rng_overlay = overlay_graph(dense_network, dense_network.rng_neighbors_of)
        assert nx.is_connected(rng_overlay)

    def test_lune_witness_removes_edge(self):
        # w sits in the lune of (u, v): max(d(u,w), d(v,w)) < d(u,v).
        u, v, w = Point(0, 0), Point(100, 0), Point(50, 10)
        kept = rng_neighbors(0, (1, 2), lambda i: [u, v, w][i])
        assert 1 not in kept
        assert 2 in kept

    def test_gabriel_keeps_edge_rng_drops(self):
        # w outside the diameter circle of (u, v) but inside the lune.
        u, v, w = Point(0, 0), Point(100, 0), Point(50, 60)
        gabriel = gabriel_neighbors(0, (1, 2), lambda i: [u, v, w][i])
        rng_set = rng_neighbors(0, (1, 2), lambda i: [u, v, w][i])
        assert 1 in gabriel
        assert 1 not in rng_set
