"""Tests for the exact 3-point Steiner (Fermat/Torricelli) point.

The Fermat point is the backbone of the paper's rrSTR heuristic, so this is
tested hard: closed-form cases, the 120-degree degeneracies, and a
property-based cross-check against the independent Weiszfeld solver.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Point, distance
from repro.geometry.fermat import fermat_point, fermat_total_length, weiszfeld_point

coords = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


def star_length(t, pts):
    return sum(distance(t, p) for p in pts)


class TestClosedFormCases:
    def test_equilateral_triangle_center(self):
        a, b, c = Point(0, 0), Point(2, 0), Point(1, math.sqrt(3))
        t = fermat_point(a, b, c)
        # Fermat point of an equilateral triangle is its centroid.
        assert t.x == pytest.approx(1.0, abs=1e-9)
        assert t.y == pytest.approx(math.sqrt(3) / 3, abs=1e-9)

    def test_sees_every_side_at_120_degrees(self):
        a, b, c = Point(0, 0), Point(10, 0), Point(3, 8)
        t = fermat_point(a, b, c)

        def angle(u, v):
            du = (u.x - t.x, u.y - t.y)
            dv = (v.x - t.x, v.y - t.y)
            dot = du[0] * dv[0] + du[1] * dv[1]
            return math.acos(dot / (math.hypot(*du) * math.hypot(*dv)))

        for u, v in ((a, b), (b, c), (a, c)):
            assert angle(u, v) == pytest.approx(2 * math.pi / 3, abs=1e-6)


class TestDegenerateCases:
    def test_wide_angle_vertex_is_fermat_point(self):
        # Angle at b is ~170 degrees: b itself is the minimizer.
        a, b, c = Point(0, 0), Point(5, 0.2), Point(10, 0)
        assert fermat_point(a, b, c) == b

    def test_collinear_middle_point(self):
        a, b, c = Point(0, 0), Point(5, 0), Point(10, 0)
        assert fermat_point(a, b, c) == b

    def test_coincident_pair(self):
        a = Point(1, 1)
        c = Point(5, 5)
        assert fermat_point(a, a, c) == a

    def test_all_coincident(self):
        a = Point(2, 3)
        assert fermat_point(a, a, a) == a

    def test_exactly_120_degrees(self):
        # Construct an angle of exactly 120 degrees at the origin.
        a = Point(0, 0)
        b = Point(10, 0)
        c = Point(10 * math.cos(2 * math.pi / 3), 10 * math.sin(2 * math.pi / 3))
        t = fermat_point(a, b, c)
        assert distance(t, a) < 1e-6


class TestOptimality:
    @given(points, points, points)
    @settings(max_examples=200)
    def test_beats_every_vertex(self, a, b, c):
        t = fermat_point(a, b, c)
        best_vertex = min(star_length(v, (a, b, c)) for v in (a, b, c))
        assert star_length(t, (a, b, c)) <= best_vertex + 1e-6

    @given(points, points, points)
    @settings(max_examples=200)
    def test_matches_weiszfeld(self, a, b, c):
        exact = fermat_total_length(a, b, c)
        iterate = star_length(weiszfeld_point((a, b, c), max_iterations=500), (a, b, c))
        scale = max(1.0, exact)
        assert exact <= iterate + 1e-5 * scale

    @given(points, points, points, points, points)
    @settings(max_examples=100)
    def test_never_beaten_by_random_interior_point(self, a, b, c, r1, r2):
        t = fermat_point(a, b, c)
        for probe in (r1, r2):
            assert star_length(t, (a, b, c)) <= star_length(probe, (a, b, c)) + 1e-6


class TestWeiszfeld:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            weiszfeld_point(())

    def test_single_point(self):
        assert weiszfeld_point((Point(3, 4),)) == Point(3, 4)

    def test_two_points_median_on_segment(self):
        m = weiszfeld_point((Point(0, 0), Point(10, 0)))
        # Any point on the segment is optimal; length must equal the gap.
        assert star_length(m, (Point(0, 0), Point(10, 0))) == pytest.approx(
            10.0, abs=1e-6
        )

    def test_four_point_cross(self):
        pts = (Point(-1, 0), Point(1, 0), Point(0, -1), Point(0, 1))
        m = weiszfeld_point(pts)
        assert abs(m.x) < 1e-6 and abs(m.y) < 1e-6

    def test_vertex_sticking_resolved(self):
        # Start centroid coincides with an input point for this set; the
        # subgradient check must still certify/escape correctly.
        pts = (Point(0, 0), Point(3, 0), Point(-3, 0), Point(0, 3), Point(0, -3))
        m = weiszfeld_point(pts)
        assert star_length(m, pts) == pytest.approx(12.0, abs=1e-6)
