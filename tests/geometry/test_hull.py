"""Tests for convex hulls and polygon areas."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Point, convex_hull, polygon_area

coords = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestConvexHull:
    def test_square_with_interior_point(self):
        pts = [Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4), Point(2, 2)]
        hull = convex_hull(pts)
        assert len(hull) == 4
        assert Point(2, 2) not in hull

    def test_collinear_points(self):
        pts = [Point(0, 0), Point(1, 1), Point(2, 2)]
        hull = convex_hull(pts)
        assert len(hull) == 2

    def test_duplicates_removed(self):
        pts = [Point(0, 0), Point(0, 0), Point(1, 0), Point(0, 1)]
        assert len(convex_hull(pts)) == 3

    @given(st.lists(points, min_size=3, max_size=40))
    def test_hull_contains_all_points(self, pts):
        hull = convex_hull(pts)
        if len(hull) < 3:
            return

        def cross(o, a, b):
            return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)

        for p in pts:
            for i in range(len(hull)):
                a, b = hull[i], hull[(i + 1) % len(hull)]
                assert cross(a, b, p) >= -1e-6 * max(
                    1.0, abs(a.x), abs(a.y), abs(b.x), abs(b.y)
                )


class TestPolygonArea:
    def test_unit_square(self):
        square = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
        assert polygon_area(square) == pytest.approx(1.0)

    def test_orientation_independent(self):
        square = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
        assert polygon_area(list(reversed(square))) == pytest.approx(1.0)

    def test_degenerate(self):
        assert polygon_area([Point(0, 0), Point(1, 1)]) == 0.0
