"""Unit and property tests for the point primitives."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    Point,
    angle_at,
    angle_between,
    centroid,
    distance,
    distance_sq,
    lerp,
    midpoint,
    nearly_equal_points,
    rotate_about,
    unit_toward,
)

coords = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, coords, coords)


class TestDistance:
    def test_euclidean(self):
        assert distance(Point(0, 0), Point(3, 4)) == pytest.approx(5.0)

    def test_zero_for_same_point(self):
        assert distance(Point(2.5, -1), Point(2.5, -1)) == 0.0

    @given(points, points)
    def test_symmetry(self, a, b):
        assert distance(a, b) == pytest.approx(distance(b, a))

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert distance(a, c) <= distance(a, b) + distance(b, c) + 1e-6

    @given(points, points)
    def test_distance_sq_consistent(self, a, b):
        assert distance_sq(a, b) == pytest.approx(distance(a, b) ** 2, rel=1e-9)


class TestMidpointLerp:
    def test_midpoint(self):
        assert midpoint(Point(0, 0), Point(2, 4)) == Point(1, 2)

    def test_lerp_endpoints(self):
        a, b = Point(1, 1), Point(5, -3)
        assert lerp(a, b, 0.0) == a
        assert lerp(a, b, 1.0) == b

    @given(points, points)
    def test_midpoint_equidistant(self, a, b):
        m = midpoint(a, b)
        assert distance(m, a) == pytest.approx(distance(m, b), abs=1e-6)


class TestCentroid:
    def test_single_point(self):
        assert centroid([Point(3, 4)]) == Point(3, 4)

    def test_square(self):
        pts = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        assert centroid(pts) == Point(1, 1)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])


class TestAngles:
    def test_right_angle(self):
        assert angle_between(Point(1, 0), Point(0, 1)) == pytest.approx(math.pi / 2)

    def test_collinear_same_direction(self):
        assert angle_between(Point(1, 0), Point(5, 0)) == pytest.approx(0.0)

    def test_opposite(self):
        assert angle_between(Point(1, 0), Point(-2, 0)) == pytest.approx(math.pi)

    def test_zero_vector_raises(self):
        with pytest.raises(ValueError):
            angle_between(Point(0, 0), Point(1, 0))

    def test_angle_at_vertex(self):
        # Equilateral triangle: every interior angle is 60 degrees.
        a, b, c = Point(0, 0), Point(1, 0), Point(0.5, math.sqrt(3) / 2)
        assert angle_at(a, b, c) == pytest.approx(math.pi / 3)
        assert angle_at(b, a, c) == pytest.approx(math.pi / 3)
        assert angle_at(c, a, b) == pytest.approx(math.pi / 3)


class TestRotate:
    def test_quarter_turn(self):
        rotated = rotate_about(Point(1, 0), Point(0, 0), math.pi / 2)
        assert rotated.x == pytest.approx(0.0, abs=1e-12)
        assert rotated.y == pytest.approx(1.0)

    @given(points, points, st.floats(min_value=-10, max_value=10))
    def test_rotation_preserves_distance_to_pivot(self, p, pivot, theta):
        rotated = rotate_about(p, pivot, theta)
        assert distance(rotated, pivot) == pytest.approx(
            distance(p, pivot), abs=1e-6
        )


class TestUnitToward:
    def test_axis(self):
        u = unit_toward(Point(0, 0), Point(10, 0))
        assert u == Point(1.0, 0.0)

    def test_coincident_raises(self):
        with pytest.raises(ValueError):
            unit_toward(Point(1, 1), Point(1, 1))


class TestNearlyEqual:
    def test_within_tolerance(self):
        assert nearly_equal_points(Point(0, 0), Point(1e-12, -1e-12))

    def test_outside_tolerance(self):
        assert not nearly_equal_points(Point(0, 0), Point(1e-3, 0))


class TestPointArithmetic:
    def test_add_sub(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)
        assert Point(3, 4) - Point(1, 2) == Point(2, 2)

    def test_scaled_and_norm(self):
        assert Point(3, 4).norm() == pytest.approx(5.0)
        assert Point(1, -2).scaled(3) == Point(3, -6)

    def test_unpacks_like_tuple(self):
        x, y = Point(7, 8)
        assert (x, y) == (7, 8)
