"""Tests for orientation, segment intersection and angular sweeps."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    Orientation,
    Point,
    bearing,
    ccw_angle_from,
    distance,
    orientation,
    point_on_segment,
    segment_intersection,
    segments_cross,
)

coords = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestOrientation:
    def test_counterclockwise(self):
        assert orientation(Point(0, 0), Point(1, 0), Point(0, 1)) is Orientation.COUNTERCLOCKWISE

    def test_clockwise(self):
        assert orientation(Point(0, 0), Point(0, 1), Point(1, 0)) is Orientation.CLOCKWISE

    def test_collinear(self):
        assert orientation(Point(0, 0), Point(1, 1), Point(2, 2)) is Orientation.COLLINEAR

    @given(points, points, points)
    def test_reversal_flips_sign(self, a, b, c):
        forward = orientation(a, b, c)
        backward = orientation(c, b, a)
        if forward is Orientation.COLLINEAR:
            assert backward is Orientation.COLLINEAR
        else:
            assert backward == Orientation(-forward.value)


class TestPointOnSegment:
    def test_midpoint_on(self):
        assert point_on_segment(Point(1, 1), Point(0, 0), Point(2, 2))

    def test_collinear_but_outside(self):
        assert not point_on_segment(Point(3, 3), Point(0, 0), Point(2, 2))

    def test_off_segment(self):
        assert not point_on_segment(Point(1, 0), Point(0, 0), Point(2, 2))


class TestSegmentsCross:
    def test_plain_cross(self):
        assert segments_cross(Point(0, 0), Point(2, 2), Point(0, 2), Point(2, 0))

    def test_disjoint(self):
        assert not segments_cross(Point(0, 0), Point(1, 0), Point(0, 1), Point(1, 1))

    def test_shared_endpoint(self):
        assert segments_cross(Point(0, 0), Point(1, 1), Point(1, 1), Point(2, 0))

    def test_collinear_overlap(self):
        assert segments_cross(Point(0, 0), Point(2, 0), Point(1, 0), Point(3, 0))


class TestSegmentIntersection:
    def test_crossing_point(self):
        hit = segment_intersection(Point(0, 0), Point(2, 2), Point(0, 2), Point(2, 0))
        assert hit is not None
        assert hit.x == pytest.approx(1.0)
        assert hit.y == pytest.approx(1.0)

    def test_none_when_disjoint(self):
        assert (
            segment_intersection(Point(0, 0), Point(1, 0), Point(0, 1), Point(1, 1))
            is None
        )

    def test_parallel_non_overlapping(self):
        assert (
            segment_intersection(Point(0, 0), Point(1, 0), Point(0, 1), Point(1, 1))
            is None
        )

    def test_collinear_overlap_returns_witness(self):
        hit = segment_intersection(Point(0, 0), Point(2, 0), Point(1, 0), Point(3, 0))
        assert hit is not None
        assert point_on_segment(hit, Point(0, 0), Point(2, 0))
        assert point_on_segment(hit, Point(1, 0), Point(3, 0))

    @given(points, points, points, points)
    def test_intersection_lies_on_both_segments(self, p1, p2, q1, q2):
        hit = segment_intersection(p1, p2, q1, q2)
        if hit is None:
            return
        # The witness must be within a small tolerance of both segments.
        for a, b in ((p1, p2), (q1, q2)):
            seg_len = distance(a, b)
            if seg_len == 0:
                assert distance(hit, a) < 1e-5 + 1e-7 * max(1.0, abs(a.x) + abs(a.y))
            else:
                cross = abs(
                    (b.x - a.x) * (hit.y - a.y) - (b.y - a.y) * (hit.x - a.x)
                )
                assert cross / seg_len < 1e-4 * max(1.0, seg_len)


class TestBearingSweep:
    def test_bearing_quadrants(self):
        origin = Point(0, 0)
        assert bearing(origin, Point(1, 0)) == pytest.approx(0.0)
        assert bearing(origin, Point(0, 1)) == pytest.approx(math.pi / 2)
        assert bearing(origin, Point(-1, 0)) == pytest.approx(math.pi)
        assert bearing(origin, Point(0, -1)) == pytest.approx(3 * math.pi / 2)

    def test_ccw_sweep_ordering(self):
        origin = Point(0, 0)
        reference = Point(1, 0)
        north = ccw_angle_from(origin, reference, Point(0, 1))
        west = ccw_angle_from(origin, reference, Point(-1, 0))
        south = ccw_angle_from(origin, reference, Point(0, -1))
        assert north < west < south

    def test_same_direction_maps_to_full_turn(self):
        # A candidate collinear with the reference gets 2*pi, not 0, so the
        # right-hand rule treats "go straight back the way we came" as the
        # last resort.
        sweep = ccw_angle_from(Point(0, 0), Point(1, 0), Point(2, 0))
        assert sweep == pytest.approx(2 * math.pi)
