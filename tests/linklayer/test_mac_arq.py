"""MAC state machine and ARQ semantics, driven directly on a simulator."""

from typing import Optional

from repro.linklayer import LinkLayer, LinkLayerConfig
from repro.packets import Destination, MulticastPacket
from repro.simkit.rng import RandomStreams
from repro.simkit.simulator import Simulator
from tests.conftest import make_line_network


def make_packet(network, source_id, dest_id, task_id=0):
    return MulticastPacket(
        task_id=task_id,
        source=Destination(source_id, network.location_of(source_id)),
        destinations=(Destination(dest_id, network.location_of(dest_id)),),
        payload_bytes=128,
    )


class Host:
    """A recording engine stand-in wired into a LinkLayer."""

    def __init__(
        self,
        network,
        config: Optional[LinkLayerConfig] = None,
        failed=frozenset(),
        loss_fn=None,
    ):
        self.network = network
        self.simulator = Simulator()
        self.delivered = []  # (time_s, session, receiver, packet)
        self.charges = []  # (session, sender, size_bytes, counted)
        self.frames = []  # (session, kind, sender, start_s, retry, outcomes)
        self._loss_fn = loss_fn or (lambda session, receiver: False)
        self.link = LinkLayer(
            network=network,
            simulator=self.simulator,
            config=config or LinkLayerConfig(beacons=False),
            streams=RandomStreams(42),
            failed_node_ids=frozenset(failed),
            deliver=self._deliver,
            charge=self._charge,
            copy_loss=self._loss_fn,
            on_frame=self._on_frame,
        )

    def _deliver(self, session, receiver, packet):
        self.delivered.append((self.simulator.now, session, receiver, packet))

    def _charge(self, session, sender, size_bytes, counted):
        self.charges.append((session, sender, size_bytes, counted))

    def _on_frame(self, session, kind, sender, start_s, retry, outcomes):
        self.frames.append((session, kind, sender, start_s, retry, list(outcomes)))

    def run(self, until=10.0):
        return self.simulator.run(until=until, max_events=200_000)


class TestDataPath:
    def test_single_copy_delivered_once(self):
        network = make_line_network(3, 100.0)
        host = Host(network)
        packet = make_packet(network, 0, 2)
        host.link.send_data(7, 0, [(1, packet)])
        host.run()
        assert len(host.delivered) == 1
        _, session, receiver, delivered_packet = host.delivered[0]
        assert (session, receiver) == (7, 1)
        assert delivered_packet is packet
        assert host.link.stats.session_count(7, "data_frames") == 1
        assert host.link.stats.session_count(7, "acks") == 1
        assert host.link.stats.session_count(7, "retransmissions") == 0

    def test_fifo_queue_preserves_order(self):
        network = make_line_network(3, 100.0)
        host = Host(network)
        first = make_packet(network, 0, 2, task_id=1)
        second = make_packet(network, 0, 2, task_id=2)
        host.link.send_data(1, 0, [(1, first)])
        host.link.send_data(2, 0, [(1, second)])
        host.run()
        assert [(s, p.task_id) for _, s, _, p in host.delivered] == [(1, 1), (2, 2)]

    def test_only_data_frames_counted_as_transmissions(self):
        network = make_line_network(3, 100.0)
        host = Host(network)
        host.link.send_data(0, 0, [(1, make_packet(network, 0, 2))])
        host.run()
        counted = [c for c in host.charges if c[3]]
        uncounted = [c for c in host.charges if not c[3]]
        assert len(counted) == 1  # the DATA frame
        assert len(uncounted) == 1  # its ACK
        assert uncounted[0][2] == host.link.config.ack_bytes

    def test_empty_copy_list_rejected(self):
        network = make_line_network(3, 100.0)
        host = Host(network)
        try:
            host.link.send_data(0, 0, [])
        except ValueError:
            return
        raise AssertionError("empty DATA frame was accepted")


class TestArq:
    def test_lost_copy_is_retransmitted_and_recovered(self):
        network = make_line_network(3, 100.0)
        drops = {"left": 2}

        def flaky(session, receiver):
            if drops["left"] > 0:
                drops["left"] -= 1
                return True
            return False

        host = Host(network, loss_fn=flaky)
        host.link.send_data(0, 0, [(1, make_packet(network, 0, 2))])
        host.run()
        assert len(host.delivered) == 1
        assert host.link.stats.session_count(0, "retransmissions") == 2
        assert host.link.stats.session_count(0, "arq_drops") == 0
        retries = [frame[4] for frame in host.frames if frame[1] == "data"]
        assert retries == [0, 1, 2]

    def test_retry_cap_drops_the_copy(self):
        network = make_line_network(3, 100.0)
        config = LinkLayerConfig(beacons=False, max_retries=3)
        host = Host(network, config=config, loss_fn=lambda s, r: True)
        host.link.send_data(0, 0, [(1, make_packet(network, 0, 2))])
        # A second frame queued behind the doomed one must still go out.
        survivor = make_packet(network, 0, 2, task_id=9)
        host.link.send_data(1, 0, [(1, survivor)])
        host.run()
        assert host.link.stats.session_count(0, "arq_drops") == 1
        assert host.link.stats.session_count(0, "data_frames") == 4  # 1 + 3 retries
        assert [p.task_id for _, s, _, p in host.delivered if s == 1] == []

    def test_retry_cap_does_not_block_the_queue(self):
        network = make_line_network(3, 100.0)
        config = LinkLayerConfig(beacons=False, max_retries=2)

        def first_session_only(session, receiver):
            return session == 0

        host = Host(network, config=config, loss_fn=first_session_only)
        host.link.send_data(0, 0, [(1, make_packet(network, 0, 2))])
        host.link.send_data(1, 0, [(1, make_packet(network, 0, 2, task_id=9))])
        host.run()
        assert [s for _, s, _, _ in host.delivered] == [1]

    def test_lost_acks_cause_duplicate_suppression(self, monkeypatch):
        # Simulate every ACK dying on the way back: the sender retries, the
        # receiver re-acknowledges but must deliver only once.
        network = make_line_network(3, 100.0)
        config = LinkLayerConfig(beacons=False, max_retries=2)
        host = Host(network, config=config)

        def ack_black_hole(tx, copy, data_sender_id, session_id):
            host.link.channel.finish(tx)

        monkeypatch.setattr(host.link, "_finish_ack", ack_black_hole)
        host.link.send_data(0, 0, [(1, make_packet(network, 0, 2))])
        host.run()
        assert len(host.delivered) == 1
        assert host.link.stats.session_count(0, "duplicates_suppressed") == 2
        assert host.link.stats.session_count(0, "arq_drops") == 1

    def test_no_arq_single_shot(self):
        network = make_line_network(3, 100.0)
        config = LinkLayerConfig(beacons=False, arq=False)
        host = Host(network, config=config, loss_fn=lambda s, r: True)
        host.link.send_data(0, 0, [(1, make_packet(network, 0, 2))])
        host.run()
        assert host.delivered == []
        assert host.link.stats.session_count(0, "data_frames") == 1
        assert host.link.stats.session_count(0, "retransmissions") == 0
        assert host.link.stats.session_count(0, "acks") == 0

    def test_failed_receiver_never_delivers_or_acks(self):
        network = make_line_network(3, 100.0)
        config = LinkLayerConfig(beacons=False, max_retries=1)
        host = Host(network, config=config, failed={1})
        host.link.send_data(0, 0, [(1, make_packet(network, 0, 2))])
        host.run()
        assert host.delivered == []
        assert host.link.stats.session_count(0, "acks") == 0
        assert host.link.stats.session_count(0, "arq_drops") == 1


class TestBeacons:
    def test_beacons_fill_tables_and_charge_infrastructure(self):
        network = make_line_network(3, 100.0)
        config = LinkLayerConfig(beacon_period_s=0.5, warm_start=False)
        host = Host(network, config=config)
        host.link.start_beacons(horizon_s=2.0)
        host.run(until=2.0)
        assert host.link.stats.global_count("beacons_sent") >= 3
        # Infrastructure traffic: session None, never counted.
        beacon_charges = [c for c in host.charges if c[0] is None]
        assert beacon_charges
        assert all(not counted for _, _, _, counted in beacon_charges)
        # Every node heard its neighbors at least once.
        service = host.link.beacon_service
        assert service is not None
        assert service.view(1, 2.0).neighbor_ids == (0, 2)

    def test_failed_nodes_do_not_beacon(self):
        network = make_line_network(3, 100.0)
        config = LinkLayerConfig(beacon_period_s=0.5, warm_start=False)
        host = Host(network, config=config, failed={2})
        host.link.start_beacons(horizon_s=2.0)
        host.run(until=2.0)
        service = host.link.beacon_service
        assert service is not None
        assert 2 not in service.view(1, 2.0).neighbor_ids

    def test_beacons_disabled_views_are_oracle(self):
        network = make_line_network(3, 100.0)
        host = Host(network)  # beacons=False
        assert host.link.beacon_service is None
        assert host.link.view(1).neighbor_ids == (0, 2)
