"""Channel semantics: carrier sense, NAV, and per-receiver collisions."""

import pytest

from repro.linklayer.channel import Channel
from repro.linklayer.frame import DATA, Frame
from tests.conftest import make_line_network


def line_channel(node_count=5, spacing=100.0, factor=1.5):
    """Nodes 100 m apart, range 150 m: neighbors at 1 hop, carrier sense
    (1.5x -> 225 m) reaches 2 hops."""
    network = make_line_network(node_count, spacing)
    return network, Channel(network, factor)


def data_frame(sender):
    return Frame(kind=DATA, sender_id=sender, size_bytes=128)


class TestInterferers:
    def test_radius_is_factor_times_range(self):
        _, channel = line_channel()
        # 225 m carrier-sense radius: nodes at 100 and 200 are in, 300 out.
        assert channel.interferers_of(0) == frozenset({1, 2})

    def test_excludes_self_and_is_symmetric(self):
        _, channel = line_channel()
        for node in range(5):
            assert node not in channel.interferers_of(node)
            for other in channel.interferers_of(node):
                assert node in channel.interferers_of(other)

    def test_factor_below_one_rejected(self):
        network = make_line_network(3, 100.0)
        with pytest.raises(ValueError):
            Channel(network, 0.5)


class TestCarrierSense:
    def test_idle_channel(self):
        _, channel = line_channel()
        assert channel.busy_until(0, 0.0, 20e-6) is None

    def test_vulnerable_window(self):
        # A transmission is inaudible for sensing_delay after it starts:
        # that window is what makes CSMA collisions possible.
        _, channel = line_channel()
        channel.begin(data_frame(1), 0.0, 1e-3)
        assert channel.busy_until(0, 10e-6, 20e-6) is None  # too fresh
        assert channel.busy_until(0, 20e-6, 20e-6) == 1e-3  # now audible

    def test_out_of_range_sender_inaudible(self):
        _, channel = line_channel()
        channel.begin(data_frame(4), 0.0, 1e-3)  # 400 m from node 0
        assert channel.busy_until(0, 0.5e-3, 20e-6) is None

    def test_latest_end_wins(self):
        _, channel = line_channel()
        channel.begin(data_frame(1), 0.0, 1e-3)
        channel.begin(data_frame(2), 0.0, 2e-3)
        assert channel.busy_until(0, 1e-4, 20e-6) == 2e-3

    def test_finish_frees_the_air(self):
        _, channel = line_channel()
        tx = channel.begin(data_frame(1), 0.0, 1e-3)
        assert channel.active_count == 1
        channel.finish(tx)
        assert channel.active_count == 0
        assert channel.busy_until(0, 2e-3, 20e-6) is None

    def test_nav_reservation_counts_as_busy(self):
        _, channel = line_channel()
        channel.reserve(frozenset({0, 1}), 5e-3)
        assert channel.busy_until(0, 1e-3, 20e-6) == 5e-3
        assert channel.busy_until(2, 1e-3, 20e-6) is None  # not reserved
        assert channel.busy_until(0, 6e-3, 20e-6) is None  # expired

    def test_nav_never_shrinks(self):
        _, channel = line_channel()
        channel.reserve(frozenset({0}), 5e-3)
        channel.reserve(frozenset({0}), 2e-3)
        assert channel.busy_until(0, 1e-3, 20e-6) == 5e-3


class TestCollisions:
    def test_overlap_within_interference_range_destroys_both(self):
        _, channel = line_channel()
        # Senders 0 and 2 both transmit; node 1 hears both.
        tx_a = channel.begin(data_frame(0), 0.0, 1e-3)
        tx_b = channel.begin(data_frame(2), 0.5e-3, 1e-3)
        assert channel.reception_collided(tx_a, 1)
        assert channel.reception_collided(tx_b, 1)

    def test_capture_far_receiver_survives(self):
        # The same two frames, judged at node 3: sender 2 is its neighbor
        # (100 m) while sender 0 is 300 m away — outside the 225 m
        # interference radius — so node 3's copy survives (capture).
        _, channel = line_channel()
        channel.begin(data_frame(0), 0.0, 1e-3)
        tx_b = channel.begin(data_frame(2), 0.5e-3, 1e-3)
        assert not channel.reception_collided(tx_b, 3)

    def test_non_overlapping_frames_do_not_collide(self):
        _, channel = line_channel()
        tx_a = channel.begin(data_frame(0), 0.0, 1e-3)
        channel.finish(tx_a)
        tx_b = channel.begin(data_frame(2), 2e-3, 1e-3)
        assert not channel.reception_collided(tx_a, 1)
        assert not channel.reception_collided(tx_b, 1)

    def test_half_duplex_receiver(self):
        # A node transmitting during a frame's airtime cannot receive it,
        # even if the other sender is outside its interference radius.
        network = make_line_network(8, 100.0)
        channel = Channel(network, 1.5)
        tx_data = channel.begin(data_frame(0), 0.0, 1e-3)
        channel.begin(data_frame(1), 0.2e-3, 1e-3)  # node 1 talks over it
        assert channel.reception_collided(tx_data, 1)

    def test_positive_airtime_required(self):
        _, channel = line_channel()
        with pytest.raises(ValueError):
            channel.begin(data_frame(0), 0.0, 0.0)
