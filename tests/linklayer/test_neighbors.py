"""Beacon tables and the views protocols read them through."""

import numpy as np
import pytest

from repro.geometry import Point
from repro.linklayer.neighbors import BeaconService, NeighborTable
from repro.routing.base import NodeView
from tests.conftest import make_grid_network, make_line_network


class TestNeighborTable:
    def test_update_and_lookup(self):
        table = NeighborTable()
        table.update(3, Point(10.0, 20.0), 1.0)
        assert table.location_entry(3) == Point(10.0, 20.0)
        assert table.location_entry(4) is None
        assert len(table) == 1

    def test_live_ids_sorted_and_expiring(self):
        table = NeighborTable()
        table.update(9, Point(0, 0), 0.0)
        table.update(2, Point(1, 1), 5.0)
        table.update(5, Point(2, 2), 4.0)
        assert table.live_ids(now_s=5.0, expiry_s=10.0) == (2, 5, 9)
        assert table.live_ids(now_s=5.0, expiry_s=2.0) == (2, 5)
        assert table.live_ids(now_s=20.0, expiry_s=2.0) == ()

    def test_refresh_extends_lifetime(self):
        table = NeighborTable()
        table.update(1, Point(0, 0), 0.0)
        table.update(1, Point(0, 0), 8.0)
        assert table.live_ids(now_s=9.0, expiry_s=3.0) == (1,)


class TestWarmStart:
    def test_view_matches_oracle_at_time_zero(self):
        network = make_grid_network(5, 100.0)
        service = BeaconService(network, expiry_s=3.5, warm_start=True)
        for node_id in range(network.node_count):
            oracle = NodeView(network, node_id)
            beacon = service.view(node_id, 0.0)
            assert beacon.neighbor_ids == oracle.neighbor_ids
            assert beacon.planar_neighbor_ids == oracle.planar_neighbor_ids
            assert beacon.location == oracle.location
            for neighbor in oracle.neighbor_ids:
                assert beacon.location_of(neighbor) == oracle.location_of(neighbor)
            np.testing.assert_array_equal(
                beacon.neighbor_location_array(), oracle.neighbor_location_array()
            )

    def test_cold_start_is_deaf(self):
        network = make_line_network(3, 100.0)
        service = BeaconService(network, expiry_s=3.5, warm_start=False)
        assert service.view(1, 0.0).neighbor_ids == ()

    def test_warm_entries_age_out_without_beacons(self):
        network = make_line_network(3, 100.0)
        service = BeaconService(network, expiry_s=3.5, warm_start=True)
        assert service.view(1, 0.0).neighbor_ids == (0, 2)
        assert service.view(1, 3.4).neighbor_ids == (0, 2)
        assert service.view(1, 3.6).neighbor_ids == ()


class TestSoftState:
    def test_crashed_node_lingers_until_expiry(self):
        # Node 1 "crashes" (simply stops beaconing); node 0 keeps refreshing.
        network = make_line_network(3, 100.0)
        service = BeaconService(network, expiry_s=3.5, warm_start=True)
        for tick in (1.0, 2.0, 3.0, 4.0, 5.0):
            service.hear_beacon(1, 0, network.location_of(0), tick)
        # Within the expiry window the dead node is still believed in.
        assert 2 in service.view(1, 3.0).neighbor_ids
        # After it, only the refreshed neighbor remains.
        assert service.view(1, 5.0).neighbor_ids == (0,)

    def test_view_raises_for_unheard_node(self):
        network = make_line_network(3, 100.0)
        service = BeaconService(network, expiry_s=3.5, warm_start=False)
        view = service.view(0, 0.0)
        with pytest.raises(ValueError):
            view.location_of(1)

    def test_beacon_updates_feed_views(self):
        network = make_line_network(3, 100.0)
        service = BeaconService(network, expiry_s=3.5, warm_start=False)
        service.hear_beacon(0, 1, network.location_of(1), 0.5)
        view = service.view(0, 1.0)
        assert view.neighbor_ids == (1,)
        assert view.location_of(1) == network.location_of(1)
        assert view.neighbor_location_array().shape == (1, 2)

    def test_planar_memo_consistent(self):
        network = make_grid_network(4, 100.0)
        service = BeaconService(network, expiry_s=3.5, warm_start=True)
        first = service.view(5, 0.0).planar_neighbor_ids
        second = service.view(5, 1.0).planar_neighbor_ids  # memoized path
        assert first == second

    def test_positive_expiry_required(self):
        network = make_line_network(3, 100.0)
        with pytest.raises(ValueError):
            BeaconService(network, expiry_s=0.0)
