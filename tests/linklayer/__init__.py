"""Tests of the contended link/MAC subsystem."""
