"""The contended transmission model wired into the engine.

The headline acceptance checks live here: a loss-free contended run must
reproduce the default model's delivery set exactly (``delivery_digest``),
ARQ must strictly improve delivery under injected loss, and perimeter-mode
GMP must survive dropped/retransmitted frames without looping.
"""

import pytest

from repro.engine import (
    EngineConfig,
    batch_digest,
    delivery_digest,
    run_contended_tasks,
    run_task,
)
from repro.linklayer import LinkLayerConfig
from repro.routing.gmp import GMPProtocol
from repro.routing.grd import GRDProtocol
from repro.routing.lgs import LGSProtocol
from tests.conftest import make_grid_network, make_line_network
from tests.routing.test_perimeter_modes import ring_network

QUIET_LINK = LinkLayerConfig(beacons=False)


def contended_config(**kwargs):
    kwargs.setdefault("link", QUIET_LINK)
    return EngineConfig(transmission_model="contended", **kwargs)


class TestDeliveryEquivalence:
    @pytest.mark.parametrize(
        "protocol_factory",
        [GMPProtocol, LGSProtocol, GRDProtocol],
        ids=["GMP", "LGS", "GRD"],
    )
    def test_loss_free_matches_default_model(self, protocol_factory):
        network = make_grid_network(6, 100.0)
        source, destinations = 0, [30, 33, 35, 17]
        default = run_task(network, protocol_factory(), source, destinations)
        contended = run_task(
            network,
            protocol_factory(),
            source,
            destinations,
            config=contended_config(),
        )
        assert default.success
        assert delivery_digest(contended) == delivery_digest(default)
        assert contended.delivered_hops == default.delivered_hops

    def test_loss_free_matches_on_perimeter_ring(self):
        network = ring_network()
        config_kwargs = {"max_path_length": 60}
        default = run_task(
            network, GMPProtocol(), 0, [8], config=EngineConfig(**config_kwargs)
        )
        contended = run_task(
            network, GMPProtocol(), 0, [8], config=contended_config(**config_kwargs)
        )
        assert default.success
        assert delivery_digest(contended) == delivery_digest(default)

    def test_run_task_routes_through_contended_engine(self):
        network = make_line_network(4, 100.0)
        result = run_task(
            network, GMPProtocol(), 0, [3], config=contended_config()
        )
        assert result.success
        assert "mac.data_frames" in result.perf


class TestDeterminism:
    def test_repeat_runs_are_digest_identical(self):
        network = make_grid_network(5, 100.0)
        tasks = [(0, 0, (24, 20)), (1, 4, (22, 10)), (2, 12, (0, 24))]
        config = contended_config(link_loss_rate=0.2, loss_seed=7)

        def run_once():
            return run_contended_tasks(
                network,
                tasks,
                GMPProtocol,
                config=config,
                start_times=[0.0, 0.001, 0.002],
                collect_trace=True,
            )

        first, second = run_once(), run_once()
        assert batch_digest(first) == batch_digest(second)
        assert [r.perf for r in first] == [r.perf for r in second]

    def test_start_order_is_submission_order(self):
        network = make_line_network(5, 100.0)
        results = run_contended_tasks(
            network,
            [(5, 0, (4,)), (3, 4, (0,))],
            GMPProtocol,
            config=contended_config(),
        )
        assert [r.task_id for r in results] == [5, 3]


class TestArqUnderLoss:
    def test_arq_strictly_improves_delivery(self):
        network = make_grid_network(6, 100.0)
        tasks = [(i, 0, (30 + i, 17)) for i in range(5)]

        def delivered(link):
            results = run_contended_tasks(
                network,
                tasks,
                GMPProtocol,
                config=EngineConfig(
                    transmission_model="contended",
                    link_loss_rate=0.3,
                    loss_seed=11,
                    link=link,
                ),
            )
            return sum(len(r.delivered_hops) for r in results)

        with_arq = delivered(LinkLayerConfig(beacons=False))
        without_arq = delivered(LinkLayerConfig(beacons=False, arq=False))
        assert with_arq > without_arq

    def test_perimeter_mode_survives_retransmission(self):
        # Satellite: perimeter-mode GMP under dropped/retransmitted frames.
        # Every hop of the ~8-hop ring walk sees 25% copy loss, so ARQ is
        # exercised on perimeter-mode packets; the walk must still terminate
        # (no loop after the retry re-enters the face) and deliver.
        network = ring_network()
        for exit_rule in ("closer", "eager"):
            result = run_task(
                network,
                GMPProtocol(perimeter_exit=exit_rule),
                0,
                [8],
                config=contended_config(
                    max_path_length=60, link_loss_rate=0.25, loss_seed=6
                ),
            )
            assert result.success, (
                f"{exit_rule} lost the packet under ARQ: "
                f"{result.failed_destinations}"
            )
            assert result.dropped_ttl == 0
            assert result.perf["mac.retransmissions"] > 0


class TestAccounting:
    def test_transmissions_count_data_frames_only(self):
        # 0 -> 1 -> 2: two DATA frames; ACKs and beacons are charged as
        # energy but never counted as transmissions.
        network = make_line_network(3, 100.0)
        result = run_task(
            network,
            GRDProtocol(),
            0,
            [2],
            config=EngineConfig(transmission_model="contended"),
        )
        assert result.success
        assert result.transmissions == 2
        assert result.perf["mac.data_frames"] == 2
        assert result.perf["mac.acks"] == 2
        assert result.perf["link.beacons_sent"] > 0

    def test_beaconing_costs_energy_but_not_session_energy_free_run(self):
        network = make_line_network(3, 100.0)
        with_beacons = run_task(
            network,
            GRDProtocol(),
            0,
            [2],
            config=EngineConfig(transmission_model="contended"),
        )
        without = run_task(
            network, GRDProtocol(), 0, [2], config=contended_config()
        )
        # Session energy includes ACKs either way; beacons are infrastructure
        # and must not inflate the session's meter.
        assert with_beacons.energy_joules == pytest.approx(
            without.energy_joules
        )
        assert "link.beacons_sent" not in without.perf

    def test_trace_records_kind_and_retry(self):
        network = make_line_network(3, 100.0)
        config = EngineConfig(
            transmission_model="contended",
            link_loss_rate=0.4,
            loss_seed=5,
            link=QUIET_LINK,
        )
        result = run_task(
            network, GRDProtocol(), 0, [2], config=config,
            collect_trace=True,
        )
        assert result.trace is not None
        kinds = {frame.kind for frame in result.trace.frames}
        assert kinds == {"data"}
        assert any(frame.retry > 0 for frame in result.trace.frames)

    def test_perf_counters_are_digest_excluded(self):
        network = make_line_network(3, 100.0)
        result = run_task(
            network, GRDProtocol(), 0, [2], config=contended_config()
        )
        stripped = result.without_perf() if hasattr(result, "without_perf") else None
        if stripped is None:
            import dataclasses

            stripped = dataclasses.replace(result, perf={})
        assert delivery_digest(stripped) == delivery_digest(result)


class TestValidation:
    def test_duplicate_task_ids_rejected(self):
        network = make_line_network(3, 100.0)
        with pytest.raises(ValueError):
            run_contended_tasks(
                network,
                [(1, 0, (2,)), (1, 0, (2,))],
                GMPProtocol,
                config=contended_config(),
            )

    def test_failed_source_rejected(self):
        network = make_line_network(3, 100.0)
        with pytest.raises(ValueError):
            run_contended_tasks(
                network,
                [(1, 0, (2,))],
                GMPProtocol,
                config=contended_config(failed_node_ids=frozenset({0})),
            )

    def test_start_times_must_match_tasks(self):
        network = make_line_network(3, 100.0)
        with pytest.raises(ValueError):
            run_contended_tasks(
                network,
                [(1, 0, (2,))],
                GMPProtocol,
                config=contended_config(),
                start_times=[0.0, 1.0],
            )


class TestStaleTables:
    def test_crashed_next_hop_lingers_and_swallows_traffic(self):
        # Node 1 crashed but warm-start tables still list it: the source
        # routes into the hole, burns its retries, and the packet dies.
        network = make_line_network(3, 100.0)
        result = run_task(
            network,
            GRDProtocol(),
            0,
            [2],
            config=EngineConfig(
                transmission_model="contended",
                failed_node_ids=frozenset({1}),
                link=LinkLayerConfig(max_retries=2),
            ),
        )
        assert not result.success
        assert result.perf["mac.arq_drops"] >= 1
