"""Ordering equivalence of the calendar-queue and binary-heap schedulers.

The calendar queue is a pure performance structure: over any workload it
must pop events in *exactly* the ``(time, sequence)`` order of the
binary-heap reference.  The property tests drive both backends with
identical seeded schedule/cancel/pop streams — including the regimes that
stress the calendar's window logic (dense microsecond bursts, sparse
horizons, heavy cancellation, resize churn) — and compare the full popped
transcripts.
"""

import random

import pytest

from repro.perf.soa import soa_disabled, soa_enabled
from repro.simkit.scheduler import CalendarScheduler, EventScheduler
from repro.simkit.simulator import Simulator


def _small_calendar(on: int = 64, off: int = 16) -> CalendarScheduler:
    """A CalendarScheduler with tiny migration thresholds.

    At the production ``_CALENDAR_ON`` of 4096 live events these workloads
    would never leave heap mode; shrinking the bounds (instance attributes
    shadow the class constants) makes every test cross the heap -> calendar
    and calendar -> heap migrations, the regime the bound guards.
    """
    scheduler = CalendarScheduler()
    scheduler._CALENDAR_ON = on
    scheduler._CALENDAR_OFF = off
    return scheduler


def _drive(scheduler, seed: int, operations: int, profile: str):
    """One seeded workload transcript: [(time, sequence, label), ...]."""
    rng = random.Random(seed)
    now = 0.0
    live = {}
    popped = []
    scheduled = 0
    while scheduled < operations or live:
        roll = rng.random()
        if scheduled < operations and (roll < 0.55 or not live):
            if profile == "dense":
                delay = rng.expovariate(1.0 / 0.001)
            elif profile == "sparse":
                delay = rng.uniform(0.0, 10_000.0)
            else:  # mixed: MAC bursts plus occasional far timers
                delay = (
                    rng.expovariate(1.0 / 0.001)
                    if rng.random() < 0.9
                    else rng.uniform(1.0, 100.0)
                )
            event = scheduler.schedule(now + delay, lambda: None, f"e{scheduled}")
            live[event.sequence] = event
            scheduled += 1
        elif roll < 0.70 and live:
            # Cancel the event whose sequence hashes lowest — a seeded but
            # arbitrary victim that both backends agree on.
            victim = min(live, key=lambda s: (s * 2654435761) % 1_000_003)
            scheduler.cancel(live.pop(victim))
        else:
            event = scheduler.pop_next()
            if event is None:
                continue
            now = event.time
            live.pop(event.sequence, None)
            popped.append((event.time, event.sequence, event.label))
    assert scheduler.pop_next() is None
    return popped


@pytest.mark.parametrize("profile", ["dense", "sparse", "mixed"])
@pytest.mark.parametrize("seed", [1, 42, 20260808])
def test_calendar_pops_in_exact_heap_order(profile, seed):
    reference = _drive(EventScheduler(), seed, 3000, profile)
    calendar = _drive(CalendarScheduler(), seed, 3000, profile)
    assert calendar == reference
    # Tiny migration bounds: the same workload now churns through the
    # heap <-> calendar migrations dozens of times — still exact order.
    migrating = _drive(_small_calendar(), seed, 3000, profile)
    assert migrating == reference


def test_identical_times_pop_in_insertion_order():
    for scheduler in (EventScheduler(), CalendarScheduler(), _small_calendar(1, 0)):
        events = [scheduler.schedule(5.0, lambda: None, f"e{i}") for i in range(50)]
        scheduler.cancel(events[7])
        order = []
        while True:
            event = scheduler.pop_next()
            if event is None:
                break
            order.append(event.sequence)
        assert order == [i for i in range(50) if i != 7]


def test_schedule_earlier_than_current_window_is_not_skipped():
    """Popping far ahead then scheduling near must rewind the window scan.

    The forced-calendar instance (``on=1``) is the one that actually
    exercises the rewind: at production thresholds two events stay in
    heap mode, where skipping is impossible by construction.
    """
    for scheduler in (EventScheduler(), CalendarScheduler(), _small_calendar(1, 0)):
        scheduler.schedule(1000.0, lambda: None, "far")
        assert scheduler.peek_time() == 1000.0  # scan has advanced far ahead
        near = scheduler.schedule(1.0, lambda: None, "near")
        assert scheduler.peek_time() == 1.0
        assert scheduler.pop_next() is near


def test_resize_churn_preserves_order():
    """Grow through several doublings, then drain through the halvings."""
    for factory in (EventScheduler, CalendarScheduler):
        scheduler = factory()
        rng = random.Random(99)
        times = [rng.uniform(0.0, 50.0) for _ in range(5000)]
        for t in times:
            scheduler.schedule(t, lambda: None)
        popped = []
        while True:
            event = scheduler.pop_next()
            if event is None:
                break
            popped.append((event.time, event.sequence))
        assert popped == sorted(popped)
        assert len(popped) == 5000


def test_len_counts_only_live_events():
    for scheduler in (EventScheduler(), CalendarScheduler()):
        kept = scheduler.schedule(2.0, lambda: None)
        dropped = scheduler.schedule(1.0, lambda: None)
        assert len(scheduler) == 2
        scheduler.cancel(dropped)
        scheduler.cancel(dropped)  # double-cancel is a no-op
        assert len(scheduler) == 1
        assert scheduler.pop_next() is kept
        assert len(scheduler) == 0
        assert scheduler.peek_time() is None


def test_all_cancelled_leaves_empty_scheduler():
    for scheduler in (EventScheduler(), CalendarScheduler(), _small_calendar(1, 0)):
        events = [scheduler.schedule(float(i), lambda: None) for i in range(64)]
        for event in events:
            scheduler.cancel(event)
        assert len(scheduler) == 0
        assert scheduler.peek_time() is None
        assert scheduler.pop_next() is None


def test_migration_hysteresis():
    """Heap below _CALENDAR_ON, calendar above, back to heap below _CALENDAR_OFF."""
    scheduler = _small_calendar(on=64, off=16)
    events = [scheduler.schedule(float(i), lambda: None) for i in range(64)]
    assert not scheduler._calendar  # at the bound, not yet past it
    events.append(scheduler.schedule(64.0, lambda: None))
    assert scheduler._calendar  # 65 live > on=64
    popped = 0
    while scheduler._calendar:
        assert scheduler.pop_next() is not None
        popped += 1
    # The migration fires on the pop that drops the live count below off.
    assert len(scheduler) == scheduler._CALENDAR_OFF - 1
    remaining = []
    while True:
        event = scheduler.pop_next()
        if event is None:
            break
        remaining.append(event.sequence)
    # Migration through both representations never reordered anything.
    assert remaining == [e.sequence for e in events[popped:]]


class TestClearResetsSequence:
    """clear() regression: a cleared scheduler replays like a fresh one."""

    @pytest.mark.parametrize("factory", [EventScheduler, CalendarScheduler])
    def test_clear_restarts_sequence_numbering(self, factory):
        def transcript(scheduler):
            for i in range(20):
                scheduler.schedule(float(i % 4), lambda: None, f"e{i}")
            out = []
            while True:
                event = scheduler.pop_next()
                if event is None:
                    return out
                out.append((event.time, event.sequence, event.label))

        scheduler = factory()
        first = transcript(scheduler)
        scheduler.schedule(9.0, lambda: None, "stale")
        scheduler.clear()
        assert len(scheduler) == 0
        replay = transcript(scheduler)
        assert replay == first == transcript(factory())

    def test_simulator_reset_replays_identical_event_order(self):
        """Through the executive: reset() + same workload == same order."""

        def run(simulator):
            fired = []
            for i in range(10):
                simulator.schedule_at(0.5, lambda i=i: fired.append(i), f"t{i}")
            simulator.run()
            return fired

        simulator = Simulator()
        first = run(simulator)
        simulator.reset()
        assert run(simulator) == first == list(range(10))


def test_simulator_backend_follows_soa_switch():
    assert soa_enabled()
    assert isinstance(Simulator()._scheduler, CalendarScheduler)
    with soa_disabled():
        assert isinstance(Simulator()._scheduler, EventScheduler)
    assert isinstance(Simulator()._scheduler, CalendarScheduler)
