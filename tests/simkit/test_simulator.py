"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.simkit import EventScheduler, SimulationError, Simulator


class TestEventScheduler:
    def test_orders_by_time(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(2.0, lambda: fired.append("b"))
        sched.schedule(1.0, lambda: fired.append("a"))
        sched.schedule(3.0, lambda: fired.append("c"))
        while (event := sched.pop_next()) is not None:
            event.action()
        assert fired == ["a", "b", "c"]

    def test_fifo_for_simultaneous_events(self):
        sched = EventScheduler()
        fired = []
        for tag in ("first", "second", "third"):
            sched.schedule(5.0, lambda t=tag: fired.append(t))
        while (event := sched.pop_next()) is not None:
            event.action()
        assert fired == ["first", "second", "third"]

    def test_cancellation(self):
        sched = EventScheduler()
        keep = sched.schedule(1.0, lambda: None, label="keep")
        drop = sched.schedule(2.0, lambda: None, label="drop")
        sched.cancel(drop)
        assert len(sched) == 1
        assert sched.pop_next() is keep
        assert sched.pop_next() is None

    def test_peek_skips_cancelled(self):
        sched = EventScheduler()
        drop = sched.schedule(1.0, lambda: None)
        sched.schedule(2.0, lambda: None)
        sched.cancel(drop)
        assert sched.peek_time() == 2.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule(-1.0, lambda: None)


class TestSimulator:
    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(1.5, lambda: seen.append(sim.now))
        sim.schedule_at(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5, 4.0]
        assert sim.now == 4.0

    def test_schedule_after_accumulates(self):
        sim = Simulator()
        times = []

        def chain(depth):
            times.append(sim.now)
            if depth:
                sim.schedule_after(1.0, lambda: chain(depth - 1))

        sim.schedule_at(0.0, lambda: chain(3))
        sim.run()
        assert times == [0.0, 1.0, 2.0, 3.0]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule_at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_after(-0.1, lambda: None)

    def test_run_until_leaves_later_events_queued(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.pending_events == 1
        assert sim.now == 5.0

    def test_max_events_guard(self):
        sim = Simulator()

        def rescheduler():
            sim.schedule_after(1.0, rescheduler)

        sim.schedule_at(0.0, rescheduler)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, lambda: None)
        sim.run()
        assert sim.events_processed == 3

    def test_cancel_scheduled_event(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_at(1.0, lambda: fired.append("no"))
        sim.cancel(event)
        sim.run()
        assert fired == []

    def test_reset(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending_events == 0
        sim.schedule_at(0.5, lambda: None)
        sim.run()
        assert sim.now == 0.5
