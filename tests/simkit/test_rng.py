"""Tests for seeded random-stream management."""

from repro.simkit import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "topology", 3) == derive_seed(42, "topology", 3)

    def test_label_sensitivity(self):
        assert derive_seed(42, "topology", 3) != derive_seed(42, "topology", 4)
        assert derive_seed(42, "topology") != derive_seed(42, "workload")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_fits_in_63_bits(self):
        for seed in (0, 1, 2**62, 123456789):
            assert 0 <= derive_seed(seed, "label") < 2**63


class TestRandomStreams:
    def test_same_label_same_stream_object(self):
        streams = RandomStreams(7)
        assert streams.stream("a", 1) is streams.stream("a", 1)

    def test_reproducible_across_instances(self):
        a = RandomStreams(7).stream("workload", 0).uniform(size=5)
        b = RandomStreams(7).stream("workload", 0).uniform(size=5)
        assert (a == b).all()

    def test_streams_are_independent(self):
        streams = RandomStreams(7)
        first = streams.stream("a").uniform(size=5)
        second = streams.stream("b").uniform(size=5)
        assert not (first == second).all()

    def test_new_consumer_does_not_perturb_existing(self):
        # Drawing from a new stream must not change another stream's output.
        solo = RandomStreams(7)
        solo_values = solo.stream("x").uniform(size=5)

        mixed = RandomStreams(7)
        mixed.stream("intruder").uniform(size=100)
        mixed_values = mixed.stream("x").uniform(size=5)
        assert (solo_values == mixed_values).all()

    def test_fork_derives_new_family(self):
        parent = RandomStreams(7)
        child = parent.fork("phase2")
        assert child.master_seed != parent.master_seed
        again = RandomStreams(7).fork("phase2")
        assert child.master_seed == again.master_seed
