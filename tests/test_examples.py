"""Smoke tests for the example scripts.

The cheap examples run end to end (capturing stdout); the expensive ones
are compiled and imported to guarantee they stay in sync with the API.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


ALL_EXAMPLES = [
    "quickstart",
    "steiner_tree_demo",
    "void_recovery",
    "habitat_monitoring",
    "protocol_comparison",
    "route_tracing",
    "dynamic_membership",
    "robustness_study",
]


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_imports(name):
    module = load_example(name)
    assert callable(module.main)


def test_steiner_tree_demo_runs(capsys):
    load_example("steiner_tree_demo").main()
    out = capsys.readouterr().out
    assert "reduction ratios" in out
    assert "rrSTR" in out
    assert "shorter than the MST" in out


def test_quickstart_runs(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "GMP delivered" in out
    assert "transmissions" in out
