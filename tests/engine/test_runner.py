"""Tests for the task execution engine."""

import pytest

from repro.engine import EngineConfig, run_task
from repro.geometry import Point
from repro.routing.base import ForwardDecision, RoutingProtocol
from repro.routing.gmp import GMPProtocol
from repro.routing.grd import GRDProtocol
from repro.simkit import SimulationError
from tests.conftest import make_line_network
from tests.routing.helpers import network_from_points


class TestBasicExecution:
    def test_line_unicast_counts(self):
        net = make_line_network(5, spacing=100.0)
        result = run_task(net, GMPProtocol(), 0, [4])
        assert result.success
        assert result.delivered_hops[4] == 4
        assert result.transmissions == 4
        assert result.average_per_destination_hops == 4.0

    def test_duration_matches_airtime(self):
        net = make_line_network(3, spacing=100.0)
        result = run_task(net, GMPProtocol(), 0, [2])
        # Two hops of 1.024 ms airtime each.
        assert result.duration_s == pytest.approx(2 * 1.024e-3)

    def test_energy_accounting(self):
        net = make_line_network(3, spacing=100.0)
        result = run_task(net, GMPProtocol(), 0, [2])
        # Hop 1: node 0 transmits (1 listener); hop 2: node 1 transmits
        # (2 listeners).
        t = 1.024e-3
        expected = t * (1.3 + 0.9) + t * (1.3 + 2 * 0.9)
        assert result.energy_joules == pytest.approx(expected)

    def test_source_excluded_and_duplicates_dropped(self):
        net = make_line_network(4, spacing=100.0)
        result = run_task(net, GMPProtocol(), 0, [0, 2, 2, 3])
        assert result.destination_ids == (2, 3)
        assert result.success

    def test_empty_destinations(self):
        net = make_line_network(3, spacing=100.0)
        result = run_task(net, GMPProtocol(), 0, [0])
        assert result.destination_ids == ()
        assert result.success
        assert result.transmissions == 0

    def test_invalid_ids_rejected(self):
        net = make_line_network(3, spacing=100.0)
        with pytest.raises(ValueError):
            run_task(net, GMPProtocol(), 0, [99])
        with pytest.raises(ValueError):
            run_task(net, GMPProtocol(), 99, [1])

    def test_en_route_delivery(self):
        # Destination 2 lies on the path to 4: it is delivered in passing.
        net = make_line_network(5, spacing=100.0)
        result = run_task(net, GMPProtocol(), 0, [2, 4])
        assert result.success
        assert result.delivered_hops[2] == 2
        assert result.delivered_hops[4] == 4


class TestFailures:
    def test_partitioned_destination_fails(self):
        net = network_from_points(
            [Point(0, 0), Point(100, 0), Point(600, 0)], radio_range=150.0
        )
        result = run_task(net, GMPProtocol(), 0, [2])
        assert not result.success
        assert result.failed_destinations == (2,)

    def test_ttl_drops_packets(self):
        net = make_line_network(10, spacing=100.0)
        config = EngineConfig(max_path_length=5)
        result = run_task(net, GMPProtocol(), 0, [9], config=config)
        assert not result.success
        assert result.dropped_ttl >= 1

    def test_smt_on_partitioned_network_fails_cleanly(self):
        from repro.routing.smt import SMTProtocol

        net = network_from_points(
            [Point(0, 0), Point(100, 0), Point(600, 0)], radio_range=150.0
        )
        result = run_task(net, SMTProtocol(), 0, [2])
        assert not result.success
        assert result.transmissions == 0


class TestDecisionValidation:
    class _BadNeighborProtocol(RoutingProtocol):
        name = "bad-neighbor"

        def handle(self, view, packet):
            return [ForwardDecision(99, packet)]

    class _DuplicatingProtocol(RoutingProtocol):
        name = "duplicator"

        def handle(self, view, packet):
            return [
                ForwardDecision(view.neighbor_ids[0], packet),
                ForwardDecision(view.neighbor_ids[0], packet),
            ]

    def test_non_neighbor_forward_rejected(self):
        net = make_line_network(100, spacing=100.0)
        with pytest.raises(SimulationError):
            run_task(net, self._BadNeighborProtocol(), 0, [5])

    def test_duplicate_destination_rejected(self):
        net = make_line_network(5, spacing=100.0)
        with pytest.raises(SimulationError):
            run_task(net, self._DuplicatingProtocol(), 0, [4])


class TestTransmissionModels:
    def test_grd_counts_per_copy(self):
        # Star: source 0 with two opposite neighbor destinations.
        net = network_from_points(
            [Point(0, 0), Point(100, 0), Point(-100, 0)], radio_range=150.0
        )
        result = run_task(net, GRDProtocol(), 0, [1, 2])
        assert result.transmissions == 2  # Independent unicasts.

    def test_gmp_aggregates_split_into_one_frame(self):
        net = network_from_points(
            [Point(0, 0), Point(100, 0), Point(-100, 0)], radio_range=150.0
        )
        result = run_task(net, GMPProtocol(), 0, [1, 2])
        assert result.success
        assert result.transmissions == 1  # One broadcast serves both.

    def test_forced_unicast_model(self):
        net = network_from_points(
            [Point(0, 0), Point(100, 0), Point(-100, 0)], radio_range=150.0
        )
        config = EngineConfig(transmission_model="unicast")
        result = run_task(net, GMPProtocol(), 0, [1, 2], config=config)
        assert result.transmissions == 2

    def test_forced_broadcast_model(self):
        net = network_from_points(
            [Point(0, 0), Point(100, 0), Point(-100, 0)], radio_range=150.0
        )
        config = EngineConfig(transmission_model="broadcast")
        result = run_task(net, GRDProtocol(), 0, [1, 2], config=config)
        assert result.transmissions == 1

    def test_invalid_model_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(transmission_model="quantum")
