"""Tests for the canonical task-result digests."""

import numpy as np

from repro.engine import EngineConfig, batch_digest, run_task, task_digest
from repro.network import RadioConfig, build_network
from repro.network.topology import uniform_random_topology
from repro.routing import GMPProtocol


def _network(seed=19, count=200):
    rng = np.random.default_rng(seed)
    points = uniform_random_topology(count, 1000.0, 1000.0, rng)
    return build_network(points, RadioConfig())


class TestTaskDigest:
    def test_stable_across_reruns(self):
        network = _network()
        cfg = EngineConfig(collect_traces=True)
        first = run_task(network, GMPProtocol(), 0, [40, 90, 150], config=cfg)
        second = run_task(network, GMPProtocol(), 0, [40, 90, 150], config=cfg)
        assert task_digest(first) == task_digest(second)

    def test_differs_for_different_tasks(self):
        network = _network()
        a = run_task(network, GMPProtocol(), 0, [40, 90, 150])
        b = run_task(network, GMPProtocol(), 0, [41, 90, 150])
        assert task_digest(a) != task_digest(b)

    def test_trace_contributes(self):
        network = _network()
        traced = run_task(
            network, GMPProtocol(), 0, [40, 90, 150],
            config=EngineConfig(collect_traces=True),
        )
        untraced = run_task(network, GMPProtocol(), 0, [40, 90, 150])
        assert task_digest(traced) != task_digest(untraced)

    def test_perf_instrumentation_excluded(self):
        network = _network()
        plain = run_task(network, GMPProtocol(), 0, [40, 90, 150])
        instrumented = run_task(
            network, GMPProtocol(), 0, [40, 90, 150],
            config=EngineConfig(collect_perf=True),
        )
        assert instrumented.perf is not None
        assert plain.perf is None
        assert task_digest(plain) == task_digest(instrumented)


class TestBatchDigest:
    def test_order_sensitive(self):
        network = _network()
        a = run_task(network, GMPProtocol(), 0, [40, 90, 150], task_id=1)
        b = run_task(network, GMPProtocol(), 5, [60, 120, 180], task_id=2)
        assert batch_digest([a, b]) != batch_digest([b, a])
        assert batch_digest([a, b]) == batch_digest([a, b])


class TestDigestFieldPolicy:
    """The policy tables must classify exactly the fields that exist.

    reprolint R014 checks this statically; this is the runtime half of the
    same contract — adding a record field without declaring its digest fate
    fails here even when the linter is not run.
    """

    RECORDS = {
        "TaskResult": "repro.engine.stats",
        "ResultSummary": "repro.engine.stats",
        "TaskTrace": "repro.engine.trace",
        "FrameRecord": "repro.engine.trace",
        "CopyRecord": "repro.engine.trace",
    }

    def _actual_fields(self, class_name):
        import dataclasses
        import importlib

        cls = getattr(importlib.import_module(self.RECORDS[class_name]), class_name)
        return {f.name for f in dataclasses.fields(cls)}

    def test_every_field_is_classified_exactly_once(self):
        from repro.engine.digest import (
            DIGEST_EXCLUDED_FIELDS,
            DIGEST_INCLUDED_FIELDS,
        )

        for class_name in self.RECORDS:
            included = set(DIGEST_INCLUDED_FIELDS.get(class_name, ()))
            excluded = set(DIGEST_EXCLUDED_FIELDS.get(class_name, ()))
            assert not included & excluded, f"{class_name}: fields in both tables"
            assert included | excluded == self._actual_fields(class_name), (
                f"{class_name}: policy tables out of sync with the dataclass"
            )

    def test_policy_tables_cover_no_unknown_records(self):
        from repro.engine.digest import (
            DIGEST_EXCLUDED_FIELDS,
            DIGEST_INCLUDED_FIELDS,
        )

        known = set(self.RECORDS)
        assert set(DIGEST_INCLUDED_FIELDS) <= known
        assert set(DIGEST_EXCLUDED_FIELDS) <= known
