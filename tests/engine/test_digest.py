"""Tests for the canonical task-result digests."""

import numpy as np

from repro.engine import EngineConfig, batch_digest, run_task, task_digest
from repro.network import RadioConfig, build_network
from repro.network.topology import uniform_random_topology
from repro.routing import GMPProtocol


def _network(seed=19, count=200):
    rng = np.random.default_rng(seed)
    points = uniform_random_topology(count, 1000.0, 1000.0, rng)
    return build_network(points, RadioConfig())


class TestTaskDigest:
    def test_stable_across_reruns(self):
        network = _network()
        cfg = EngineConfig(collect_traces=True)
        first = run_task(network, GMPProtocol(), 0, [40, 90, 150], config=cfg)
        second = run_task(network, GMPProtocol(), 0, [40, 90, 150], config=cfg)
        assert task_digest(first) == task_digest(second)

    def test_differs_for_different_tasks(self):
        network = _network()
        a = run_task(network, GMPProtocol(), 0, [40, 90, 150])
        b = run_task(network, GMPProtocol(), 0, [41, 90, 150])
        assert task_digest(a) != task_digest(b)

    def test_trace_contributes(self):
        network = _network()
        traced = run_task(
            network, GMPProtocol(), 0, [40, 90, 150],
            config=EngineConfig(collect_traces=True),
        )
        untraced = run_task(network, GMPProtocol(), 0, [40, 90, 150])
        assert task_digest(traced) != task_digest(untraced)

    def test_perf_instrumentation_excluded(self):
        network = _network()
        plain = run_task(network, GMPProtocol(), 0, [40, 90, 150])
        instrumented = run_task(
            network, GMPProtocol(), 0, [40, 90, 150],
            config=EngineConfig(collect_perf=True),
        )
        assert instrumented.perf is not None
        assert plain.perf is None
        assert task_digest(plain) == task_digest(instrumented)


class TestBatchDigest:
    def test_order_sensitive(self):
        network = _network()
        a = run_task(network, GMPProtocol(), 0, [40, 90, 150], task_id=1)
        b = run_task(network, GMPProtocol(), 5, [60, 120, 180], task_id=2)
        assert batch_digest([a, b]) != batch_digest([b, a])
        assert batch_digest([a, b]) == batch_digest([a, b])
