"""SoA A/B bit-identity: digests equal with the array core on and off.

``set_soa_enabled`` swaps the network's CSR construction path, the
``are_neighbors`` implementation, and the simulator's scheduler backend.
None of that may change a single traced frame: the trace and delivery
digests of the default engine AND of the contended MAC engine must be
equal on both sides of the switch — the same contract the vectorization
and caching switches already honor.
"""

import numpy as np

from repro.engine import (
    EngineConfig,
    batch_digest,
    delivery_digest,
    run_contended_tasks,
    run_task,
)
from repro.network import RadioConfig, build_network
from repro.network.topology import uniform_random_topology
from repro.perf.soa import soa_disabled, soa_enabled
from repro.routing import GMPProtocol

TRACING = EngineConfig(collect_traces=True)


def _tasks(count: int, nodes: int, seed: int):
    rng = np.random.default_rng(seed)
    tasks = []
    for _ in range(count):
        picks = rng.choice(nodes, size=8, replace=False)
        tasks.append((int(picks[0]), [int(p) for p in picks[1:]]))
    return tasks


def _build(seed: int = 19, nodes: int = 300):
    rng = np.random.default_rng(seed)
    points = uniform_random_topology(nodes, 1000.0, 1000.0, rng)
    return build_network(points, RadioConfig())


def test_default_engine_digest_equal_soa_on_off():
    assert soa_enabled()
    tasks = _tasks(8, 300, 31)

    def run_all():
        network = _build()
        protocol = GMPProtocol()
        return [
            run_task(network, protocol, source, dests, config=TRACING, task_id=i)
            for i, (source, dests) in enumerate(tasks)
        ]

    soa_results = run_all()
    with soa_disabled():
        legacy_results = run_all()
    assert batch_digest(soa_results) == batch_digest(legacy_results)
    for a, b in zip(soa_results, legacy_results):
        assert delivery_digest(a) == delivery_digest(b)
        assert a.transmissions == b.transmissions


def test_contended_engine_digest_equal_soa_on_off():
    """The dense-event-stream regime the calendar queue was built for."""
    sessions = [
        (task_id, source, dests)
        for task_id, (source, dests) in enumerate(_tasks(4, 300, 77))
    ]

    def run_all():
        network = _build()
        return run_contended_tasks(
            network, sessions, GMPProtocol, collect_trace=True
        )

    soa_results = run_all()
    with soa_disabled():
        legacy_results = run_all()
    assert batch_digest(soa_results) == batch_digest(legacy_results)
    for a, b in zip(soa_results, legacy_results):
        assert delivery_digest(a) == delivery_digest(b)
