"""Tests for execution tracing and injected faults (losses, dead nodes)."""

import pytest

from repro.engine import EngineConfig, run_task
from repro.geometry import Point
from repro.routing.gmp import GMPProtocol
from repro.routing.grd import GRDProtocol
from tests.conftest import make_line_network
from tests.routing.helpers import network_from_points


class TestTracing:
    def test_no_trace_by_default(self):
        net = make_line_network(4, spacing=100.0)
        result = run_task(net, GMPProtocol(), 0, [3])
        assert result.trace is None

    def test_trace_records_every_frame(self):
        net = make_line_network(4, spacing=100.0)
        result = run_task(net, GMPProtocol(), 0, [3], collect_trace=True)
        trace = result.trace
        assert trace is not None
        assert len(trace.frames) == result.transmissions
        assert trace.traversed_edges() == {(0, 1), (1, 2), (2, 3)}
        assert trace.relay_nodes() == {0, 1, 2}

    def test_split_events_counted(self):
        net = network_from_points(
            [Point(0, 0), Point(100, 0), Point(-100, 0)], radio_range=150.0
        )
        result = run_task(net, GMPProtocol(), 0, [1, 2], collect_trace=True)
        assert result.trace.split_events() == 1
        assert result.trace.fanout_histogram() == {2: 1}

    def test_total_meters(self):
        net = make_line_network(3, spacing=100.0)
        result = run_task(net, GMPProtocol(), 0, [2], collect_trace=True)
        assert result.trace.total_meters(net) == pytest.approx(200.0)
        assert result.trace.mean_hop_meters(net) == pytest.approx(100.0)

    def test_perimeter_copies_flagged(self):
        # Destination behind the only neighbor: the packet must enter
        # perimeter mode, which the trace records.
        net = network_from_points(
            [Point(0, 0), Point(100, 0), Point(-120, 200), Point(30, 130)],
            radio_range=150.0,
        )
        result = run_task(net, GMPProtocol(), 0, [2], collect_trace=True)
        assert result.trace.perimeter_copy_count() >= 1


class TestLinkLoss:
    def test_zero_loss_is_lossless(self):
        net = make_line_network(5, spacing=100.0)
        result = run_task(
            net, GMPProtocol(), 0, [4],
            config=EngineConfig(link_loss_rate=0.0),
        )
        assert result.success

    def test_certain_loss_kills_delivery_but_charges_energy(self):
        net = make_line_network(3, spacing=100.0)
        result = run_task(
            net, GMPProtocol(), 0, [2],
            config=EngineConfig(link_loss_rate=0.999999),
            collect_trace=True,
        )
        assert not result.success
        assert result.transmissions == 1  # The frame was sent and paid for.
        assert result.trace.lost_copy_count() == 1

    def test_loss_is_reproducible_per_seed(self, dense_network):
        config = EngineConfig(link_loss_rate=0.3, loss_seed=5)
        a = run_task(dense_network, GMPProtocol(), 0, [50, 100, 150], config=config)
        b = run_task(dense_network, GMPProtocol(), 0, [50, 100, 150], config=config)
        assert a.delivered_hops == b.delivered_hops
        assert a.transmissions == b.transmissions

    def test_loss_rate_degrades_delivery(self, dense_network):
        lossless = sum(
            run_task(dense_network, GRDProtocol(), s, [s + 50, s + 100]).success
            for s in range(0, 100, 10)
        )
        lossy = sum(
            run_task(
                dense_network, GRDProtocol(), s, [s + 50, s + 100],
                config=EngineConfig(link_loss_rate=0.4, loss_seed=s),
            ).success
            for s in range(0, 100, 10)
        )
        assert lossy < lossless

    def test_invalid_loss_rate(self):
        with pytest.raises(ValueError):
            EngineConfig(link_loss_rate=1.0)
        with pytest.raises(ValueError):
            EngineConfig(link_loss_rate=-0.1)


class TestFailedNodes:
    def test_packets_into_dead_nodes_vanish(self):
        net = make_line_network(5, spacing=100.0)
        result = run_task(
            net, GMPProtocol(), 0, [4],
            config=EngineConfig(failed_node_ids=frozenset({2})),
            collect_trace=True,
        )
        assert not result.success
        assert result.trace.lost_copy_count() >= 1

    def test_failure_off_the_route_is_harmless(self):
        net = make_line_network(5, spacing=100.0)
        # Node 4 is the destination's far side; killing an unrelated node
        # does not matter because the route 0-1-2-3 never touches it.
        result = run_task(
            net, GMPProtocol(), 0, [3],
            config=EngineConfig(failed_node_ids=frozenset({4})),
        )
        assert result.success

    def test_dead_source_rejected(self):
        net = make_line_network(3, spacing=100.0)
        with pytest.raises(ValueError):
            run_task(
                net, GMPProtocol(), 0, [2],
                config=EngineConfig(failed_node_ids=frozenset({0})),
            )
