"""Tests for the header-overhead accounting option."""

import pytest

from repro.engine import EngineConfig, run_task
from repro.routing.gmp import GMPProtocol
from repro.routing.grd import GRDProtocol
from tests.conftest import make_line_network


class TestHeaderOverhead:
    def test_off_by_default_matches_table1(self):
        net = make_line_network(4, spacing=100.0)
        result = run_task(net, GMPProtocol(), 0, [3])
        # 3 hops, flat 128-byte frames: airtime 1.024 ms each.
        t = 1.024e-3
        listeners = [1, 2, 2]  # degree of nodes 0, 1, 2 on the line.
        expected = sum(t * (1.3 + n * 0.9) for n in listeners)
        assert result.energy_joules == pytest.approx(expected)

    def test_overhead_increases_energy_and_latency(self):
        net = make_line_network(5, spacing=100.0)
        base = run_task(net, GMPProtocol(), 0, [3, 4])
        heavy = run_task(
            net, GMPProtocol(), 0, [3, 4],
            config=EngineConfig(charge_header_overhead=True),
        )
        assert heavy.energy_joules > base.energy_joules
        assert heavy.duration_s > base.duration_s
        # Same routing decisions either way.
        assert heavy.delivered_hops == base.delivered_hops

    def test_longer_destination_lists_cost_more(self):
        net = make_line_network(8, spacing=100.0)
        config = EngineConfig(charge_header_overhead=True)
        small = run_task(net, GMPProtocol(), 0, [7], config=config)
        big = run_task(net, GMPProtocol(), 0, [4, 5, 6, 7], config=config)
        # More embedded destinations -> bigger headers -> more J per meter.
        assert big.energy_joules / big.transmissions > (
            small.energy_joules / small.transmissions
        )

    def test_per_copy_protocols_supported(self):
        net = make_line_network(4, spacing=100.0)
        result = run_task(
            net, GRDProtocol(), 0, [2, 3],
            config=EngineConfig(charge_header_overhead=True),
        )
        assert result.success
        assert result.energy_joules > 0
