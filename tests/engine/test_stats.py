"""Tests for task statistics and aggregation."""

import pytest

from repro.engine.stats import TaskResult, summarize_results


def result(delivered, dests=(1, 2, 3), tx=10, energy=1.0):
    return TaskResult(
        task_id=0,
        protocol="X",
        source_id=0,
        destination_ids=tuple(dests),
        delivered_hops=delivered,
        transmissions=tx,
        energy_joules=energy,
        duration_s=0.01,
    )


class TestTaskResult:
    def test_success_requires_all_delivered(self):
        assert result({1: 2, 2: 3, 3: 4}).success
        assert not result({1: 2, 2: 3}).success

    def test_failed_destinations(self):
        assert result({1: 2}).failed_destinations == (2, 3)

    def test_per_destination_hops(self):
        r = result({1: 2, 3: 6})
        assert r.per_destination_hops == [2, 6]
        assert r.average_per_destination_hops == 4.0

    def test_average_with_nothing_delivered(self):
        assert result({}).average_per_destination_hops == 0.0

    def test_total_hops_alias(self):
        assert result({}, tx=17).total_hops == 17


class TestSummarize:
    def test_empty(self):
        summary = summarize_results([])
        assert summary.task_count == 0
        assert summary.delivery_ratio == 1.0

    def test_means(self):
        results = [
            result({1: 2, 2: 2, 3: 2}, tx=10, energy=1.0),
            result({1: 4, 2: 4, 3: 4}, tx=20, energy=3.0),
        ]
        summary = summarize_results(results)
        assert summary.task_count == 2
        assert summary.failure_count == 0
        assert summary.mean_total_hops == 15.0
        assert summary.mean_energy_joules == 2.0
        assert summary.mean_per_destination_hops == pytest.approx(3.0)

    def test_failures_and_delivery_ratio(self):
        results = [
            result({1: 2, 2: 2, 3: 2}),
            result({1: 2}),  # 2 of 3 missing.
        ]
        summary = summarize_results(results)
        assert summary.failure_count == 1
        assert summary.delivery_ratio == pytest.approx(4 / 6)
