"""Schedule/spec data-model tests: validation, normalization, round-trips."""

import pytest

from repro.adversary import (
    BEHAVIORS,
    DROPPER,
    EMPTY_ADVERSARY_SCHEDULE,
    JAMMER,
    SPOOFER,
    SUPPRESSOR,
    AdversarySchedule,
    AdversarySpec,
)


class TestSpecValidation:
    def test_behavior_must_be_known(self):
        with pytest.raises(ValueError):
            AdversarySpec(0, "gremlin")

    def test_all_declared_behaviors_construct(self):
        for behavior in BEHAVIORS:
            assert AdversarySpec(3, behavior).behavior == behavior

    def test_node_id_must_be_non_negative(self):
        with pytest.raises(ValueError):
            AdversarySpec(-1, DROPPER)

    def test_drop_rate_bounds(self):
        with pytest.raises(ValueError):
            AdversarySpec(0, DROPPER, drop_rate=0.0)
        with pytest.raises(ValueError):
            AdversarySpec(0, DROPPER, drop_rate=1.5)
        assert AdversarySpec(0, DROPPER, drop_rate=1.0).drop_rate == 1.0

    def test_jam_knob_bounds(self):
        with pytest.raises(ValueError):
            AdversarySpec(0, JAMMER, jam_duty=0.0)
        with pytest.raises(ValueError):
            AdversarySpec(0, JAMMER, jam_period_s=0.0)
        with pytest.raises(ValueError):
            AdversarySpec(0, JAMMER, jam_bytes=0)

    def test_spoof_offset_must_be_positive(self):
        with pytest.raises(ValueError):
            AdversarySpec(0, SPOOFER, spoof_offset_m=0.0)

    def test_target_destinations_normalized(self):
        spec = AdversarySpec(0, DROPPER, target_destinations=(9, 2, 9, 5))
        assert spec.target_destinations == (2, 5, 9)
        with pytest.raises(ValueError):
            AdversarySpec(0, DROPPER, target_destinations=(-3,))


class TestScheduleNormalization:
    def test_specs_sorted_by_node_id(self):
        schedule = AdversarySchedule(
            specs=(AdversarySpec(7, SPOOFER), AdversarySpec(2, DROPPER)),
            seed=5,
        )
        assert schedule.node_ids == (2, 7)

    def test_equal_casts_compare_equal(self):
        a = AdversarySchedule(
            specs=(AdversarySpec(7, SPOOFER), AdversarySpec(2, DROPPER)), seed=5
        )
        b = AdversarySchedule(
            specs=(AdversarySpec(2, DROPPER), AdversarySpec(7, SPOOFER)), seed=5
        )
        assert a == b
        assert hash(a) == hash(b)

    def test_duplicate_node_rejected(self):
        with pytest.raises(ValueError):
            AdversarySchedule(
                specs=(AdversarySpec(3, DROPPER), AdversarySpec(3, JAMMER))
            )

    def test_enabled_and_empty_default(self):
        assert not EMPTY_ADVERSARY_SCHEDULE.enabled
        assert AdversarySchedule(specs=(AdversarySpec(0, SUPPRESSOR),)).enabled

    def test_of_behavior_filters_in_order(self):
        schedule = AdversarySchedule(
            specs=(
                AdversarySpec(5, DROPPER),
                AdversarySpec(1, DROPPER),
                AdversarySpec(3, JAMMER),
            )
        )
        assert [s.node_id for s in schedule.of_behavior(DROPPER)] == [1, 5]
        assert schedule.has_jammers
        with pytest.raises(ValueError):
            schedule.of_behavior("gremlin")

    def test_without_node(self):
        schedule = AdversarySchedule(
            specs=(AdversarySpec(1, DROPPER), AdversarySpec(3, JAMMER))
        )
        assert schedule.without_node(3).node_ids == (1,)
        assert not schedule.without_node(3).has_jammers


class TestJsonRoundTrip:
    def test_spec_round_trip_is_exact(self):
        spec = AdversarySpec(
            4,
            DROPPER,
            drop_rate=0.5,
            target_destinations=(8, 2),
            spoof_offset_m=123.0,
            jam_duty=0.9,
            jam_period_s=1e-3,
            jam_bytes=32,
        )
        assert AdversarySpec.from_json_dict(spec.to_json_dict()) == spec

    def test_schedule_round_trip_is_exact(self):
        schedule = AdversarySchedule(
            specs=(
                AdversarySpec(4, DROPPER, drop_rate=0.5),
                AdversarySpec(9, SPOOFER, spoof_offset_m=77.0),
            ),
            seed=42,
        )
        assert (
            AdversarySchedule.from_json_dict(schedule.to_json_dict()) == schedule
        )
