"""Behavior tests against the engine seams, including the A/B contract."""

import pytest

from repro.adversary import (
    DROPPER,
    EMPTY_ADVERSARY_SCHEDULE,
    JAMMER,
    SPOOFER,
    SUPPRESSOR,
    AdversarySchedule,
    AdversarySpec,
    AdversaryState,
)
from repro.engine import EngineConfig, run_contended_tasks, run_task, task_digest
from repro.geometry import distance
from repro.routing.base import NodeView
from repro.routing.gmp import GMPProtocol

from tests.conftest import make_line_network


def line_task(config, destinations=(4,), node_count=5):
    network = make_line_network(node_count, 100.0)
    return run_task(
        network, GMPProtocol(), 0, list(destinations), config=config, task_id=1
    )


class TestABContract:
    def test_empty_schedule_matches_default_config(self):
        baseline = line_task(EngineConfig(collect_traces=True))
        explicit = line_task(
            EngineConfig(
                collect_traces=True, adversary=EMPTY_ADVERSARY_SCHEDULE
            )
        )
        assert task_digest(baseline) == task_digest(explicit)

    def test_empty_schedule_matches_on_contended_model(self):
        network = make_line_network(5, 100.0)
        tasks = [(0, 0, (4,))]
        kwargs = dict(transmission_model="contended", collect_traces=True)
        baseline = run_contended_tasks(
            network, tasks, GMPProtocol, config=EngineConfig(**kwargs)
        )
        explicit = run_contended_tasks(
            network,
            tasks,
            GMPProtocol,
            config=EngineConfig(adversary=EMPTY_ADVERSARY_SCHEDULE, **kwargs),
        )
        assert [task_digest(r) for r in baseline] == [
            task_digest(r) for r in explicit
        ]

    def test_adversarial_node_cannot_also_be_failed(self):
        with pytest.raises(ValueError):
            EngineConfig(
                failed_node_ids=frozenset({2}),
                adversary=AdversarySchedule(specs=(AdversarySpec(2, DROPPER),)),
            )


class TestDropper:
    def test_blackhole_relay_kills_downstream_delivery(self):
        config = EngineConfig(
            adversary=AdversarySchedule(
                specs=(AdversarySpec(2, DROPPER),), seed=1
            )
        )
        result = line_task(config)
        assert not result.success
        assert result.perf is not None
        assert result.perf["adv.drops"] >= 1.0
        # Upstream of the blackhole the flow is untouched.
        assert line_task(config, destinations=(1,)).success

    def test_selective_dropper_ignores_other_flows(self):
        config = EngineConfig(
            adversary=AdversarySchedule(
                specs=(
                    AdversarySpec(2, DROPPER, target_destinations=(99,)),
                ),
                seed=1,
            )
        )
        result = line_task(config)
        assert result.success
        assert result.perf is None or "adv.drops" not in result.perf

    def test_selective_dropper_hits_targeted_flow(self):
        config = EngineConfig(
            adversary=AdversarySchedule(
                specs=(AdversarySpec(2, DROPPER, target_destinations=(4,)),),
                seed=1,
            )
        )
        assert not line_task(config).success

    def test_partial_drop_rate_is_deterministic(self):
        config = EngineConfig(
            collect_traces=True,
            adversary=AdversarySchedule(
                specs=(AdversarySpec(2, DROPPER, drop_rate=0.5),), seed=9
            ),
        )
        assert task_digest(line_task(config)) == task_digest(line_task(config))


class TestSpooferAndSuppressor:
    def test_suppressed_destination_is_unreachable(self):
        config = EngineConfig(
            adversary=AdversarySchedule(
                specs=(AdversarySpec(4, SUPPRESSOR),), seed=1
            )
        )
        assert not line_task(config).success
        # The suppressor still relays: flows through it are unharmed.
        assert line_task(config, destinations=(3,)).success

    def test_spoofed_location_stays_within_declared_offset(self):
        network = make_line_network(5, 100.0)
        schedule = AdversarySchedule(
            specs=(AdversarySpec(2, SPOOFER, spoof_offset_m=200.0),), seed=3
        )
        state = AdversaryState(schedule, network, ("task", 0))
        lie = state.advertised_location(2)
        truth = network.location_of(2)
        assert 100.0 - 1e-9 <= distance(lie, truth) <= 200.0 + 1e-9
        # Honest nodes advertise the truth.
        assert state.advertised_location(1) == network.location_of(1)

    def test_spoof_draw_is_seeded_per_scope(self):
        network = make_line_network(5, 100.0)
        schedule = AdversarySchedule(
            specs=(AdversarySpec(2, SPOOFER),), seed=3
        )
        same_a = AdversaryState(schedule, network, ("task", 0))
        same_b = AdversaryState(schedule, network, ("task", 0))
        other = AdversaryState(schedule, network, ("task", 1))
        assert same_a.advertised_location(2) == same_b.advertised_location(2)
        assert other.advertised_location(2) != same_a.advertised_location(2)

    def test_wrap_view_hides_suppressors_and_moves_spoofers(self):
        network = make_line_network(5, 100.0)
        schedule = AdversarySchedule(
            specs=(
                AdversarySpec(1, SUPPRESSOR),
                AdversarySpec(3, SPOOFER, spoof_offset_m=50.0),
            ),
            seed=3,
        )
        state = AdversaryState(schedule, network, ("task", 0))
        view = state.wrap_view(NodeView(network, 2))
        assert 1 not in view.neighbor_ids
        assert 3 in view.neighbor_ids
        assert view.location_of(3) != network.location_of(3)


class TestJammer:
    def test_jammer_requires_contended_model(self):
        config = EngineConfig(
            adversary=AdversarySchedule(specs=(AdversarySpec(2, JAMMER),))
        )
        with pytest.raises(ValueError, match="contended"):
            line_task(config)

    def test_jammer_saturates_the_contended_channel(self):
        network = make_line_network(5, 100.0)
        config = EngineConfig(
            transmission_model="contended",
            adversary=AdversarySchedule(
                specs=(AdversarySpec(2, JAMMER, jam_duty=0.9),), seed=7
            ),
        )
        (result,) = run_contended_tasks(
            network, [(0, 0, (4,))], GMPProtocol, config=config
        )
        assert result.perf is not None
        assert result.perf["adv.jam_frames"] > 0.0


class TestStateValidation:
    def test_schedule_must_be_non_empty(self):
        network = make_line_network(3, 100.0)
        with pytest.raises(ValueError):
            AdversaryState(EMPTY_ADVERSARY_SCHEDULE, network, ("task", 0))

    def test_node_ids_must_exist(self):
        network = make_line_network(3, 100.0)
        schedule = AdversarySchedule(specs=(AdversarySpec(99, DROPPER),))
        with pytest.raises(ValueError):
            AdversaryState(schedule, network, ("task", 0))
