"""Replay every committed fuzz fixture: shrunk findings stay findings.

Each ``fixtures/*.json`` file is a minimal repro the fuzzer once shrank out
of a campaign.  Replaying it must reproduce the very oracle verdict it was
committed with — this is how a one-off fuzz finding becomes a permanent
regression test (and how an engine change that *fixes* the underlying
behavior announces itself: the replay fails and the fixture gets retired).
"""

import pathlib

import pytest

from repro.fuzz import load_fixture, replay_fixture
from repro.fuzz.autopilot import FIXTURE_VERSION, FuzzFixture

FIXTURES = sorted(
    (pathlib.Path(__file__).resolve().parent / "fixtures").glob("*.json")
)


def test_fixtures_are_committed():
    assert len(FIXTURES) >= 3


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.name)
def test_fixture_replays_to_its_stored_verdict(path):
    outcome, fixture = replay_fixture(str(path))
    assert fixture.expected_failures  # a fixture always pins >= 1 oracle
    assert set(fixture.expected_failures).issubset(set(outcome.failures)), (
        f"{path.name} no longer reproduces {fixture.expected_failures}; "
        f"observed {outcome.failures}"
    )


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.name)
def test_fixture_round_trips_exactly(path):
    fixture = load_fixture(str(path))
    assert FuzzFixture.from_json_dict(fixture.to_json_dict()) == fixture


def test_unknown_fixture_version_rejected():
    fixture = load_fixture(str(FIXTURES[0]))
    data = fixture.to_json_dict()
    data["version"] = FIXTURE_VERSION + 1
    with pytest.raises(ValueError, match="version"):
        FuzzFixture.from_json_dict(data)
