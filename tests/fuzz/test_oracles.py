"""Oracle unit tests on synthetic task results and traces."""

import pytest

from repro.engine.stats import TaskResult
from repro.engine.trace import CopyRecord, FrameRecord, TaskTrace
from repro.fuzz import DEFAULT_ORACLE_CONFIG, OracleConfig, OracleReport
from repro.fuzz.oracles import delivery_ratio_of, evaluate_oracles


def make_result(
    destinations=(1, 2),
    delivered=(1, 2),
    trace=None,
    task_id=0,
):
    return TaskResult(
        task_id=task_id,
        protocol="GMP",
        source_id=0,
        destination_ids=tuple(destinations),
        delivered_hops={d: 3 for d in delivered},
        transmissions=10,
        energy_joules=0.1,
        duration_s=0.2,
        trace=trace,
    )


def make_trace(copies):
    trace = TaskTrace()
    trace.record(
        FrameRecord(
            time_s=0.0, sender_id=0, copies=tuple(copies), transmissions_charged=1
        )
    )
    return trace


def copy(receiver, perimeter=False, lost=False, dests=(5,)):
    return CopyRecord(
        receiver_id=receiver,
        destination_ids=tuple(dests),
        hop_count=1,
        in_perimeter_mode=perimeter,
        lost=lost,
    )


def by_name(reports, name):
    (report,) = [r for r in reports if r.name == name]
    return report


class TestDeliveryOracle:
    def test_triggers_when_benign_world_delivers(self):
        results = [make_result(delivered=())]
        reports = evaluate_oracles(results, 1.0, [])
        assert by_name(reports, "delivery_below_floor").triggered

    def test_silent_when_benign_world_is_broken_too(self):
        # A disconnected topology is not an adversary win.
        results = [make_result(delivered=())]
        reports = evaluate_oracles(results, 0.5, [])
        assert not by_name(reports, "delivery_below_floor").triggered

    def test_silent_above_the_floor(self):
        reports = evaluate_oracles([make_result()], 1.0, [])
        assert not by_name(reports, "delivery_below_floor").triggered

    def test_delivery_ratio_of_empty_batch_is_one(self):
        assert delivery_ratio_of([]) == 1.0
        assert delivery_ratio_of([make_result(delivered=(1,))]) == 0.5


class TestLoopOracle:
    def test_repeated_packet_state_is_a_loop(self):
        repeats = DEFAULT_ORACLE_CONFIG.loop_repeats
        trace = make_trace([copy(3)] * repeats)
        reports = evaluate_oracles([make_result(trace=trace)], 1.0, [])
        report = by_name(reports, "routing_loop")
        assert report.triggered
        assert "node 3" in report.detail

    def test_lost_copies_do_not_count(self):
        repeats = DEFAULT_ORACLE_CONFIG.loop_repeats
        trace = make_trace([copy(3, lost=True)] * (repeats * 2))
        reports = evaluate_oracles([make_result(trace=trace)], 1.0, [])
        assert not by_name(reports, "routing_loop").triggered

    def test_distinct_packet_states_do_not_count(self):
        trace = make_trace([copy(3, dests=(d,)) for d in range(8)])
        reports = evaluate_oracles([make_result(trace=trace)], 1.0, [])
        assert not by_name(reports, "routing_loop").triggered


class TestLivelockOracle:
    def test_failed_task_with_many_perimeter_copies(self):
        copies = [copy(i % 7, perimeter=True) for i in range(96)]
        result = make_result(delivered=(), trace=make_trace(copies))
        reports = evaluate_oracles([result], 0.0, [])
        assert by_name(reports, "perimeter_livelock").triggered

    def test_successful_task_is_not_a_livelock(self):
        copies = [copy(i % 7, perimeter=True) for i in range(200)]
        result = make_result(trace=make_trace(copies))  # all delivered
        reports = evaluate_oracles([result], 1.0, [])
        assert not by_name(reports, "perimeter_livelock").triggered


class TestNonTermination:
    def test_engine_errors_trigger(self):
        reports = evaluate_oracles([make_result()], 1.0, ["task 0: budget"])
        report = by_name(reports, "non_termination")
        assert report.triggered
        assert "budget" in report.detail

    def test_quiescent_runs_do_not(self):
        reports = evaluate_oracles([make_result()], 1.0, [])
        assert not by_name(reports, "non_termination").triggered


class TestConfigModel:
    def test_report_order_is_stable(self):
        names = [r.name for r in evaluate_oracles([make_result()], 1.0, [])]
        assert names == [
            "delivery_below_floor",
            "routing_loop",
            "perimeter_livelock",
            "non_termination",
        ]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OracleConfig(delivery_floor=0.0)
        with pytest.raises(ValueError):
            OracleConfig(loop_repeats=1)
        with pytest.raises(ValueError):
            OracleConfig(livelock_min_copies=0)

    def test_config_and_report_round_trip(self):
        config = OracleConfig(delivery_floor=0.5, loop_repeats=6)
        assert OracleConfig.from_json_dict(config.to_json_dict()) == config
        report = OracleReport(name="routing_loop", triggered=True, detail="x")
        assert OracleReport.from_json_dict(report.to_json_dict()) == report
