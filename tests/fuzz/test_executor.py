"""Executor tests: deterministic workloads, benign twins, stable digests."""

import pytest

from repro.fuzz import sample_scenario
from repro.fuzz.executor import (
    ScenarioOutcome,
    build_scenario_network,
    run_scenario,
    scenario_tasks,
)
from repro.fuzz.generator import ScenarioSpec


def small_spec(**overrides):
    base = dict(
        seed=41,
        node_count=60,
        field_size_m=500.0,
        protocol="GMP",
        transmission_model="protocol",
        task_count=2,
        group_size=3,
        link_loss_rate=0.0,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestWorkload:
    def test_tasks_are_deterministic(self):
        spec = small_spec()
        assert scenario_tasks(spec) == scenario_tasks(spec)

    def test_tasks_exclude_failed_and_adversarial_nodes(self):
        spec = sample_scenario(7, 0)
        excluded = set(spec.failed_node_ids) | set(spec.node_ids_of_adversaries())
        assert excluded  # the sampled case actually perturbs nodes
        for _, source, destinations in scenario_tasks(spec):
            assert source not in excluded
            assert not excluded.intersection(destinations)

    def test_prefix_stability_under_task_count_shrink(self):
        # Shrinking task_count must keep the surviving tasks bit-identical.
        full = scenario_tasks(small_spec(task_count=3))
        shrunk = scenario_tasks(small_spec(task_count=1))
        assert full[:1] == shrunk

    def test_too_few_unperturbed_nodes_rejected(self):
        spec = small_spec(
            node_count=4, group_size=2, failed_node_ids=(0, 1, 2)
        )
        with pytest.raises(ValueError):
            scenario_tasks(spec)

    def test_network_is_memoized_per_spec_shape(self):
        spec = small_spec()
        assert build_scenario_network(spec) is build_scenario_network(spec)


class TestRunScenario:
    def test_double_run_is_bit_identical(self):
        spec = sample_scenario(7, 0)
        a = run_scenario(spec)
        b = run_scenario(spec)
        assert a.results_digest == b.results_digest
        assert a == b

    def test_clean_spec_reuses_results_as_its_own_twin(self):
        outcome = run_scenario(small_spec())
        assert outcome.benign_delivery_ratio == outcome.delivery_ratio
        assert outcome.failures == ()

    def test_known_finding_fires_delivery_oracle(self):
        outcome = run_scenario(sample_scenario(7, 0))
        assert "delivery_below_floor" in outcome.failures
        assert outcome.benign_delivery_ratio >= outcome.delivery_ratio

    def test_outcome_round_trips_through_json(self):
        outcome = run_scenario(small_spec())
        assert (
            ScenarioOutcome.from_json_dict(outcome.to_json_dict()) == outcome
        )
