"""Generator tests: deterministic sampling and exact JSON round-trips."""

import pytest

from repro.adversary.schedule import JAMMER
from repro.fuzz import DEFAULT_FUZZ_LIMITS, FuzzLimits, ScenarioSpec, sample_scenario


class TestSampling:
    def test_same_index_same_scenario(self):
        assert sample_scenario(7, 3) == sample_scenario(7, 3)

    def test_scenarios_differ_across_indices_and_seeds(self):
        specs = {sample_scenario(7, i).seed for i in range(10)}
        assert len(specs) == 10
        assert sample_scenario(7, 0) != sample_scenario(8, 0)

    def test_sampled_specs_respect_invariants(self):
        for index in range(30):
            spec = sample_scenario(20060704, index)
            failed = set(spec.failed_node_ids)
            adversaries = set(spec.node_ids_of_adversaries())
            assert not failed & adversaries
            assert all(0 <= n < spec.node_count for n in failed | adversaries)
            assert 1 <= spec.group_size < spec.node_count
            if spec.transmission_model == "contended":
                assert spec.node_count <= DEFAULT_FUZZ_LIMITS.contended_node_cap

    def test_jammers_only_on_contended_scenarios(self):
        for index in range(60):
            spec = sample_scenario(20060704, index)
            has_jammer = any(a.behavior == JAMMER for a in spec.adversaries)
            if has_jammer:
                assert spec.transmission_model == "contended"

    def test_adversary_schedule_is_seeded_off_the_spec(self):
        spec = sample_scenario(7, 0)
        assert spec.adversaries  # seed 7 index 0 carries adversaries
        schedule = spec.adversary_schedule
        assert schedule.node_ids == spec.node_ids_of_adversaries()
        assert schedule.seed == spec.adversary_schedule.seed


class TestSpecModel:
    def test_json_round_trip_is_exact(self):
        for index in range(10):
            spec = sample_scenario(99, index)
            assert ScenarioSpec.from_json_dict(spec.to_json_dict()) == spec

    def test_benign_twin_strips_perturbations(self):
        spec = sample_scenario(7, 0)
        twin = spec.benign_twin()
        assert twin.link_loss_rate == 0.0
        assert twin.failed_node_ids == ()
        assert twin.adversaries == ()
        assert twin.seed == spec.seed
        assert twin.node_count == spec.node_count

    def test_describe_mentions_the_perturbations(self):
        spec = sample_scenario(7, 0)
        label = spec.describe()
        assert f"n={spec.node_count}" in label
        assert spec.protocol in label
        assert "adv=" in label

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec(
                seed=1,
                node_count=1,
                field_size_m=100.0,
                protocol="GMP",
                transmission_model="protocol",
                task_count=1,
                group_size=1,
                link_loss_rate=0.0,
            )
        with pytest.raises(ValueError):
            ScenarioSpec(
                seed=1,
                node_count=10,
                field_size_m=100.0,
                protocol="GMP",
                transmission_model="carrier-pigeon",
                task_count=1,
                group_size=2,
                link_loss_rate=0.0,
            )


class TestLimits:
    def test_empty_ranges_rejected(self):
        with pytest.raises(ValueError):
            FuzzLimits(node_counts=())
        with pytest.raises(ValueError):
            FuzzLimits(contended_fraction=1.5)

    def test_limits_round_trip_keys_are_stable(self):
        data = DEFAULT_FUZZ_LIMITS.to_json_dict()
        assert set(data) >= {
            "node_counts",
            "protocols",
            "adversary_counts",
            "behaviors",
            "contended_fraction",
        }
