"""Shrinker and results-store tests: greedy minimization, canonical bytes."""

import json

import pytest

from repro.fuzz import run_fuzz_campaign, sample_scenario, shrink_scenario
from repro.fuzz.executor import run_scenario
from repro.fuzz.shrink import _size_of


class TestShrink:
    def test_shrinks_a_known_finding_and_keeps_its_oracle(self):
        spec = sample_scenario(7, 0)
        expected = run_scenario(spec).failures
        assert expected  # precondition: seed 7 index 0 is a finding
        result = shrink_scenario(spec, expected, max_attempts=24)
        assert set(expected).issubset(result.outcome.failures)
        assert _size_of(result.spec) < _size_of(spec)
        assert result.accepted_steps >= 1
        assert result.attempts <= 24

    def test_shrinking_is_deterministic(self):
        spec = sample_scenario(7, 0)
        expected = run_scenario(spec).failures
        a = shrink_scenario(spec, expected, max_attempts=24)
        b = shrink_scenario(spec, expected, max_attempts=24)
        assert a.spec == b.spec
        assert a.attempts == b.attempts

    def test_rejects_empty_expectations_and_non_failing_specs(self):
        spec = sample_scenario(7, 0)
        with pytest.raises(ValueError):
            shrink_scenario(spec, ())
        clean = sample_scenario(7, 2)
        assert run_scenario(clean).failures == ()
        with pytest.raises(ValueError):
            shrink_scenario(clean, ("delivery_below_floor",))


class TestStore:
    def test_campaign_double_run_is_byte_identical(self):
        a = run_fuzz_campaign(7, 2, max_shrink_attempts=16)
        b = run_fuzz_campaign(7, 2, max_shrink_attempts=16)
        assert a.canonical_bytes() == b.canonical_bytes()
        assert a.digest() == b.digest()

    def test_canonical_bytes_are_sorted_json_with_trailing_newline(self):
        store = run_fuzz_campaign(7, 1, shrink=False)
        raw = store.canonical_bytes()
        assert raw.endswith(b"\n")
        payload = json.loads(raw)
        assert payload["root_seed"] == 7
        assert payload["budget"] == 1
        assert len(payload["outcomes"]) == 1
        assert raw == (
            json.dumps(payload, sort_keys=True, indent=2) + "\n"
        ).encode("utf-8")

    def test_findings_recorded_with_shrunk_repro(self):
        store = run_fuzz_campaign(7, 1, max_shrink_attempts=16)
        assert store.finding_count == 1
        (finding,) = store.findings
        assert finding.index == 0
        assert finding.shrunk is not None
        assert finding.outcome.failures

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            run_fuzz_campaign(7, 0)

    def test_save_writes_canonical_bytes(self, tmp_path):
        store = run_fuzz_campaign(7, 1, shrink=False)
        path = tmp_path / "store.json"
        store.save(str(path))
        assert path.read_bytes() == store.canonical_bytes()
