"""Shared fixtures: small deterministic networks used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Point
from repro.network import RadioConfig, build_network
from repro.network.topology import grid_topology, uniform_random_topology


def make_line_network(node_count: int, spacing: float, radio_range: float = 150.0):
    """Nodes along the x axis: node i at (i * spacing, 0)."""
    points = [Point(i * spacing, 0.0) for i in range(node_count)]
    return build_network(points, RadioConfig(radio_range_m=radio_range))


def make_grid_network(side: int, spacing: float, radio_range: float = 150.0):
    """A side x side grid with the given spacing, node 0 at the origin."""
    points = [
        Point(col * spacing, row * spacing)
        for row in range(side)
        for col in range(side)
    ]
    return build_network(points, RadioConfig(radio_range_m=radio_range))


@pytest.fixture(scope="session")
def dense_network():
    """A connected, moderately dense random deployment (shared, read-only)."""
    rng = np.random.default_rng(20060704)
    points = uniform_random_topology(300, 800.0, 800.0, rng)
    network = build_network(points, RadioConfig(radio_range_m=150.0))
    assert network.is_connected()
    return network


@pytest.fixture(scope="session")
def grid_network():
    """A 10x10 grid with 100 m spacing (radio range 150 m, so 8-connected)."""
    return make_grid_network(10, 100.0)


@pytest.fixture()
def rng():
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(7)
