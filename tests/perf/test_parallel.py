"""Tests for the deterministic process-pool fan-out."""

from repro.perf.parallel import run_units


def _unit(a, b):
    """Module-level so it is picklable by worker processes."""
    return (a * 10 + b, a - b)


class TestRunUnits:
    def test_serial_matches_list_comprehension(self):
        args = [(i, j) for i in range(4) for j in range(3)]
        assert run_units(_unit, args, workers=1) == [_unit(*a) for a in args]

    def test_parallel_matches_serial_in_order(self):
        args = [(i, j) for i in range(5) for j in range(4)]
        serial = run_units(_unit, args, workers=1)
        parallel = run_units(_unit, args, workers=3)
        assert parallel == serial

    def test_progress_called_once_per_unit(self):
        args = [(i, 0) for i in range(5)]
        messages = []
        run_units(
            _unit,
            args,
            workers=1,
            progress=messages.append,
            describe=lambda i: f"unit-{i}",
        )
        assert len(messages) == 5
        assert messages[0] == "unit-0 done (1/5)"
        assert messages[-1] == "unit-4 done (5/5)"

    def test_empty_and_single(self):
        assert run_units(_unit, [], workers=4) == []
        assert run_units(_unit, [(2, 1)], workers=4) == [(21, 1)]
