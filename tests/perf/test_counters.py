"""Tests for the perf counter plumbing (hit rates, deltas, stage timing)."""

from repro.perf.counters import CacheCounter, PerfCounters, StageTimer


class TestCacheCounter:
    def test_hit_rate(self):
        counter = CacheCounter("c")
        assert counter.hit_rate == 0.0
        counter.hits = 3
        counter.misses = 1
        assert counter.hit_rate == 0.75


class TestPerfCounters:
    def test_snapshot_is_flat_and_detached(self):
        perf = PerfCounters()
        perf.counter("fermat").hits += 2
        perf.counter("fermat").misses += 1
        perf.add_stage_seconds("sweep", 0.5)
        snap = perf.snapshot()
        assert snap["fermat.hits"] == 2
        assert snap["fermat.misses"] == 1
        assert snap["stage.sweep"] == 0.5
        perf.counter("fermat").hits += 10
        assert snap["fermat.hits"] == 2  # a snapshot never moves

    def test_delta_and_merge_round_trip(self):
        perf = PerfCounters()
        perf.counter("tree").hits += 1
        before = perf.snapshot()
        perf.counter("tree").hits += 4
        perf.counter("tree").misses += 2
        perf.add_stage_seconds("route", 1.25)
        delta = perf.delta_since(before)
        assert delta == {"tree.hits": 4, "tree.misses": 2, "stage.route": 1.25}

        other = PerfCounters()
        other.counter("tree").hits += 10
        other.merge_delta(delta)
        assert other.counter("tree").hits == 14
        assert other.counter("tree").misses == 2
        assert other.snapshot()["stage.route"] == 1.25

    def test_reset(self):
        perf = PerfCounters()
        perf.counter("x").hits += 1
        perf.add_stage_seconds("s", 2.0)
        perf.reset()
        assert perf.snapshot() == {}

    def test_render_mentions_rates_and_stages(self):
        perf = PerfCounters()
        perf.counter("fermat").hits += 3
        perf.counter("fermat").misses += 1
        perf.add_stage_seconds("sweep", 0.25)
        text = perf.render()
        assert "fermat" in text
        assert "75.0%" in text
        assert "sweep" in text


class TestStageTimer:
    def test_accumulates_with_injected_clock(self):
        ticks = iter([10.0, 12.5])
        perf = PerfCounters()
        with StageTimer("sweep", clock=lambda: next(ticks), counters=perf):
            pass
        assert perf.snapshot()["stage.sweep"] == 2.5

    def test_noop_without_clock(self):
        perf = PerfCounters()
        with StageTimer("sweep", counters=perf):
            pass
        assert perf.snapshot() == {}
