"""Direction-aware benchmark gate: minimize vs maximize semantics."""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

spec = importlib.util.spec_from_file_location(
    "bench_compare", REPO_ROOT / "scripts" / "bench_compare.py"
)
assert spec is not None and spec.loader is not None
bench_compare = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_compare)

BenchEntry = bench_compare.BenchEntry


def _export(path, benches):
    """Write a minimal pytest-benchmark JSON export."""
    payload = {
        "benchmarks": [
            {
                "fullname": name,
                "stats": {"median": median},
                "extra_info": extra,
            }
            for name, median, extra in benches
        ]
    }
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


# ----------------------------------------------------------------------
# load_entries
# ----------------------------------------------------------------------


def test_load_entries_defaults_to_minimize_median(tmp_path):
    path = _export(tmp_path / "b.json", [("t::a", 0.5, {})])
    entries = bench_compare.load_entries(path)
    assert entries == {"t::a": BenchEntry(value=0.5, direction="minimize")}


def test_load_entries_reads_direction_and_value(tmp_path):
    path = _export(
        tmp_path / "b.json",
        [("t::thru", 0.1, {"direction": "maximize", "value": 125.0})],
    )
    entries = bench_compare.load_entries(path)
    assert entries["t::thru"] == BenchEntry(value=125.0, direction="maximize")


def test_load_entries_rejects_unknown_direction(tmp_path):
    path = _export(tmp_path / "b.json", [("t::a", 0.5, {"direction": "sideways"})])
    with pytest.raises(ValueError):
        bench_compare.load_entries(path)


def test_load_medians_legacy_view(tmp_path):
    path = _export(
        tmp_path / "b.json",
        [("t::a", 0.5, {}), ("t::b", 0.1, {"direction": "maximize", "value": 9.0})],
    )
    assert bench_compare.load_medians(path) == {"t::a": 0.5, "t::b": 9.0}


# ----------------------------------------------------------------------
# entry_fails: the direction semantics
# ----------------------------------------------------------------------


def _min(value):
    return BenchEntry(value=value, direction="minimize")


def _max(value):
    return BenchEntry(value=value, direction="maximize")


def test_minimize_fails_on_upward_drift():
    assert not bench_compare.entry_fails(_min(1.0), _min(1.2), max_ratio=1.3)
    assert bench_compare.entry_fails(_min(1.0), _min(1.5), max_ratio=1.3)
    # Getting faster never fails a runtime bench.
    assert not bench_compare.entry_fails(_min(1.0), _min(0.1), max_ratio=1.3)


def test_maximize_fails_on_downward_drift():
    # Throughput dropping below base/max_ratio is the regression.
    assert bench_compare.entry_fails(_max(100.0), _max(50.0), max_ratio=1.3)
    assert not bench_compare.entry_fails(_max(100.0), _max(90.0), max_ratio=1.3)
    # Getting faster never fails a throughput bench.
    assert not bench_compare.entry_fails(_max(100.0), _max(500.0), max_ratio=1.3)


def test_maximize_boundary_is_inverse_ratio():
    assert not bench_compare.entry_fails(_max(130.0), _max(100.1), max_ratio=1.3)
    assert bench_compare.entry_fails(_max(130.0), _max(99.0), max_ratio=1.3)


def test_direction_mismatch_always_fails():
    assert bench_compare.entry_fails(_min(1.0), _max(1.0), max_ratio=10.0)
    assert bench_compare.entry_fails(_max(1.0), _min(1.0), max_ratio=10.0)


# ----------------------------------------------------------------------
# compare end to end
# ----------------------------------------------------------------------


def test_compare_passes_within_band(capsys):
    baseline = {"t::a": _min(1.0), "t::thru": _max(100.0)}
    fresh = {"t::a": _min(1.1), "t::thru": _max(95.0)}
    assert bench_compare.compare(baseline, fresh, max_ratio=1.3) == 0
    out = capsys.readouterr().out
    assert "REGRESSION" not in out


def test_compare_flags_throughput_regression(capsys):
    baseline = {"t::thru": _max(100.0)}
    fresh = {"t::thru": _max(40.0)}
    assert bench_compare.compare(baseline, fresh, max_ratio=1.3) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_compare_throughput_speedup_is_not_a_regression(capsys):
    """A 10x throughput gain has ratio 10 > max_ratio — must still pass."""
    baseline = {"t::thru": _max(100.0)}
    fresh = {"t::thru": _max(1000.0)}
    assert bench_compare.compare(baseline, fresh, max_ratio=1.3) == 0


def test_compare_flags_direction_change(capsys):
    baseline = {"t::x": _min(1.0)}
    fresh = {"t::x": _max(1.0)}
    assert bench_compare.compare(baseline, fresh, max_ratio=10.0) == 1
    assert "DIRECTION CHANGED" in capsys.readouterr().out


def test_compare_removed_fails_and_added_gated_by_allow_new(capsys):
    baseline = {"t::old": _min(1.0)}
    fresh = {"t::new": _min(1.0)}
    assert bench_compare.compare(baseline, fresh, max_ratio=1.3) == 2
    assert bench_compare.compare(baseline, fresh, max_ratio=1.3, allow_new=True) == 1


def test_main_round_trip(tmp_path):
    base_path = _export(
        tmp_path / "base.json",
        [
            ("t::a", 1.0, {}),
            ("t::thru", 0.2, {"direction": "maximize", "value": 100.0}),
        ],
    )
    fresh_path = _export(
        tmp_path / "fresh.json",
        [
            ("t::a", 1.1, {}),
            ("t::thru", 0.3, {"direction": "maximize", "value": 110.0}),
        ],
    )
    assert (
        bench_compare.main([fresh_path, "--baseline", base_path, "--max-ratio", "1.3"])
        == 0
    )
    bad_path = _export(
        tmp_path / "bad.json",
        [
            ("t::a", 1.0, {}),
            ("t::thru", 0.2, {"direction": "maximize", "value": 10.0}),
        ],
    )
    assert (
        bench_compare.main([bad_path, "--baseline", base_path, "--max-ratio", "1.3"])
        == 1
    )
