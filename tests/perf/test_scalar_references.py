"""The SCALAR_REFERENCES registry must describe the kernels that exist.

reprolint R013 checks this statically against the project call graph; this
test checks the same contract at runtime — every public kernel is
registered, and every registered dotted path resolves to a real callable —
so the registry cannot drift even when the linter is not run.
"""

from __future__ import annotations

import importlib
import inspect

from repro.perf import kernels

EXEMPT = {"set_vectorized_enabled", "vectorized_enabled", "vectorized_disabled"}


def _public_kernels():
    return {
        name
        for name, obj in vars(kernels).items()
        if inspect.isfunction(obj)
        and obj.__module__ == kernels.__name__
        and not name.startswith("_")
        and name not in EXEMPT
    }


def _resolve(dotted: str):
    parts = dotted.split(".")
    for cut in range(len(parts), 0, -1):
        module_name = ".".join(parts[:cut])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        for attr in parts[cut:]:
            obj = getattr(obj, attr)
        return obj
    raise AssertionError(f"scalar reference {dotted!r} does not resolve")


def test_every_public_kernel_is_registered():
    assert set(kernels.SCALAR_REFERENCES) == _public_kernels()


def test_every_reference_resolves_to_a_callable():
    for name, dotted in sorted(kernels.SCALAR_REFERENCES.items()):
        target = _resolve(dotted)
        assert callable(target), f"{name}: {dotted} is not callable"
