"""Bit-identity property tests for the batched geometry kernels.

Every batch kernel in :mod:`repro.perf.kernels` must produce *exactly* the
floats of its scalar reference — ``==``, never ``allclose`` — over seeded
random inputs, including the degenerate geometries (collinear, collocated,
wide-angle, near-tolerance) where scalar branch order matters most.  Each
pool is at least 1000 instances; a single last-ulp divergence fails loudly.
"""

import math
import random

import numpy as np
import pytest

from repro.geometry import Point, distance
from repro.geometry.fermat import fermat_point
from repro.perf.counters import GLOBAL_COUNTERS
from repro.perf.kernels import (
    MIN_BATCH,
    disk_mask,
    distances_sq_to,
    distances_to,
    fermat_point_batch,
    gabriel_keep_mask,
    group_distance_sums,
    nearest_index,
    pair_indices,
    pairwise_distances,
    reduction_ratio_batch,
    rng_keep_mask,
    set_vectorized_enabled,
    vectorized_disabled,
    vectorized_enabled,
)
from repro.steiner.reduction_ratio import reduction_ratio_point


def _random_point(rng: random.Random, lo: float = -500.0, hi: float = 1500.0) -> Point:
    return Point(rng.uniform(lo, hi), rng.uniform(lo, hi))


def _triple_pool(count: int) -> list:
    """Seeded triples cycling through general and degenerate geometries."""
    rng = random.Random(20240806)
    triples = []
    while len(triples) < count:
        mode = len(triples) % 8
        a = _random_point(rng)
        if mode == 0:  # general position
            b, c = _random_point(rng), _random_point(rng)
        elif mode == 1:  # collinear (both sides of a)
            dx, dy = rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)
            t1, t2 = rng.uniform(1.0, 300.0), rng.uniform(-300.0, -1.0)
            b = Point(a.x + t1 * dx, a.y + t1 * dy)
            c = Point(a.x + t2 * dx, a.y + t2 * dy)
        elif mode == 2:  # collinear, same side (middle point optimal)
            dx, dy = rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)
            t1, t2 = rng.uniform(1.0, 150.0), rng.uniform(150.0, 300.0)
            b = Point(a.x + t1 * dx, a.y + t1 * dy)
            c = Point(a.x + t2 * dx, a.y + t2 * dy)
        elif mode == 3:  # first two collocated
            b = Point(a.x, a.y)
            c = _random_point(rng)
        elif mode == 4:  # last two collocated
            b = _random_point(rng)
            c = Point(b.x, b.y)
        elif mode == 5:  # all three collocated
            b = Point(a.x, a.y)
            c = Point(a.x, a.y)
        elif mode == 6:  # collocated within the 1e-12 tolerance
            b = Point(a.x + 4e-13, a.y - 4e-13)
            c = _random_point(rng)
        else:  # wide angle (>= 120 degrees) at a
            theta = rng.uniform(0.0, 2.0 * math.pi)
            spread = rng.uniform(2.2, math.pi)  # > 2*pi/3
            r1, r2 = rng.uniform(10.0, 400.0), rng.uniform(10.0, 400.0)
            b = Point(a.x + r1 * math.cos(theta), a.y + r1 * math.sin(theta))
            c = Point(
                a.x + r2 * math.cos(theta + spread),
                a.y + r2 * math.sin(theta + spread),
            )
        triples.append((a, b, c))
    return triples


def test_fermat_point_batch_bit_identical() -> None:
    triples = _triple_pool(1200)
    arr = np.array([[a.x, a.y, b.x, b.y, c.x, c.y] for a, b, c in triples])
    batch = fermat_point_batch(arr)
    for i, (a, b, c) in enumerate(triples):
        reference = fermat_point(a, b, c)
        assert batch[i, 0] == reference[0], (i, a, b, c)
        assert batch[i, 1] == reference[1], (i, a, b, c)


def test_reduction_ratio_batch_bit_identical() -> None:
    triples = _triple_pool(1200)
    # Group by shared source in chunks, as rrSTR's seeding does.
    for start in range(0, len(triples), 100):
        chunk = triples[start : start + 100]
        s = chunk[0][0]
        us = np.array([[u.x, u.y] for _, u, _ in chunk])
        vs = np.array([[v.x, v.y] for _, _, v in chunk])
        rr_arr, t_arr = reduction_ratio_batch(s, us, vs)
        for i, (_, u, v) in enumerate(chunk):
            rr, t = reduction_ratio_point(s, u, v)
            assert rr_arr[i] == rr, (start + i, s, u, v)
            assert t_arr[i, 0] == t[0] and t_arr[i, 1] == t[1], (start + i, s, u, v)


def test_reduction_ratio_batch_degenerate_direct() -> None:
    """Both destinations collocated with the source: ratio defined as 0."""
    s = Point(10.0, -3.0)
    us = np.array([[s.x, s.y]] * MIN_BATCH)
    rr_arr, _ = reduction_ratio_batch(s, us, us)
    for i in range(MIN_BATCH):
        rr, _ = reduction_ratio_point(s, s, s)
        assert rr_arr[i] == rr == 0.0


def test_pair_indices_matches_nested_loop_order() -> None:
    for count in (0, 1, 2, 3, 7, 40):
        row, col = pair_indices(count)
        expected = [(i, j) for i in range(count) for j in range(i + 1, count)]
        assert list(zip(row.tolist(), col.tolist())) == expected


def test_disk_mask_bit_identical() -> None:
    rng = random.Random(99)
    checked = 0
    while checked < 1500:
        n = rng.randint(1, 40)
        xs = np.array([rng.uniform(0.0, 1000.0) for _ in range(n)])
        ys = np.array([rng.uniform(0.0, 1000.0) for _ in range(n)])
        px, py = rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)
        radius_sq = rng.uniform(0.0, 300.0) ** 2
        mask = disk_mask(xs, ys, px, py, radius_sq)
        for i in range(n):
            dx = xs[i] - px
            dy = ys[i] - py
            assert bool(mask[i]) == (dx * dx + dy * dy <= radius_sq)
        checked += n
    # Boundary: a point exactly on the circle must be included.
    on_circle = disk_mask(np.array([3.0]), np.array([4.0]), 0.0, 0.0, 25.0)
    assert bool(on_circle[0])


def test_unit_disk_rows_bit_identical_to_grid_build() -> None:
    """unit_disk_rows == the per-node SpatialGrid build, row for row.

    The scalar reference is ``WirelessNetwork._build_neighbor_lists`` — the
    construction path a ``soa_disabled()`` network takes — over seeded
    deployments including negative coordinates, cell-boundary points,
    exact-radius pairs and coincident nodes.
    """
    from repro.network.graph import WirelessNetwork
    from repro.network.radio import RadioConfig
    from repro.perf.kernels import unit_disk_rows
    from repro.perf.soa import soa_disabled

    rng = random.Random(20260808)
    radio = RadioConfig()  # 150 m range
    checked = 0
    for trial in range(8):
        n = rng.randint(1, 300)
        lo, hi = rng.choice([(0.0, 120.0), (0.0, 600.0), (-500.0, 500.0)])
        pts = [Point(rng.uniform(lo, hi), rng.uniform(lo, hi)) for _ in range(n)]
        if trial % 2:
            anchor = pts[0]
            pts.append(Point(anchor.x + radio.radio_range_m, anchor.y))  # exact radius
            pts.append(Point(anchor.x, anchor.y))  # coincident
            pts.append(Point(0.0, 0.0))  # cell-boundary corner
        xs = np.array([p.x for p in pts], dtype=float)
        ys = np.array([p.y for p in pts], dtype=float)
        indptr, indices = unit_disk_rows(xs, ys, radio.radio_range_m)
        with soa_disabled():
            reference = WirelessNetwork(pts, radio)
        assert indptr[0] == 0 and indptr[-1] == len(indices)
        for i in range(len(pts)):
            row = tuple(indices[indptr[i] : indptr[i + 1]].tolist())
            assert row == reference.neighbors_of(i), (trial, i)
        checked += len(pts)
    assert checked >= 1000

    empty_ptr, empty_idx = unit_disk_rows(np.empty(0), np.empty(0), 150.0)
    assert empty_ptr.tolist() == [0] and empty_idx.shape == (0,)
    with pytest.raises(ValueError):
        unit_disk_rows(np.zeros(2), np.zeros(2), 0.0)


def _neighbor_clusters(seed: int, clusters: int) -> list:
    """Random radio neighborhoods: a center plus its in-range neighbor ids."""
    rng = random.Random(seed)
    out = []
    for _ in range(clusters):
        u = Point(rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0))
        m = rng.randint(MIN_BATCH, 35)
        neighbors = []
        for _ in range(m):
            theta = rng.uniform(0.0, 2.0 * math.pi)
            r = rng.uniform(0.0, 150.0)
            neighbors.append(
                Point(u.x + r * math.cos(theta), u.y + r * math.sin(theta))
            )
        out.append((u, neighbors))
    return out


def test_planarization_masks_match_scalar_witness_loops() -> None:
    """gabriel/rng keep masks == the scalar loops, via the planar call sites."""
    from repro.network.planar import gabriel_neighbors, rng_neighbors

    edges = 0
    for u, neighbors in _neighbor_clusters(7, 60):
        locations = [u] + neighbors
        ids = list(range(1, len(locations)))

        def location_of(i: int) -> Point:
            return locations[i]

        for planarize in (gabriel_neighbors, rng_neighbors):
            assert vectorized_enabled()
            vec = planarize(0, ids, location_of)
            with vectorized_disabled():
                scalar = planarize(0, ids, location_of)
            assert vec == scalar
        edges += len(ids)
    assert edges >= 1000


def test_keep_masks_direct_against_scalar_tests() -> None:
    """The raw masks, checked against independent witness-loop transcriptions."""
    for u, neighbors in _neighbor_clusters(13, 40):
        coords = np.array([[p.x, p.y] for p in neighbors])
        g_mask = gabriel_keep_mask(u, coords)
        r_mask = rng_keep_mask(u, coords)
        for v_idx, v in enumerate(neighbors):
            center = Point((u.x + v.x) / 2.0, (u.y + v.y) / 2.0)
            radius_sq = ((u.x - v.x) ** 2 + (u.y - v.y) ** 2) / 4.0
            g_witnessed = any(
                (w.x - center.x) ** 2 + (w.y - center.y) ** 2 < radius_sq - 1e-12
                for w_idx, w in enumerate(neighbors)
                if w_idx != v_idx
            )
            assert bool(g_mask[v_idx]) == (not g_witnessed)
            uv_sq = (u.x - v.x) ** 2 + (u.y - v.y) ** 2
            r_witnessed = any(
                (u.x - w.x) ** 2 + (u.y - w.y) ** 2 < uv_sq - 1e-12
                and (v.x - w.x) ** 2 + (v.y - w.y) ** 2 < uv_sq - 1e-12
                for w_idx, w in enumerate(neighbors)
                if w_idx != v_idx
            )
            assert bool(r_mask[v_idx]) == (not r_witnessed)


def test_distances_to_bit_identical() -> None:
    rng = random.Random(55)
    checked = 0
    while checked < 1200:
        n = rng.randint(1, 60)
        pts = [_random_point(rng, 0.0, 1000.0) for _ in range(n)]
        target = _random_point(rng, 0.0, 1000.0)
        arr = np.array([[p.x, p.y] for p in pts])
        batch = distances_to(arr, target)
        for i, p in enumerate(pts):
            assert batch[i] == distance(p, target)
        checked += n


def test_pairwise_distances_bit_identical() -> None:
    rng = random.Random(56)
    pts = [_random_point(rng, 0.0, 1000.0) for _ in range(40)]
    arr = np.array([[p.x, p.y] for p in pts])
    matrix = pairwise_distances(arr)
    for i, p in enumerate(pts):
        for j, q in enumerate(pts):
            assert matrix[i, j] == distance(q, p)  # column j == distances to q
    assert 40 * 40 >= 1000


def test_next_hop_kernels_match_inline_fallbacks() -> None:
    """distances_sq_to / nearest_index / group_distance_sums == the einsum
    fallbacks inlined at their call sites in repro.routing.greedy."""
    rng = random.Random(77)
    checked = 0
    while checked < 1000:
        n = rng.randint(1, 30)
        locations = np.array(
            [[rng.uniform(0.0, 1000.0), rng.uniform(0.0, 1000.0)] for _ in range(n)]
        )
        target = _random_point(rng, 0.0, 1000.0)
        deltas = locations - np.asarray([target[0], target[1]])
        expected_sq = np.einsum("ij,ij->i", deltas, deltas)
        got_sq = distances_sq_to(locations, target)
        assert (got_sq == expected_sq).all()
        assert nearest_index(locations, target) == int(np.argmin(expected_sq))

        group = [_random_point(rng, 0.0, 1000.0) for _ in range(rng.randint(1, 12))]
        targets = np.asarray([[p[0], p[1]] for p in group])
        diff = locations[:, None, :] - targets[None, :, :]
        expected_sums = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff)).sum(axis=1)
        got_sums = group_distance_sums(locations, group)
        assert (got_sums == expected_sums).all()
        checked += n


def test_rrstr_trees_identical_vectorized_on_off() -> None:
    """End-to-end A/B: full rrSTR trees are byte-identical either way."""
    from repro.perf.cache import clear_caches
    from repro.steiner.rrstr import RRStrConfig, rrstr

    def signature(tree):
        return tuple(
            (v.vid, repr(v.location[0]), repr(v.location[1]), tree.parent_of(v.vid))
            for v in tree.vertices()
        )

    rng = random.Random(404)
    configs = [RRStrConfig(), RRStrConfig(radio_aware=False), RRStrConfig(refine=False)]
    for trial in range(30):
        k = rng.randint(2, 30)
        s = _random_point(rng, 0.0, 2000.0)
        dests = [(i, _random_point(rng, 0.0, 2000.0)) for i in range(k)]
        config = configs[trial % len(configs)]
        clear_caches()
        vec_tree = rrstr(s, dests, 150.0, config)
        clear_caches()
        with vectorized_disabled():
            scalar_tree = rrstr(s, dests, 150.0, config)
        assert signature(vec_tree) == signature(scalar_tree), trial


def test_toggle_and_context_manager() -> None:
    assert vectorized_enabled()
    set_vectorized_enabled(False)
    try:
        assert not vectorized_enabled()
        with vectorized_disabled():
            assert not vectorized_enabled()
        assert not vectorized_enabled()  # restored to the outer (off) state
    finally:
        set_vectorized_enabled(True)
    assert vectorized_enabled()
    with vectorized_disabled():
        assert not vectorized_enabled()
    assert vectorized_enabled()


def test_kernels_record_batch_counters() -> None:
    before = GLOBAL_COUNTERS.snapshot()
    fermat_point_batch(np.array([[0.0, 0.0, 100.0, 0.0, 50.0, 80.0]] * 7))
    disk_mask(np.zeros(5), np.zeros(5), 0.0, 0.0, 1.0)
    delta = GLOBAL_COUNTERS.delta_since(before)
    assert delta.get("vector.fermat_point.batches", 0.0) >= 1.0
    assert delta.get("vector.fermat_point.items", 0.0) >= 7.0
    assert delta.get("vector.grid_disk.batches", 0.0) >= 1.0
    assert delta.get("vector.grid_disk.items", 0.0) >= 5.0


def test_empty_batches() -> None:
    assert fermat_point_batch(np.empty((0, 6))).shape == (0, 2)
    rr, t = reduction_ratio_batch(Point(0.0, 0.0), np.empty((0, 2)), np.empty((0, 2)))
    assert rr.shape == (0,) and t.shape == (0, 2)
    assert group_distance_sums(np.empty((0, 2)), [Point(1.0, 1.0)]).shape == (0,)


@pytest.fixture(autouse=True)
def _ensure_vectorized_restored():
    yield
    set_vectorized_enabled(True)
