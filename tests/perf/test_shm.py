"""The zero-copy shared-memory network plane (repro.perf.shm).

Pins the plane's four contracts: byte-identical results attach-vs-rebuild,
the A/B switch, copy-on-write isolation of worker-local mutation, and
guaranteed segment cleanup (including stale-name reclaim and a worker
killed mid-run).
"""

from __future__ import annotations

import glob
import os
import signal

import multiprocessing
import numpy as np
import pytest

from repro.engine.digest import batch_digest
from repro.geometry import Point
from repro.experiments import sweep as sweep_mod
from repro.experiments.config import PaperConfig
from repro.experiments.sweep import build_protocol, cached_network, make_network, run_tasks
from repro.perf import shm
from repro.perf.shm import (
    SharedNetworkPlane,
    attach_manifest,
    attached_network,
    install_worker_manifests,
    peak_published_bytes,
    shared_plane_disabled,
    shared_plane_enabled,
)
from repro.perf.soa import soa_disabled
from repro.sessions.workload import MulticastTask

CONFIG = PaperConfig(node_count=250)

TASKS = (
    MulticastTask(task_id=0, source_id=3, destination_ids=(10, 40, 77, 121)),
    MulticastTask(task_id=1, source_id=200, destination_ids=(5, 99)),
)


def _dev_shm_planes():
    return sorted(glob.glob("/dev/shm/*gmp-plane-*"))


@pytest.fixture(autouse=True)
def _clean_worker_state():
    """Isolate the module-level worker caches and the network memo."""
    saved_manifests = dict(shm._WORKER_MANIFESTS)
    saved_memo = dict(sweep_mod._NETWORK_MEMO)
    shm._WORKER_MANIFESTS.clear()
    sweep_mod._NETWORK_MEMO.clear()
    yield
    shm._WORKER_MANIFESTS.clear()
    shm._WORKER_MANIFESTS.update(saved_manifests)
    for segment in shm._ATTACHED_SEGMENTS.values():
        try:
            segment.close()
        except BufferError:
            pass
    shm._ATTACHED_SEGMENTS.clear()
    sweep_mod._NETWORK_MEMO.clear()
    sweep_mod._NETWORK_MEMO.update(saved_memo)


def _published_plane():
    """A plane holding CONFIG's deployment, plus the (still fresh) network."""
    network = make_network(CONFIG, 0)
    plane = SharedNetworkPlane(seed=CONFIG.master_seed)
    assert plane.publish((CONFIG, 0, None), network)
    return plane, network


class TestPublishAttachParity:
    def test_attached_equals_fresh_build(self):
        plane, _ = _published_plane()
        try:
            manifest = plane.manifests()[(CONFIG, 0, None)]
            attached = attach_manifest(manifest)
            fresh = make_network(CONFIG, 0)
            assert attached is not None
            assert attached.node_count == fresh.node_count == 250
            for node_id in (0, 17, 128, 249):
                assert attached.neighbors_of(node_id) == fresh.neighbors_of(node_id)
                assert attached.gabriel_neighbors_of(
                    node_id
                ) == fresh.gabriel_neighbors_of(node_id)
                assert attached.location_of(node_id) == fresh.location_of(node_id)
        finally:
            plane.close()

    def test_task_digests_identical_attach_vs_build(self):
        plane, _ = _published_plane()
        try:
            attached = attach_manifest(plane.manifests()[(CONFIG, 0, None)])
            fresh = make_network(CONFIG, 0)
            digests = []
            for network in (attached, fresh):
                results = run_tasks(network, build_protocol(("GMP",)), TASKS)
                digests.append(batch_digest(results))
            assert digests[0] == digests[1]
        finally:
            plane.close()

    def test_attach_is_zero_copy(self):
        plane, _ = _published_plane()
        try:
            attached = attach_manifest(plane.manifests()[(CONFIG, 0, None)])
            assert not attached.locations.flags.writeable
            assert attached.locations.base is not None
            assert not attached.alive.flags.writeable
        finally:
            plane.close()

    def test_publish_is_idempotent_per_key(self):
        plane, network = _published_plane()
        try:
            before = plane.published_bytes()
            assert plane.publish((CONFIG, 0, None), network)
            assert plane.published_bytes() == before
            assert len(plane.manifests()) == 1
        finally:
            plane.close()

    def test_peak_published_bytes_high_water_mark(self):
        baseline = peak_published_bytes()
        plane, _ = _published_plane()
        try:
            assert plane.published_bytes() > 0
            assert peak_published_bytes() >= max(baseline, plane.published_bytes())
        finally:
            plane.close()
        assert peak_published_bytes() >= plane.published_bytes()  # peak persists


class TestCopyOnWrite:
    def test_mutation_stays_worker_local(self):
        plane, _ = _published_plane()
        try:
            manifest = plane.manifests()[(CONFIG, 0, None)]
            first = attach_manifest(manifest)
            victim = first.neighbors_of(0)[0]
            first.fail_node(victim)
            first.drain_energy(victim, 0.25)
            second = attach_manifest(manifest)
            fresh = make_network(CONFIG, 0)
            assert victim not in second.failed_nodes
            assert second.neighbors_of(victim) == fresh.neighbors_of(victim)
            assert victim in first.failed_nodes
            assert bool(second.alive[victim])
            assert not bool(first.alive[victim])
        finally:
            plane.close()

    def test_mutated_attached_equals_mutated_fresh(self):
        plane, _ = _published_plane()
        try:
            attached = attach_manifest(plane.manifests()[(CONFIG, 0, None)])
            fresh = make_network(CONFIG, 0)
            for network in (attached, fresh):
                network.fail_node(42)
                network.move_node(7, Point(80.0, 60.0))
            for node_id in (0, 7, 41, 43, 120):
                assert attached.neighbors_of(node_id) == fresh.neighbors_of(node_id)
            assert attached.location_of(7) == fresh.location_of(7)
        finally:
            plane.close()

    def test_segment_bytes_untouched_by_mutation(self):
        plane, _ = _published_plane()
        try:
            manifest = plane.manifests()[(CONFIG, 0, None)]
            segment = shm._attach_segment(manifest.segment)
            before = bytes(segment.buf)
            attached = attach_manifest(manifest)
            attached.fail_node(11)
            attached.move_node(12, Point(10.0, 10.0))
            attached.drain_energy(13, 0.5)
            assert bytes(segment.buf) == before
        finally:
            plane.close()


class TestDegradedPaths:
    def test_disabled_switch_refuses_publish_and_attach(self):
        network = make_network(CONFIG, 0)
        plane = SharedNetworkPlane(seed=CONFIG.master_seed)
        try:
            with shared_plane_disabled():
                assert not shared_plane_enabled()
                assert not plane.publish((CONFIG, 0, None), network)
                assert attached_network((CONFIG, 0, None)) is None
            assert shared_plane_enabled()
        finally:
            plane.close()

    def test_legacy_network_declines_publish(self):
        with soa_disabled():
            legacy = make_network(CONFIG, 0)
        plane = SharedNetworkPlane(seed=CONFIG.master_seed)
        try:
            assert legacy.shared_state_arrays() is None
            assert not plane.publish((CONFIG, 0, None), legacy)
            assert not plane.active
        finally:
            plane.close()

    def test_locally_mutated_network_declines_publish(self):
        network = make_network(CONFIG, 0)
        network.fail_node(5)
        plane = SharedNetworkPlane(seed=CONFIG.master_seed)
        try:
            assert network.shared_state_arrays() is None
            assert not plane.publish((CONFIG, 0, None), network)
        finally:
            plane.close()

    def test_shm_unavailable_falls_back_to_rebuild(self, monkeypatch):
        from multiprocessing import shared_memory

        def refuse(*args, **kwargs):
            raise OSError("no shared memory on this platform")

        monkeypatch.setattr(shared_memory, "SharedMemory", refuse)
        network = make_network(CONFIG, 0)
        plane = SharedNetworkPlane(seed=CONFIG.master_seed)
        try:
            assert not plane.publish((CONFIG, 0, None), network)
            rebuilt = cached_network(CONFIG, 0)
            results = run_tasks(rebuilt, build_protocol(("GMP",)), TASKS)
            baseline = run_tasks(network, build_protocol(("GMP",)), TASKS)
            assert batch_digest(results) == batch_digest(baseline)
        finally:
            plane.close()

    def test_missing_segment_falls_back_to_rebuild(self):
        plane, _ = _published_plane()
        install_worker_manifests(plane.manifests())
        plane.close()  # the segment is gone, the manifest still installed
        assert attached_network((CONFIG, 0, None)) is None
        rebuilt = cached_network(CONFIG, 0)
        fresh = make_network(CONFIG, 0)
        digest = batch_digest(run_tasks(rebuilt, build_protocol(("GMP",)), TASKS))
        assert digest == batch_digest(
            run_tasks(fresh, build_protocol(("GMP",)), TASKS)
        )

    def test_cached_network_attaches_from_installed_manifests(self):
        plane, _ = _published_plane()
        try:
            install_worker_manifests(plane.manifests())
            counter = shm.GLOBAL_COUNTERS.counter("network.shm_attach")
            hits_before = counter.hits
            network = cached_network(CONFIG, 0)
            assert counter.hits == hits_before + 1
            assert not network.locations.flags.writeable  # a mapped view
            assert cached_network(CONFIG, 0) is network  # memo hit, no re-attach
            assert counter.hits == hits_before + 1
        finally:
            plane.close()


class TestCleanup:
    def test_close_removes_dev_shm_entries(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        plane, _ = _published_plane()
        name = plane.manifests()[(CONFIG, 0, None)].segment
        assert any(name in path for path in _dev_shm_planes())
        plane.close()
        assert not any(name in path for path in _dev_shm_planes())
        plane.close()  # idempotent

    def test_stale_segment_is_reclaimed(self):
        from multiprocessing import shared_memory

        network = make_network(CONFIG, 0)
        plane = SharedNetworkPlane(seed=CONFIG.master_seed)
        stale = shared_memory.SharedMemory(
            name=plane.segment_name(0), create=True, size=64
        )
        stale.close()  # leaked name, as if a predecessor died mid-run
        try:
            assert plane.publish((CONFIG, 0, None), network)
            assert plane.manifests()[(CONFIG, 0, None)].nbytes > 64
        finally:
            plane.close()

    def test_killed_attacher_leaves_no_leak(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        plane, _ = _published_plane()
        name = plane.manifests()[(CONFIG, 0, None)].segment
        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=_attach_and_die, args=(name,))
        child.start()
        child.join(timeout=30)
        assert child.exitcode == -signal.SIGKILL
        plane.close()
        assert not any(name in path for path in _dev_shm_planes())

    def test_publish_on_closed_plane_raises(self):
        plane = SharedNetworkPlane(seed=CONFIG.master_seed)
        plane.close()
        with pytest.raises(ValueError):
            plane.publish((CONFIG, 0, None), make_network(CONFIG, 0))

    def test_context_manager_closes(self):
        with SharedNetworkPlane(seed=CONFIG.master_seed) as plane:
            assert plane.publish((CONFIG, 0, None), make_network(CONFIG, 0))
            name = plane.manifests()[(CONFIG, 0, None)].segment
        assert not any(name in path for path in _dev_shm_planes())

    def test_deterministic_segment_names(self):
        plane = SharedNetworkPlane(seed=123)
        try:
            assert plane.segment_name(0) == (
                f"gmp-plane-123-{plane._plane_index}-0"
            )
        finally:
            plane.close()


def _attach_and_die(name):
    """Child half of the killed-worker test: attach, then die uncleanly."""
    segment = shm._attach_segment(name)
    assert segment is not None
    os.kill(os.getpid(), signal.SIGKILL)
