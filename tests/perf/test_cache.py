"""Purity and isolation tests for the hot-path geometry caches."""

import numpy as np
import pytest

from repro.geometry import Point
from repro.geometry.fermat import fermat_point
from repro.perf.cache import (
    TreeCache,
    cache_stats,
    cached_fermat_point,
    cached_reduction_ratio_point,
    caches_disabled,
    caching_enabled,
    clear_caches,
)
from repro.steiner.reduction_ratio import reduction_ratio_point
from repro.steiner.tree import SteinerTree


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _random_triples(count, seed=11):
    rng = np.random.default_rng(seed)
    return [
        tuple(Point(*rng.uniform(0, 1000, 2)) for _ in range(3))
        for _ in range(count)
    ]


class TestGeometryMemos:
    def test_fermat_hit_is_bit_identical(self):
        for a, b, c in _random_triples(25):
            fresh = fermat_point(a, b, c)
            first = cached_fermat_point(a, b, c)  # miss
            second = cached_fermat_point(a, b, c)  # hit
            assert first == fresh
            assert second == fresh

    def test_reduction_ratio_hit_is_bit_identical(self):
        for s, u, v in _random_triples(25, seed=13):
            fresh = reduction_ratio_point(s, u, v)
            assert cached_reduction_ratio_point(s, u, v) == fresh
            assert cached_reduction_ratio_point(s, u, v) == fresh

    def test_disabled_bypasses_cache(self):
        a, b, c = _random_triples(1)[0]
        with caches_disabled():
            assert not caching_enabled()
            assert cached_fermat_point(a, b, c) == fermat_point(a, b, c)
        assert caching_enabled()
        # Nothing was stored while disabled.
        assert cache_stats()["fermat_point"]["entries"] == 0.0

    def test_cache_stats_shape(self):
        a, b, c = _random_triples(1)[0]
        cached_fermat_point(a, b, c)
        stats = cache_stats()
        assert set(stats) == {"fermat_point", "reduction_ratio"}
        assert stats["fermat_point"]["entries"] == 1.0
        assert {"hits", "misses", "hit_rate", "entries"} <= set(
            stats["fermat_point"]
        )


def _small_tree():
    tree = SteinerTree(Point(0, 0))
    t1 = tree.add_terminal(Point(100, 0), ref=7)
    t2 = tree.add_terminal(Point(0, 100), ref=9)
    tree.attach(0, t1)
    tree.attach(t1, t2)
    return tree


class TestTreeCache:
    def test_miss_returns_none(self):
        cache = TreeCache("t")
        assert cache.get("missing") is None

    def test_hit_returns_private_copy(self):
        cache = TreeCache("t")
        cache.put("k", _small_tree())
        first = cache.get("k")
        # Mutate the handed-out tree the way GMP's splitting step does.
        leaf = first.children_of(1)[-1]
        first.detach(leaf)
        first.attach(0, leaf)
        second = cache.get("k")
        assert second.children_of(1) == (2,)  # pristine
        assert second.edges() != first.edges()

    def test_put_copies_eagerly(self):
        cache = TreeCache("t")
        original = _small_tree()
        cache.put("k", original)
        original.detach(2)
        assert cache.get("k").children_of(1) == (2,)

    def test_disabled_is_passthrough(self):
        cache = TreeCache("t")
        with caches_disabled():
            cache.put("k", _small_tree())
            assert cache.get("k") is None
        assert len(cache) == 0

    def test_fifo_eviction(self):
        cache = TreeCache("t", max_entries=2)
        cache.put("a", _small_tree())
        cache.put("b", _small_tree())
        cache.put("c", _small_tree())
        assert cache.get("a") is None
        assert cache.get("b") is not None
        assert cache.get("c") is not None

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            TreeCache("t", max_entries=0)
