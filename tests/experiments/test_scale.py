"""Tests for the large-scale constant-density sweep (experiments.scale)."""

import dataclasses
import math

import pytest

from repro.experiments.config import PaperConfig
from repro.experiments.scale import (
    SCALE_DEEP,
    SCALE_PAPER,
    SCALE_QUICK,
    SCALE_SMOKE,
    SCALE_SMOKE50K,
    ScaleSweepScale,
    render_scale_table,
    run_scale_sweep,
    scale_sweep_scale_by_name,
    scaled_config,
)
from repro.perf.kernels import vectorized_disabled
from repro.perf.shm import shared_plane_disabled
from repro.perf.soa import soa_disabled

#: Small enough for tier-1 wall clock, large enough to shard across workers.
_TINY = ScaleSweepScale(
    name="tiny",
    node_counts=(300, 500),
    group_sizes=(5, 10),
    tasks_per_cell=2,
    network_count=1,
)


class TestScaledConfig:
    def test_constant_density(self):
        base = PaperConfig()
        for n in (1000, 2000, 5000, 10000):
            cfg = scaled_config(base, n)
            area_km2 = (cfg.field_width_m / 1000.0) * (cfg.field_height_m / 1000.0)
            assert cfg.node_count == n
            assert n / area_km2 == pytest.approx(1000.0)  # nodes per km^2
            assert cfg.field_width_m == cfg.field_height_m

    def test_1000_nodes_reproduces_table_1_field(self):
        cfg = scaled_config(PaperConfig(), 1000)
        assert cfg.field_width_m == pytest.approx(1000.0)

    def test_ttl_scales_with_diagonal(self):
        for n in (10_000, 50_000, 100_000):
            cfg = scaled_config(PaperConfig(), n)
            diagonal_hops = math.hypot(cfg.field_width_m, cfg.field_height_m) / 150.0
            assert cfg.max_path_length >= diagonal_hops

    def test_ttl_unchanged_at_or_below_10k(self):
        """Digest back-compat: the historical fixed TTL up to 10k nodes."""
        for n in (2_000, 5_000, 10_000):
            assert scaled_config(PaperConfig(), n).max_path_length == 250

    def test_ttl_grows_for_100k_diagonal(self):
        cfg = scaled_config(PaperConfig(), 100_000)
        assert cfg.max_path_length > 250
        assert cfg.field_width_m == pytest.approx(10_000.0)

    def test_scale_lookup(self):
        assert scale_sweep_scale_by_name("smoke") is SCALE_SMOKE
        assert scale_sweep_scale_by_name("quick") is SCALE_QUICK
        assert scale_sweep_scale_by_name("paper") is SCALE_PAPER
        assert scale_sweep_scale_by_name("smoke50k") is SCALE_SMOKE50K
        assert scale_sweep_scale_by_name("deep") is SCALE_DEEP
        with pytest.raises(ValueError):
            scale_sweep_scale_by_name("galactic")

    def test_large_presets_stay_ci_sized(self):
        """The 50k smoke preset must fit the perf-smoke budget: a handful
        of units, one network, constant Table-1 density."""
        assert SCALE_SMOKE50K.node_counts == (50_000,)
        assert SCALE_SMOKE50K.network_count == 1
        assert SCALE_SMOKE50K.tasks_per_cell <= 2
        assert SCALE_DEEP.node_counts == (50_000, 100_000)


class TestScaleSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_scale_sweep(PaperConfig(), _TINY, include_grd=False)

    def test_cells_and_labels(self, sweep):
        assert sweep.labels() == ["GMP", "LGS"]
        assert sweep.cells() == [(300, 5), (300, 10), (500, 5), (500, 10)]
        for label in sweep.labels():
            for n, k in sweep.cells():
                batch = sweep.batch(label, n, k)
                assert len(batch) == _TINY.tasks_per_cell
                for result in batch:
                    assert len(result.destination_ids) == k

    def test_full_delivery_at_tiny_scale(self, sweep):
        for label in sweep.labels():
            for n, k in sweep.cells():
                assert sweep.delivery_ratio(label, n, k) == pytest.approx(1.0)

    def test_parallel_workers_bit_identical(self, sweep):
        """Pooled with the shared plane on (the default): same digest."""
        parallel = run_scale_sweep(PaperConfig(), _TINY, workers=3, include_grd=False)
        assert parallel.digest() == sweep.digest()

    def test_shared_plane_off_pooled_bit_identical(self, sweep):
        """Pooled with the plane disabled (workers rebuild): same digest."""
        with shared_plane_disabled():
            rebuilt = run_scale_sweep(
                PaperConfig(), _TINY, workers=3, include_grd=False
            )
        assert rebuilt.digest() == sweep.digest()

    def test_vectorized_off_bit_identical(self, sweep):
        with vectorized_disabled():
            scalar = run_scale_sweep(PaperConfig(), _TINY, include_grd=False)
        assert scalar.digest() == sweep.digest()

    def test_soa_off_bit_identical(self, sweep):
        """Object-graph network + binary-heap scheduler: same digest."""
        with soa_disabled():
            legacy = run_scale_sweep(PaperConfig(), _TINY, include_grd=False)
        assert legacy.digest() == sweep.digest()

    def test_soa_and_vectorized_off_bit_identical(self, sweep):
        """Fully scalar object-graph path — the seed implementation."""
        with soa_disabled(), vectorized_disabled():
            legacy = run_scale_sweep(PaperConfig(), _TINY, include_grd=False)
        assert legacy.digest() == sweep.digest()

    def test_digest_sensitive_to_results(self, sweep):
        other_scale = dataclasses.replace(_TINY, tasks_per_cell=1)
        other = run_scale_sweep(PaperConfig(), other_scale, include_grd=False)
        assert other.digest() != sweep.digest()

    def test_json_roundtrip(self, sweep):
        payload = sweep.to_json_dict()
        assert payload["scale"] == "tiny"
        assert payload["digest"] == sweep.digest()
        assert len(payload["cells"]) == len(sweep.labels()) * len(sweep.cells())
        for cell in payload["cells"]:
            assert cell["delivery_ratio"] == pytest.approx(
                sweep.delivery_ratio(cell["label"], cell["node_count"], cell["group_size"])
            )

    def test_render_table(self, sweep):
        table = render_scale_table(sweep)
        assert "GMP tx" in table and "LGS dlv" in table
        assert str(500) in table

    def test_grd_included_by_default(self):
        one_cell = ScaleSweepScale(
            name="one", node_counts=(300,), group_sizes=(5,),
            tasks_per_cell=1, network_count=1,
        )
        sweep = run_scale_sweep(PaperConfig(), one_cell)
        assert sweep.labels() == ["GMP", "GRD", "LGS"]
        # GRD unicasts independently to every destination: never cheaper
        # than the multicast tree GMP builds.
        assert sweep.mean_transmissions("GRD", 300, 5) >= sweep.mean_transmissions(
            "GMP", 300, 5
        )
