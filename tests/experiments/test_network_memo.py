"""``cached_network``'s bounded LRU memo (experiments.sweep).

Regression for the eviction order: the memo must evict the *least
recently used* entry, not the oldest-inserted one — a long sessions sweep
touches its active deployment constantly and must never lose it to
churn from other cells.
"""

from __future__ import annotations

import pytest

from repro.experiments import sweep as sweep_mod
from repro.experiments.config import PaperConfig
from repro.experiments.sweep import cached_network


@pytest.fixture(autouse=True)
def _fresh_memo():
    saved = dict(sweep_mod._NETWORK_MEMO)
    sweep_mod._NETWORK_MEMO.clear()
    yield
    sweep_mod._NETWORK_MEMO.clear()
    sweep_mod._NETWORK_MEMO.update(saved)


def test_memo_hit_returns_the_same_instance():
    config = PaperConfig()
    network = cached_network(config, 0, node_count=1)
    assert cached_network(config, 0, node_count=1) is network


def test_cap_evicts_least_recently_used_not_oldest():
    config = PaperConfig()
    cap = sweep_mod._NETWORK_MEMO_CAP
    networks = [cached_network(config, i, node_count=1) for i in range(cap)]
    # Touch the oldest-inserted entry: it becomes most recently used.
    assert cached_network(config, 0, node_count=1) is networks[0]
    # The next insert must evict index 1 (the true LRU), not index 0.
    cached_network(config, cap, node_count=1)
    assert len(sweep_mod._NETWORK_MEMO) == cap
    assert (config, 0, 1) in sweep_mod._NETWORK_MEMO
    assert (config, 1, 1) not in sweep_mod._NETWORK_MEMO
    assert (config, cap, 1) in sweep_mod._NETWORK_MEMO
    # The survivor is still the memoized instance, not a rebuild.
    assert cached_network(config, 0, node_count=1) is networks[0]


def test_memo_stays_bounded_under_churn():
    config = PaperConfig()
    cap = sweep_mod._NETWORK_MEMO_CAP
    for i in range(cap + 7):
        cached_network(config, i, node_count=1)
    assert len(sweep_mod._NETWORK_MEMO) == cap
