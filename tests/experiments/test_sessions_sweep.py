"""The streaming-session sweep: presets, digests, truncation, resume."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.experiments.config import PaperConfig
from repro.experiments.sessions import (
    SESSIONS_PAPER,
    SESSIONS_QUICK,
    SESSIONS_SMOKE,
    render_sessions_table,
    run_sessions_sweep,
    session_cells,
    session_scale_by_name,
)

#: The smoke preset shrunk to a unit-test deployment (the preset's 2k-node
#: cell stays for CI's perf-smoke job).
TINY = dataclasses.replace(SESSIONS_SMOKE, node_counts=(150,), sessions_per_cell=10)


@pytest.fixture(scope="module")
def config():
    return PaperConfig()


def test_presets_resolve_by_name():
    assert session_scale_by_name("smoke") is SESSIONS_SMOKE
    assert session_scale_by_name("quick") is SESSIONS_QUICK
    assert session_scale_by_name("paper") is SESSIONS_PAPER
    with pytest.raises(ValueError):
        session_scale_by_name("nope")


def test_paper_preset_covers_the_matrix():
    cells = session_cells(SESSIONS_PAPER)
    assert len(cells) == 3 * 3 * 3  # node counts x arrivals x protocols
    assert {spec[0] for _, _, spec in cells} == {"GMP", "LGS", "GRD"}
    assert max(n for n, _, _ in cells) == 50_000


def test_sweep_serial_equals_pooled(config):
    serial = run_sessions_sweep(config, TINY)
    pooled = run_sessions_sweep(config, TINY, workers=2)
    assert serial.digest() == pooled.digest()
    assert json.dumps(serial.to_json_dict(), sort_keys=True) == json.dumps(
        pooled.to_json_dict(), sort_keys=True
    )


def test_sweep_pooled_plane_off_equals_serial(config):
    """The A/B switch: pooled workers rebuilding instead of attaching."""
    from repro.perf.shm import shared_plane_disabled

    serial = run_sessions_sweep(config, TINY)
    with shared_plane_disabled():
        rebuilt = run_sessions_sweep(config, TINY, workers=2)
    assert rebuilt.digest() == serial.digest()


def test_sweep_report_and_table(config):
    sweep = run_sessions_sweep(config, TINY)
    assert not sweep.truncated
    assert sweep.completed_sessions == 10
    table = render_sessions_table(sweep)
    assert "150" in table and "poisson" in table and "GMP" in table
    payload = sweep.to_json_dict()
    assert payload["digest"] == sweep.digest()
    assert payload["cells"][0]["completed"] == 10


def test_stop_after_then_resume_matches_uninterrupted(config, tmp_path):
    reference = run_sessions_sweep(config, TINY)
    interrupted = run_sessions_sweep(
        config, TINY, checkpoint_dir=str(tmp_path), stop_after=4
    )
    assert interrupted.truncated
    assert interrupted.reports == {}  # no cell finished before the stop
    resumed = run_sessions_sweep(config, TINY, checkpoint_dir=str(tmp_path))
    assert not resumed.truncated
    assert resumed.digest() == reference.digest()
    assert json.dumps(resumed.to_json_dict(), sort_keys=True) == json.dumps(
        reference.to_json_dict(), sort_keys=True
    )


def test_completed_cells_resume_from_checkpoint_without_rework(config, tmp_path):
    first = run_sessions_sweep(config, TINY, checkpoint_dir=str(tmp_path))
    again = run_sessions_sweep(config, TINY, checkpoint_dir=str(tmp_path))
    assert again.digest() == first.digest()
