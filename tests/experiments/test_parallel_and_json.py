"""Tests for the parallel sweep path and the figure JSON round-trip."""

import json

import pytest

from repro.experiments.config import PaperConfig, SMOKE_SCALE
from repro.experiments.figures import (
    FigureResult,
    figure11,
    run_group_size_sweep,
)


class TestParallelSweep:
    def test_parallel_matches_serial(self):
        config = PaperConfig(node_count=250)
        serial = figure11(run_group_size_sweep(config, SMOKE_SCALE, workers=1))
        parallel = figure11(run_group_size_sweep(config, SMOKE_SCALE, workers=2))
        assert serial.series == parallel.series

    def test_progress_callback_called(self):
        config = PaperConfig(node_count=250)
        messages = []
        run_group_size_sweep(
            config, SMOKE_SCALE, progress=messages.append, workers=1
        )
        expected = SMOKE_SCALE.network_count * len(SMOKE_SCALE.group_sizes)
        assert len(messages) == expected


class TestFigureJSON:
    def test_roundtrip(self):
        fig = FigureResult(
            figure_id="f", title="T", x_label="x", y_label="y",
            series={"A": [(1.0, 2.0), (3.0, 4.5)], "B": [(1.0, 0.5)]},
        )
        restored = FigureResult.from_json_dict(
            json.loads(json.dumps(fig.to_json_dict()))
        )
        assert restored == fig

    def test_cli_json_loadable(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "out.json"
        main([
            "figure11", "--scale", "smoke", "--nodes", "300", "--quiet",
            "--json", str(path),
        ])
        payload = json.loads(path.read_text())
        fig = FigureResult.from_json_dict(payload["figure11"])
        assert fig.figure_id == "figure11"
        assert "GMP" in fig.labels()

    def test_cli_workers_flag(self, capsys):
        from repro.cli import main

        assert main([
            "figure11", "--scale", "smoke", "--nodes", "250",
            "--workers", "2", "--quiet",
        ]) == 0
        assert "figure11" in capsys.readouterr().out
