"""Tests anchoring the paper's worked examples (Figures 4, 8, 9, 10, 13)."""

import pytest

from repro.engine import EngineConfig, run_task
from repro.experiments.scenarios import (
    SCENARIO_RADIO_RANGE,
    all_scenarios,
    figure4_instance,
    figure8_network,
    figure9_network,
    figure10_network,
    figure13_instance,
    figure13_network,
)
from repro.routing.gmp import GMPProtocol
from repro.routing.lgs import LGSProtocol
from repro.routing.pbm import PBMProtocol
from repro.steiner import euclidean_mst, rrstr
from repro.steiner.rrstr import RRStrConfig


class TestFigure4:
    def test_far_pair_merges_under_virtual(self):
        instance = figure4_instance()
        tree = rrstr(
            instance.source,
            list(instance.destinations),
            SCENARIO_RADIO_RANGE,
            RRStrConfig(radio_aware=False, refine=False),
        )
        u = next(v.vid for v in tree.vertices() if v.ref == 3)
        v_ = next(v.vid for v in tree.vertices() if v.ref == 4)
        assert tree.parent_of(u) == tree.parent_of(v_)
        assert tree.vertex(tree.parent_of(u)).is_virtual

    def test_tree_beats_star(self):
        instance = figure4_instance()
        tree = rrstr(instance.source, list(instance.destinations), SCENARIO_RADIO_RANGE)
        from repro.geometry import distance

        star = sum(distance(instance.source, loc) for _, loc in instance.destinations)
        assert tree.total_length() < star


class TestFigure8:
    def test_gmp_delivers_all(self):
        scenario = figure8_network()
        result = run_task(
            scenario.network, GMPProtocol(), scenario.source_id,
            scenario.destination_ids,
        )
        assert result.success

    def test_c_is_delivered_en_route(self):
        # c (node 2) sits on the trunk toward the far destinations: it must
        # be reached strictly earlier than u, v, d.
        scenario = figure8_network()
        result = run_task(
            scenario.network, GMPProtocol(), scenario.source_id,
            scenario.destination_ids,
        )
        assert result.delivered_hops[2] < min(
            result.delivered_hops[d] for d in (7, 8, 9)
        )


class TestFigure9:
    def test_source_splits_between_lateral_neighbors(self):
        scenario = figure9_network()
        result = run_task(
            scenario.network, GMPProtocol(), scenario.source_id,
            scenario.destination_ids, collect_trace=True,
        )
        assert result.success
        first_frame = result.trace.frames[0]
        # The very first forwarding step fans out to both lateral
        # neighbors — the Figure-9 split.
        assert set(first_frame.receiver_ids) == {1, 2}

    def test_all_scenarios_gmp_delivers(self):
        for scenario in all_scenarios():
            result = run_task(
                scenario.network, GMPProtocol(), scenario.source_id,
                scenario.destination_ids,
                config=EngineConfig(max_path_length=120),
            )
            assert result.success, scenario.description


class TestFigure10:
    def test_gmp_absorbs_void_destination_at_source(self):
        # The defining moment: the source sends ONE greedy copy carrying
        # both destinations, although v alone is void at s.
        scenario = figure10_network()
        result = run_task(
            scenario.network, GMPProtocol(), scenario.source_id,
            scenario.destination_ids, collect_trace=True,
        )
        assert result.success
        first = result.trace.frames[0]
        assert len(first.copies) == 1
        assert sorted(first.copies[0].destination_ids) == [2, 3]
        assert not first.copies[0].in_perimeter_mode

    def test_pbm_uses_perimeter_immediately(self):
        # PBM's source step already splits v off into perimeter mode.
        scenario = figure10_network()
        result = run_task(
            scenario.network, PBMProtocol(), scenario.source_id,
            scenario.destination_ids, collect_trace=True,
        )
        first = result.trace.frames[0]
        peri = [c for c in first.copies if c.in_perimeter_mode]
        assert len(peri) == 1
        assert peri[0].destination_ids == (3,)


class TestFigure13:
    def test_mst_is_a_chain(self):
        instance = figure13_instance()
        tree = euclidean_mst(instance.source, list(instance.destinations))
        for vertex in tree.vertices():
            assert len(tree.children_of(vertex.vid)) <= 1

    def test_lgs_visits_sequentially(self):
        scenario = figure13_network()
        result = run_task(
            scenario.network, LGSProtocol(), scenario.source_id,
            scenario.destination_ids,
        )
        assert result.success
        hops = result.delivered_hops
        assert hops[2] < hops[4] < hops[6]

    def test_gmp_reaches_last_destination_no_later(self):
        scenario = figure13_network()
        lgs = run_task(
            scenario.network, LGSProtocol(), scenario.source_id,
            scenario.destination_ids,
        )
        gmp = run_task(
            scenario.network, GMPProtocol(), scenario.source_id,
            scenario.destination_ids,
        )
        assert max(gmp.delivered_hops.values()) <= max(lgs.delivered_hops.values())
