"""Tests for the command-line harness."""

import json

import pytest

from repro.cli import _format_peak_rss, _rss_divisor, main


class TestCLI:
    def test_config_command(self, capsys):
        assert main(["config"]) == 0
        out = capsys.readouterr().out
        assert "Simulation setup" in out
        assert "150m" in out

    def test_figure11_smoke(self, capsys):
        assert main(["figure11", "--scale", "smoke", "--nodes", "350", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "figure11" in out
        assert "GMP savings" in out

    def test_figure15_smoke(self, capsys):
        assert main(["figure15", "--scale", "smoke", "--nodes", "350", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "failed tasks" in out

    def test_json_export(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        assert (
            main(
                [
                    "figure12",
                    "--scale",
                    "smoke",
                    "--nodes",
                    "350",
                    "--quiet",
                    "--json",
                    str(path),
                ]
            )
            == 0
        )
        payload = json.loads(path.read_text())
        assert "figure12" in payload
        assert payload["scale"] == "smoke"

    def test_seed_override_changes_results(self, capsys):
        main(["figure11", "--scale", "smoke", "--nodes", "350", "--quiet"])
        base = capsys.readouterr().out
        main(
            ["figure11", "--scale", "smoke", "--nodes", "350", "--seed", "99", "--quiet"]
        )
        reseeded = capsys.readouterr().out
        assert base != reseeded

    def test_unknown_scale_exits_2_with_one_line_error(self, capsys):
        assert main(["figure11", "--scale", "galactic"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "galactic" in err
        assert "Traceback" not in err

    def test_bad_robustness_scale_exits_2(self, capsys):
        assert main(["robustness", "--scale", "galactic"]) == 2
        assert "error: " in capsys.readouterr().err

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure99"])


class TestFuzzCLI:
    def test_fuzz_stdout_is_deterministic(self, capsys):
        argv = ["fuzz", "--seed", "7", "--budget", "2", "--quiet"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "store digest:" in first

    def test_fuzz_fail_on_findings(self, capsys):
        # Seed 7 scenario 0 is a known finding under the default limits.
        argv = [
            "fuzz",
            "--seed",
            "7",
            "--budget",
            "1",
            "--quiet",
            "--no-shrink",
            "--fail-on-findings",
        ]
        assert main(argv) == 1
        assert "findings: 1 / 1" in capsys.readouterr().out

    def test_fuzz_writes_store_and_fixtures(self, tmp_path, capsys):
        store_path = tmp_path / "store.json"
        fixtures_dir = tmp_path / "fixtures"
        argv = [
            "fuzz",
            "--seed",
            "7",
            "--budget",
            "1",
            "--quiet",
            "--json",
            str(store_path),
            "--fixtures-dir",
            str(fixtures_dir),
        ]
        assert main(argv) == 0
        payload = json.loads(store_path.read_text())
        assert payload["root_seed"] == 7
        assert len(list(fixtures_dir.glob("fuzz_7_*.json"))) == 1

    def test_fuzz_rejects_non_positive_budget(self, capsys):
        assert main(["fuzz", "--budget", "0", "--quiet"]) == 2
        assert "budget" in capsys.readouterr().err


class TestPeakRssReport:
    def test_divisor_is_bytes_on_darwin_kib_elsewhere(self):
        # ru_maxrss is reported in bytes on macOS, KiB on Linux.
        assert _rss_divisor("darwin") == 1024.0 * 1024.0
        assert _rss_divisor("linux") == 1024.0
        assert _rss_divisor("freebsd") == 1024.0

    def test_format_self_only(self):
        assert _format_peak_rss(312.4, 0.0, 0.0) == "peak RSS: 312 MiB"

    def test_format_includes_worker_and_shared_components(self):
        message = _format_peak_rss(312.0, 55.6, 12.3)
        assert message.startswith("peak RSS: 312 MiB")
        assert "largest worker 56 MiB" in message
        assert "shared=12 MiB" in message
        assert "counted once" in message


class TestSharedPlaneFlag:
    def test_no_shared_plane_disables_the_plane(self):
        from repro.perf.shm import set_shared_plane_enabled, shared_plane_enabled

        assert shared_plane_enabled()
        try:
            assert main(["config", "--no-shared-plane"]) == 0
            assert not shared_plane_enabled()
        finally:
            set_shared_plane_enabled(True)

    def test_plane_enabled_by_default(self):
        from repro.perf.shm import shared_plane_enabled

        assert main(["config"]) == 0
        assert shared_plane_enabled()
