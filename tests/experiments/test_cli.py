"""Tests for the command-line harness."""

import json

import pytest

from repro.cli import main


class TestCLI:
    def test_config_command(self, capsys):
        assert main(["config"]) == 0
        out = capsys.readouterr().out
        assert "Simulation setup" in out
        assert "150m" in out

    def test_figure11_smoke(self, capsys):
        assert main(["figure11", "--scale", "smoke", "--nodes", "350", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "figure11" in out
        assert "GMP savings" in out

    def test_figure15_smoke(self, capsys):
        assert main(["figure15", "--scale", "smoke", "--nodes", "350", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "failed tasks" in out

    def test_json_export(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        assert (
            main(
                [
                    "figure12",
                    "--scale",
                    "smoke",
                    "--nodes",
                    "350",
                    "--quiet",
                    "--json",
                    str(path),
                ]
            )
            == 0
        )
        payload = json.loads(path.read_text())
        assert "figure12" in payload
        assert payload["scale"] == "smoke"

    def test_seed_override_changes_results(self, capsys):
        main(["figure11", "--scale", "smoke", "--nodes", "350", "--quiet"])
        base = capsys.readouterr().out
        main(
            ["figure11", "--scale", "smoke", "--nodes", "350", "--seed", "99", "--quiet"]
        )
        reseeded = capsys.readouterr().out
        assert base != reseeded

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            main(["figure11", "--scale", "galactic"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure99"])
