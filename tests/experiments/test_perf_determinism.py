"""Bit-identity guarantees of the perf work: parallel fan-out and caching.

Two contracts from the perf layer are load-bearing for reproducibility:

* any worker count produces byte-identical results (trace digests equal);
* enabling the hot-path caches changes nothing about simulation output.
"""

import numpy as np

from repro.engine import EngineConfig, batch_digest, run_task
from repro.experiments.config import PaperConfig, SMOKE_SCALE
from repro.experiments.figures import figure15, run_group_size_sweep
from repro.network import RadioConfig, build_network
from repro.network.topology import uniform_random_topology
from repro.perf.cache import caches_disabled, clear_caches
from repro.routing import GMPProtocol

TRACING = EngineConfig(collect_traces=True)


def _sweep_digest(sweep) -> str:
    """Digest of every task result (traces included) in canonical order."""
    flat = []
    for label in sorted(sweep.results):
        for k in sorted(sweep.results[label]):
            flat.extend(sweep.results[label][k])
    return batch_digest(flat)


class TestParallelBitIdentity:
    def test_group_size_sweep_digest_equal_1_vs_4_workers(self):
        config = PaperConfig(node_count=250)
        serial = run_group_size_sweep(
            config, SMOKE_SCALE, engine_config=TRACING, workers=1
        )
        parallel = run_group_size_sweep(
            config, SMOKE_SCALE, engine_config=TRACING, workers=4
        )
        assert _sweep_digest(serial) == _sweep_digest(parallel)

    def test_figure15_identical_for_any_worker_count(self):
        config = PaperConfig(node_count=250)
        serial = figure15(config, SMOKE_SCALE, workers=1)
        parallel = figure15(config, SMOKE_SCALE, workers=4)
        assert serial.series == parallel.series


class TestCachePurity:
    def test_gmp_results_identical_with_caches_on_and_off(self):
        rng = np.random.default_rng(23)
        points = uniform_random_topology(300, 1000.0, 1000.0, rng)
        network = build_network(points, RadioConfig())
        task_rng = np.random.default_rng(57)
        tasks = []
        for _ in range(10):
            picks = task_rng.choice(300, size=9, replace=False)
            tasks.append((int(picks[0]), [int(p) for p in picks[1:]]))

        def run_all():
            protocol = GMPProtocol()
            return [
                run_task(
                    network,
                    protocol,
                    source,
                    dests,
                    config=TRACING,
                    task_id=index,
                )
                for index, (source, dests) in enumerate(tasks)
            ]

        with caches_disabled():
            uncached = run_all()
        clear_caches()
        cached_cold = run_all()
        cached_warm = run_all()
        assert batch_digest(uncached) == batch_digest(cached_cold)
        assert batch_digest(uncached) == batch_digest(cached_warm)
        hops = [r.delivered_hops for r in uncached]
        assert hops == [r.delivered_hops for r in cached_warm]
