"""Tests for the confidence-interval report and statistics-on-sweep glue."""

import pytest

from repro.experiments.config import PaperConfig, SMOKE_SCALE
from repro.experiments.figures import run_group_size_sweep
from repro.experiments.report import render_confidence_table
from repro.experiments.statistics import paired_comparison, win_matrix


@pytest.fixture(scope="module")
def sweep():
    return run_group_size_sweep(PaperConfig(node_count=350), SMOKE_SCALE)


class TestConfidenceTable:
    def test_renders_all_protocols(self, sweep):
        text = render_confidence_table(
            sweep, lambda r: float(r.transmissions), "total hops"
        )
        assert "total hops" in text
        assert "95% CI" in text
        for label in sweep.results:
            assert label in text
        assert "±" in text

    def test_custom_confidence(self, sweep):
        text = render_confidence_table(
            sweep, lambda r: r.energy_joules, "energy", confidence=0.9
        )
        assert "90% CI" in text


class TestPairedOnSweep:
    def test_gmp_vs_pbm_paired(self, sweep):
        k = sweep.scale.group_sizes[-1]
        gmp = sweep.results["GMP"][k]
        pbm = sweep.results["PBM"][k]
        cmp = paired_comparison(
            gmp, pbm, lambda r: float(r.transmissions), "GMP", "PBM"
        )
        # On the shared workload GMP wins the vast majority of tasks.
        assert cmp.wins_a > cmp.wins_b
        assert cmp.mean_difference < 0

    def test_win_matrix_on_sweep(self, sweep):
        k = sweep.scale.group_sizes[-1]
        batches = {
            label: sweep.results[label][k]
            for label in ("GMP", "LGS", "PBM")
        }
        matrix = win_matrix(batches, lambda r: float(r.transmissions))
        assert len(matrix) == 3
        assert matrix[("GMP", "PBM")].wins_a >= matrix[("GMP", "PBM")].wins_b
