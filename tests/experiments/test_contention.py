"""Contention sweep harness: determinism, the ARQ ablation, and presets."""

import pytest

from repro.experiments.config import PaperConfig
from repro.experiments.contention import (
    CONTENTION_SPECS,
    ContentionScale,
    PAPER_CONTENTION_SCALE,
    QUICK_CONTENTION_SCALE,
    SMOKE_CONTENTION_SCALE,
    arq_ablation,
    contention_protocol,
    contention_scale_by_name,
    contention_sweep,
    run_contention_unit,
    _contended_engine,
)
from repro.experiments.robustness import robustness_scale_by_name
from repro.routing.flooding import FloodingProtocol
from repro.routing.gmp import GMPProtocol

#: Small enough to keep the whole module in the tier-1 budget.
TINY_SCALE = ContentionScale(
    name="tiny",
    network_count=1,
    node_count=60,
    group_size=3,
    session_counts=(1, 2),
    interarrival_s=(0.01,),
    ablation_loss_rates=(0.0, 0.3),
    ablation_sessions=2,
)

TINY_CONFIG = PaperConfig(node_count=60, master_seed=404)


class TestScalePresets:
    def test_lookup_by_name(self):
        assert contention_scale_by_name("smoke") is SMOKE_CONTENTION_SCALE
        assert contention_scale_by_name("quick") is QUICK_CONTENTION_SCALE
        assert contention_scale_by_name("paper") is PAPER_CONTENTION_SCALE

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            contention_scale_by_name("galactic")

    def test_robustness_presets_mirror_the_pattern(self):
        for name in ("smoke", "quick", "paper"):
            assert robustness_scale_by_name(name).name == name
        with pytest.raises(ValueError):
            robustness_scale_by_name("galactic")

    def test_paper_scale_is_larger_than_smoke(self):
        assert PAPER_CONTENTION_SCALE.node_count > SMOKE_CONTENTION_SCALE.node_count
        assert len(PAPER_CONTENTION_SCALE.session_counts) > len(
            SMOKE_CONTENTION_SCALE.session_counts
        )


class TestProtocolFactory:
    def test_flood_spec_builds_flooding(self):
        assert isinstance(contention_protocol(("FLOOD",)), FloodingProtocol)

    def test_standard_specs_build(self):
        assert isinstance(contention_protocol(("GMP",)), GMPProtocol)

    def test_sweep_covers_flooding_reference(self):
        assert ("FLOOD",) in CONTENTION_SPECS


class TestUnitPurity:
    def test_unit_is_replayable(self):
        engine = _contended_engine(TINY_CONFIG)
        first = run_contention_unit(
            TINY_CONFIG, TINY_SCALE, engine, 0, 2, 0.01, ("GMP",)
        )
        second = run_contention_unit(
            TINY_CONFIG, TINY_SCALE, engine, 0, 2, 0.01, ("GMP",)
        )
        results_a, _ = first
        results_b, _ = second
        assert [r.delivered_hops for r in results_a] == [
            r.delivered_hops for r in results_b
        ]
        assert [r.energy_joules for r in results_a] == [
            r.energy_joules for r in results_b
        ]

    def test_sessions_independent_of_offered_load(self):
        engine = _contended_engine(TINY_CONFIG)
        slow, _ = run_contention_unit(
            TINY_CONFIG, TINY_SCALE, engine, 0, 2, 0.01, ("GMP",)
        )
        fast, _ = run_contention_unit(
            TINY_CONFIG, TINY_SCALE, engine, 0, 2, 0.0001, ("GMP",)
        )
        # Same sessions at both loads — only the spacing differs.
        assert [r.task_id for r in slow] == [r.task_id for r in fast]
        assert [r.destination_ids for r in slow] == [
            r.destination_ids for r in fast
        ]


class TestSweepDeterminism:
    def test_serial_and_pooled_runs_agree_byte_for_byte(self):
        serial = contention_sweep(TINY_CONFIG, scale=TINY_SCALE, workers=1)
        pooled = contention_sweep(TINY_CONFIG, scale=TINY_SCALE, workers=2)
        assert {k: f.to_json_dict() for k, f in serial.items()} == {
            k: f.to_json_dict() for k, f in pooled.items()
        }

    def test_sweep_shape(self):
        figures = contention_sweep(TINY_CONFIG, scale=TINY_SCALE)
        assert set(figures) == {
            "contention-delivery",
            "contention-latency",
            "contention-energy",
        }
        delivery = figures["contention-delivery"]
        assert set(delivery.series) == {spec[0] for spec in CONTENTION_SPECS}
        for points in delivery.series.values():
            assert [x for x, _ in points] == [1.0, 2.0]
            assert all(0.0 <= y <= 1.0 for _, y in points)


class TestArqAblation:
    def test_arq_never_hurts_and_helps_under_loss(self):
        figure = arq_ablation(TINY_CONFIG, scale=TINY_SCALE)
        with_arq = dict(figure.series["GMP ARQ"])
        without_arq = dict(figure.series["GMP no-ARQ"])
        assert set(with_arq) == set(without_arq) == {0.0, 0.3}
        for loss in with_arq:
            assert with_arq[loss] >= without_arq[loss]
        assert with_arq[0.3] > without_arq[0.3]

    def test_ablation_pooled_matches_serial(self):
        serial = arq_ablation(TINY_CONFIG, scale=TINY_SCALE, workers=1)
        pooled = arq_ablation(TINY_CONFIG, scale=TINY_SCALE, workers=2)
        assert serial.to_json_dict() == pooled.to_json_dict()
