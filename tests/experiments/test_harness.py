"""Tests for the experiment harness: config, workload, sweeps, figures."""

import json

import pytest

from repro.engine import EngineConfig
from repro.experiments import (
    PAPER_SCALE,
    QUICK_SCALE,
    SMOKE_SCALE,
    MulticastTask,
    PaperConfig,
    best_lambda_results,
    generate_tasks,
    make_network,
    render_figure_table,
    render_ratio_summary,
    run_tasks,
    scale_by_name,
)
from repro.experiments.figures import (
    FigureResult,
    delivery_summary,
    figure11,
    figure12,
    figure14,
    figure15,
    figure_latency,
    run_group_size_sweep,
)
from repro.experiments.report import figure_as_dict_rows
from repro.routing.gmp import GMPProtocol
from repro.simkit.rng import RandomStreams


@pytest.fixture(scope="module")
def small_sweep():
    """A tiny but real sweep shared by the figure tests."""
    config = PaperConfig(node_count=350)
    scale = SMOKE_SCALE
    return run_group_size_sweep(config, scale)


class TestConfig:
    def test_table1_description(self):
        text = PaperConfig().describe()
        assert "1000m X 1000m" in text
        assert "1Mbps" in text
        assert "150m" in text
        assert "128B" in text

    def test_scale_lookup(self):
        assert scale_by_name("paper") is PAPER_SCALE
        assert scale_by_name("quick") is QUICK_SCALE
        assert scale_by_name("smoke") is SMOKE_SCALE
        with pytest.raises(ValueError):
            scale_by_name("gigantic")

    def test_paper_scale_matches_paper(self):
        assert PAPER_SCALE.network_count == 10
        assert PAPER_SCALE.tasks_per_network == 100
        assert PAPER_SCALE.lambdas == (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6)
        assert min(PAPER_SCALE.group_sizes) == 3
        assert max(PAPER_SCALE.group_sizes) == 25
        assert {400, 600, 800, 1000} <= set(PAPER_SCALE.density_node_counts)
        assert PAPER_SCALE.density_group_size == 12


class TestWorkload:
    def test_tasks_are_valid(self, dense_network, rng):
        tasks = generate_tasks(dense_network, 20, 5, rng)
        assert len(tasks) == 20
        for task in tasks:
            assert task.group_size == 5
            assert task.source_id not in task.destination_ids
            assert len(set(task.destination_ids)) == 5

    def test_reproducible(self, dense_network):
        import numpy as np

        a = generate_tasks(dense_network, 5, 4, np.random.default_rng(1))
        b = generate_tasks(dense_network, 5, 4, np.random.default_rng(1))
        assert a == b

    def test_validation(self, dense_network, rng):
        with pytest.raises(ValueError):
            generate_tasks(dense_network, 0, 5, rng)
        with pytest.raises(ValueError):
            generate_tasks(dense_network, 5, 0, rng)
        with pytest.raises(ValueError):
            generate_tasks(dense_network, 5, dense_network.node_count, rng)


class TestSweep:
    def test_make_network_deterministic(self):
        config = PaperConfig(node_count=200)
        a = make_network(config, 0)
        b = make_network(config, 0)
        assert (a.locations == b.locations).all()
        c = make_network(config, 1)
        assert not (a.locations == c.locations).all()

    def test_node_count_override(self):
        config = PaperConfig(node_count=200)
        net = make_network(config, 0, node_count=120)
        assert net.node_count == 120

    def test_best_lambda_picks_minimum(self):
        config = PaperConfig(node_count=300)
        network = make_network(config, 0)
        streams = RandomStreams(1)
        tasks = generate_tasks(network, 4, 5, streams.stream("w"))
        engine = EngineConfig(max_path_length=100)
        lambdas = (0.0, 0.3, 0.6)
        best = best_lambda_results(network, tasks, lambdas, engine)
        assert len(best) == len(tasks)
        # The selected result can never exceed any single-lambda run.
        for lam in lambdas:
            from repro.routing.pbm import PBMProtocol

            single = run_tasks(network, PBMProtocol(lam=lam), tasks, engine)
            for chosen, candidate in zip(best, single):
                if chosen.success == candidate.success:
                    assert chosen.transmissions <= candidate.transmissions

    def test_best_lambda_requires_lambdas(self, dense_network):
        with pytest.raises(ValueError):
            best_lambda_results(dense_network, [], [])


class TestFigures:
    def test_sweep_has_all_protocols(self, small_sweep):
        assert set(small_sweep.results) == {"GMP", "GMPnr", "LGS", "SMT", "GRD", "PBM"}

    def test_figure11_series_and_values(self, small_sweep):
        fig = figure11(small_sweep)
        assert fig.figure_id == "figure11"
        assert set(fig.labels()) == {"PBM", "LGS", "GMP", "GMPnr", "SMT"}
        for label in fig.labels():
            for x in fig.xs():
                assert fig.value(label, x) > 0

    def test_figure12_includes_grd(self, small_sweep):
        fig = figure12(small_sweep)
        assert "GRD" in fig.labels()

    def test_figure14_energy_positive(self, small_sweep):
        fig = figure14(small_sweep)
        for label in fig.labels():
            for x in fig.xs():
                assert fig.value(label, x) > 0

    def test_energy_tracks_transmissions(self, small_sweep):
        # Energy is transmissions weighted by listener counts; near-ties can
        # swap, but protocols that clearly differ in transmissions (>= 15%)
        # must order the same way in energy.
        hops = figure11(small_sweep)
        energy = figure14(small_sweep)
        for x in hops.xs():
            for a in hops.labels():
                for b in hops.labels():
                    if hops.value(a, x) * 1.15 < hops.value(b, x):
                        assert energy.value(a, x) < energy.value(b, x), (a, b, x)

    def test_figure15_monotone_shape(self):
        config = PaperConfig(node_count=350)
        scale = SMOKE_SCALE
        fig = figure15(config, scale)
        assert set(fig.labels()) == {"PBM", "LGS", "GMP"}
        for label in fig.labels():
            series = fig.series[label]
            assert series[0][0] < series[-1][0]  # x ascending.
            assert all(y >= 0 for _, y in series)

    def test_missing_point_raises(self, small_sweep):
        fig = figure11(small_sweep)
        with pytest.raises(KeyError):
            fig.value("GMP", 99.0)

    def test_latency_extension_figure(self, small_sweep):
        fig = figure_latency(small_sweep)
        for label in fig.labels():
            for x in fig.xs():
                assert fig.value(label, x) > 0
        # Sequential LGS completes later than GMP at the largest k.
        k_max = max(fig.xs())
        assert fig.value("GMP", k_max) <= fig.value("LGS", k_max)

    def test_delivery_summary(self, small_sweep):
        ratios = delivery_summary(small_sweep)
        assert 0.9 <= ratios["GMP"][4] <= 1.0

    def test_json_roundtrip(self, small_sweep):
        fig = figure11(small_sweep)
        payload = json.loads(json.dumps(fig.to_json_dict()))
        assert payload["figure_id"] == "figure11"
        assert set(payload["series"]) == set(fig.labels())


class TestReport:
    def test_table_rendering(self, small_sweep):
        text = render_figure_table(figure11(small_sweep))
        assert "Total number of hops" in text
        assert "GMP" in text
        assert "LGS" in text

    def test_ratio_summary(self, small_sweep):
        text = render_ratio_summary(figure11(small_sweep), "GMP", ["LGS", "PBM"])
        assert "vs LGS" in text
        assert "%" in text

    def test_ratio_summary_unknown_reference(self, small_sweep):
        with pytest.raises(KeyError):
            render_ratio_summary(figure11(small_sweep), "NOPE", ["LGS"])

    def test_dict_rows(self, small_sweep):
        rows = figure_as_dict_rows(figure11(small_sweep))
        assert rows[0]["x"] == min(SMOKE_SCALE.group_sizes)
        assert "GMP" in rows[0]
