"""Tests for dynamic multicast sessions (membership churn)."""

import numpy as np
import pytest

from repro.engine import EngineConfig
from repro.experiments.dynamics import (
    SessionConfig,
    compare_protocols_under_churn,
    run_multicast_session,
)
from repro.routing.gmp import GMPProtocol
from repro.routing.smt import SMTProtocol


class TestSessionConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SessionConfig(rounds=0)
        with pytest.raises(ValueError):
            SessionConfig(initial_group_size=1, min_group_size=2)
        with pytest.raises(ValueError):
            SessionConfig(leave_probability=1.5)
        with pytest.raises(ValueError):
            SessionConfig(join_probability=-0.1)


class TestSession:
    def test_runs_all_rounds(self, dense_network):
        config = SessionConfig(rounds=6, initial_group_size=6)
        session = run_multicast_session(
            dense_network, GMPProtocol(), 0, config, np.random.default_rng(1)
        )
        assert len(session.rounds) == 6
        assert session.total_transmissions > 0
        assert 0.9 <= session.delivery_ratio <= 1.0

    def test_membership_actually_churns(self, dense_network):
        config = SessionConfig(
            rounds=10, initial_group_size=8,
            leave_probability=0.4, join_probability=0.4,
        )
        session = run_multicast_session(
            dense_network, GMPProtocol(), 0, config, np.random.default_rng(2)
        )
        assert session.membership_changes > 0
        member_sets = {r.members for r in session.rounds}
        assert len(member_sets) > 1

    def test_group_never_below_minimum(self, dense_network):
        config = SessionConfig(
            rounds=12, initial_group_size=4,
            leave_probability=0.9, join_probability=0.0, min_group_size=2,
        )
        session = run_multicast_session(
            dense_network, GMPProtocol(), 0, config, np.random.default_rng(3)
        )
        assert all(len(r.members) >= 2 for r in session.rounds)

    def test_source_never_a_member(self, dense_network):
        config = SessionConfig(rounds=8, initial_group_size=10)
        session = run_multicast_session(
            dense_network, GMPProtocol(), 5, config, np.random.default_rng(4)
        )
        assert all(5 not in r.members for r in session.rounds)

    def test_zero_churn_is_static(self, dense_network):
        config = SessionConfig(
            rounds=5, initial_group_size=6,
            leave_probability=0.0, join_probability=0.0,
        )
        session = run_multicast_session(
            dense_network, GMPProtocol(), 0, config, np.random.default_rng(5)
        )
        assert len({r.members for r in session.rounds}) == 1
        assert session.membership_changes == 0

    def test_invalid_source(self, dense_network):
        with pytest.raises(ValueError):
            run_multicast_session(
                dense_network, GMPProtocol(), 10**6,
                SessionConfig(), np.random.default_rng(0),
            )


class TestComparison:
    def test_identical_churn_history_across_protocols(self, dense_network):
        config = SessionConfig(rounds=5, initial_group_size=6)
        results = compare_protocols_under_churn(
            dense_network,
            [GMPProtocol(), SMTProtocol()],
            0,
            config,
            seed=42,
            engine_config=EngineConfig(max_path_length=150),
        )
        gmp, smt = results
        for a, b in zip(gmp.rounds, smt.rounds):
            assert a.members == b.members
        # Stateless GMP keeps delivering through churn.
        assert gmp.delivery_ratio >= 0.95
