"""Tests for the statistics module (CIs, sign tests, win matrices)."""

import math

import numpy as np
import pytest

from repro.engine.stats import TaskResult
from repro.experiments.statistics import (
    MeanCI,
    _normal_quantile,
    _t_quantile,
    mean_confidence_interval,
    paired_comparison,
    render_win_matrix,
    win_matrix,
)


def result(task_id, tx):
    return TaskResult(
        task_id=task_id, protocol="X", source_id=0, destination_ids=(1,),
        delivered_hops={1: tx}, transmissions=tx, energy_joules=float(tx),
        duration_s=0.0,
    )


class TestQuantiles:
    def test_normal_quantile_known_values(self):
        assert _normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)
        assert _normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-4)
        assert _normal_quantile(0.995) == pytest.approx(2.575829, abs=1e-4)
        assert _normal_quantile(0.025) == pytest.approx(-1.959964, abs=1e-4)

    def test_normal_quantile_symmetry(self):
        for p in (0.6, 0.9, 0.99, 0.999):
            assert _normal_quantile(p) == pytest.approx(-_normal_quantile(1 - p), abs=1e-9)

    def test_t_quantile_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        for dof in (3, 10, 30, 100):
            for p in (0.95, 0.975, 0.995):
                expected = float(scipy_stats.t.ppf(p, dof))
                assert _t_quantile(p, dof) == pytest.approx(expected, rel=2e-2)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            _normal_quantile(0.0)
        with pytest.raises(ValueError):
            _t_quantile(0.95, 0)


class TestMeanCI:
    def test_basic_interval(self):
        rng = np.random.default_rng(0)
        sample = list(rng.normal(10.0, 2.0, size=200))
        ci = mean_confidence_interval(sample)
        assert ci.low < 10.0 < ci.high
        assert ci.half_width < 0.6

    def test_single_sample_infinite_width(self):
        ci = mean_confidence_interval([5.0])
        assert math.isinf(ci.half_width)

    def test_zero_variance(self):
        ci = mean_confidence_interval([3.0] * 10)
        assert ci.mean == 3.0
        assert ci.half_width == 0.0

    def test_coverage_simulation(self):
        # ~95% of intervals should contain the true mean.
        rng = np.random.default_rng(1)
        covered = 0
        trials = 300
        for _ in range(trials):
            sample = rng.normal(0.0, 1.0, size=20)
            ci = mean_confidence_interval(list(sample), confidence=0.95)
            covered += ci.low <= 0.0 <= ci.high
        assert 0.90 <= covered / trials <= 0.99

    def test_overlap(self):
        a = MeanCI(mean=1.0, half_width=0.5, confidence=0.95, sample_size=10)
        b = MeanCI(mean=1.8, half_width=0.4, confidence=0.95, sample_size=10)
        c = MeanCI(mean=3.0, half_width=0.3, confidence=0.95, sample_size=10)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0], confidence=1.5)


class TestPairedComparison:
    def test_clear_winner(self):
        a = [result(i, 10) for i in range(20)]
        b = [result(i, 14) for i in range(20)]
        cmp = paired_comparison(a, b, lambda r: float(r.transmissions), "A", "B")
        assert cmp.wins_a == 20
        assert cmp.wins_b == 0
        assert cmp.mean_difference == pytest.approx(-4.0)
        assert cmp.significant

    def test_tie_not_significant(self):
        a = [result(i, 10) for i in range(20)]
        b = [result(i, 10) for i in range(20)]
        cmp = paired_comparison(a, b, lambda r: float(r.transmissions))
        assert cmp.ties == 20
        assert cmp.sign_test_p == 1.0
        assert not cmp.significant

    def test_balanced_wins_not_significant(self):
        a = [result(i, 10 + (i % 2)) for i in range(20)]
        b = [result(i, 10 + ((i + 1) % 2)) for i in range(20)]
        cmp = paired_comparison(a, b, lambda r: float(r.transmissions))
        assert cmp.wins_a == cmp.wins_b == 10
        assert not cmp.significant

    def test_mismatched_tasks_rejected(self):
        a = [result(0, 10)]
        b = [result(1, 10)]
        with pytest.raises(ValueError):
            paired_comparison(a, b, lambda r: float(r.transmissions))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            paired_comparison([result(0, 1)], [], lambda r: 0.0)


class TestWinMatrix:
    def test_all_pairs_present(self):
        batches = {
            "GMP": [result(i, 10) for i in range(10)],
            "LGS": [result(i, 12) for i in range(10)],
            "PBM": [result(i, 15) for i in range(10)],
        }
        matrix = win_matrix(batches, lambda r: float(r.transmissions))
        assert len(matrix) == 3
        assert matrix[("GMP", "LGS")].wins_a == 10

    def test_render(self):
        batches = {
            "GMP": [result(i, 10) for i in range(10)],
            "LGS": [result(i, 12) for i in range(10)],
        }
        text = render_win_matrix(win_matrix(batches, lambda r: float(r.transmissions)))
        assert "GMP vs LGS" in text
        assert "10-0" in text
