"""Tests for the robustness experiment harness."""

import pytest

from repro.experiments.config import PaperConfig
from repro.experiments.robustness import (
    RobustnessScale,
    link_loss_sweep,
    node_failure_sweep,
)

SMALL_CONFIG = PaperConfig(node_count=300)
SMALL_SCALE = RobustnessScale(
    network_count=1,
    tasks_per_network=6,
    group_size=5,
    loss_rates=(0.0, 0.3),
    failed_fractions=(0.0, 0.15),
)


class TestLinkLossSweep:
    @pytest.fixture(scope="class")
    def figures(self):
        return link_loss_sweep(SMALL_CONFIG, SMALL_SCALE)

    def test_series_shape(self, figures):
        delivery, energy = figures
        assert set(delivery.series) == {"GMP", "LGS", "FLOOD"}
        assert delivery.xs() == [0.0, 0.3]
        assert energy.xs() == [0.0, 0.3]

    def test_lossless_delivers_everything(self, figures):
        delivery, _ = figures
        for label in delivery.labels():
            assert delivery.value(label, 0.0) == pytest.approx(1.0)

    def test_loss_hurts_routing_protocols(self, figures):
        delivery, _ = figures
        for label in ("GMP", "LGS"):
            assert delivery.value(label, 0.3) < 1.0

    def test_flooding_most_robust(self, figures):
        delivery, _ = figures
        assert delivery.value("FLOOD", 0.3) >= delivery.value("GMP", 0.3)
        assert delivery.value("FLOOD", 0.3) >= delivery.value("LGS", 0.3)

    def test_flooding_most_expensive(self, figures):
        _, energy = figures
        assert energy.value("FLOOD", 0.0) > energy.value("GMP", 0.0)


class TestNodeFailureSweep:
    @pytest.fixture(scope="class")
    def figure(self):
        return node_failure_sweep(SMALL_CONFIG, SMALL_SCALE)

    def test_no_failures_full_delivery(self, figure):
        for label in figure.labels():
            assert figure.value(label, 0.0) == pytest.approx(1.0)

    def test_crashes_degrade_delivery(self, figure):
        assert figure.value("GMP", 0.15) <= 1.0
        # Flooding routes around dead nodes via redundancy.
        assert figure.value("FLOOD", 0.15) >= figure.value("GMP", 0.15) - 0.05
