"""Tests for the programmatic ablation harness."""

import pytest

from repro.experiments.ablations import (
    ablation_next_hop_rule,
    ablation_radio_range,
    ablation_refinement,
    ablation_rrstr_rule,
    ablation_transmission_model,
    render_ablations,
    run_all_ablations,
)
from repro.experiments.config import PaperConfig

SMALL = PaperConfig(node_count=300)


class TestIndividualAblations:
    def test_radio_range(self):
        outcome = ablation_radio_range(SMALL, group_size=8, task_count=6)
        assert outcome.metrics["gmp_transmissions"] < outcome.metrics[
            "gmpnr_transmissions"
        ]
        assert outcome.metrics["saving_fraction"] > 0

    def test_next_hop_rule(self):
        outcome = ablation_next_hop_rule(SMALL, group_size=8, task_count=6)
        assert outcome.metrics["pivot_transmissions"] > 0
        assert outcome.metrics["closest_transmissions"] > 0

    def test_rrstr_rule(self):
        outcome = ablation_rrstr_rule(instance_count=20, group_size=8)
        assert outcome.metrics["ratio"] <= 1.05

    def test_refinement(self):
        outcome = ablation_refinement(instance_count=20, group_size=8)
        assert outcome.metrics["refined_length"] < outcome.metrics["raw_length"]

    def test_transmission_model(self):
        outcome = ablation_transmission_model(SMALL, group_size=8, task_count=6)
        assert (
            outcome.metrics["unicast_transmissions"]
            > outcome.metrics["broadcast_transmissions"]
        )
        assert outcome.metrics["inflation_fraction"] > 0


class TestHarness:
    def test_run_all_and_render(self):
        outcomes = run_all_ablations(SMALL)
        assert len(outcomes) == 5
        text = render_ablations(outcomes)
        for outcome in outcomes:
            assert outcome.name in text
            assert outcome.conclusion in text
