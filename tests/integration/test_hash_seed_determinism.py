"""Bit-reproducibility across interpreter hash seeds.

The paper's evaluation averages 10 networks × 100 tasks; our claim is that
every one of those runs replays identically from the master seed.  That
claim dies silently if any routing decision iterates a set (see reprolint
rule R003), because ``PYTHONHASHSEED`` then reorders destinations between
runs.  This regression runs one Figure-11-style scenario — same network,
same tasks, full traces — in two fresh interpreters with different hash
seeds and asserts the traces are identical bit for bit.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

_SCENARIO = """
import hashlib, json
from repro.engine import run_task
from repro.experiments.config import PaperConfig
from repro.experiments.sweep import make_network
from repro.sessions.workload import generate_tasks
from repro.routing import GMPProtocol, PBMProtocol, SMTProtocol
from repro.simkit.rng import RandomStreams

config = PaperConfig(node_count=350)
network = make_network(config, network_index=0)
rng = RandomStreams(config.master_seed).stream("workload", 0)
tasks = generate_tasks(network, task_count=2, group_size=8, rng=rng)

payload = []
for protocol in (GMPProtocol(), PBMProtocol(lam=0.3), SMTProtocol()):
    for task in tasks:
        result = run_task(
            network,
            protocol,
            task.source_id,
            task.destination_ids,
            task_id=task.task_id,
            collect_trace=True,
        )
        frames = [
            [
                frame.sender_id,
                frame.transmissions_charged,
                [
                    [c.receiver_id, list(c.destination_ids), c.hop_count, c.in_perimeter_mode]
                    for c in frame.copies
                ],
            ]
            for frame in result.trace.frames
        ]
        payload.append(
            [
                protocol.name,
                task.task_id,
                result.transmissions,
                round(result.energy_joules, 12),
                sorted(result.delivered_hops.items()),
                frames,
            ]
        )
print(hashlib.sha256(json.dumps(payload).encode("utf-8")).hexdigest())
"""


def _run_scenario(hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, "-c", _SCENARIO],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
        check=True,
    )
    return completed.stdout.strip()


def test_traces_identical_across_hash_seeds():
    digest_a = _run_scenario("0")
    digest_b = _run_scenario("1")
    assert len(digest_a) == 64
    assert digest_a == digest_b, (
        "routing traces depend on PYTHONHASHSEED — some decision still "
        "iterates an unordered set or dict view"
    )
