"""Failure injection: voids, partitions, sparse networks, TTL pressure."""

import numpy as np
import pytest

from repro.engine import EngineConfig, run_task
from repro.geometry import Point
from repro.network import RadioConfig, build_network
from repro.network.topology import topology_with_voids, uniform_random_topology
from repro.routing import GMPProtocol, GRDProtocol, LGSProtocol, PBMProtocol


@pytest.fixture(scope="module")
def void_network():
    """A connected deployment with a large central void.

    Routing across the middle must go around: this forces perimeter mode
    (GMP/PBM) and defeats pure greedy (LGS/GRD) for cross-void traffic.
    """
    rng = np.random.default_rng(99)
    points = topology_with_voids(
        500, 1000.0, 1000.0, [(Point(500, 500), 260.0)], rng
    )
    net = build_network(points, RadioConfig(radio_range_m=150.0))
    assert net.is_connected()
    return net


def cross_void_pairs(net, count=12):
    """(source, dest) pairs whose straight line crosses the central void."""
    west = [
        n.node_id
        for n in net.nodes
        if n.location.x < 200 and 380 < n.location.y < 620
    ]
    east = [
        n.node_id
        for n in net.nodes
        if n.location.x > 800 and 380 < n.location.y < 620
    ]
    pairs = [(w, e) for w in west for e in east]
    return pairs[:count]


class TestVoidRecovery:
    def test_gmp_routes_around_void(self, void_network):
        pairs = cross_void_pairs(void_network)
        assert pairs, "fixture produced no cross-void pairs"
        delivered = 0
        for source, dest in pairs:
            result = run_task(void_network, GMPProtocol(), source, [dest])
            delivered += result.success
        # Perimeter recovery must succeed for the (large) majority.
        assert delivered >= len(pairs) * 0.8

    def test_pbm_routes_around_void(self, void_network):
        pairs = cross_void_pairs(void_network)
        delivered = sum(
            run_task(void_network, PBMProtocol(), s, [d]).success for s, d in pairs
        )
        assert delivered >= len(pairs) * 0.8

    def test_greedy_protocols_fail_more(self, void_network):
        # LGS and GRD have no recovery; on cross-void unicast they can only
        # succeed when greedy never stalls.
        pairs = cross_void_pairs(void_network)
        gmp_ok = sum(
            run_task(void_network, GMPProtocol(), s, [d]).success for s, d in pairs
        )
        lgs_ok = sum(
            run_task(void_network, LGSProtocol(), s, [d]).success for s, d in pairs
        )
        grd_ok = sum(
            run_task(void_network, GRDProtocol(), s, [d]).success for s, d in pairs
        )
        assert lgs_ok <= gmp_ok
        assert grd_ok <= gmp_ok

    def test_mixed_group_with_void_crossing(self, void_network):
        # A group mixing same-side and far-side destinations: GMP delivers
        # the same-side ones regardless and usually all of them.
        pairs = cross_void_pairs(void_network)
        source, far = pairs[0]
        near = [
            n for n in void_network.neighbors_of(source)
        ][:2]
        result = run_task(void_network, GMPProtocol(), source, near + [far])
        for dest in near:
            assert dest in result.delivered_hops


class TestSparseNetworks:
    def test_failures_decrease_with_density(self):
        """The Figure-15 mechanism: sparser => more failed tasks."""
        failures = {}
        for count in (130, 400):
            failed = 0
            for net_seed in range(3):
                rng = np.random.default_rng(1000 + net_seed)
                pts = uniform_random_topology(count, 1000.0, 1000.0, rng)
                net = build_network(pts, RadioConfig(radio_range_m=150.0))
                task_rng = np.random.default_rng(2000 + net_seed)
                for _ in range(8):
                    picks = task_rng.choice(count, size=7, replace=False)
                    result = run_task(
                        net,
                        GMPProtocol(),
                        int(picks[0]),
                        [int(p) for p in picks[1:]],
                        config=EngineConfig(max_path_length=100),
                    )
                    failed += not result.success
            failures[count] = failed
        assert failures[130] >= failures[400]

    def test_lgs_fails_most_when_sparse(self):
        rng = np.random.default_rng(5)
        pts = uniform_random_topology(170, 1000.0, 1000.0, rng)
        net = build_network(pts, RadioConfig(radio_range_m=150.0))
        task_rng = np.random.default_rng(6)
        tasks = []
        for _ in range(15):
            picks = task_rng.choice(170, size=7, replace=False)
            tasks.append((int(picks[0]), [int(p) for p in picks[1:]]))
        config = EngineConfig(max_path_length=100)
        gmp_failed = sum(
            not run_task(net, GMPProtocol(), s, d, config=config).success
            for s, d in tasks
        )
        lgs_failed = sum(
            not run_task(net, LGSProtocol(), s, d, config=config).success
            for s, d in tasks
        )
        assert gmp_failed <= lgs_failed


class TestTTLPressure:
    def test_tight_ttl_degrades_gracefully(self, void_network):
        pairs = cross_void_pairs(void_network)
        source, dest = pairs[0]
        generous = run_task(
            void_network, GMPProtocol(), source, [dest],
            config=EngineConfig(max_path_length=100),
        )
        strangled = run_task(
            void_network, GMPProtocol(), source, [dest],
            config=EngineConfig(max_path_length=3),
        )
        assert generous.transmissions >= strangled.transmissions
        assert not strangled.success
