"""Property-based engine/protocol invariants on randomized networks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import EngineConfig, run_task
from repro.network import RadioConfig, build_network
from repro.network.energy import EnergyModel
from repro.network.topology import grid_topology
from repro.routing import GMPProtocol, LGSProtocol, PBMProtocol


def jittered_grid(seed: int, side: int = 7, spacing: float = 100.0):
    """A connected-by-construction jittered grid (jitter << radio margin)."""
    rng = np.random.default_rng(seed)
    points = grid_topology(
        side * side, side * spacing, side * spacing, jitter=15.0, rng=rng
    )
    return build_network(points, RadioConfig(radio_range_m=150.0))


protocol_factories = st.sampled_from(
    [GMPProtocol, LGSProtocol, lambda: PBMProtocol(lam=0.3)]
)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    factory=protocol_factories,
    data=st.data(),
)
@settings(max_examples=30, deadline=None)
def test_delivery_and_accounting_invariants(seed, factory, data):
    network = jittered_grid(seed)
    node_count = network.node_count
    source = data.draw(st.integers(min_value=0, max_value=node_count - 1))
    dest_count = data.draw(st.integers(min_value=1, max_value=6))
    rng = np.random.default_rng(seed + 1)
    destinations = [
        int(d)
        for d in rng.choice(
            [n for n in range(node_count) if n != source],
            size=dest_count,
            replace=False,
        )
    ]
    config = EngineConfig(max_path_length=200)
    result = run_task(
        network, factory(), source, destinations, config=config, collect_trace=True
    )

    # Delivered set is a subset of the requested set, with sane hop counts.
    assert set(result.delivered_hops) <= set(destinations)
    assert all(1 <= h <= 200 for h in result.delivered_hops.values())

    # On a connected jittered grid, GMP and PBM deliver everything; LGS may
    # stall only at genuine greedy minima (rare on grids but possible).
    if isinstance(result.protocol, str) and result.protocol in ("GMP", "PBM[l=0.3]"):
        assert result.success, result.failed_destinations

    # The trace and the counters agree.
    trace = result.trace
    assert sum(f.transmissions_charged for f in trace.frames) == result.transmissions

    # Recompute the energy from the trace: per frame, airtime * (tx + n*rx).
    model = EnergyModel(network.radio)
    recomputed = sum(
        f.transmissions_charged
        * model.transmission_energy(len(network.listeners_of(f.sender_id)))
        for f in trace.frames
    )
    assert recomputed == pytest.approx(result.energy_joules, rel=1e-9)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_gmp_transmissions_bounded_by_flooding(seed):
    """GMP never transmits more frames than whole-network flooding would."""
    from repro.routing.flooding import FloodingProtocol

    network = jittered_grid(seed, side=6)
    rng = np.random.default_rng(seed + 2)
    picks = rng.choice(network.node_count, size=5, replace=False)
    source, dests = int(picks[0]), [int(p) for p in picks[1:]]
    gmp = run_task(network, GMPProtocol(), source, dests)
    flood = run_task(network, FloodingProtocol(), source, dests)
    assert gmp.success and flood.success
    assert gmp.transmissions <= flood.transmissions
