"""The EXPERIMENTS.md claims, asserted against the committed results artifact.

`results_mid.json` is produced by `scripts/mid_scale_run.py` (4 networks x
50 tasks, full k and lambda grids).  These tests keep the documentation, the
artifact and the code honest with each other: if a future change breaks a
reproduced shape, regenerating the artifact will fail here.
"""

import json
import pathlib

import pytest

from repro.experiments.figures import FigureResult

ARTIFACT = pathlib.Path(__file__).resolve().parents[2] / "results_mid.json"


@pytest.fixture(scope="module")
def figures():
    if not ARTIFACT.exists():
        pytest.skip("results_mid.json not present (run scripts/mid_scale_run.py)")
    payload = json.loads(ARTIFACT.read_text())
    return {name: FigureResult.from_json_dict(fig) for name, fig in payload.items()}


class TestFigure11Claims:
    def test_gmp_least_total_hops_everywhere(self, figures):
        fig = figures["figure11"]
        for k in fig.xs():
            gmp = fig.value("GMP", k)
            for label in ("LGS", "PBM", "GMPnr", "SMT"):
                assert gmp < fig.value(label, k), (label, k)

    def test_radio_awareness_worth_about_25_percent(self, figures):
        fig = figures["figure11"]
        k = max(fig.xs())
        saving = 1 - fig.value("GMP", k) / fig.value("GMPnr", k)
        assert 0.2 <= saving <= 0.45

    def test_pbm_gap_exceeds_paper_headline(self, figures):
        fig = figures["figure11"]
        k = max(fig.xs())
        assert 1 - fig.value("GMP", k) / fig.value("PBM", k) >= 0.25


class TestFigure12Claims:
    def test_grd_lower_bounds_everyone(self, figures):
        fig = figures["figure12"]
        for k in fig.xs():
            grd = fig.value("GRD", k)
            for label in ("GMP", "PBM", "LGS", "SMT"):
                assert grd <= fig.value(label, k) + 1e-9

    def test_gmp_close_to_greedy_lgs_not(self, figures):
        fig = figures["figure12"]
        k = max(fig.xs())
        grd = fig.value("GRD", k)
        assert fig.value("GMP", k) <= grd * 1.4
        assert fig.value("LGS", k) >= grd * 1.8

    def test_lgs_gap_grows_with_k(self, figures):
        fig = figures["figure12"]
        ks = fig.xs()
        gaps = [fig.value("LGS", k) - fig.value("GMP", k) for k in ks]
        assert gaps[-1] > gaps[0]


class TestFigure14Claims:
    def test_energy_mirrors_hops(self, figures):
        hops = figures["figure11"]
        energy = figures["figure14"]
        for k in hops.xs():
            for label in energy.labels():
                assert energy.value(label, k) > 0
            assert energy.value("GMP", k) == min(
                energy.value(label, k) for label in energy.labels()
            )


class TestFigure15Claims:
    def test_failures_decrease_with_density(self, figures):
        fig = figures["figure15"]
        for label in fig.labels():
            series = [fig.value(label, x) for x in fig.xs()]
            assert series[0] >= series[-1]

    def test_lgs_fails_most_in_sparse_regime(self, figures):
        fig = figures["figure15"]
        sparse = min(fig.xs())
        assert fig.value("LGS", sparse) > fig.value("GMP", sparse)
        assert fig.value("LGS", sparse) > fig.value("PBM", sparse)

    def test_gmp_no_worse_than_pbm(self, figures):
        fig = figures["figure15"]
        for x in fig.xs():
            assert fig.value("GMP", x) <= fig.value("PBM", x) + 1e-9

    def test_paper_densities_failure_free(self, figures):
        fig = figures["figure15"]
        for x in (600.0, 1000.0):
            assert fig.value("GMP", x) == 0.0
