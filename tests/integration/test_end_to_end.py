"""End-to-end integration tests: every protocol on realistic networks."""

import numpy as np
import pytest

from repro.engine import EngineConfig, run_task
from repro.routing import (
    GMPProtocol,
    GRDProtocol,
    LGKProtocol,
    LGSProtocol,
    PBMProtocol,
    SMTProtocol,
)
from repro.sessions.workload import generate_tasks

ALL_PROTOCOLS = [
    GMPProtocol,
    lambda: GMPProtocol(radio_aware=False),
    LGSProtocol,
    lambda: LGKProtocol(2),
    PBMProtocol,
    SMTProtocol,
    GRDProtocol,
]


@pytest.mark.parametrize("factory", ALL_PROTOCOLS)
def test_full_delivery_on_dense_network(dense_network, factory):
    """On a connected, dense network every protocol delivers everything."""
    protocol = factory()
    rng = np.random.default_rng(13)
    for task in generate_tasks(dense_network, 5, 6, rng):
        result = run_task(
            dense_network,
            protocol,
            task.source_id,
            task.destination_ids,
            config=EngineConfig(max_path_length=200),
            task_id=task.task_id,
        )
        assert result.success, (
            f"{protocol.name} failed {result.failed_destinations} "
            f"for task {task.task_id}"
        )
        assert result.transmissions > 0
        assert result.energy_joules > 0
        # Hop counts are bounded by the TTL.
        assert all(h <= 200 for h in result.delivered_hops.values())


@pytest.mark.parametrize("factory", ALL_PROTOCOLS)
def test_deterministic_replay(dense_network, factory):
    """The same task replayed gives the identical result."""
    protocol_a, protocol_b = factory(), factory()
    first = run_task(dense_network, protocol_a, 3, [60, 90, 120], task_id=1)
    second = run_task(dense_network, protocol_b, 3, [60, 90, 120], task_id=1)
    assert first.delivered_hops == second.delivered_hops
    assert first.transmissions == second.transmissions
    assert first.energy_joules == pytest.approx(second.energy_joules)


def test_protocol_ordering_on_shared_workload(dense_network):
    """The paper's headline orderings on a small shared workload.

    Small-sample versions of Figures 11/12: GMP needs fewer transmissions
    than LGS and PBM; per-destination hops GMP is well below LGS.
    """
    rng = np.random.default_rng(4)
    tasks = generate_tasks(dense_network, 12, 8, rng)
    totals = {}
    per_dest = {}
    for factory in (GMPProtocol, LGSProtocol, PBMProtocol, GRDProtocol):
        protocol = factory()
        results = [
            run_task(dense_network, protocol, t.source_id, t.destination_ids)
            for t in tasks
        ]
        assert all(r.success for r in results)
        totals[protocol.name] = sum(r.transmissions for r in results)
        per_dest[protocol.name] = sum(
            r.average_per_destination_hops for r in results
        )
    assert totals["GMP"] < totals["PBM[l=0.3]"]
    assert totals["GMP"] <= totals["LGS"] * 1.02
    assert per_dest["GMP"] < per_dest["LGS"]
    assert per_dest["GRD"] <= per_dest["GMP"]


def test_grid_network_multicast(grid_network):
    """Structured topology: corner source to the three other corners."""
    side = 10
    corners = [side - 1, side * (side - 1), side * side - 1]
    for factory in (GMPProtocol, LGSProtocol, PBMProtocol, SMTProtocol):
        result = run_task(grid_network, factory(), 0, corners)
        assert result.success, factory().name


def test_single_hop_group(dense_network):
    """All destinations inside the source's radio range: one hop each."""
    source = 0
    neighbors = list(dense_network.neighbors_of(source))[:4]
    result = run_task(dense_network, GMPProtocol(), source, neighbors)
    assert result.success
    assert all(h == 1 for h in result.delivered_hops.values())
