"""Tests for the multicast packet model."""

import pytest

from repro.geometry import Point
from repro.packets import Destination, MulticastPacket, PerimeterState


def make_packet(dest_ids=(1, 2, 3)):
    return MulticastPacket(
        task_id=7,
        source=Destination(0, Point(0, 0)),
        destinations=tuple(Destination(i, Point(i * 10.0, 0)) for i in dest_ids),
    )


class TestConstruction:
    def test_duplicate_destination_rejected(self):
        with pytest.raises(ValueError):
            make_packet((1, 1))

    def test_negative_hop_count_rejected(self):
        with pytest.raises(ValueError):
            MulticastPacket(
                task_id=1,
                source=Destination(0, Point(0, 0)),
                destinations=(),
                hop_count=-1,
            )

    def test_accessors(self):
        packet = make_packet()
        assert packet.destination_ids == (1, 2, 3)
        assert packet.destination_locations[0] == Point(10, 0)
        assert not packet.in_perimeter_mode


class TestCopies:
    def test_without_destination(self):
        packet = make_packet()
        reduced = packet.without_destination(2)
        assert reduced.destination_ids == (1, 3)
        assert packet.destination_ids == (1, 2, 3)  # Original untouched.

    def test_without_missing_destination_is_noop(self):
        packet = make_packet()
        assert packet.without_destination(99) is packet

    def test_with_destinations_clears_perimeter_and_subdestination(self):
        packet = make_packet()
        state = PerimeterState(
            target=Point(5, 5), entry_location=Point(0, 0), entry_total_distance=10.0
        )
        dest = packet.destinations[0]
        in_peri = packet.with_perimeter([dest], state)
        assert in_peri.in_perimeter_mode
        back = in_peri.with_destinations([dest])
        assert not back.in_perimeter_mode
        assert back.subdestination is None

    def test_with_destinations_sets_subdestination(self):
        packet = make_packet()
        dest = packet.destinations[1]
        copy = packet.with_destinations(packet.destinations, subdestination=dest)
        assert copy.subdestination == dest

    def test_hopped_increments(self):
        packet = make_packet()
        assert packet.hopped().hop_count == 1
        assert packet.hopped().hopped().hop_count == 2
        assert packet.hop_count == 0


class TestPerimeterState:
    def test_advanced_replaces_fields(self):
        state = PerimeterState(
            target=Point(5, 5), entry_location=Point(0, 0), entry_total_distance=10.0
        )
        advanced = state.advanced(came_from=Point(1, 1))
        assert advanced.came_from == Point(1, 1)
        assert advanced.target == state.target
        assert state.came_from is None  # Immutability.


class TestHeaderSize:
    def test_grows_with_destinations(self):
        small = make_packet((1,))
        big = make_packet((1, 2, 3, 4, 5))
        assert big.header_size_bytes() > small.header_size_bytes()

    def test_perimeter_adds_overhead(self):
        packet = make_packet()
        state = PerimeterState(
            target=Point(5, 5), entry_location=Point(0, 0), entry_total_distance=10.0
        )
        in_peri = packet.with_perimeter(packet.destinations, state)
        assert in_peri.header_size_bytes() > packet.header_size_bytes()
