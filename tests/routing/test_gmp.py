"""Tests for the GMP protocol (paper Section 4, Figures 7-10)."""

import math

import pytest

from repro.geometry import Point, distance
from repro.routing.gmp import GMPProtocol
from repro.routing.pbm import PBMProtocol
from tests.routing.helpers import network_from_points, packet_for, view_of


def figure10_network():
    """Figure 10's essence: v is void at s, but the group {u, v} is routable.

    s's only neighbor is n; n is farther from v than s is (v is a void
    destination in the unicast sense) but much closer to u, so the group's
    total distance still decreases through n.
    """
    points = [
        Point(0, 0),       # 0: s
        Point(120, 80),    # 1: n (only neighbor of s)
        Point(200, 150),   # 2: u
        Point(-100, 250),  # 3: v (no neighbor of s is closer to it)
    ]
    return network_from_points(points, radio_range=150.0)


def two_branch_network():
    """Two destination clusters ~110 degrees apart with one lateral neighbor
    per branch (Figure 9's splitting situation)."""

    def polar(r, deg):
        return Point(r * math.cos(math.radians(deg)), r * math.sin(math.radians(deg)))

    points = [
        Point(0, 0),      # 0: s
        polar(140, 95),   # 1: n1 (upper lateral neighbor)
        polar(140, -95),  # 2: n2 (lower lateral neighbor)
        polar(800, 55),   # 3: u (upper branch)
        polar(810, 52),   # 4: v (upper branch)
        polar(800, -55),  # 5: c (lower branch)
        polar(810, -52),  # 6: d (lower branch)
    ]
    return network_from_points(points, radio_range=150.0)


class TestBasicForwarding:
    def test_neighbor_destination_direct(self):
        net = network_from_points([Point(0, 0), Point(100, 0)])
        decisions = GMPProtocol().handle(view_of(net, 0), packet_for(net, 0, [1]))
        assert len(decisions) == 1
        assert decisions[0].next_hop_id == 1
        assert decisions[0].packet.destination_ids == (1,)

    def test_all_destinations_covered_once(self, dense_network):
        packet = packet_for(dense_network, 0, [50, 100, 150, 200, 250])
        decisions = GMPProtocol().handle(view_of(dense_network, 0), packet)
        forwarded = [d for dec in decisions for d in dec.packet.destination_ids]
        assert sorted(forwarded) == [50, 100, 150, 200, 250]
        for dec in decisions:
            assert dec.next_hop_id in dense_network.neighbors_of(0)

    def test_progress_constraint_holds(self, dense_network):
        packet = packet_for(dense_network, 0, [60, 120, 180])
        decisions = GMPProtocol().handle(view_of(dense_network, 0), packet)
        own = dense_network.location_of(0)
        for dec in decisions:
            if dec.packet.in_perimeter_mode:
                continue
            hop = dense_network.location_of(dec.next_hop_id)
            group = [d.location for d in dec.packet.destinations]
            assert sum(distance(hop, g) for g in group) < sum(
                distance(own, g) for g in group
            )

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            GMPProtocol(next_hop_rule="nonsense")
        with pytest.raises(ValueError):
            GMPProtocol(perimeter_exit="sometimes")

    def test_names(self):
        assert GMPProtocol().name == "GMP"
        assert GMPProtocol(radio_aware=False).name == "GMPnr"


class TestSplitting:
    def test_figure9_splits_towards_lateral_neighbors(self):
        net = two_branch_network()
        packet = packet_for(net, 0, [3, 4, 5, 6])
        decisions = GMPProtocol().handle(view_of(net, 0), packet)
        greedy = [d for d in decisions if not d.packet.in_perimeter_mode]
        assert len(greedy) == 2
        by_hop = {d.next_hop_id: sorted(d.packet.destination_ids) for d in greedy}
        assert by_hop == {1: [3, 4], 2: [5, 6]}

    def test_figure10_void_destination_joins_group(self):
        net = figure10_network()
        packet = packet_for(net, 0, [2, 3])
        decisions = GMPProtocol().handle(view_of(net, 0), packet)
        # One greedy copy to n with both destinations, no perimeter mode.
        assert len(decisions) == 1
        assert decisions[0].next_hop_id == 1
        assert sorted(decisions[0].packet.destination_ids) == [2, 3]
        assert not decisions[0].packet.in_perimeter_mode

    def test_figure10_contrast_pbm_sends_void_to_perimeter(self):
        # Same situation under PBM: v has no progress neighbor, so it is
        # forced into perimeter mode (the paper's Section 5.4 contrast).
        net = figure10_network()
        packet = packet_for(net, 0, [2, 3])
        decisions = PBMProtocol().handle(view_of(net, 0), packet)
        peri = [d for d in decisions if d.packet.in_perimeter_mode]
        greedy = [d for d in decisions if not d.packet.in_perimeter_mode]
        assert len(peri) == 1
        assert peri[0].packet.destination_ids == (3,)
        assert len(greedy) == 1
        assert greedy[0].packet.destination_ids == (2,)


class TestPerimeter:
    def test_lone_void_destination_enters_perimeter(self):
        # s's only neighbor is farther from the destination: perimeter mode.
        points = [Point(0, 0), Point(100, 0), Point(-120, 200)]
        net = network_from_points(points, radio_range=150.0)
        # Destination 2 is not reachable greedily from 0 (neighbor 1 is
        # farther from it), and node 1 is s's only neighbor.
        packet = packet_for(net, 0, [2])
        decisions = GMPProtocol().handle(view_of(net, 0), packet)
        assert len(decisions) == 1
        assert decisions[0].packet.in_perimeter_mode
        state = decisions[0].packet.perimeter
        assert state.target == net.location_of(2)

    def test_perimeter_packet_keeps_walking_when_not_closer(self):
        points = [Point(0, 0), Point(100, 0), Point(-120, 200)]
        net = network_from_points(points, radio_range=150.0)
        packet = packet_for(net, 0, [2])
        (entry,) = GMPProtocol().handle(view_of(net, 0), packet)
        # Node 1 is even farther from the target; it must stay in perimeter
        # mode (or drop), never clear the flag.
        follow = GMPProtocol().handle(view_of(net, 1), entry.packet)
        for dec in follow:
            assert dec.packet.in_perimeter_mode

    def test_perimeter_exit_when_closer_and_routable(self, dense_network):
        from repro.packets import PerimeterState

        # Hand-craft a perimeter packet at a node that can greedily reach
        # the destination and is closer than the (fake) entry point.
        node = 10
        dest = dense_network.neighbors_of(node)[0]
        packet = packet_for(dense_network, 3, [dest]).with_perimeter(
            packet_for(dense_network, 3, [dest]).destinations,
            PerimeterState(
                target=dense_network.location_of(dest),
                entry_location=Point(0, 0),
                entry_total_distance=1e9,
                came_from=dense_network.location_of(
                    dense_network.neighbors_of(node)[-1]
                ),
            ),
        )
        decisions = GMPProtocol().handle(view_of(dense_network, node), packet)
        assert len(decisions) == 1
        assert not decisions[0].packet.in_perimeter_mode


class TestAblations:
    def test_closest_destination_rule_runs(self, dense_network):
        proto = GMPProtocol(next_hop_rule="closest-destination")
        packet = packet_for(dense_network, 0, [50, 100, 150])
        decisions = proto.handle(view_of(dense_network, 0), packet)
        covered = sorted(d for dec in decisions for d in dec.packet.destination_ids)
        assert covered == [50, 100, 150]

    def test_merge_coincident_off_may_duplicate_hops(self, dense_network):
        proto = GMPProtocol(merge_coincident=False)
        packet = packet_for(dense_network, 0, [50, 100, 150, 200])
        decisions = proto.handle(view_of(dense_network, 0), packet)
        covered = sorted(d for dec in decisions for d in dec.packet.destination_ids)
        assert covered == [50, 100, 150, 200]

    def test_describe_mentions_options(self):
        proto = GMPProtocol(next_hop_rule="closest-destination", perimeter_exit="eager")
        text = proto.describe()
        assert "closest-destination" in text
        assert "eager" in text
