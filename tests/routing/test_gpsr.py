"""Tests for the GPSR unicast protocol."""

import numpy as np
import pytest

from repro.engine import EngineConfig, run_task
from repro.geometry import Point
from repro.network import RadioConfig, build_network
from repro.network.topology import topology_with_voids
from repro.routing.gpsr import GPSRProtocol
from repro.routing.grd import GRDProtocol
from tests.conftest import make_line_network
from tests.routing.helpers import network_from_points, packet_for, view_of


class TestGreedyPhase:
    def test_forwards_greedily(self):
        net = make_line_network(5, spacing=100.0)
        decisions = GPSRProtocol().handle(view_of(net, 0), packet_for(net, 0, [4]))
        assert [d.next_hop_id for d in decisions] == [1]
        assert not decisions[0].packet.in_perimeter_mode

    def test_multi_destination_independent_copies(self, dense_network):
        packet = packet_for(dense_network, 0, [50, 100, 150])
        decisions = GPSRProtocol().handle(view_of(dense_network, 0), packet)
        assert len(decisions) == 3
        assert all(len(d.packet.destinations) == 1 for d in decisions)

    def test_enters_perimeter_at_local_minimum(self):
        # Node 0's only neighbor (node 1) is farther from the destination
        # than node 0 itself: a textbook greedy local minimum.
        net = network_from_points(
            [Point(0, 0), Point(100, 0), Point(-120, 200)],
            radio_range=150.0,
        )
        decisions = GPSRProtocol().handle(view_of(net, 0), packet_for(net, 0, [2]))
        assert len(decisions) == 1
        assert decisions[0].packet.in_perimeter_mode


class TestRecovery:
    def test_delivers_where_grd_fails(self):
        # A concave pocket: greedy-only GRD dies, GPSR walks around.
        rng = np.random.default_rng(99)
        voids = [
            (Point(600.0, 350.0), 140.0),
            (Point(600.0, 500.0), 140.0),
            (Point(600.0, 650.0), 140.0),
            (Point(430.0, 260.0), 120.0),
            (Point(430.0, 740.0), 120.0),
        ]
        points = topology_with_voids(600, 1000.0, 1000.0, voids, rng)
        net = build_network(points, RadioConfig(radio_range_m=150.0))
        source = net.closest_node_to(Point(150.0, 500.0))
        dest = net.closest_node_to(Point(900.0, 500.0))
        config = EngineConfig(max_path_length=150)
        gpsr = run_task(net, GPSRProtocol(), source, [dest], config=config)
        grd = run_task(net, GRDProtocol(), source, [dest], config=config)
        assert gpsr.success
        assert not grd.success

    def test_matches_greedy_on_easy_paths(self, dense_network):
        for source, dest in ((0, 250), (10, 180), (33, 299)):
            gpsr = run_task(dense_network, GPSRProtocol(), source, [dest])
            grd = run_task(dense_network, GRDProtocol(), source, [dest])
            assert gpsr.success and grd.success
            # Where greedy succeeds, GPSR *is* greedy.
            assert gpsr.delivered_hops == grd.delivered_hops

    def test_per_copy_transmission_accounting(self):
        net = network_from_points(
            [Point(0, 0), Point(100, 0), Point(-100, 0)], radio_range=150.0
        )
        result = run_task(net, GPSRProtocol(), 0, [1, 2])
        assert result.transmissions == 2  # Independent unicasts.
