"""Tests for the NodeView locality boundary and greedy primitives."""

import numpy as np
import pytest

from repro.geometry import Point
from repro.packets import Destination
from repro.routing.base import ForwardDecision, NodeView, merge_decisions
from repro.routing.greedy import (
    best_neighbor_for_group,
    closest_neighbor_to,
    greedy_next_hop,
    group_distance_sums,
    total_distance,
)
from tests.conftest import make_line_network
from tests.routing.helpers import network_from_points, packet_for, view_of


class TestNodeView:
    def test_exposes_own_and_neighbor_locations(self):
        net = make_line_network(3, spacing=100.0)
        view = NodeView(net, 1)
        assert view.location == Point(100, 0)
        assert view.location_of(0) == Point(0, 0)
        assert view.location_of(1) == view.location

    def test_denies_non_neighbor_locations(self):
        net = make_line_network(5, spacing=100.0)  # rr=150: 0 and 3 not neighbors.
        view = NodeView(net, 0)
        with pytest.raises(ValueError):
            view.location_of(3)

    def test_neighbor_location_array_aligned(self):
        net = make_line_network(4, spacing=100.0)
        view = NodeView(net, 1)
        arr = view.neighbor_location_array()
        assert arr.shape == (len(view.neighbor_ids), 2)
        for row, nid in zip(arr, view.neighbor_ids):
            loc = net.location_of(nid)
            assert row[0] == loc.x and row[1] == loc.y

    def test_empty_neighborhood(self):
        net = network_from_points([Point(0, 0), Point(1000, 0)], radio_range=100)
        view = NodeView(net, 0)
        assert view.neighbor_ids == ()
        assert view.neighbor_location_array().shape == (0, 2)

    def test_planar_subset(self, dense_network):
        view = NodeView(dense_network, 0)
        assert set(view.planar_neighbor_ids) <= set(view.neighbor_ids)


class TestGreedyPrimitives:
    def test_total_distance(self):
        assert total_distance(Point(0, 0), [Point(3, 4), Point(0, 10)]) == pytest.approx(15.0)

    def test_closest_neighbor_to(self):
        net = make_line_network(4, spacing=100.0)
        view = view_of(net, 1)  # Neighbors: 0 and 2.
        assert closest_neighbor_to(view, Point(350, 0)) == 2
        assert closest_neighbor_to(view, Point(-50, 0)) == 0

    def test_greedy_next_hop_progress(self):
        net = make_line_network(5, spacing=100.0)
        view = view_of(net, 0)
        assert greedy_next_hop(view, net.location_of(4)) == 1

    def test_greedy_next_hop_none_at_local_minimum(self):
        # Node 0's only neighbor is farther from the target behind it.
        net = network_from_points([Point(0, 0), Point(100, 0)], radio_range=150)
        view = view_of(net, 0)
        assert greedy_next_hop(view, Point(-200, 0)) is None

    def test_greedy_no_neighbors(self):
        net = network_from_points([Point(0, 0)])
        assert greedy_next_hop(view_of(net, 0), Point(10, 10)) is None

    def test_group_distance_sums_matches_bruteforce(self, dense_network):
        view = view_of(dense_network, 5)
        group = [dense_network.location_of(i) for i in (40, 80, 120)]
        sums = group_distance_sums(view, group)
        for value, nid in zip(sums, view.neighbor_ids):
            expected = total_distance(dense_network.location_of(nid), group)
            assert value == pytest.approx(expected)

    def test_best_neighbor_for_group_requires_sum_decrease(self):
        # The neighbor nearest the pivot is behind; only a forward neighbor
        # reduces the total distance to the group.
        net = make_line_network(5, spacing=100.0)
        view = view_of(net, 2)
        group = [net.location_of(4)]
        hop = best_neighbor_for_group(view, net.location_of(4), group)
        assert hop == 3

    def test_best_neighbor_none_when_no_progress(self):
        net = make_line_network(3, spacing=100.0)
        view = view_of(net, 0)
        # Group is behind node 0; neighbor 1 is even farther.
        assert best_neighbor_for_group(view, Point(-300, 0), [Point(-300, 0)]) is None


class TestMergeDecisions:
    def test_merges_same_hop(self):
        net = make_line_network(3, spacing=100.0)
        packet = packet_for(net, 0, [1, 2])
        d1 = ForwardDecision(1, packet.with_destinations([packet.destinations[0]]))
        d2 = ForwardDecision(1, packet.with_destinations([packet.destinations[1]]))
        merged = merge_decisions([d1, d2])
        assert len(merged) == 1
        assert merged[0].packet.destination_ids == (1, 2)

    def test_keeps_distinct_hops(self):
        net = make_line_network(4, spacing=100.0)
        packet = packet_for(net, 1, [0, 3])
        d1 = ForwardDecision(0, packet.with_destinations([packet.destinations[0]]))
        d2 = ForwardDecision(2, packet.with_destinations([packet.destinations[1]]))
        assert len(merge_decisions([d1, d2])) == 2

    def test_never_merges_perimeter_copies(self):
        from repro.packets import PerimeterState

        net = make_line_network(3, spacing=100.0)
        packet = packet_for(net, 0, [1, 2])
        state = PerimeterState(
            target=Point(0, 0), entry_location=Point(0, 0), entry_total_distance=1.0
        )
        d1 = ForwardDecision(1, packet.with_perimeter([packet.destinations[0]], state))
        d2 = ForwardDecision(1, packet.with_perimeter([packet.destinations[1]], state))
        assert len(merge_decisions([d1, d2])) == 2
