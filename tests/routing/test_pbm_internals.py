"""White-box tests for PBM's subset selection machinery."""

import numpy as np
import pytest

from repro.routing.pbm import PBMProtocol


def selection(protocol, dist, own):
    """Run candidate-pool construction + subset selection on raw matrices."""
    pool = protocol._candidate_pool(dist, own)
    subset = protocol._select_subset(dist, own, pool, neighbor_count=dist.shape[0])
    return pool, subset


class TestCandidatePool:
    def test_pool_only_contains_progress_neighbors(self):
        protocol = PBMProtocol(candidates_per_destination=2)
        # 3 neighbors, 2 destinations; neighbor 2 makes no progress at all.
        dist = np.array([[10.0, 50.0], [40.0, 12.0], [90.0, 95.0]])
        own = np.array([60.0, 60.0])
        pool, _ = selection(protocol, dist, own)
        assert 2 not in pool
        assert set(pool) <= {0, 1}

    def test_pool_respects_candidates_per_destination(self):
        protocol = PBMProtocol(candidates_per_destination=1)
        dist = np.array([[10.0], [20.0], [30.0]])
        own = np.array([100.0])
        pool, _ = selection(protocol, dist, own)
        assert pool == [0]  # Only the single best per destination.


class TestSubsetSelection:
    def test_lambda_zero_takes_per_destination_best(self):
        protocol = PBMProtocol(lam=0.0)
        dist = np.array([[10.0, 90.0], [95.0, 12.0], [50.0, 50.0]])
        own = np.array([100.0, 100.0])
        _, subset = selection(protocol, dist, own)
        # With no bandwidth penalty: each destination's closest neighbor.
        assert set(subset) == {0, 1}

    def test_high_lambda_consolidates(self):
        protocol = PBMProtocol(lam=0.9)
        # A middle neighbor serves both destinations nearly as well as the
        # two specialists; heavy bandwidth weighting should pick just it.
        dist = np.array([[10.0, 90.0], [90.0, 10.0], [20.0, 20.0]])
        own = np.array([100.0, 100.0])
        _, subset = selection(protocol, dist, own)
        assert subset == [2]

    def test_every_destination_covered_with_progress(self):
        rng = np.random.default_rng(3)
        protocol = PBMProtocol(lam=0.4)
        for _ in range(20):
            m, n = 12, 5
            own = rng.uniform(200, 400, size=n)
            dist = rng.uniform(50, 500, size=(m, n))
            # Guarantee at least one progress neighbor per destination.
            for z in range(n):
                dist[rng.integers(0, m), z] = own[z] * 0.5
            pool, subset = selection(protocol, dist, own)
            assert subset, "subset must never be empty"
            mins = dist[np.asarray(subset)].min(axis=0)
            assert (mins < own).all(), "some destination lost progress"

    def test_greedy_descent_path_used_for_large_pools(self):
        # Force the greedy branch with a tiny exact limit.
        protocol = PBMProtocol(lam=0.3, exact_pool_limit=1,
                               candidates_per_destination=2)
        rng = np.random.default_rng(5)
        m, n = 10, 6
        own = rng.uniform(300, 400, size=n)
        dist = rng.uniform(100, 290, size=(m, n))
        pool, subset = selection(protocol, dist, own)
        assert len(pool) > 1  # The exact branch could not have been used.
        mins = dist[np.asarray(subset)].min(axis=0)
        assert (mins < own).all()

    def test_exact_beats_or_matches_greedy(self):
        # On small pools the exhaustive search must never be worse than the
        # greedy descent under the same objective.
        rng = np.random.default_rng(8)
        for _ in range(10):
            m, n = 8, 4
            own = rng.uniform(300, 400, size=n)
            dist = rng.uniform(100, 290, size=(m, n))
            exact_proto = PBMProtocol(lam=0.3, exact_pool_limit=10)
            greedy_proto = PBMProtocol(lam=0.3, exact_pool_limit=1)

            def score(subset):
                mins = dist[np.asarray(subset)].min(axis=0)
                return 0.3 * len(subset) / m + 0.7 * mins.sum() / own.sum()

            _, exact = selection(exact_proto, dist, own)
            _, greedy = selection(greedy_proto, dist, own)
            assert score(exact) <= score(greedy) + 1e-12
