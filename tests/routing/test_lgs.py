"""Tests for LGS and LGK (paper Sections 1, 5.2; Figure 13)."""

import pytest

from repro.geometry import Point
from repro.routing.lgs import LGKProtocol, LGSProtocol
from tests.routing.helpers import network_from_points, packet_for, view_of


def chain_network():
    """Figure 13's situation: from node 0, destinations chain away east.

    Relays sit between the destinations so greedy unicast can follow.
    """
    points = [
        Point(0, 0),     # 0: current node c
        Point(120, 20),  # 1: relay
        Point(240, 40),  # 2: u (destination)
        Point(360, 30),  # 3: relay
        Point(480, 50),  # 4: v (destination)
        Point(600, 40),  # 5: relay
        Point(720, 60),  # 6: d (destination)
    ]
    return network_from_points(points, radio_range=150.0)


class TestLGS:
    def test_figure13_no_split_single_copy(self):
        # The MST of {c, u, v, d} is the chain c-u-v-d: LGS sends ONE copy
        # toward u carrying all three destinations.
        net = chain_network()
        packet = packet_for(net, 0, [2, 4, 6])
        decisions = LGSProtocol().handle(view_of(net, 0), packet)
        assert len(decisions) == 1
        assert sorted(decisions[0].packet.destination_ids) == [2, 4, 6]
        assert decisions[0].packet.subdestination.node_id == 2

    def test_intermediate_node_does_not_resplit(self):
        # A relay mid-subtree forwards toward the pinned subdestination and
        # must not re-partition (the defining LGS behaviour the GMP paper
        # analyses).
        net = chain_network()
        packet = packet_for(net, 0, [2, 4, 6])
        (first,) = LGSProtocol().handle(view_of(net, 0), packet)
        assert first.next_hop_id == 1
        (second,) = LGSProtocol().handle(view_of(net, 1), first.packet)
        assert second.next_hop_id == 2
        assert second.packet.subdestination.node_id == 2
        assert sorted(second.packet.destination_ids) == [2, 4, 6]

    def test_subtree_root_repartitions(self):
        # Once the copy reaches its subdestination (and the engine strips
        # that node from the list), the root recomputes and re-targets.
        net = chain_network()
        packet = packet_for(net, 2, [4, 6])  # At u, u already delivered.
        (decision,) = LGSProtocol().handle(view_of(net, 2), packet)
        assert decision.packet.subdestination.node_id == 4
        assert decision.next_hop_id == 3

    def test_splits_at_source_for_opposite_branches(self):
        points = [
            Point(0, 0),
            Point(120, 0), Point(240, 0),    # east branch
            Point(-120, 0), Point(-240, 0),  # west branch
        ]
        net = network_from_points(points, radio_range=150.0)
        packet = packet_for(net, 0, [2, 4])
        decisions = LGSProtocol().handle(view_of(net, 0), packet)
        assert len(decisions) == 2
        hops = sorted(d.next_hop_id for d in decisions)
        assert hops == [1, 3]

    def test_void_group_is_dropped(self):
        # No recovery: when greedy stalls toward the subtree root, LGS
        # returns nothing for that group.
        points = [Point(0, 0), Point(100, 0), Point(-250, 0)]
        net = network_from_points(points, radio_range=150.0)
        packet = packet_for(net, 0, [2])
        assert LGSProtocol().handle(view_of(net, 0), packet) == []

    def test_mid_route_void_drops_copy(self):
        points = [Point(0, 0), Point(120, 0), Point(400, 0)]
        net = network_from_points(points, radio_range=150.0)
        packet = packet_for(net, 0, [2])
        (first,) = LGSProtocol().handle(view_of(net, 0), packet)
        # Node 1 has no neighbor closer to node 2 (gap of 280 > range).
        assert LGSProtocol().handle(view_of(net, 1), first.packet) == []


class TestLGK:
    def test_fanout_bounds_group_count(self, dense_network):
        proto = LGKProtocol(fanout=2)
        packet = packet_for(dense_network, 0, [40, 80, 120, 160, 200])
        decisions = proto.handle(view_of(dense_network, 0), packet)
        assert 1 <= len(decisions) <= 2
        covered = sorted(d for dec in decisions for d in dec.packet.destination_ids)
        assert covered == [40, 80, 120, 160, 200]

    def test_roots_are_nearest_destinations(self):
        net = chain_network()
        packet = packet_for(net, 0, [2, 4, 6])
        decisions = LGKProtocol(fanout=1).handle(view_of(net, 0), packet)
        assert len(decisions) == 1
        assert decisions[0].packet.subdestination.node_id == 2

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            LGKProtocol(fanout=0)

    def test_name_includes_fanout(self):
        assert LGKProtocol(fanout=3).name == "LGK3"
