"""Helpers for constructing protocol-level test scenarios."""

from __future__ import annotations

from repro.geometry import Point
from repro.network import RadioConfig, build_network
from repro.packets import Destination, MulticastPacket
from repro.routing.base import NodeView


def network_from_points(points, radio_range=150.0):
    return build_network(points, RadioConfig(radio_range_m=radio_range))


def view_of(network, node_id):
    return NodeView(network, node_id)


def packet_for(network, source_id, dest_ids, **kwargs):
    return MulticastPacket(
        task_id=kwargs.pop("task_id", 0),
        source=Destination(source_id, network.location_of(source_id)),
        destinations=tuple(
            Destination(d, network.location_of(d)) for d in dest_ids
        ),
        **kwargs,
    )
