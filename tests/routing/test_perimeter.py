"""Tests for GPSR-style perimeter forwarding (paper Section 4.1)."""

import pytest

from repro.geometry import Point
from repro.packets import Destination
from repro.routing.perimeter import enter_perimeter, perimeter_next_hop
from tests.routing.helpers import network_from_points, view_of


def ring_with_void():
    """A ring of relay nodes around a central void, plus entry/exit spurs.

    Node 0 sits west of the void, the target area east; greedy would want
    to go straight through the (empty) middle.
    """
    points = [
        Point(0, 200),     # 0: entry node (west)
        Point(80, 320),    # 1: ring, north-west
        Point(200, 380),   # 2: ring, north
        Point(320, 320),   # 3: ring, north-east
        Point(400, 200),   # 4: ring, east
        Point(320, 80),    # 5: ring, south-east
        Point(200, 20),    # 6: ring, south
        Point(80, 80),     # 7: ring, south-west
        Point(540, 200),   # 8: target destination (east of the ring)
    ]
    return network_from_points(points, radio_range=150.0)


class TestEnterPerimeter:
    def test_state_fields(self):
        net = ring_with_void()
        view = view_of(net, 0)
        group = [Destination(8, net.location_of(8))]
        state = enter_perimeter(view, group)
        assert state.target == net.location_of(8)
        assert state.entry_location == view.location
        assert state.entry_total_distance == pytest.approx(540.0)
        assert state.came_from is None

    def test_average_of_multiple_destinations(self):
        net = ring_with_void()
        view = view_of(net, 0)
        group = [
            Destination(4, net.location_of(4)),
            Destination(8, net.location_of(8)),
        ]
        state = enter_perimeter(view, group)
        assert state.target.x == pytest.approx((400 + 540) / 2)

    def test_empty_group_rejected(self):
        net = ring_with_void()
        with pytest.raises(ValueError):
            enter_perimeter(view_of(net, 0), [])


class TestWalk:
    def test_reaches_far_side_of_void(self):
        # Walk the ring with the right-hand rule until a node closer to the
        # target than the entry point is reached.
        net = ring_with_void()
        view = view_of(net, 0)
        target = Destination(8, net.location_of(8))
        state = enter_perimeter(view, [target])
        current = 0
        visited = [0]
        for _ in range(12):
            step = perimeter_next_hop(view_of(net, current), state)
            assert step is not None, f"walk died at node {current}"
            current, state = step
            visited.append(current)
            if current == 4:
                break
        # The walk must reach node 4, the only node adjacent to the target.
        assert 4 in visited

    def test_unreachable_target_detected(self):
        # Two isolated nodes plus a target position outside the component:
        # the walk must eventually return None (face toured) rather than
        # loop forever.
        points = [Point(0, 0), Point(100, 0), Point(50, 80)]
        net = network_from_points(points, radio_range=150.0)
        view = view_of(net, 0)
        state = enter_perimeter(view, [Destination(99, Point(5000, 5000))])
        current, steps = 0, 0
        while steps < 20:
            step = perimeter_next_hop(view_of(net, current), state)
            if step is None:
                break
            current, state = step
            steps += 1
        assert steps < 20, "perimeter walk failed to detect an unreachable target"

    def test_isolated_node_returns_none(self):
        net = network_from_points([Point(0, 0), Point(900, 900)], radio_range=100)
        view = view_of(net, 0)
        state = enter_perimeter(view, [Destination(1, Point(900, 900))])
        assert perimeter_next_hop(view, state) is None

    def test_state_advances_came_from(self):
        net = ring_with_void()
        view = view_of(net, 0)
        state = enter_perimeter(view, [Destination(8, net.location_of(8))])
        step = perimeter_next_hop(view, state)
        assert step is not None
        _, new_state = step
        assert new_state.came_from == view.location
        assert new_state.first_edge is not None
