"""Additional perimeter-mode behaviour: exit policies and face changes."""

import pytest

from repro.engine import EngineConfig, run_task
from repro.geometry import Point
from repro.routing.gmp import GMPProtocol
from repro.routing.pbm import PBMProtocol
from tests.routing.helpers import network_from_points


def ring_network():
    """Ring around a void with an entry spur (west) and a target (east)."""
    points = [
        Point(0, 200),     # 0: source (west)
        Point(80, 320),    # 1..7: ring
        Point(200, 380),
        Point(320, 320),
        Point(400, 200),
        Point(320, 80),
        Point(200, 20),
        Point(80, 80),
        Point(540, 200),   # 8: destination east of the ring
    ]
    return network_from_points(points, radio_range=150.0)


class TestExitPolicies:
    @pytest.mark.parametrize("exit_rule", ["closer", "eager"])
    def test_both_policies_deliver_on_ring(self, exit_rule):
        net = ring_network()
        protocol = GMPProtocol(perimeter_exit=exit_rule)
        result = run_task(
            net, protocol, 0, [8], config=EngineConfig(max_path_length=60)
        )
        assert result.success, f"{exit_rule} failed: {result.failed_destinations}"

    def test_eager_never_cheaper_than_closer(self):
        # The eager policy may bounce between greedy and perimeter; it can
        # use extra hops but must not be dramatically better (that would
        # mean the closer-rule is broken).
        net = ring_network()
        closer = run_task(
            net, GMPProtocol(perimeter_exit="closer"), 0, [8],
            config=EngineConfig(max_path_length=60),
        )
        eager = run_task(
            net, GMPProtocol(perimeter_exit="eager"), 0, [8],
            config=EngineConfig(max_path_length=60),
        )
        assert closer.success
        assert closer.transmissions <= eager.transmissions + 2

    def test_pbm_perimeter_on_ring(self):
        net = ring_network()
        result = run_task(
            net, PBMProtocol(), 0, [8], config=EngineConfig(max_path_length=60)
        )
        assert result.success


class TestMultiDestinationPerimeter:
    def test_far_side_group_shares_the_rim_path(self):
        # Two destinations past the east rim: greedy progress exists all
        # along a *convex* rim (no perimeter needed), and the group shares
        # a single packet until the last hop fans out.
        points = [
            Point(0, 200),
            Point(80, 320), Point(200, 380), Point(320, 320),
            Point(400, 200),
            Point(320, 80), Point(200, 20), Point(80, 80),
            Point(520, 250),   # 8: destination NE (in range of the east rim)
            Point(520, 150),   # 9: destination SE
        ]
        net = network_from_points(points, radio_range=150.0)
        result = run_task(
            net, GMPProtocol(), 0, [8, 9],
            config=EngineConfig(max_path_length=60), collect_trace=True,
        )
        assert result.success
        # Shared trunk: one split event, at the rim node next to both.
        assert result.trace.split_events() == 1
        assert result.delivered_hops[8] == result.delivered_hops[9]

    def test_concave_trap_forces_perimeter_for_group(self):
        # A concave pocket: the corridor node has no neighbor with progress
        # toward either destination behind the wall — the group enters
        # perimeter mode together and recovers around the arm.
        points = [
            Point(0, 0),       # 0: source
            Point(130, 0),     # 1: corridor node (local minimum)
            Point(100, 130),   # 2: northern detour
            Point(200, 220),   # 3: detour relay
            Point(330, 240),   # 4: detour relay east
            Point(400, 120),   # 5: behind-the-wall relay
            Point(420, -20),   # 6: destination A (east, behind the gap)
            Point(430, 90),    # 7: destination B
        ]
        net = network_from_points(points, radio_range=150.0)
        result = run_task(
            net, GMPProtocol(), 0, [6, 7],
            config=EngineConfig(max_path_length=60), collect_trace=True,
        )
        assert result.success
        assert result.trace.perimeter_copy_count() >= 1

    def test_partial_exit_starts_fresh_round(self):
        # Mixed group where one destination becomes greedily routable
        # before the other: step 7 of Section 4.1 — the uncovered remainder
        # restarts perimeter mode with a new average target.  We only assert
        # end-to-end delivery (the mechanism is exercised by construction).
        points = [
            Point(0, 200),
            Point(80, 320), Point(200, 380), Point(320, 320),
            Point(400, 200),
            Point(320, 80), Point(200, 20), Point(80, 80),
            Point(420, 330),   # 8: destination just past the NE rim
            Point(520, 150),   # 9: destination further SE
        ]
        net = network_from_points(points, radio_range=150.0)
        result = run_task(
            net, GMPProtocol(), 0, [8, 9],
            config=EngineConfig(max_path_length=80),
        )
        assert 8 in result.delivered_hops
        assert 9 in result.delivered_hops
