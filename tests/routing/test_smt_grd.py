"""Tests for the SMT (centralized KMB) and GRD (greedy unicast) baselines."""

import pytest

from repro.geometry import Point, distance
from repro.routing.grd import GRDProtocol
from repro.routing.smt import SMTProtocol
from tests.conftest import make_line_network
from tests.routing.helpers import network_from_points, packet_for, view_of


class TestSMT:
    def test_requires_preparation(self):
        net = make_line_network(3, spacing=100.0)
        proto = SMTProtocol()
        with pytest.raises(RuntimeError):
            proto.handle(view_of(net, 0), packet_for(net, 0, [2]))

    def test_forwards_along_tree(self):
        net = make_line_network(5, spacing=100.0)
        proto = SMTProtocol()
        proto.prepare_task(net, 0, (4,))
        packet = packet_for(net, 0, [4])
        (decision,) = proto.handle(view_of(net, 0), packet)
        assert decision.next_hop_id == 1
        assert decision.packet.destination_ids == (4,)

    def test_branches_carry_their_subtree_destinations(self):
        # A cross: center 0, arms east (1,2) and west (3,4).
        points = [
            Point(0, 0),
            Point(100, 0), Point(200, 0),
            Point(-100, 0), Point(-200, 0),
        ]
        net = network_from_points(points, radio_range=150.0)
        proto = SMTProtocol()
        proto.prepare_task(net, 0, (2, 4))
        decisions = proto.handle(view_of(net, 0), packet_for(net, 0, [2, 4]))
        by_hop = {d.next_hop_id: d.packet.destination_ids for d in decisions}
        assert by_hop == {1: (2,), 3: (4,)}

    def test_skips_branches_with_nothing_left(self):
        points = [
            Point(0, 0),
            Point(100, 0), Point(200, 0),
            Point(-100, 0), Point(-200, 0),
        ]
        net = network_from_points(points, radio_range=150.0)
        proto = SMTProtocol()
        proto.prepare_task(net, 0, (2, 4))
        # Destination 4 already served: only the east branch remains.
        decisions = proto.handle(view_of(net, 0), packet_for(net, 0, [2]))
        assert [d.next_hop_id for d in decisions] == [1]

    def test_metric_validation(self):
        with pytest.raises(ValueError):
            SMTProtocol(metric="latency")

    def test_hop_metric_uses_fewer_edges(self):
        # Two routes from 0 to 3: a straight 3-hop chain of length 300 and
        # a slightly longer 2-hop route through an off-line relay.  The
        # distance metric picks the chain; the hop metric picks the relay.
        points = [
            Point(0, 0),       # 0: source
            Point(100, 0),     # 1: chain relay
            Point(200, 0),     # 2: chain relay
            Point(300, 0),     # 3: destination
            Point(150, 5),     # 4: off-line shortcut relay
        ]
        net = network_from_points(points, radio_range=160.0)
        by_distance = SMTProtocol(metric="distance")
        by_distance.prepare_task(net, 0, (3,))
        by_hops = SMTProtocol(metric="hops")
        by_hops.prepare_task(net, 0, (3,))
        dist_edges = sum(len(c) for c in by_distance._schedule.values())
        hop_edges = sum(len(c) for c in by_hops._schedule.values())
        assert hop_edges == 2
        assert dist_edges == 3


class TestGRD:
    def test_one_copy_per_destination(self, dense_network):
        packet = packet_for(dense_network, 0, [50, 100, 150])
        decisions = GRDProtocol().handle(view_of(dense_network, 0), packet)
        assert len(decisions) == 3
        assert all(len(d.packet.destinations) == 1 for d in decisions)

    def test_greedy_progress(self):
        net = make_line_network(5, spacing=100.0)
        decisions = GRDProtocol().handle(view_of(net, 0), packet_for(net, 0, [4]))
        assert [d.next_hop_id for d in decisions] == [1]

    def test_void_drops_silently(self):
        net = network_from_points([Point(0, 0), Point(100, 0), Point(-250, 0)], 150.0)
        assert GRDProtocol().handle(view_of(net, 0), packet_for(net, 0, [2])) == []

    def test_does_not_aggregate_frames(self):
        assert GRDProtocol().aggregates_copies is False
        assert SMTProtocol().aggregates_copies is True
