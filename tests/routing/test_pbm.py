"""Tests for the PBM baseline (Mauve et al.; paper Sections 1, 4.2, 5.4)."""

import pytest

from repro.geometry import Point, distance
from repro.routing.pbm import PBMProtocol
from tests.routing.helpers import network_from_points, packet_for, view_of


class TestSubsetSelection:
    def test_single_destination_greedy_like(self):
        points = [Point(0, 0), Point(120, 0), Point(100, 80), Point(400, 0)]
        net = network_from_points(points, radio_range=150.0)
        decisions = PBMProtocol(lam=0.0).handle(view_of(net, 0), packet_for(net, 0, [3]))
        assert len(decisions) == 1
        assert decisions[0].next_hop_id == 1  # Closest to the destination.

    def test_lambda_zero_favours_progress(self, dense_network):
        # With lambda=0 the bandwidth term vanishes: every destination gets
        # its own closest neighbor (maximal subset of per-dest winners).
        proto = PBMProtocol(lam=0.0)
        packet = packet_for(dense_network, 0, [60, 120, 180, 240])
        decisions = proto.handle(view_of(dense_network, 0), packet)
        for dec in decisions:
            hop_loc = dense_network.location_of(dec.next_hop_id)
            for dest in dec.packet.destinations:
                # Assigned hop is each destination's nearest subset member;
                # with lam=0 it must be its globally closest progress
                # neighbor.
                best = min(
                    dense_network.neighbors_of(0),
                    key=lambda n: distance(
                        dense_network.location_of(n), dest.location
                    ),
                )
                assert distance(hop_loc, dest.location) <= distance(
                    dense_network.location_of(best), dest.location
                ) + 1e-9

    def test_larger_lambda_never_uses_more_hops(self, dense_network):
        packet = packet_for(dense_network, 0, [60, 120, 180, 240, 280])
        view = view_of(dense_network, 0)
        sizes = {}
        for lam in (0.0, 0.3, 0.6):
            sizes[lam] = len(PBMProtocol(lam=lam).handle(view, packet))
        assert sizes[0.6] <= sizes[0.0]

    def test_progress_for_every_routable_destination(self, dense_network):
        proto = PBMProtocol(lam=0.5)
        packet = packet_for(dense_network, 7, [33, 66, 99, 132])
        own = dense_network.location_of(7)
        for dec in proto.handle(view_of(dense_network, 7), packet):
            if dec.packet.in_perimeter_mode:
                continue
            hop = dense_network.location_of(dec.next_hop_id)
            for dest in dec.packet.destinations:
                assert distance(hop, dest.location) < distance(own, dest.location)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PBMProtocol(lam=1.5)
        with pytest.raises(ValueError):
            PBMProtocol(candidates_per_destination=0)
        with pytest.raises(ValueError):
            PBMProtocol(exact_pool_limit=0)
        with pytest.raises(ValueError):
            PBMProtocol(perimeter_exit="never")

    def test_name_includes_lambda(self):
        assert PBMProtocol(lam=0.4).name == "PBM[l=0.4]"


class TestVoidHandling:
    def test_all_void_destinations_in_one_perimeter_group(self):
        # Two destinations behind the source with a single forward neighbor:
        # both are void and PBM groups them into ONE perimeter packet.
        points = [
            Point(0, 0), Point(120, 0),
            Point(-200, 100), Point(-200, -100),
        ]
        net = network_from_points(points, radio_range=150.0)
        decisions = PBMProtocol().handle(view_of(net, 0), packet_for(net, 0, [2, 3]))
        peri = [d for d in decisions if d.packet.in_perimeter_mode]
        assert len(peri) == 1
        assert sorted(peri[0].packet.destination_ids) == [2, 3]
        # Target is the average of the two void destinations.
        assert peri[0].packet.perimeter.target == Point(-200, 0)

    def test_isolated_node_drops_everything(self):
        net = network_from_points([Point(0, 0), Point(999, 999)], radio_range=100)
        assert PBMProtocol().handle(view_of(net, 0), packet_for(net, 0, [1])) == []
