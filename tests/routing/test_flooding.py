"""Tests for the flooding baseline."""

import pytest

from repro.engine import EngineConfig, run_task
from repro.routing.flooding import FloodingProtocol
from tests.conftest import make_line_network
from tests.routing.helpers import network_from_points
from repro.geometry import Point


class TestFlooding:
    def test_reaches_whole_component(self, dense_network):
        result = run_task(
            dense_network, FloodingProtocol(), 0, [50, 100, 150, 299]
        )
        assert result.success

    def test_one_transmission_per_node(self, grid_network):
        result = run_task(grid_network, FloodingProtocol(), 0, [99])
        # Every node rebroadcasts at most once; with broadcast frames the
        # transmission count is the number of relaying nodes.
        assert result.transmissions <= grid_network.node_count

    def test_hops_are_bfs_optimal(self):
        net = make_line_network(6, spacing=100.0)
        result = run_task(net, FloodingProtocol(), 0, [5])
        assert result.delivered_hops[5] == 5  # rr=150, spacing 100: 1-hop links.

    def test_does_not_cross_partitions(self):
        net = network_from_points(
            [Point(0, 0), Point(100, 0), Point(600, 0)], radio_range=150.0
        )
        result = run_task(net, FloodingProtocol(), 0, [2])
        assert not result.success

    def test_survives_heavy_loss_better_than_gmp(self, dense_network):
        from repro.routing.gmp import GMPProtocol

        config = EngineConfig(link_loss_rate=0.4, loss_seed=11)
        flood_ok = gmp_ok = 0
        for source in range(0, 60, 10):
            dests = [source + 40, source + 90, source + 140]
            flood_ok += len(
                run_task(dense_network, FloodingProtocol(), source, dests,
                         config=config).delivered_hops
            )
            gmp_ok += len(
                run_task(dense_network, GMPProtocol(), source, dests,
                         config=config).delivered_hops
            )
        assert flood_ok >= gmp_ok

    def test_costs_far_more_energy(self, dense_network):
        from repro.routing.gmp import GMPProtocol

        flood = run_task(dense_network, FloodingProtocol(), 0, [200])
        gmp = run_task(dense_network, GMPProtocol(), 0, [200])
        assert flood.energy_joules > 5 * gmp.energy_joules

    def test_fresh_cache_per_task(self, grid_network):
        protocol = FloodingProtocol()
        first = run_task(grid_network, protocol, 0, [99])
        second = run_task(grid_network, protocol, 0, [99])
        assert first.success and second.success
        assert first.transmissions == second.transmissions
