"""Arrival-process generators: determinism, resumability, distributions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sessions.arrivals import (
    BurstyArrivals,
    DiurnalArrivals,
    FixedGroups,
    PoissonArrivals,
    SessionStream,
    SessionWorkload,
    StreamCursor,
    ZipfGroups,
    exponential_starts,
)

ARRIVALS = [
    PoissonArrivals(rate_per_s=2.0),
    BurstyArrivals(
        on_rate_per_s=5.0, off_rate_per_s=0.1, mean_on_s=10.0, mean_off_s=20.0
    ),
    DiurnalArrivals(base_rate_per_s=1.0, amplitude=0.8, period_s=600.0),
]


def _workload(arrival, seed=11, node_count=60):
    return SessionWorkload(
        seed=seed,
        node_count=node_count,
        arrival=arrival,
        groups=ZipfGroups(alpha=1.2, min_size=2, max_size=10),
    )


@pytest.mark.parametrize("arrival", ARRIVALS, ids=lambda a: a.describe())
def test_stream_is_deterministic(arrival):
    first = SessionStream(_workload(arrival)).take(40)
    second = SessionStream(_workload(arrival)).take(40)
    assert first == second


@pytest.mark.parametrize("arrival", ARRIVALS, ids=lambda a: a.describe())
def test_resume_from_cursor_replays_identically(arrival):
    """A stream resumed from any checkpointed cursor continues bit-identically."""
    reference = SessionStream(_workload(arrival))
    full = reference.take(50)
    for split in (1, 7, 25, 49):
        head_stream = SessionStream(_workload(arrival))
        head = head_stream.take(split)
        # Round-trip the cursor through its JSON form, as a checkpoint does.
        cursor = StreamCursor.from_json_dict(head_stream.cursor.to_json_dict())
        tail = SessionStream(_workload(arrival), cursor).take(50 - split)
        assert head + tail == full


@pytest.mark.parametrize("arrival", ARRIVALS, ids=lambda a: a.describe())
def test_arrivals_strictly_ordered_and_finite(arrival):
    sessions = SessionStream(_workload(arrival)).take(100)
    times = [s.arrival_s for s in sessions]
    assert all(np.isfinite(times))
    assert all(later > earlier for earlier, later in zip(times, times[1:]))


def test_seed_changes_the_stream():
    base = SessionStream(_workload(ARRIVALS[0], seed=11)).take(20)
    other = SessionStream(_workload(ARRIVALS[0], seed=12)).take(20)
    assert base != other


def test_tasks_are_valid_multicast_groups():
    for request in SessionStream(_workload(ARRIVALS[1])).take(200):
        task = request.task
        assert task.source_id not in task.destination_ids
        assert len(set(task.destination_ids)) == len(task.destination_ids)
        assert 2 <= task.group_size <= 10


def test_task_ids_are_sequential():
    sessions = SessionStream(_workload(ARRIVALS[0])).take(30)
    assert [s.task.task_id for s in sessions] == list(range(30))


def test_poisson_mean_gap_matches_rate():
    workload = _workload(PoissonArrivals(rate_per_s=4.0), node_count=50)
    sessions = SessionStream(workload).take(4000)
    gaps = np.diff([s.arrival_s for s in sessions])
    assert float(np.mean(gaps)) == pytest.approx(0.25, rel=0.1)


def test_mmpp_is_burstier_than_poisson():
    """ON/OFF modulation must raise the gap coefficient of variation above 1."""
    bursty = _workload(
        BurstyArrivals(
            on_rate_per_s=10.0, off_rate_per_s=0.05, mean_on_s=5.0, mean_off_s=20.0
        ),
        node_count=50,
    )
    gaps = np.diff([s.arrival_s for s in SessionStream(bursty).take(3000)])
    cv = float(np.std(gaps) / np.mean(gaps))
    assert cv > 1.2  # exponential gaps have cv == 1


def test_diurnal_rate_modulates_arrival_density():
    """More arrivals land in the high-rate half-period than the low one."""
    period = 200.0
    workload = _workload(
        DiurnalArrivals(base_rate_per_s=2.0, amplitude=0.9, period_s=period),
        node_count=50,
    )
    sessions = SessionStream(workload).take(5000)
    phases = [(s.arrival_s % period) / period for s in sessions]
    high = sum(1 for p in phases if p < 0.5)  # sin > 0: above-base rate
    low = len(phases) - high
    assert high > 1.5 * low


def test_zipf_group_sizes_match_exact_distribution():
    groups = ZipfGroups(alpha=1.5, min_size=2, max_size=12)
    rng = np.random.default_rng(3)
    draws = [groups.sample(rng) for _ in range(20000)]
    probabilities = groups.probabilities()
    assert sum(probabilities.values()) == pytest.approx(1.0)
    # Heavy tail: smallest size dominates, largest still occurs.
    counts = {k: draws.count(k) for k in probabilities}
    assert counts[2] > counts[12] > 0
    for size, probability in probabilities.items():
        assert counts[size] / len(draws) == pytest.approx(probability, abs=0.01)


def test_group_size_clipped_to_network():
    workload = SessionWorkload(
        seed=5,
        node_count=5,
        arrival=PoissonArrivals(1.0),
        groups=FixedGroups(size=50),
    )
    assert workload.max_group_size == 4
    for request in SessionStream(workload).take(20):
        assert request.task.group_size == 4


def test_exponential_starts_first_at_zero():
    rng = np.random.default_rng(9)
    starts = exponential_starts(rng, 10, 0.5)
    assert starts[0] == 0.0
    assert len(starts) == 10
    assert all(b > a for a, b in zip(starts, starts[1:]))


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        PoissonArrivals(rate_per_s=0.0)
    with pytest.raises(ValueError):
        DiurnalArrivals(base_rate_per_s=1.0, amplitude=1.5, period_s=10.0)
    with pytest.raises(ValueError):
        BurstyArrivals(
            on_rate_per_s=1.0, off_rate_per_s=-0.1, mean_on_s=1.0, mean_off_s=1.0
        )
    with pytest.raises(ValueError):
        ZipfGroups(alpha=1.0, min_size=5, max_size=4)
    with pytest.raises(ValueError):
        SessionWorkload(
            seed=1, node_count=1, arrival=ARRIVALS[0], groups=FixedGroups(2)
        )
