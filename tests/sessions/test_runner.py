"""Streaming runner contracts: worker/chunk identity, resume, bounded memory."""

from __future__ import annotations

import json

import pytest

from repro.experiments.config import PaperConfig
from repro.sessions import (
    CheckpointStore,
    PoissonArrivals,
    SessionWorkload,
    ZipfGroups,
    run_session_stream,
)
from repro.sessions.store import CheckpointError

NODE_COUNT = 120


@pytest.fixture(scope="module")
def config():
    return PaperConfig(node_count=NODE_COUNT)


def _workload(seed=7):
    return SessionWorkload(
        seed=seed,
        node_count=NODE_COUNT,
        arrival=PoissonArrivals(rate_per_s=2.0),
        groups=ZipfGroups(alpha=1.2, min_size=2, max_size=8),
    )


def _report_bytes(report):
    """The canonical serialized report the identity contracts compare."""
    return json.dumps(report.to_json_dict(), sort_keys=True)


def test_report_is_complete_and_sane(config):
    report = run_session_stream(_workload(), ("GMP",), config, total_sessions=15)
    assert report.completed == 15
    assert report.protocol == "GMP"
    assert report.stats.sessions == 15
    assert 0.0 < report.stats.aggregate_delivery_ratio <= 1.0
    assert report.cursor.index == 15
    assert len(report.chain_digest) == 64
    payload = report.to_json_dict()
    assert payload["completed"] == 15
    assert set(payload["metrics"]) == {
        "latency_s",
        "delivery_ratio",
        "energy_joules",
        "tree_cost",
    }


def test_chunk_size_cannot_change_the_report(config):
    reference = run_session_stream(
        _workload(), ("GMP",), config, total_sessions=17, chunk=8
    )
    for chunk in (1, 3, 17, 50):
        other = run_session_stream(
            _workload(), ("GMP",), config, total_sessions=17, chunk=chunk
        )
        assert _report_bytes(other) == _report_bytes(reference)


def test_workers_cannot_change_the_report(config):
    """The PR 2 contract extended to streams: pooled == serial, byte for byte."""
    serial = run_session_stream(
        _workload(), ("GMP",), config, total_sessions=16, chunk=2
    )
    pooled = run_session_stream(
        _workload(), ("GMP",), config, total_sessions=16, chunk=2, workers=3
    )
    assert _report_bytes(pooled) == _report_bytes(serial)


def test_protocols_see_identical_sessions(config):
    """The workload replays the same stream under every protocol."""
    gmp = run_session_stream(_workload(), ("GMP",), config, total_sessions=10)
    lgs = run_session_stream(_workload(), ("LGS",), config, total_sessions=10)
    assert gmp.cursor == lgs.cursor
    assert gmp.chain_digest != lgs.chain_digest  # results differ, stream not


def test_resume_reproduces_uninterrupted_report(tmp_path, config):
    reference = run_session_stream(
        _workload(), ("GMP",), config, total_sessions=21, chunk=4
    )
    store = CheckpointStore(str(tmp_path / "cell.json"))
    # "Kill" the run after 9 sessions, checkpointing every 3.
    partial = run_session_stream(
        _workload(),
        ("GMP",),
        config,
        total_sessions=9,
        chunk=3,
        checkpoint=store,
        checkpoint_every=3,
    )
    assert partial.completed == 9
    # Resume toward the full target — with a different chunk and worker mix.
    resumed = run_session_stream(
        _workload(),
        ("GMP",),
        config,
        total_sessions=21,
        chunk=5,
        checkpoint=store,
        checkpoint_every=3,
    )
    assert resumed.completed == 21
    assert _report_bytes(resumed) == _report_bytes(reference)


def test_resume_from_every_checkpoint_cadence(tmp_path, config):
    reference = run_session_stream(
        _workload(), ("GMP",), config, total_sessions=12, chunk=2
    )
    for stop in (2, 5, 11):
        store = CheckpointStore(str(tmp_path / f"stop{stop}.json"))
        run_session_stream(
            _workload(),
            ("GMP",),
            config,
            total_sessions=stop,
            chunk=2,
            checkpoint=store,
            checkpoint_every=2,
        )
        resumed = run_session_stream(
            _workload(),
            ("GMP",),
            config,
            total_sessions=12,
            chunk=2,
            checkpoint=store,
            checkpoint_every=2,
        )
        assert _report_bytes(resumed) == _report_bytes(reference)


def test_checkpoint_identity_mismatch_refuses_resume(tmp_path, config):
    store = CheckpointStore(str(tmp_path / "cell.json"))
    run_session_stream(
        _workload(seed=7),
        ("GMP",),
        config,
        total_sessions=4,
        checkpoint=store,
    )
    with pytest.raises(CheckpointError):
        run_session_stream(
            _workload(seed=8),  # different stream — must not silently resume
            ("GMP",),
            config,
            total_sessions=8,
            checkpoint=store,
        )


def test_memory_state_is_flat_in_completed_sessions(config):
    """The runner's retained state must not grow with the session count.

    Proxy for peak RSS flatness: the checkpoint payload *is* the whole
    retained aggregate (cursor + sketches + chain), so its size bounds the
    parent's per-session memory.  GK allows logarithmic growth; 10x the
    sessions must cost well under 1.5x the state, where a linear
    accumulator would cost ~10x.
    """
    sizes = {}
    for total in (50, 500):
        report = run_session_stream(
            _workload(), ("GMP",), config, total_sessions=total, chunk=25,
            epsilon=0.05,
        )
        state_bytes = len(
            json.dumps(
                {
                    "cursor": report.cursor.to_json_dict(),
                    "chain": report.chain_digest,
                    "stats": report.stats.state(),
                }
            )
        )
        sizes[total] = state_bytes
    assert sizes[500] < 1.5 * sizes[50]


def test_workload_config_mismatch_rejected(config):
    wrong = SessionWorkload(
        seed=1,
        node_count=NODE_COUNT + 1,
        arrival=PoissonArrivals(1.0),
        groups=ZipfGroups(alpha=1.2, min_size=2, max_size=8),
    )
    with pytest.raises(ValueError):
        run_session_stream(wrong, ("GMP",), config, total_sessions=1)
    with pytest.raises(ValueError):
        run_session_stream(_workload(), ("GMP",), config, total_sessions=1, chunk=0)
    with pytest.raises(ValueError):
        run_session_stream(_workload(), ("GMP",), config, total_sessions=-1)
