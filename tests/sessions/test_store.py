"""Checkpoint store: atomicity, identity checks, exact float round-trips."""

from __future__ import annotations

import json
import os

import pytest

from repro.sessions.store import CheckpointError, CheckpointStore

IDENTITY = {"workload": "poisson", "seed": 7}


def test_missing_checkpoint_returns_none(tmp_path):
    store = CheckpointStore(str(tmp_path / "absent.json"))
    assert store.load(IDENTITY) is None


def test_save_load_round_trip_strips_bookkeeping(tmp_path):
    store = CheckpointStore(str(tmp_path / "ck.json"))
    payload = {"completed": 12, "chain": "abc", "cursor": {"index": 12}}
    store.save(IDENTITY, payload)
    assert store.load(IDENTITY) == payload


def test_floats_round_trip_exactly(tmp_path):
    store = CheckpointStore(str(tmp_path / "ck.json"))
    values = [0.1 + 0.2, 1e-308, 123456789.123456789, -0.0]
    store.save(IDENTITY, {"values": values})
    loaded = store.load(IDENTITY)["values"]
    assert [repr(v) for v in loaded] == [repr(v) for v in values]


def test_identity_mismatch_raises(tmp_path):
    store = CheckpointStore(str(tmp_path / "ck.json"))
    store.save(IDENTITY, {"completed": 1})
    with pytest.raises(CheckpointError):
        store.load({"workload": "mmpp", "seed": 7})


def test_corrupt_file_raises(tmp_path):
    path = tmp_path / "ck.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(CheckpointError):
        CheckpointStore(str(path)).load(IDENTITY)


def test_wrong_version_raises(tmp_path):
    path = tmp_path / "ck.json"
    path.write_text(
        json.dumps({"version": 999, "identity": IDENTITY}), encoding="utf-8"
    )
    with pytest.raises(CheckpointError):
        CheckpointStore(str(path)).load(IDENTITY)


def test_save_is_atomic_no_tmp_left_behind(tmp_path):
    store = CheckpointStore(str(tmp_path / "ck.json"))
    store.save(IDENTITY, {"completed": 5})
    store.save(IDENTITY, {"completed": 10})
    assert sorted(os.listdir(tmp_path)) == ["ck.json"]
    assert store.load(IDENTITY) == {"completed": 10}


def test_save_creates_parent_directory(tmp_path):
    store = CheckpointStore(str(tmp_path / "deep" / "dir" / "ck.json"))
    store.save(IDENTITY, {"completed": 1})
    assert store.load(IDENTITY) == {"completed": 1}
