"""Property tests: sketches vs exact references, state round-trips."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.sessions.sketches import (
    GKQuantiles,
    MetricSketch,
    P2Quantile,
    StreamStats,
    Welford,
    exact_quantile,
)

#: Seeded value streams the quantile properties are asserted over —
#: including the adversarial sorted/reversed orders that stress GK's
#: compression the hardest.
STREAMS = {
    "uniform": lambda rng: rng.uniform(0.0, 1.0, 5000),
    "exponential": lambda rng: rng.exponential(2.0, 5000),
    "heavy-tail": lambda rng: rng.pareto(1.5, 5000),
    "sorted": lambda rng: np.sort(rng.uniform(0.0, 1.0, 5000)),
    "reversed": lambda rng: np.sort(rng.uniform(0.0, 1.0, 5000))[::-1],
    "duplicates": lambda rng: rng.integers(0, 20, 5000).astype(float),
}


# ----------------------------------------------------------------------
# Welford
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(STREAMS))
def test_welford_matches_two_pass_reference(name):
    values = STREAMS[name](np.random.default_rng(17))
    acc = Welford()
    for value in values:
        acc.update(float(value))
    assert acc.count == len(values)
    assert acc.mean == pytest.approx(float(np.mean(values)), rel=1e-10)
    assert acc.variance == pytest.approx(float(np.var(values, ddof=1)), rel=1e-9)
    assert acc.min_value == float(np.min(values))
    assert acc.max_value == float(np.max(values))


def test_welford_merge_matches_single_accumulator():
    values = STREAMS["exponential"](np.random.default_rng(5))
    whole = Welford()
    for value in values:
        whole.update(float(value))
    left, right = Welford(), Welford()
    for value in values[:1234]:
        left.update(float(value))
    for value in values[1234:]:
        right.update(float(value))
    left.merge(right)
    assert left.count == whole.count
    assert left.mean == pytest.approx(whole.mean, rel=1e-12)
    assert left.variance == pytest.approx(whole.variance, rel=1e-9)


def test_welford_state_round_trip_is_exact():
    acc = Welford()
    for value in STREAMS["heavy-tail"](np.random.default_rng(23))[:100]:
        acc.update(float(value))
    restored = Welford.from_state(json.loads(json.dumps(acc.state())))
    for value in (0.5, 10.0, -3.25):
        acc.update(value)
        restored.update(value)
    assert restored.state() == acc.state()


# ----------------------------------------------------------------------
# Greenwald-Khanna
# ----------------------------------------------------------------------


def _rank_error(values, answer, quantile):
    """How many ranks the sketch's answer is from the target rank."""
    ordered = np.sort(values)
    target = math.ceil(quantile * len(ordered))
    # All positions where the answer occurs are acceptable ranks.
    positions = np.flatnonzero(ordered == answer) + 1
    return min(abs(int(p) - target) for p in positions)


@pytest.mark.parametrize("name", sorted(STREAMS))
@pytest.mark.parametrize("epsilon", [0.05, 0.01])
def test_gk_rank_error_within_bound(name, epsilon):
    """GK Theorem 1: every query is within ``epsilon * n`` ranks of exact."""
    values = STREAMS[name](np.random.default_rng(41))
    sketch = GKQuantiles(epsilon)
    for value in values:
        sketch.update(float(value))
    for quantile in (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
        answer = sketch.query(quantile)
        assert answer in values
        assert _rank_error(values, answer, quantile) <= epsilon * len(values) + 1


def test_gk_tracks_numpy_percentile_closely():
    values = STREAMS["uniform"](np.random.default_rng(7))
    sketch = GKQuantiles(0.01)
    for value in values:
        sketch.update(float(value))
    for quantile in (0.5, 0.9, 0.99):
        exact = float(np.percentile(values, 100.0 * quantile))
        assert sketch.query(quantile) == pytest.approx(exact, abs=0.05)


def test_gk_space_is_sublinear():
    """Stored tuples must grow like log(n), not n."""
    rng = np.random.default_rng(3)
    sketch = GKQuantiles(0.01)
    sizes = {}
    for count in range(1, 50_001):
        sketch.update(float(rng.uniform()))
        if count in (5_000, 50_000):
            sizes[count] = len(sketch)
    assert sizes[50_000] < 2 * sizes[5_000]
    assert sizes[50_000] < 1200  # far below the 50k values folded in


def test_gk_extremes_are_exact():
    values = STREAMS["exponential"](np.random.default_rng(19))
    sketch = GKQuantiles(0.02)
    for value in values:
        sketch.update(float(value))
    assert sketch.query(0.0) == float(np.min(values))
    assert sketch.query(1.0) == float(np.max(values))


def test_gk_state_round_trip_continues_identically():
    rng = np.random.default_rng(29)
    values = rng.exponential(1.0, 2000)
    whole = GKQuantiles(0.01)
    for value in values:
        whole.update(float(value))
    half = GKQuantiles(0.01)
    for value in values[:777]:
        half.update(float(value))
    restored = GKQuantiles.from_state(json.loads(json.dumps(half.state())))
    for value in values[777:]:
        restored.update(float(value))
    assert restored.state() == whole.state()


def test_gk_rejects_bad_arguments():
    with pytest.raises(ValueError):
        GKQuantiles(0.0)
    sketch = GKQuantiles(0.1)
    with pytest.raises(ValueError):
        sketch.query(0.5)  # empty
    sketch.update(1.0)
    with pytest.raises(ValueError):
        sketch.query(1.5)


# ----------------------------------------------------------------------
# P²
# ----------------------------------------------------------------------


def test_p2_exact_below_five_samples():
    estimator = P2Quantile(0.5)
    for value in (5.0, 1.0, 3.0):
        estimator.update(value)
    assert estimator.value() == 3.0


@pytest.mark.parametrize("quantile", [0.5, 0.9])
def test_p2_tracks_exact_quantile(quantile):
    values = STREAMS["uniform"](np.random.default_rng(13))
    estimator = P2Quantile(quantile)
    for value in values:
        estimator.update(float(value))
    exact = float(np.percentile(values, 100.0 * quantile))
    assert estimator.value() == pytest.approx(exact, abs=0.05)


def test_p2_state_round_trip_continues_identically():
    values = STREAMS["exponential"](np.random.default_rng(31))
    whole = P2Quantile(0.9)
    for value in values:
        whole.update(float(value))
    half = P2Quantile(0.9)
    for value in values[:500]:
        half.update(float(value))
    restored = P2Quantile.from_state(json.loads(json.dumps(half.state())))
    for value in values[500:]:
        restored.update(float(value))
    assert restored.state() == whole.state()


# ----------------------------------------------------------------------
# StreamStats
# ----------------------------------------------------------------------


def _observe_many(stats, count, seed=47):
    rng = np.random.default_rng(seed)
    for _ in range(count):
        requested = int(rng.integers(1, 10))
        delivered = int(rng.integers(0, requested + 1))
        stats.observe(
            latency_s=float(rng.exponential(0.01)),
            delivery_ratio=delivered / requested,
            energy_joules=float(rng.exponential(0.5)),
            tree_cost=float(rng.integers(1, 100)),
            delivered=delivered,
            requested=requested,
        )


def test_stream_stats_tallies_and_rows():
    stats = StreamStats(epsilon=0.02)
    _observe_many(stats, 500)
    assert stats.sessions == 500
    assert 0.0 < stats.aggregate_delivery_ratio < 1.0
    rows = stats.summary_rows()
    assert [row[0] for row in rows] == [
        "latency_s",
        "delivery_ratio",
        "energy_joules",
        "tree_cost",
    ]
    for _name, mean, std, p50, p90, p99 in rows:
        assert std >= 0.0
        assert p50 <= p90 <= p99
        assert mean > 0.0


def _observation_list(count, seed=3):
    rng = np.random.default_rng(seed)
    observations = []
    for _ in range(count):
        requested = int(rng.integers(1, 10))
        delivered = int(rng.integers(0, requested + 1))
        observations.append(
            dict(
                latency_s=float(rng.exponential(0.01)),
                delivery_ratio=delivered / requested,
                energy_joules=float(rng.exponential(0.5)),
                tree_cost=float(rng.integers(1, 100)),
                delivered=delivered,
                requested=requested,
            )
        )
    return observations


def test_stream_stats_state_round_trip_continues_identically():
    """Checkpoint mid-stream, restore through JSON, finish: state matches
    the uninterrupted fold exactly (the resume-identity building block)."""
    observations = _observation_list(400)
    whole = StreamStats(epsilon=0.02)
    for obs in observations:
        whole.observe(**obs)
    half = StreamStats(epsilon=0.02)
    for obs in observations[:150]:
        half.observe(**obs)
    restored = StreamStats.from_state(json.loads(json.dumps(half.state())))
    for obs in observations[150:]:
        restored.observe(**obs)
    assert restored.state() == whole.state()


def test_metric_sketch_state_round_trip():
    sketch = MetricSketch(epsilon=0.05)
    for value in np.random.default_rng(11).uniform(0, 1, 300):
        sketch.update(float(value))
    restored = MetricSketch.from_state(json.loads(json.dumps(sketch.state())))
    assert restored.state() == sketch.state()


def test_exact_quantile_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0]
    assert exact_quantile(values, 0.5) == 2.0
    assert exact_quantile(values, 1.0) == 4.0
    with pytest.raises(ValueError):
        exact_quantile([], 0.5)
