"""Tests for the ASCII visualization helpers."""

import pytest

from repro.geometry import Point
from repro.steiner import euclidean_mst, rrstr
from repro.visualization import AsciiCanvas, render_network, render_tree
from repro.visualization.ascii_art import describe_tree
from tests.conftest import make_grid_network


class TestCanvas:
    def test_plot_corners(self):
        canvas = AsciiCanvas(10, 5, Point(0, 0), Point(100, 100))
        canvas.plot(Point(0, 0), "A")      # bottom-left -> last row
        canvas.plot(Point(100, 100), "B")  # top-right -> first row
        text = canvas.render()
        lines = text.splitlines()
        assert lines[1].rstrip("|").endswith("B")
        assert lines[-2].startswith("|A")

    def test_line_leaves_trail(self):
        canvas = AsciiCanvas(20, 10, Point(0, 0), Point(100, 100))
        canvas.line(Point(0, 0), Point(100, 100), "*")
        assert canvas.render().count("*") >= 10

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            AsciiCanvas(1, 5, Point(0, 0), Point(1, 1))
        with pytest.raises(ValueError):
            AsciiCanvas(5, 5, Point(0, 0), Point(0, 1))

    def test_multichar_symbol_rejected(self):
        canvas = AsciiCanvas(5, 5, Point(0, 0), Point(1, 1))
        with pytest.raises(ValueError):
            canvas.plot(Point(0, 0), "ab")

    def test_out_of_bounds_points_clamped(self):
        canvas = AsciiCanvas(5, 5, Point(0, 0), Point(1, 1))
        canvas.plot(Point(99, 99), "X")  # Must not raise.
        assert "X" in canvas.render()


class TestRenderNetwork:
    def test_nodes_and_highlights(self, grid_network):
        text = render_network(grid_network, highlights={0: "S", 99: "D"})
        assert "S" in text
        assert "D" in text
        assert "o" in text

    def test_links_mode(self, grid_network):
        plain = render_network(grid_network)
        linked = render_network(grid_network, show_links=True)
        assert linked.count(".") > plain.count(".")


class TestRenderTree:
    def test_symbols(self):
        tree = rrstr(
            Point(0, 0),
            [(1, Point(800, 60)), (2, Point(820, -40))],
            150.0,
        )
        text = render_tree(tree)
        assert "S" in text
        assert text.count("D") == 2
        if any(v.is_virtual for v in tree.vertices()):
            assert "*" in text

    def test_describe_tree(self):
        tree = euclidean_mst(Point(0, 0), [(7, Point(100, 0))])
        text = describe_tree(tree)
        assert "S" in text and "d7" in text
        assert "total length: 100.0 m" in text

    def test_extra_points(self):
        tree = euclidean_mst(Point(0, 0), [(1, Point(100, 0))])
        text = render_tree(tree, extra_points=[(Point(50, 20), "N")])
        assert "N" in text
