"""Robustness benches (extensions beyond the paper's evaluation).

Delivery under injected link loss and silent node crashes, with flooding as
the redundancy reference.  Asserted shapes: lossless runs deliver fully;
loss/crashes degrade routing protocols; flooding tolerates both best while
paying the largest energy bill.
"""

from repro.experiments.config import PaperConfig
from repro.experiments.report import render_figure_table
from repro.experiments.robustness import (
    RobustnessScale,
    link_loss_sweep,
    node_failure_sweep,
)

BENCH_CONFIG = PaperConfig(node_count=400)
BENCH_SCALE = RobustnessScale(
    network_count=1,
    tasks_per_network=10,
    group_size=8,
    loss_rates=(0.0, 0.15, 0.35),
    failed_fractions=(0.0, 0.1, 0.2),
)


def test_link_loss_robustness(benchmark):
    delivery, energy = benchmark.pedantic(
        link_loss_sweep, args=(BENCH_CONFIG, BENCH_SCALE), rounds=1, iterations=1
    )
    print()
    print(render_figure_table(delivery, precision=3))
    print(render_figure_table(energy, precision=3))

    for label in delivery.labels():
        assert delivery.value(label, 0.0) == 1.0
        series = [delivery.value(label, x) for x in delivery.xs()]
        assert series == sorted(series, reverse=True), f"{label} not monotone"
    worst_loss = max(delivery.xs())
    assert delivery.value("FLOOD", worst_loss) >= delivery.value("GMP", worst_loss)
    assert energy.value("FLOOD", 0.0) > energy.value("GMP", 0.0)


def test_node_failure_robustness(benchmark):
    figure = benchmark.pedantic(
        node_failure_sweep, args=(BENCH_CONFIG, BENCH_SCALE), rounds=1, iterations=1
    )
    print()
    print(render_figure_table(figure, precision=3))

    for label in figure.labels():
        assert figure.value(label, 0.0) == 1.0
    worst = max(figure.xs())
    assert figure.value("FLOOD", worst) >= figure.value("LGS", worst) - 0.05
