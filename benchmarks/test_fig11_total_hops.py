"""Figure 11 — total number of hops in the multicast tree vs. group size.

Paper claims reproduced here (shape, not absolute numbers):
* GMP uses the fewest transmissions of all protocols at every k;
* GMP beats even the centralized SMT baseline;
* radio-range awareness matters: GMP is well below GMPnr (~25% in the paper);
* PBM (per-task best lambda) and LGS sit clearly above GMP.
"""

from repro.experiments.figures import figure11
from repro.experiments.report import render_figure_table


def test_figure11_total_hops(benchmark, bench_sweep):
    fig = benchmark.pedantic(figure11, args=(bench_sweep,), rounds=1, iterations=1)
    print()
    print(render_figure_table(fig))

    for k in fig.xs():
        gmp = fig.value("GMP", k)
        assert gmp <= fig.value("LGS", k) * 1.03, f"GMP not <= LGS at k={k}"
        assert gmp < fig.value("PBM", k), f"GMP not < PBM at k={k}"
        assert gmp < fig.value("GMPnr", k), f"GMP not < GMPnr at k={k}"
        assert gmp <= fig.value("SMT", k) * 1.03, f"GMP not <= SMT at k={k}"

    # The radio-awareness gap grows with k and is substantial at k=20
    # (the paper reports up to ~25%).
    k_max = max(fig.xs())
    saving_vs_gmpnr = 1.0 - fig.value("GMP", k_max) / fig.value("GMPnr", k_max)
    assert saving_vs_gmpnr > 0.10

    # Total hops grow with the group size for every protocol.
    for label in fig.labels():
        series = [fig.value(label, k) for k in fig.xs()]
        assert series == sorted(series), f"{label} totals not monotone in k"
