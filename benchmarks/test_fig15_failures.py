"""Figure 15 — failed tasks vs. network density.

k = 12 destinations, hop-count TTL 100, protocols with distinct void
semantics only (PBM, LGS, GMP), exactly as the paper frames it.  Claims
reproduced:
* failures decrease as density grows;
* LGS (no recovery at all) fails by far the most;
* GMP fails no more than PBM (it can absorb void destinations into
  routable groups, Figure 10).

Documented deviation: our MAC is loss-free, so at the paper's densities
(400–1000 nodes, average degree 28+) geometric voids are essentially absent
and all curves sit near zero; the sweep therefore extends into the sparse
regime (~140–260 nodes) where the mechanism is observable.
"""

from repro.experiments.figures import figure15
from repro.experiments.report import render_figure_table


def test_figure15_failures(benchmark, bench_config, bench_scale):
    fig = benchmark.pedantic(
        figure15, args=(bench_config, bench_scale), rounds=1, iterations=1
    )
    print()
    print(render_figure_table(fig, precision=1))

    densities = fig.xs()
    sparse, dense = min(densities), max(densities)
    for label in fig.labels():
        assert fig.value(label, sparse) >= fig.value(label, dense), (
            f"{label} failures do not decrease with density"
        )

    # LGS fails the most in the sparse regime; GMP no more than PBM.
    assert fig.value("LGS", sparse) >= fig.value("GMP", sparse)
    assert fig.value("LGS", sparse) >= fig.value("PBM", sparse)
    assert fig.value("GMP", sparse) <= fig.value("PBM", sparse) * 1.2

    # At the paper's dense end everything is (near) failure-free.
    assert fig.value("GMP", dense) <= fig.value("GMP", sparse)
