"""Ablation benches for the design choices DESIGN.md calls out.

A — radio-range awareness (paper's own GMP vs GMPnr comparison);
B — pivot-based vs closest-destination next-hop selection;
C — rrSTR pseudocode vs prose rule for the one-endpoint-in-range case;
D — the re-attachment refinement pass (our documented deviation);
E — transmission counting model (broadcast frames vs per-copy unicast).
"""

import numpy as np

from repro.engine import EngineConfig, run_task
from repro.experiments.sweep import make_network
from repro.sessions.workload import generate_tasks
from repro.geometry import Point
from repro.routing.gmp import GMPProtocol
from repro.simkit.rng import RandomStreams
from repro.steiner.rrstr import RRStrConfig, rrstr


def _run_workload(network, protocol, tasks, engine=None):
    cfg = engine or EngineConfig(max_path_length=100)
    results = [
        run_task(network, protocol, t.source_id, t.destination_ids, config=cfg)
        for t in tasks
    ]
    total = sum(r.transmissions for r in results)
    per_dest = sum(r.average_per_destination_hops for r in results) / len(results)
    return total, per_dest


def _workload(bench_config, k=12, count=15):
    network = make_network(bench_config, 0)
    streams = RandomStreams(bench_config.master_seed)
    return network, generate_tasks(network, count, k, streams.stream("ablate", k))


def test_ablation_radio_range_awareness(benchmark, bench_config):
    """Ablation A: turning off Section 3.3 costs extra transmissions."""
    network, tasks = _workload(bench_config)

    def run():
        aware, _ = _run_workload(network, GMPProtocol(radio_aware=True), tasks)
        naive, _ = _run_workload(network, GMPProtocol(radio_aware=False), tasks)
        return aware, naive

    aware, naive = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nradio-aware={aware} tx, naive={naive} tx "
          f"({100 * (1 - aware / naive):.1f}% saving)")
    assert aware < naive


def test_ablation_next_hop_rule(benchmark, bench_config):
    """Ablation B: pivot-targeted next hops vs LGS-style closest-destination."""
    network, tasks = _workload(bench_config)

    def run():
        pivot = _run_workload(network, GMPProtocol(next_hop_rule="pivot"), tasks)
        closest = _run_workload(
            network, GMPProtocol(next_hop_rule="closest-destination"), tasks
        )
        return pivot, closest

    (pivot_tx, pivot_pd), (closest_tx, closest_pd) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(f"\npivot: {pivot_tx} tx / {pivot_pd:.2f} per-dest; "
          f"closest-destination: {closest_tx} tx / {closest_pd:.2f} per-dest")
    # Both deliver; the pivot rule must not be worse on both axes at once.
    assert pivot_tx <= closest_tx * 1.15 or pivot_pd <= closest_pd * 1.15


def test_ablation_rrstr_rule_variant(benchmark):
    """Ablation C: Figure-3 pseudocode vs Section-3.3 prose tie-break."""
    rng = np.random.default_rng(17)

    def run():
        lengths = {"pseudocode": 0.0, "prose": 0.0}
        for _ in range(60):
            source = Point(*rng.uniform(0, 1000, 2))
            dests = [(i, Point(*rng.uniform(0, 1000, 2))) for i in range(12)]
            for name, prose in (("pseudocode", False), ("prose", True)):
                cfg = RRStrConfig(
                    radio_aware=True, prose_one_in_range_rule=prose, refine=False
                )
                lengths[name] += rrstr(source, dests, 150.0, cfg).total_length()
        return lengths

    lengths = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nraw tree length, pseudocode={lengths['pseudocode']:.0f} "
          f"prose={lengths['prose']:.0f}")
    # The deferring pseudocode rule never loses to the eager prose rule by
    # much; typically it wins (more pairing options remain open).
    assert lengths["pseudocode"] <= lengths["prose"] * 1.05


def test_ablation_refinement(benchmark):
    """Ablation D: the re-attachment refinement's effect on tree length."""
    rng = np.random.default_rng(23)

    def run():
        raw_total, refined_total = 0.0, 0.0
        for _ in range(60):
            source = Point(*rng.uniform(0, 1000, 2))
            dests = [(i, Point(*rng.uniform(0, 1000, 2))) for i in range(12)]
            raw_total += rrstr(
                source, dests, 150.0, RRStrConfig(refine=False)
            ).total_length()
            refined_total += rrstr(
                source, dests, 150.0, RRStrConfig(refine=True)
            ).total_length()
        return raw_total, refined_total

    raw_total, refined_total = benchmark.pedantic(run, rounds=1, iterations=1)
    saving = 1 - refined_total / raw_total
    print(f"\nraw={raw_total:.0f} refined={refined_total:.0f} ({100 * saving:.1f}% shorter)")
    assert refined_total < raw_total
    assert saving > 0.01


def test_ablation_transmission_model(benchmark, bench_config):
    """Ablation E: broadcast frame aggregation vs per-copy unicast counting."""
    network, tasks = _workload(bench_config)

    def run():
        shared = _run_workload(
            network, GMPProtocol(),
            tasks, EngineConfig(max_path_length=100, transmission_model="protocol"),
        )
        per_copy = _run_workload(
            network, GMPProtocol(),
            tasks, EngineConfig(max_path_length=100, transmission_model="unicast"),
        )
        return shared, per_copy

    (shared_tx, _), (per_copy_tx, _) = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nbroadcast frames: {shared_tx} tx; per-copy unicast: {per_copy_tx} tx")
    assert shared_tx < per_copy_tx
