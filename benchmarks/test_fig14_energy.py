"""Figure 14 — total energy cost vs. group size.

Energy is the Section-5.3 model: sender transmission power plus receive
power for every node inside the sender's radio range, per transmission.
The paper's claim: GMP spends the least energy, with savings of up to ~25%
over PBM and LGS; we reproduce the ordering and report the measured ratios.
"""

from repro.experiments.figures import figure14
from repro.experiments.report import render_figure_table, render_ratio_summary


def test_figure14_energy(benchmark, bench_sweep):
    fig = benchmark.pedantic(figure14, args=(bench_sweep,), rounds=1, iterations=1)
    print()
    print(render_figure_table(fig, precision=3))
    print(render_ratio_summary(fig, "GMP", ["PBM", "LGS", "SMT", "GMPnr"]))

    for k in fig.xs():
        gmp = fig.value("GMP", k)
        assert gmp <= fig.value("LGS", k) * 1.03, f"GMP energy not <= LGS at k={k}"
        assert gmp < fig.value("PBM", k)
        assert gmp < fig.value("GMPnr", k)

    # Energy grows with group size.
    for label in fig.labels():
        series = [fig.value(label, k) for k in fig.xs()]
        assert series == sorted(series)

    # The headline saving against PBM is substantial.
    k_max = max(fig.xs())
    assert 1.0 - fig.value("GMP", k_max) / fig.value("PBM", k_max) > 0.15
