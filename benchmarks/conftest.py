"""Shared fixtures for the figure-regeneration benchmarks.

The figure benches share one group-size sweep (computed once per session) so
that `pytest benchmarks/ --benchmark-only` stays minutes-scale.  The sweep
runs at a reduced statistical scale; the shapes it asserts are the same ones
the full `gmp-repro all --scale paper` run reproduces (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentScale, PaperConfig
from repro.experiments.figures import run_group_size_sweep

#: Physical setup used by the benches: Table 1 with a smaller deployment so
#: PBM's lambda sweep stays fast.
BENCH_CONFIG = PaperConfig(node_count=400)

#: Statistical scale for the benches.
BENCH_SCALE = ExperimentScale(
    name="bench",
    network_count=1,
    tasks_per_network=12,
    group_sizes=(5, 12, 20),
    lambdas=(0.0, 0.3, 0.6),
    density_node_counts=(140, 180, 260, 400),
)


@pytest.fixture(scope="session")
def bench_sweep():
    """The shared Figure-11/12/14 sweep."""
    return run_group_size_sweep(BENCH_CONFIG, BENCH_SCALE)


@pytest.fixture(scope="session")
def bench_config():
    return BENCH_CONFIG


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE
