"""Figure 12 — average per-destination hop count vs. group size.

Paper claims reproduced here:
* GRD (pure greedy unicast) lower-bounds everyone;
* GMP and PBM stay close to GRD;
* LGS is clearly worse and its gap grows with k (the sequential-visit
  pathology of Figure 13).

Documented deviation: the paper also shows SMT near GRD; a Euclidean-length
KMB tree has deep hop paths in our substrate, so SMT sits near LGS instead
(see EXPERIMENTS.md).
"""

from repro.experiments.figures import figure12
from repro.experiments.report import render_figure_table


def test_figure12_per_destination_hops(benchmark, bench_sweep):
    fig = benchmark.pedantic(figure12, args=(bench_sweep,), rounds=1, iterations=1)
    print()
    print(render_figure_table(fig))

    for k in fig.xs():
        grd = fig.value("GRD", k)
        assert grd <= fig.value("GMP", k) + 1e-9, f"GRD not a lower bound at k={k}"
        assert grd <= fig.value("PBM", k) + 1e-9
        assert fig.value("GMP", k) < fig.value("LGS", k), f"GMP not < LGS at k={k}"
        # "Close to the greedy solution": within ~50% of GRD.
        assert fig.value("GMP", k) <= grd * 1.6

    # The LGS gap grows with the group size.
    ks = fig.xs()
    gap_small = fig.value("LGS", ks[0]) - fig.value("GMP", ks[0])
    gap_large = fig.value("LGS", ks[-1]) - fig.value("GMP", ks[-1])
    assert gap_large > gap_small
