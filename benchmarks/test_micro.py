"""Microbenchmarks: per-operation costs of the core building blocks.

These complement the paper's Section-4.2 complexity analysis — rrSTR is
O(n^2 log n + n*m) per forwarding step, which is what makes it deployable on
sensor nodes where PBM's exponential subset enumeration is not.
"""

import pathlib

import numpy as np
import pytest

from repro.adversary import JAMMER, AdversarySchedule, AdversarySpec
from repro.engine import EngineConfig, run_task
from repro.experiments.config import PaperConfig
from repro.experiments.scale import SCALE_QUICK, _scale_tasks, scaled_config
from repro.experiments.sweep import cached_network
from repro.geometry import Point
from repro.geometry.fermat import fermat_point
from repro.linklayer import LinkLayer, LinkLayerConfig
from repro.network import RadioConfig, build_network
from repro.network.topology import uniform_random_topology
from repro.perf.cache import caches_disabled, clear_caches
from repro.perf.kernels import vectorized_disabled
from repro.perf.soa import soa_disabled
from repro.routing import GMPProtocol, LGSProtocol, PBMProtocol, SMTProtocol
from repro.simkit.rng import RandomStreams
from repro.simkit.scheduler import CalendarScheduler, EventScheduler
from repro.simkit.simulator import Simulator
from repro.steiner.kmb import kmb_steiner_tree
from repro.steiner.mst import euclidean_mst
from repro.steiner.rrstr import RRStrConfig, rrstr


@pytest.fixture(scope="module")
def micro_network():
    rng = np.random.default_rng(31)
    points = uniform_random_topology(400, 1000.0, 1000.0, rng)
    return build_network(points, RadioConfig())


def _random_instance(k, seed=5):
    rng = np.random.default_rng(seed)
    source = Point(*rng.uniform(0, 1000, 2))
    dests = [(i, Point(*rng.uniform(0, 1000, 2))) for i in range(k)]
    return source, dests


def test_bench_fermat_point(benchmark):
    a, b, c = Point(0, 0), Point(923, 114), Point(411, 780)
    benchmark(fermat_point, a, b, c)


@pytest.mark.parametrize("k", [5, 12, 25])
def test_bench_rrstr(benchmark, k):
    source, dests = _random_instance(k)
    benchmark(rrstr, source, dests, 150.0, RRStrConfig())


def test_bench_rrstr_unrefined(benchmark):
    source, dests = _random_instance(25)
    benchmark(rrstr, source, dests, 150.0, RRStrConfig(refine=False))


def test_bench_euclidean_mst(benchmark):
    source, dests = _random_instance(25)
    benchmark(euclidean_mst, source, dests)


def test_bench_kmb(benchmark, micro_network):
    graph = micro_network.to_networkx()
    terminals = list(range(0, 120, 10))
    benchmark(kmb_steiner_tree, graph, terminals)


def test_bench_network_build(benchmark):
    rng = np.random.default_rng(41)
    points = uniform_random_topology(400, 1000.0, 1000.0, rng)
    benchmark(lambda: build_network(points, RadioConfig()))


def test_bench_planarization(benchmark, micro_network):
    def planarize_sample():
        # Fresh computation each round: bypass the cache.
        from repro.network.planar import gabriel_neighbors

        for node in range(0, 100, 5):
            gabriel_neighbors(
                node,
                micro_network.neighbors_of(node),
                micro_network.location_of,
            )

    benchmark(planarize_sample)


def test_bench_spatial_queries(benchmark, micro_network):
    """Radius queries against the per-cell-bounds pruned SpatialGrid."""
    rng = np.random.default_rng(77)
    centers = [Point(*rng.uniform(0, 1000, 2)) for _ in range(100)]

    def query_sample():
        total = 0
        for center in centers:
            for radius in (80.0, 150.0, 300.0):
                total += len(micro_network.nodes_within(center, radius))
        return total

    benchmark(query_sample)


@pytest.mark.parametrize(
    "factory",
    [GMPProtocol, LGSProtocol, PBMProtocol, SMTProtocol],
    ids=["GMP", "LGS", "PBM", "SMT"],
)
def test_bench_task_execution(benchmark, micro_network, factory):
    dests = [30, 90, 150, 210, 270, 330, 370, 399]
    benchmark.pedantic(
        run_task,
        args=(micro_network, factory(), 0, dests),
        rounds=3,
        iterations=1,
    )


def test_bench_task_execution_gmp_cold(benchmark, micro_network):
    """GMP with all perf caches disabled: the uncached reference path."""
    dests = [30, 90, 150, 210, 270, 330, 370, 399]

    def cold_task():
        clear_caches()
        with caches_disabled():
            return run_task(micro_network, GMPProtocol(), 0, dests)

    benchmark.pedantic(cold_task, rounds=3, iterations=1)


def test_bench_task_execution_gmp_contended(benchmark, micro_network):
    """The same GMP task through the CSMA/ARQ link layer (beacons off).

    The gap to ``test_bench_task_execution[GMP]`` is the price of the
    discrete-event MAC: carrier sense, backoff draws, and the ACK trains.
    """
    dests = [30, 90, 150, 210, 270, 330, 370, 399]
    config = EngineConfig(
        transmission_model="contended", link=LinkLayerConfig(beacons=False)
    )
    benchmark.pedantic(
        run_task,
        args=(micro_network, GMPProtocol(), 0, dests),
        kwargs={"config": config},
        rounds=3,
        iterations=1,
    )


def test_bench_task_execution_gmp_jammed(benchmark, micro_network):
    """Stepping a jammer-saturated contended channel, in jam frames/sec.

    Pairs with ``test_bench_task_execution_gmp_contended``: two duty-0.9
    jammers keep the CSMA medium busy while the same GMP task fights
    through, so the run is dominated by junk-frame channel stepping
    (begin/finish, collision marking, backoff retries).  Throughput
    direction: the compared figure is jam frames stepped per second.
    """
    dests = [30, 90, 150, 210, 270, 330, 370, 399]
    config = EngineConfig(
        transmission_model="contended",
        link=LinkLayerConfig(beacons=False),
        adversary=AdversarySchedule(
            specs=(
                AdversarySpec(60, JAMMER, jam_duty=0.9),
                AdversarySpec(200, JAMMER, jam_duty=0.9),
            ),
            seed=23,
        ),
    )
    frames = {}

    def jammed_task():
        result = run_task(
            micro_network, GMPProtocol(), 0, dests, config=config
        )
        frames["stepped"] = result.perf["adv.jam_frames"]
        return frames["stepped"]

    benchmark.pedantic(jammed_task, rounds=3, iterations=1)
    benchmark.extra_info["direction"] = "maximize"
    benchmark.extra_info["value"] = (
        frames["stepped"] / benchmark.stats.stats.median
    )


def test_bench_fuzz_executor_throughput(benchmark):
    """Fuzz scenarios judged per second (generator -> executor -> oracles).

    The campaign's wall-clock budget is executor-bound: each scenario runs
    its full workload with traces on, runs the benign twin, and evaluates
    four oracles.  Throughput direction: scenarios/sec, higher is better.
    """
    from repro.fuzz.executor import build_scenario_network, run_scenario
    from repro.fuzz.generator import ScenarioSpec

    specs = [
        ScenarioSpec(
            seed=900 + i,
            node_count=80,
            field_size_m=600.0,
            protocol="GMP",
            transmission_model="protocol",
            task_count=2,
            group_size=4,
            link_loss_rate=0.1,
        )
        for i in range(6)
    ]
    for spec in specs:
        build_scenario_network(spec)  # warm the deployment memo

    def sweep():
        digests = {run_scenario(spec).results_digest for spec in specs}
        assert len(digests) == len(specs)
        return digests

    benchmark.pedantic(sweep, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["direction"] = "maximize"
    benchmark.extra_info["value"] = len(specs) / benchmark.stats.stats.median


# ----------------------------------------------------------------------
# Large-scale (5k / 10k node) benches for the vectorized kernels
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def scale_network_5k():
    """The first seeded deployment of the 5000-node constant-density sweep."""
    return cached_network(scaled_config(PaperConfig(), 5000), 0)


@pytest.fixture(scope="module")
def scale_network_10k():
    return cached_network(scaled_config(PaperConfig(), 10000), 0)


def _scale_task_instance(network, node_count, group_size=100):
    config = scaled_config(PaperConfig(), node_count)
    task = _scale_tasks(config, SCALE_QUICK, node_count, 0, group_size)[0]
    source = network.location_of(task.source_id)
    dests = [(d, network.location_of(d)) for d in task.destination_ids]
    return source, dests


def test_bench_rrstr_5k_gmp_vectorized(benchmark, scale_network_5k):
    """rrSTR tree for a 5k-node, k=100 GMP task — batched kernels on.

    Paired with ``test_bench_rrstr_5k_gmp_scalar`` below: the median ratio
    between the two is the vectorization speedup on the GMP hot path
    (>= 3x on the reference machine; see docs/PERFORMANCE.md).
    """
    source, dests = _scale_task_instance(scale_network_5k, 5000)

    def build():
        clear_caches()
        with caches_disabled():
            return rrstr(source, dests, 150.0)

    benchmark.pedantic(build, rounds=7, iterations=1, warmup_rounds=1)


def test_bench_rrstr_5k_gmp_scalar(benchmark, scale_network_5k):
    """The same 5k-node GMP tree with ``vectorized_disabled()`` — the A arm."""
    source, dests = _scale_task_instance(scale_network_5k, 5000)

    def build():
        clear_caches()
        with caches_disabled(), vectorized_disabled():
            return rrstr(source, dests, 150.0)

    benchmark.pedantic(build, rounds=7, iterations=1, warmup_rounds=1)


def test_bench_spatial_queries_10k(benchmark, scale_network_10k):
    """Radius queries over the 10k-node grid (batched per-cell disk tests)."""
    side = scaled_config(PaperConfig(), 10000).field_width_m
    rng = np.random.default_rng(93)
    centers = [Point(*rng.uniform(0, side, 2)) for _ in range(200)]

    def query_sample():
        total = 0
        for center in centers:
            for radius in (150.0, 450.0):
                total += len(scale_network_10k.nodes_within(center, radius))
        return total

    benchmark(query_sample)


def test_bench_planarization_10k(benchmark, scale_network_10k):
    """Gabriel witness tests over 10k-node neighbor tables (batched masks)."""
    from repro.network.planar import gabriel_neighbors

    def planarize_sample():
        # Fresh computation each round: bypass the per-node cache.
        for node in range(0, 2000, 20):
            gabriel_neighbors(
                node,
                scale_network_10k.neighbors_of(node),
                scale_network_10k.location_of,
            )

    benchmark(planarize_sample)


def test_bench_reprolint_whole_repo(benchmark):
    """The full static-analysis pass: parse, import/call graphs, 16 rules.

    This is what the CI ratchet gate pays on every run; the repo contract
    (asserted in ``tests/analysis/test_project.py``) is that it stays under
    a few seconds for the whole tree.
    """
    from repro.analysis import analyze_paths, default_registry

    repo_root = pathlib.Path(__file__).resolve().parents[1]
    paths = [
        str(repo_root / tree)
        for tree in ("src", "tests", "scripts", "benchmarks")
    ]

    def lint_everything():
        report = analyze_paths(paths, registry=default_registry())
        assert report.files_checked > 100
        return report.files_checked

    benchmark.pedantic(lint_everything, rounds=3, iterations=1)


# ----------------------------------------------------------------------
# Struct-of-arrays core: network build + event-scheduler backends
# ----------------------------------------------------------------------


def test_bench_network_build_5k_soa(benchmark):
    """50k-regime adjacency construction: the ``unit_disk_rows`` CSR path.

    Paired with ``test_bench_network_build_5k_legacy`` below: the median
    ratio between the two is the SoA build speedup (~3x on the reference
    machine; see docs/PERFORMANCE.md).
    """
    config = scaled_config(PaperConfig(), 5000)
    rng = np.random.default_rng(41)
    points = uniform_random_topology(
        config.node_count, config.field_width_m, config.field_height_m, rng
    )
    benchmark.pedantic(
        lambda: build_network(points, RadioConfig()),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )


def test_bench_network_build_5k_legacy(benchmark):
    """The same 5k-node build through the per-node object-graph scan."""
    config = scaled_config(PaperConfig(), 5000)
    rng = np.random.default_rng(41)
    points = uniform_random_topology(
        config.node_count, config.field_width_m, config.field_height_m, rng
    )

    def build():
        with soa_disabled():
            return build_network(points, RadioConfig())

    benchmark.pedantic(build, rounds=5, iterations=1, warmup_rounds=1)


@pytest.fixture(scope="module")
def shared_plane_manifest_5k():
    """A 5k-node deployment published once to the shared-memory plane."""
    from repro.perf.shm import SharedNetworkPlane

    config = scaled_config(PaperConfig(), 5000)
    rng = np.random.default_rng(41)
    points = uniform_random_topology(
        config.node_count, config.field_width_m, config.field_height_m, rng
    )
    network = build_network(points, RadioConfig())
    with SharedNetworkPlane(seed=config.master_seed) as plane:
        assert plane.publish(("bench", 5000), network)
        yield plane.manifests()[("bench", 5000)]


def test_bench_network_attach_5k(benchmark, shared_plane_manifest_5k):
    """Zero-copy worker attach to the published 5k deployment.

    Paired with ``test_bench_network_build_5k_soa`` above: the median
    ratio between the two is what each pool worker saves by mapping the
    parent's segment instead of rebuilding the deployment (>= 10x on the
    reference machine; see docs/PERFORMANCE.md).
    """
    from repro.perf.shm import attach_manifest

    def attach():
        network = attach_manifest(shared_plane_manifest_5k)
        assert network is not None and network.node_count == 5000
        return network

    benchmark.pedantic(attach, rounds=5, iterations=1, warmup_rounds=1)


def _mac_like_schedule(scheduler, churn=60_000, live=30_000, seed=211):
    """Drive a scheduler through a contended-MAC-shaped event stream.

    Mimics what the CSMA link layer generates at the 50k-node scale: tens
    of thousands of concurrently pending backoff/ACK/beacon timers with a
    dense sub-millisecond near-future band, churned hold-one-pop-one in
    steady state.  The binary heap pays O(log live) per operation here;
    the calendar queue's windows keep it O(1) amortized — this pair
    measures that gap (the same stream, both backends).
    """
    rng = np.random.default_rng(seed)
    delays = rng.uniform(1e-4, 5e-3, live + churn)
    now = 0.0
    for i in range(live):
        scheduler.schedule(now + float(delays[i]), lambda: None)
    for i in range(live, live + churn):
        event = scheduler.pop_next()
        now = event.time
        scheduler.schedule(now + float(delays[i]), lambda: None)
    while len(scheduler) > 0:
        scheduler.pop_next()
    return live + churn


def test_bench_scheduler_calendar(benchmark):
    """Calendar-queue backend under the contended-MAC event stream."""
    benchmark.pedantic(
        lambda: _mac_like_schedule(CalendarScheduler()),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )


def test_bench_scheduler_heap(benchmark):
    """Binary-heap backend on the identical stream — the A arm of the pair."""
    benchmark.pedantic(
        lambda: _mac_like_schedule(EventScheduler()),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )


# ----------------------------------------------------------------------
# Streaming session engine: throughput-direction bench + sketch overhead
# ----------------------------------------------------------------------


def test_bench_session_stream_throughput(benchmark):
    """Steady-state sessions/sec of the streaming runner at 2k nodes.

    The repo's first *throughput-direction* benchmark: the compared figure
    is ``extra_info["value"]`` (sessions/sec, higher is better), declared
    via ``extra_info["direction"] = "maximize"`` so
    ``scripts/bench_compare.py`` gates on *downward* drift.
    """
    from repro.experiments.sessions import cell_workload
    from repro.sessions import run_session_stream

    total = 16
    base = PaperConfig()
    config = scaled_config(base, 2000)
    workload = cell_workload(base, 2000, "poisson")
    engine = EngineConfig(max_path_length=config.max_path_length)
    cached_network(config, 0)  # warm the deployment memo outside the timer

    def stream():
        report = run_session_stream(
            workload, ("GMP",), config, total_sessions=total, engine=engine
        )
        assert report.completed == total
        return report.chain_digest

    benchmark.pedantic(stream, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["direction"] = "maximize"
    benchmark.extra_info["value"] = total / benchmark.stats.stats.median


def test_bench_session_sketch_fold(benchmark):
    """Folding 10k observations into the bounded-memory stream sketches.

    The per-session aggregation overhead the streaming runner pays instead
    of accumulating TaskResults — must stay far below the cost of running
    a session.
    """
    from repro.sessions import StreamStats

    rng = np.random.default_rng(59)
    latencies = rng.exponential(0.01, 10_000)
    energies = rng.exponential(0.2, 10_000)
    costs = rng.integers(5, 200, 10_000)

    def fold():
        stats = StreamStats(epsilon=0.01)
        for latency, energy, cost in zip(latencies, energies, costs):
            stats.observe(
                latency_s=float(latency),
                delivery_ratio=1.0,
                energy_joules=float(energy),
                tree_cost=float(cost),
                delivered=5,
                requested=5,
            )
        return stats.sessions

    benchmark.pedantic(fold, rounds=3, iterations=1, warmup_rounds=1)


def test_bench_beacon_round(benchmark, micro_network):
    """One full HELLO period over 400 contending nodes."""
    link_config = LinkLayerConfig(warm_start=False)

    def beacon_round():
        simulator = Simulator()
        link = LinkLayer(
            network=micro_network,
            simulator=simulator,
            config=link_config,
            streams=RandomStreams(17),
            failed_node_ids=frozenset(),
            deliver=lambda session, receiver, packet: None,
            charge=lambda session, sender, size, counted: None,
            copy_loss=lambda session, receiver: False,
        )
        link.start_beacons(link_config.beacon_period_s)
        simulator.run(
            until=2.0 * link_config.beacon_period_s, max_events=2_000_000
        )
        return link.stats.global_count("beacons_sent")

    benchmark.pedantic(beacon_round, rounds=3, iterations=1)
