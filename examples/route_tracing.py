#!/usr/bin/env python
"""Dissecting a multicast: the realized route tree, frame by frame.

Runs one GMP task with tracing enabled, reconstructs the *realized*
multicast tree from the on-air history (as opposed to the virtual Steiner
trees each node planned with), renders it over the deployment, and prints
the efficiency statistics the paper's figures aggregate.

Run with::

    python examples/route_tracing.py
"""

import numpy as np

from repro import (
    GMPProtocol,
    LGSProtocol,
    RadioConfig,
    build_network,
    run_task,
    uniform_random_topology,
)
from repro.visualization.ascii_art import AsciiCanvas
from repro.geometry import Point


def render_trace(network, trace, source, destinations):
    xs = network.locations[:, 0]
    ys = network.locations[:, 1]
    canvas = AsciiCanvas(
        76, 22,
        Point(float(xs.min()), float(ys.min())),
        Point(float(xs.max()), float(ys.max())),
    )
    for a, b in trace.traversed_edges():
        canvas.line(network.location_of(a), network.location_of(b), ".")
    for relay in trace.relay_nodes():
        canvas.plot(network.location_of(relay), "+")
    for dest in destinations:
        canvas.plot(network.location_of(dest), "D")
    canvas.plot(network.location_of(source), "S")
    return canvas.render()


def main() -> None:
    rng = np.random.default_rng(11)
    points = uniform_random_topology(500, 1000.0, 1000.0, rng)
    network = build_network(points, RadioConfig())
    source = 0
    destinations = [60, 120, 210, 333, 405, 480]

    for protocol in (GMPProtocol(), LGSProtocol()):
        result = run_task(network, protocol, source, destinations,
                          collect_trace=True)
        trace = result.trace
        print(f"=== {protocol.name} ===")
        print(render_trace(network, trace, source, destinations))
        print(f"frames (transmissions): {result.transmissions}")
        print(f"distinct traversed edges: {len(trace.traversed_edges())}")
        print(f"relay nodes: {len(trace.relay_nodes())}")
        print(f"split events (fanout > 1): {trace.split_events()}  "
              f"histogram: {trace.fanout_histogram()}")
        print(f"perimeter-mode copies: {trace.perimeter_copy_count()}")
        print(f"ground covered: {trace.total_meters(network):.0f} m "
              f"({trace.mean_hop_meters(network):.1f} m per hop)")
        print(f"per-destination hops: {sorted(result.delivered_hops.values())}")
        print()

    print("GMP's splits fan copies out at Steiner points (several receivers "
          "share one frame); LGS mostly chains, which is why its later "
          "destinations wait longer.")


if __name__ == "__main__":
    main()
