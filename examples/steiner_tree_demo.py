#!/usr/bin/env python
"""rrSTR in isolation: how a transmitting node plans its virtual tree.

Recreates the flavour of the paper's Figures 1 and 4: a source, a far pair
of destinations that share a trunk, plus nearer destinations that chain onto
it — rendered in ASCII, with the reduction ratios that drive the merge order
and the MST (LGS's structure) for comparison.

Run with::

    python examples/steiner_tree_demo.py
"""

from repro.geometry import Point
from repro.steiner import RRStrConfig, euclidean_mst, reduction_ratio, rrstr
from repro.visualization.ascii_art import describe_tree, render_tree


def main() -> None:
    # The Figure-4 cast: far pair (u, v), mid destination d, near c.
    source = Point(0.0, 0.0)
    c = Point(140.0, 30.0)
    d = Point(380.0, 20.0)
    u = Point(620.0, 110.0)
    v = Point(650.0, 30.0)
    destinations = [(1, c), (2, d), (3, u), (4, v)]

    print("reduction ratios at the source (larger merges first):")
    names = {1: "c", 2: "d", 3: "u", 4: "v"}
    pairs = [(a, b) for i, a in enumerate(destinations) for b in destinations[i + 1:]]
    for (ra, la), (rb, lb) in pairs:
        rr = reduction_ratio(source, la, lb)
        print(f"  RR({names[ra]}, {names[rb]}) = {rr:.3f}")

    tree = rrstr(source, destinations, radio_range=150.0,
                 config=RRStrConfig(radio_aware=True))
    print("\nrrSTR virtual Steiner tree (S=source, D=destination, *=virtual):")
    print(render_tree(tree, width_chars=76, height_chars=14))
    print(describe_tree(tree))

    mst = euclidean_mst(source, destinations)
    print("\nLGS's MST over the same terminals (no virtual points allowed):")
    print(render_tree(mst, width_chars=76, height_chars=14))
    print(describe_tree(mst))

    saving = 1.0 - tree.total_length() / mst.total_length()
    print(f"\nrrSTR tree is {100 * saving:.1f}% shorter than the MST "
          f"({tree.total_length():.0f} m vs {mst.total_length():.0f} m)")


if __name__ == "__main__":
    main()
