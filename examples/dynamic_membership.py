#!/usr/bin/env python
"""Why statelessness matters: multicast sessions under membership churn.

A monitoring application streams updates to a subscriber group whose
membership changes every round (operators subscribe and unsubscribe).  A
tree- or mesh-based multicast protocol would pay reconfiguration traffic on
every change; the paper's stateless protocols pay nothing — the next packet
simply carries the new destination list.  This example measures a churning
session under each protocol, with the identical membership history.

Run with::

    python examples/dynamic_membership.py
"""

import numpy as np

from repro import (
    GMPProtocol,
    LGSProtocol,
    PBMProtocol,
    RadioConfig,
    SMTProtocol,
    build_network,
    uniform_random_topology,
)
from repro.engine import EngineConfig
from repro.experiments.dynamics import SessionConfig, compare_protocols_under_churn


def main() -> None:
    rng = np.random.default_rng(1234)
    points = uniform_random_topology(500, 1000.0, 1000.0, rng)
    network = build_network(points, RadioConfig())
    print(f"network: {network.node_count} nodes, "
          f"connected: {network.is_connected()}")

    session_config = SessionConfig(
        rounds=30,
        initial_group_size=10,
        leave_probability=0.2,
        join_probability=0.2,
        min_group_size=3,
    )
    protocols = [GMPProtocol(), PBMProtocol(), LGSProtocol(), SMTProtocol()]
    sessions = compare_protocols_under_churn(
        network,
        protocols,
        source_id=0,
        config=session_config,
        seed=77,
        engine_config=EngineConfig(max_path_length=100),
    )

    changes = sessions[0].membership_changes
    sizes = [len(r.members) for r in sessions[0].rounds]
    print(f"\nsession: {session_config.rounds} rounds, "
          f"{changes} membership changes, group size "
          f"{min(sizes)}..{max(sizes)} (identical history for all protocols)")

    print(f"\n{'protocol':>10} {'tx/round':>9} {'J total':>8} {'delivery':>9}")
    for session in sessions:
        print(f"{session.protocol:>10} "
              f"{session.mean_transmissions_per_round:9.1f} "
              f"{session.total_energy_joules:8.2f} "
              f"{100 * session.delivery_ratio:8.1f}%")

    print("\nNo protocol here pays any reconfiguration traffic — that is the "
          "point of stateless geographic multicast.  (A maintained tree/mesh "
          "protocol would add control messages on every one of the "
          f"{changes} membership changes.)  Among the stateless ones, GMP "
          "carries the churning group at the lowest cost per round.")


if __name__ == "__main__":
    main()
