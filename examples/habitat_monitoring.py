#!/usr/bin/env python
"""A habitat-monitoring deployment: the workload the paper's intro motivates.

Sensors cluster around points of interest (water holes); a gateway node
periodically multicasts reconfiguration commands (sampling rate changes,
calibration constants) to the cluster-head nodes.  The experiment measures
the cumulative energy each protocol spends over a day of reconfigurations —
energy being the scarce resource in WSNs.

Run with::

    python examples/habitat_monitoring.py
"""

import numpy as np

from repro import (
    GMPProtocol,
    LGSProtocol,
    PBMProtocol,
    RadioConfig,
    SMTProtocol,
    build_network,
    clustered_topology,
    uniform_random_topology,
)
from repro.engine import EngineConfig, run_task
from repro.geometry import Point, distance


def main() -> None:
    rng = np.random.default_rng(2006)
    # 480 sensors in 6 clusters (water holes) plus a 220-node relay
    # backbone scattered across the 1200 m reserve so the clusters can
    # talk to each other.
    points = clustered_topology(
        480, 1200.0, 1200.0, cluster_count=6, cluster_spread=90.0, rng=rng
    )
    points += uniform_random_topology(220, 1200.0, 1200.0, rng)
    network = build_network(points, RadioConfig())
    print(f"habitat network: {network.node_count} nodes, "
          f"avg degree {network.average_degree():.1f}, "
          f"connected: {network.is_connected()}")

    # The gateway is the node nearest the reserve entrance (the SW corner);
    # each cluster's head is the node nearest its centroid.
    gateway = network.closest_node_to(Point(0.0, 0.0))
    heads = []
    for cx in (200, 600, 1000):
        for cy in (300, 900):
            head = network.closest_node_to(Point(float(cx), float(cy)))
            if head != gateway and head not in heads:
                heads.append(head)
    print(f"gateway: node {gateway}; cluster heads: {heads}")

    # One day = 48 reconfiguration rounds (every 30 minutes).
    rounds = 48
    config = EngineConfig(max_path_length=100)
    print(f"\ncumulative cost of {rounds} reconfiguration multicasts:")
    print(f"{'protocol':>10} {'tx/round':>9} {'J/round':>9} {'J/day':>9} delivered")
    for protocol in (GMPProtocol(), PBMProtocol(), LGSProtocol(), SMTProtocol()):
        total_tx = total_energy = 0.0
        delivered = 0
        requested = 0
        for round_id in range(rounds):
            result = run_task(network, protocol, gateway, heads,
                              config=config, task_id=round_id)
            total_tx += result.transmissions
            total_energy += result.energy_joules
            delivered += len(result.delivered_hops)
            requested += len(heads)
        note = "" if delivered == requested else "  (incomplete: no recovery)"
        print(f"{protocol.name:>10} {total_tx / rounds:9.1f} "
              f"{total_energy / rounds:9.4f} {total_energy:9.2f} "
              f"{delivered}/{requested}{note}")

    # Rough lifetime impact: how long until the busiest relay dies?
    gmp = run_task(network, GMPProtocol(), gateway, heads, config=config)
    worst_distance = max(
        distance(network.location_of(gateway), network.location_of(h))
        for h in heads
    )
    print(f"\nfarthest cluster head is {worst_distance:.0f} m out; "
          f"GMP reaches it in {max(gmp.delivered_hops.values())} hops.")


if __name__ == "__main__":
    main()
