#!/usr/bin/env python
"""Quickstart: build a sensor network, multicast with GMP, inspect the result.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    GMPProtocol,
    LGSProtocol,
    RadioConfig,
    build_network,
    run_task,
    uniform_random_topology,
)


def main() -> None:
    # 1. Deploy 500 sensor nodes uniformly in a 1000 m x 1000 m field with
    #    the paper's Table-1 radio (150 m range, 1 Mbps, 1.3 W / 0.9 W).
    rng = np.random.default_rng(42)
    points = uniform_random_topology(500, 1000.0, 1000.0, rng)
    network = build_network(points, RadioConfig())
    print(f"deployed {network.node_count} nodes, "
          f"average degree {network.average_degree():.1f}, "
          f"connected: {network.is_connected()}")

    # 2. Multicast one message from node 0 to eight destinations.
    destinations = [37, 81, 144, 205, 333, 402, 451, 499]
    result = run_task(network, GMPProtocol(), source_id=0,
                      destination_ids=destinations)

    # 3. Inspect what happened.
    print(f"\nGMP delivered {len(result.delivered_hops)}/{len(destinations)} "
          f"destinations in {result.transmissions} transmissions")
    print(f"  per-destination hops: "
          f"{sorted(result.delivered_hops.values())}")
    print(f"  total energy: {result.energy_joules * 1000:.2f} mJ")
    print(f"  virtual time to quiescence: {result.duration_s * 1000:.2f} ms")

    # 4. Averaged comparison against the MST-based LGS baseline (single
    #    tasks are noisy; 20 random tasks show the systematic difference).
    from repro.sessions.workload import generate_tasks

    tasks = generate_tasks(network, 20, 8, np.random.default_rng(7))
    means = {}
    for protocol in (GMPProtocol(), LGSProtocol()):
        results = [
            run_task(network, protocol, t.source_id, t.destination_ids)
            for t in tasks
        ]
        means[protocol.name] = (
            sum(r.transmissions for r in results) / len(results),
            sum(r.average_per_destination_hops for r in results) / len(results),
        )
    gmp_tx, gmp_pd = means["GMP"]
    lgs_tx, lgs_pd = means["LGS"]
    print(f"\nover {len(tasks)} random 8-destination tasks:")
    print(f"  GMP: {gmp_tx:.1f} transmissions, {gmp_pd:.1f} hops/destination")
    print(f"  LGS: {lgs_tx:.1f} transmissions, {lgs_pd:.1f} hops/destination")
    print(f"  GMP saves {100 * (1 - gmp_tx / lgs_tx):.0f}% of transmissions and "
          f"reaches destinations {100 * (1 - gmp_pd / lgs_pd):.0f}% sooner")


if __name__ == "__main__":
    main()
