#!/usr/bin/env python
"""A miniature of the paper's evaluation: all protocols, one shared workload.

Prints per-protocol mean total transmissions, per-destination hop counts and
energy for growing group sizes — a desk-scale rendition of Figures 11/12/14.
For the full regeneration use the CLI::

    gmp-repro all --scale quick

Run with::

    python examples/protocol_comparison.py
"""

import numpy as np

from repro import (
    GMPProtocol,
    GRDProtocol,
    LGKProtocol,
    LGSProtocol,
    PBMProtocol,
    RadioConfig,
    SMTProtocol,
    build_network,
    uniform_random_topology,
)
from repro.engine import EngineConfig, run_task
from repro.sessions.workload import generate_tasks


def main() -> None:
    rng = np.random.default_rng(7)
    points = uniform_random_topology(600, 1000.0, 1000.0, rng)
    network = build_network(points, RadioConfig())
    config = EngineConfig(max_path_length=100)
    protocols = [
        GMPProtocol(),
        GMPProtocol(radio_aware=False),
        LGSProtocol(),
        LGKProtocol(2),
        PBMProtocol(lam=0.3),
        SMTProtocol(),
        GRDProtocol(),
    ]

    for group_size in (4, 10, 18):
        tasks = generate_tasks(
            network, 15, group_size, np.random.default_rng(100 + group_size)
        )
        print(f"\n=== k = {group_size} destinations "
              f"(mean over {len(tasks)} tasks) ===")
        print(f"{'protocol':>10} {'total tx':>9} {'hops/dest':>10} "
              f"{'energy mJ':>10} {'ok':>4}")
        for protocol in protocols:
            results = [
                run_task(network, protocol, t.source_id, t.destination_ids,
                         config=config, task_id=t.task_id)
                for t in tasks
            ]
            mean_tx = sum(r.transmissions for r in results) / len(results)
            mean_pd = sum(
                r.average_per_destination_hops for r in results
            ) / len(results)
            mean_mj = 1000 * sum(r.energy_joules for r in results) / len(results)
            ok = sum(r.success for r in results)
            print(f"{protocol.name:>10} {mean_tx:9.1f} {mean_pd:10.2f} "
                  f"{mean_mj:10.2f} {ok:3d}/{len(tasks)}")

    print("\nReadings: GMP should lead on total transmissions and energy; "
          "GRD lower-bounds hops/dest; LGS pays the sequential-visit "
          "penalty on hops/dest.")


if __name__ == "__main__":
    main()
