#!/usr/bin/env python
"""Beyond the paper: how the protocols degrade under loss and crashes.

The paper's evaluation assumes a loss-free MAC and permanently live nodes.
Real deployments drop frames and lose nodes, so this study injects both:

* per-copy link loss at increasing rates,
* silently crashed nodes (stale neighbor tables: packets routed into them
  vanish),

with blind flooding as the redundancy reference — it tolerates everything
and pays for it in energy.

Run with::

    python examples/robustness_study.py
"""

from repro.experiments.config import PaperConfig
from repro.experiments.report import render_figure_table
from repro.experiments.robustness import (
    RobustnessScale,
    link_loss_sweep,
    node_failure_sweep,
)


def main() -> None:
    config = PaperConfig(node_count=400)
    scale = RobustnessScale(
        network_count=2,
        tasks_per_network=12,
        group_size=8,
        loss_rates=(0.0, 0.1, 0.25, 0.4),
        failed_fractions=(0.0, 0.05, 0.15),
    )

    print("injecting per-copy link loss ...")
    delivery, energy = link_loss_sweep(config, scale)
    print(render_figure_table(delivery, precision=3))
    print()
    print(render_figure_table(energy, precision=2))

    print("\ninjecting silent node crashes ...")
    crash = node_failure_sweep(config, scale)
    print(render_figure_table(crash, precision=3))

    print(
        "\nReadings: every single-path delivery dies with one lost copy, so "
        "GMP/LGS delivery drops roughly like (1-p)^hops; flooding's "
        "redundancy keeps it near 1.0 but at an order of magnitude more "
        "energy.  This is the price/robustness trade the paper's stateless "
        "protocols sit on the cheap side of."
    )


if __name__ == "__main__":
    main()
