#!/usr/bin/env python
"""Perimeter-mode recovery around a coverage hole (paper Section 4.1).

Deploys sensors everywhere except a large circular void (a lake, a burnt
patch, a jammed region), then multicasts across it.  Greedy-only protocols
(LGS, GRD) lose the far-side destinations; GMP walks the void boundary with
the right-hand rule and delivers.

Run with::

    python examples/void_recovery.py
"""

import numpy as np

from repro import (
    EngineConfig,
    GMPProtocol,
    GRDProtocol,
    LGSProtocol,
    PBMProtocol,
    RadioConfig,
    build_network,
    topology_with_voids,
)
from repro.engine import run_task
from repro.geometry import Point, distance
from repro.visualization.ascii_art import render_network


def main() -> None:
    rng = np.random.default_rng(99)
    # A concave obstacle: a wall of dead ground with two arms opening west,
    # forming a pocket.  Eastbound greedy forwarding walks into the pocket
    # and hits a local minimum — the make-or-break case for void recovery.
    voids = [
        (Point(600.0, 350.0), 140.0),
        (Point(600.0, 500.0), 140.0),
        (Point(600.0, 650.0), 140.0),
        (Point(430.0, 260.0), 120.0),
        (Point(430.0, 740.0), 120.0),
    ]
    points = topology_with_voids(600, 1000.0, 1000.0, voids, rng)
    network = build_network(points, RadioConfig())
    print(f"{network.node_count} nodes around a concave coverage hole, "
          f"connected: {network.is_connected()}")

    source = network.closest_node_to(Point(150.0, 500.0))
    destinations = []
    for target in (Point(900, 420), Point(900, 500), Point(920, 580), Point(850, 650)):
        node = network.closest_node_to(target)
        if node not in destinations and node != source:
            destinations.append(node)

    highlights = {source: "S"}
    highlights.update({d: "D" for d in destinations})
    print(render_network(network, width_chars=76, height_chars=20,
                         highlights=highlights))

    config = EngineConfig(max_path_length=100)
    print(f"multicast from S (node {source}) to D nodes {destinations}:\n")
    for protocol in (GMPProtocol(), PBMProtocol(), LGSProtocol(), GRDProtocol()):
        result = run_task(network, protocol, source, destinations,
                          config=config)
        delivered = len(result.delivered_hops)
        status = "all delivered" if result.success else (
            f"FAILED for {list(result.failed_destinations)}"
        )
        print(f"  {protocol.name:>10}: {delivered}/{len(destinations)} "
              f"({status}), {result.transmissions} transmissions")

    print("\nGMP and PBM recover via perimeter mode; LGS and GRD have no "
          "recovery and lose whatever greedy forwarding cannot reach.")


if __name__ == "__main__":
    main()
