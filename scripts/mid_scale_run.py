#!/usr/bin/env python
"""Mid-scale figure regeneration (between `quick` and `paper` scales).

Produces the numbers quoted in EXPERIMENTS.md: 4 networks x 50 tasks per
point, the paper's full k and lambda grids.  Writes `results_mid.json`.

Run with::

    python scripts/mid_scale_run.py [--workers N]

``--workers`` fans the sweeps out over a process pool; the written
``results_mid.json`` is byte-identical for any worker count (the parallel
engine merges deterministic work units in canonical order).
"""

import argparse
import json

from repro.experiments.config import ExperimentScale, PaperConfig
from repro.experiments.figures import (
    figure11,
    figure12,
    figure14,
    figure15,
    run_group_size_sweep,
)
from repro.experiments.report import (
    render_confidence_table,
    render_figure_table,
    render_ratio_summary,
)

MID_SCALE = ExperimentScale(
    name="mid",
    network_count=4,
    tasks_per_network=50,
    group_sizes=(3, 5, 10, 15, 20, 25),
    lambdas=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6),
    density_node_counts=(150, 200, 250, 300, 400, 600, 1000),
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process count for the sweeps (default: 1, serial)",
    )
    args = parser.parse_args()
    config = PaperConfig()
    sweep = run_group_size_sweep(config, MID_SCALE, workers=args.workers)
    payload = {}
    for figure_fn in (figure11, figure12, figure14):
        figure = figure_fn(sweep)
        print(render_figure_table(figure))
        if figure.figure_id != "figure12":
            print(render_ratio_summary(figure, "GMP", ["PBM", "LGS", "SMT", "GMPnr"]))
        print()
        payload[figure.figure_id] = figure.to_json_dict()
    print(
        render_confidence_table(
            sweep, lambda r: float(r.transmissions), "total hops"
        )
    )
    print()
    density_figure = figure15(config, MID_SCALE, workers=args.workers)
    print(render_figure_table(density_figure, precision=1))
    payload["figure15"] = density_figure.to_json_dict()
    with open("results_mid.json", "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


if __name__ == "__main__":
    main()
