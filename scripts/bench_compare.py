#!/usr/bin/env python
"""Compare a fresh pytest-benchmark JSON export against the committed baseline.

Guards the perf work against silent regressions::

    PYTHONPATH=src python -m pytest benchmarks/test_micro.py \
        --benchmark-only --benchmark-json=bench_fresh.json
    python scripts/bench_compare.py bench_fresh.json

Per benchmark the *median* runtimes are compared (medians are robust to the
scheduler hiccups that wreck means on shared CI boxes).  A benchmark fails
when ``fresh_median > max_ratio * baseline_median``; benchmarks missing from
either side are reported as added/removed and fail too, so renames must
update the baseline deliberately (``--allow-new`` tolerates freshly added
benchmarks that have no baseline entry yet).  Default tolerance is
+/-30% (``--max-ratio 1.3``); CI's perf-smoke job runs with ``--max-ratio
2.0`` because hosted runners vary in absolute speed.

A benchmark can declare itself *higher-is-better* by setting
``benchmark.extra_info["direction"] = "maximize"`` (and optionally
``extra_info["value"]`` — e.g. sessions/sec — which then replaces the median
as the compared figure).  Maximize-direction benchmarks gate on *downward*
regressions instead: they fail when ``fresh < baseline / max_ratio``.  The
two sides of a comparison must agree on the direction; a mismatch fails
(it means the benchmark's semantics changed without a baseline refresh).

Regenerate the baseline (after intentional perf changes) with::

    PYTHONPATH=src python -m pytest benchmarks/test_micro.py \
        --benchmark-only --benchmark-json=BENCH_micro.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, NamedTuple


class BenchEntry(NamedTuple):
    """One benchmark's compared figure and its improvement direction."""

    value: float
    direction: str  # "minimize" (runtime) or "maximize" (throughput)


def load_entries(path: str) -> Dict[str, BenchEntry]:
    """``{benchmark fullname: entry}`` from a pytest-benchmark JSON export.

    The compared value is the median runtime unless the benchmark published
    an explicit ``extra_info["value"]`` (throughput benches do, so the gate
    tracks sessions/sec rather than the meaningless wrapper runtime).
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    entries = {}
    for bench in payload["benchmarks"]:
        extra = bench.get("extra_info") or {}
        direction = str(extra.get("direction", "minimize"))
        if direction not in ("minimize", "maximize"):
            raise ValueError(
                f"benchmark {bench['fullname']!r} has unknown direction "
                f"{direction!r} (expected 'minimize' or 'maximize')"
            )
        value = float(extra.get("value", bench["stats"]["median"]))
        entries[bench["fullname"]] = BenchEntry(value=value, direction=direction)
    return entries


def load_medians(path: str) -> Dict[str, float]:
    """``{benchmark fullname: compared value}`` — legacy flat view."""
    return {name: entry.value for name, entry in load_entries(path).items()}


def entry_fails(base: BenchEntry, fresh: BenchEntry, max_ratio: float) -> bool:
    """Whether ``fresh`` regressed past ``max_ratio`` relative to ``base``.

    Runtime (minimize) benches fail on upward drift, throughput (maximize)
    benches on downward drift — the same tolerance band, mirrored.
    """
    if base.direction != fresh.direction:
        return True
    if base.value <= 0.0:
        return fresh.direction == "maximize" and fresh.value < base.value
    ratio = fresh.value / base.value
    if fresh.direction == "maximize":
        return ratio < 1.0 / max_ratio
    return ratio > max_ratio


def compare(
    baseline: Dict[str, BenchEntry],
    fresh: Dict[str, BenchEntry],
    max_ratio: float,
    allow_new: bool = False,
) -> int:
    """Print a comparison table; return the number of failures.

    Benchmarks present in both files are compared by value ratio with the
    per-bench direction (see :func:`entry_fails`).  The symmetric difference
    is reported explicitly: *removed* benchmarks (in the baseline but not the
    fresh run) always fail, so renames and deletions must update the baseline
    deliberately; *added* benchmarks (fresh but not in the baseline) fail too
    unless ``allow_new`` is set — the escape hatch for landing new benchmarks
    before their baseline entry exists.
    """
    failures = 0
    names = set(baseline) | set(fresh)
    width = max((len(name) for name in names), default=10)
    print(
        f"{'benchmark'.ljust(width)}  {'dir':>3}  {'base':>10}  {'fresh':>10}"
        f"  {'ratio':>6}"
    )
    for name in sorted(set(baseline) & set(fresh)):
        base = baseline[name]
        new = fresh[name]
        ratio = new.value / base.value if base.value > 0 else float("inf")
        if base.direction != new.direction:
            verdict = "  DIRECTION CHANGED"
        elif entry_fails(base, new, max_ratio):
            verdict = "  REGRESSION"
        else:
            verdict = ""
        if verdict:
            failures += 1
        arrow = "max" if new.direction == "maximize" else "min"
        print(
            f"{name.ljust(width)}  {arrow:>3}  {base.value:10.2e}"
            f"  {new.value:10.2e}  {ratio:5.2f}x{verdict}"
        )
    removed = sorted(set(baseline) - set(fresh))
    added = sorted(set(fresh) - set(baseline))
    if removed:
        print(f"\nremoved from fresh run ({len(removed)}) — regenerate the baseline:")
        for name in removed:
            failures += 1
            print(
                f"  {name.ljust(width)}  {baseline[name].value:10.2e}"
                f"  {'MISSING':>10}"
            )
    if added:
        status = "allowed" if allow_new else "NOT in baseline"
        print(f"\nadded since baseline ({len(added)}, {status}):")
        for name in added:
            if not allow_new:
                failures += 1
            print(f"  {name.ljust(width)}  {'(new)':>10}  {fresh[name].value:10.2e}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when benchmark medians regress past the baseline."
    )
    parser.add_argument("fresh", help="fresh pytest-benchmark JSON export")
    parser.add_argument(
        "--baseline",
        default="BENCH_micro.json",
        help="committed baseline JSON (default: BENCH_micro.json)",
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=1.3,
        help="maximum allowed fresh/baseline regression ratio (default: 1.3)",
    )
    parser.add_argument(
        "--allow-new",
        action="store_true",
        help="report benchmarks missing from the baseline instead of failing",
    )
    args = parser.parse_args(argv)
    baseline = load_entries(args.baseline)
    fresh = load_entries(args.fresh)
    failures = compare(baseline, fresh, args.max_ratio, allow_new=args.allow_new)
    if failures:
        print(
            f"\n{failures} benchmark(s) regressed past {args.max_ratio:.2f}x "
            f"(or went missing)",
            file=sys.stderr,
        )
        return 1
    print(f"\nall benchmarks within {args.max_ratio:.2f}x of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
