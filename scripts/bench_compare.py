#!/usr/bin/env python
"""Compare a fresh pytest-benchmark JSON export against the committed baseline.

Guards the perf work against silent regressions::

    PYTHONPATH=src python -m pytest benchmarks/test_micro.py \
        --benchmark-only --benchmark-json=bench_fresh.json
    python scripts/bench_compare.py bench_fresh.json

Per benchmark the *median* runtimes are compared (medians are robust to the
scheduler hiccups that wreck means on shared CI boxes).  A benchmark fails
when ``fresh_median > max_ratio * baseline_median``; benchmarks missing from
either side are reported as added/removed and fail too, so renames must
update the baseline deliberately (``--allow-new`` tolerates freshly added
benchmarks that have no baseline entry yet).  Default tolerance is
+/-30% (``--max-ratio 1.3``); CI's perf-smoke job runs with ``--max-ratio
2.0`` because hosted runners vary in absolute speed.

Regenerate the baseline (after intentional perf changes) with::

    PYTHONPATH=src python -m pytest benchmarks/test_micro.py \
        --benchmark-only --benchmark-json=BENCH_micro.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict


def load_medians(path: str) -> Dict[str, float]:
    """``{benchmark fullname: median seconds}`` from a pytest-benchmark JSON."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    medians = {}
    for bench in payload["benchmarks"]:
        medians[bench["fullname"]] = float(bench["stats"]["median"])
    return medians


def compare(
    baseline: Dict[str, float],
    fresh: Dict[str, float],
    max_ratio: float,
    allow_new: bool = False,
) -> int:
    """Print a comparison table; return the number of failures.

    Benchmarks present in both files are compared by median ratio.  The
    symmetric difference is reported explicitly: *removed* benchmarks (in the
    baseline but not the fresh run) always fail, so renames and deletions
    must update the baseline deliberately; *added* benchmarks (fresh but not
    in the baseline) fail too unless ``allow_new`` is set — the escape hatch
    for landing new benchmarks before their baseline entry exists.
    """
    failures = 0
    names = set(baseline) | set(fresh)
    width = max((len(name) for name in names), default=10)
    print(f"{'benchmark'.ljust(width)}  {'base':>10}  {'fresh':>10}  {'ratio':>6}")
    for name in sorted(set(baseline) & set(fresh)):
        base_median = baseline[name]
        fresh_median = fresh[name]
        ratio = fresh_median / base_median if base_median > 0 else float("inf")
        verdict = "" if ratio <= max_ratio else "  REGRESSION"
        if verdict:
            failures += 1
        print(
            f"{name.ljust(width)}  {base_median:10.2e}  {fresh_median:10.2e}"
            f"  {ratio:5.2f}x{verdict}"
        )
    removed = sorted(set(baseline) - set(fresh))
    added = sorted(set(fresh) - set(baseline))
    if removed:
        print(f"\nremoved from fresh run ({len(removed)}) — regenerate the baseline:")
        for name in removed:
            failures += 1
            print(f"  {name.ljust(width)}  {baseline[name]:10.2e}  {'MISSING':>10}")
    if added:
        status = "allowed" if allow_new else "NOT in baseline"
        print(f"\nadded since baseline ({len(added)}, {status}):")
        for name in added:
            if not allow_new:
                failures += 1
            print(f"  {name.ljust(width)}  {'(new)':>10}  {fresh[name]:10.2e}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when benchmark medians regress past the baseline."
    )
    parser.add_argument("fresh", help="fresh pytest-benchmark JSON export")
    parser.add_argument(
        "--baseline",
        default="BENCH_micro.json",
        help="committed baseline JSON (default: BENCH_micro.json)",
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=1.3,
        help="maximum allowed fresh/baseline median ratio (default: 1.3)",
    )
    parser.add_argument(
        "--allow-new",
        action="store_true",
        help="report benchmarks missing from the baseline instead of failing",
    )
    args = parser.parse_args(argv)
    baseline = load_medians(args.baseline)
    fresh = load_medians(args.fresh)
    failures = compare(baseline, fresh, args.max_ratio, allow_new=args.allow_new)
    if failures:
        print(
            f"\n{failures} benchmark(s) regressed past {args.max_ratio:.2f}x "
            f"(or went missing)",
            file=sys.stderr,
        )
        return 1
    print(f"\nall benchmarks within {args.max_ratio:.2f}x of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
