#!/usr/bin/env python
"""Ratchet gate for reprolint: no new findings, ever; fewer is locked in.

CI does not simply run ``repro lint`` — it diffs the current findings
against the committed baseline (``lint_baseline.json``)::

    PYTHONPATH=src python scripts/lint_ratchet.py

* a finding whose fingerprint is not in the baseline **fails** the gate —
  new debt needs a fix or a justified ``# reprolint: disable=`` comment;
* a baseline entry that no longer fires **fails** too, with instructions
  to re-run with ``--update`` — the ratchet only turns one way, and it
  turns deliberately;
* matching states pass.

Fingerprints are ``sha256(path|rule|message)`` prefixes (no line numbers),
so moving code around does not churn the baseline; repeated identical
findings in one file are tracked by count.  The shipped baseline is empty:
the tree stands on fixes, not on inherited debt.

Regenerate after intentional changes with::

    PYTHONPATH=src python scripts/lint_ratchet.py --update

``--sarif PATH`` additionally writes the full report as SARIF 2.1.0 for
GitHub code scanning.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

try:
    from repro.analysis import analyze_paths, default_registry, report_to_sarif
except ImportError:  # running from a checkout without the package installed
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    )
    from repro.analysis import analyze_paths, default_registry, report_to_sarif

DEFAULT_PATHS = ("src", "tests", "scripts", "benchmarks")
DEFAULT_BASELINE = "lint_baseline.json"


def collect_findings(paths: List[str]) -> Dict[str, Dict[str, object]]:
    """``{fingerprint: {count, rule_id, path, message}}`` for the tree."""
    report = analyze_paths(paths, registry=default_registry())
    collected: Dict[str, Dict[str, object]] = {}
    for finding in report.sorted_findings():
        entry = collected.setdefault(
            finding.fingerprint(),
            {
                "count": 0,
                "rule_id": finding.rule_id,
                "path": finding.path,
                "message": finding.message,
            },
        )
        entry["count"] = int(entry["count"]) + 1
    return collected


def load_baseline(path: str) -> Optional[Dict[str, Dict[str, object]]]:
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return dict(payload.get("findings", {}))


def write_baseline(path: str, findings: Dict[str, Dict[str, object]]) -> None:
    payload = {
        "comment": (
            "reprolint ratchet baseline — regenerate with "
            "scripts/lint_ratchet.py --update"
        ),
        "findings": {key: findings[key] for key in sorted(findings)},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def diff(
    baseline: Dict[str, Dict[str, object]],
    current: Dict[str, Dict[str, object]],
) -> int:
    """Print the ratchet diff; return the number of violations."""
    violations = 0
    for fingerprint in sorted(set(current) - set(baseline)):
        entry = current[fingerprint]
        violations += 1
        print(
            f"NEW {entry['rule_id']} {entry['path']}: {entry['message']} "
            f"[{fingerprint}]"
        )
    for fingerprint in sorted(set(current) & set(baseline)):
        grown = int(current[fingerprint]["count"]) - int(
            baseline[fingerprint]["count"]
        )
        if grown > 0:
            entry = current[fingerprint]
            violations += 1
            print(
                f"GREW (+{grown}) {entry['rule_id']} {entry['path']}: "
                f"{entry['message']} [{fingerprint}]"
            )
    improved = sorted(set(baseline) - set(current)) + sorted(
        fp
        for fp in set(current) & set(baseline)
        if int(current[fp]["count"]) < int(baseline[fp]["count"])
    )
    for fingerprint in improved:
        entry = baseline[fingerprint]
        violations += 1
        print(
            f"FIXED (ratchet down: re-run with --update) {entry['rule_id']} "
            f"{entry['path']}: {entry['message']} [{fingerprint}]"
        )
    return violations


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff reprolint findings against the committed baseline."
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"trees to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline JSON (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--sarif",
        default=None,
        help="also write the current report as SARIF 2.1.0 to this path",
    )
    args = parser.parse_args(argv)

    existing = [path for path in args.paths if os.path.exists(path)]
    current = collect_findings(existing)

    if args.sarif:
        report = analyze_paths(existing, registry=default_registry())
        with open(args.sarif, "w", encoding="utf-8") as handle:
            json.dump(report_to_sarif(report), handle, indent=2, sort_keys=True)
            handle.write("\n")

    if args.update:
        write_baseline(args.baseline, current)
        print(f"baseline updated: {len(current)} fingerprint(s)")
        return 0

    baseline = load_baseline(args.baseline)
    if baseline is None:
        print(
            f"error: baseline {args.baseline!r} not found "
            "(run with --update to create it)",
            file=sys.stderr,
        )
        return 2

    violations = diff(baseline, current)
    if violations:
        print(
            f"\nratchet gate failed: {violations} difference(s) from baseline",
            file=sys.stderr,
        )
        return 1
    print(
        f"ratchet gate passed: {len(current)} finding(s), "
        f"all matching the baseline"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
