"""The findings model of reprolint.

A :class:`Finding` is one rule violation at one source location, carrying
everything the three front ends (CLI, pytest gate, CI annotation) need to
render it: the rule id, a severity, ``path:line:col``, a human message and a
concrete fix hint.  Findings are value objects with a total order so reports
are stable regardless of rule execution order.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Dict, Tuple, Union


class Severity(enum.Enum):
    """How bad a finding is.

    Both levels fail the lint gate; the distinction exists for reporting
    (CI renders errors and warnings differently) and for future knobs.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    fix_hint: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def render(self) -> str:
        """``path:line:col: R00X [severity] message (fix: ...)``."""
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity.value}] {self.message}"
        )
        if self.fix_hint:
            text += f" (fix: {self.fix_hint})"
        return text

    def fingerprint(self) -> str:
        """Stable identity for the ratchet baseline.

        Deliberately line-free: moving code around must not churn the
        baseline, only genuinely new findings (path + rule + message) may.
        """
        payload = f"{self.path}|{self.rule_id}|{self.message}".encode("utf-8")
        return hashlib.sha256(payload).hexdigest()[:16]

    def to_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-ready mapping, one key per field plus the fingerprint."""
        return {
            "rule_id": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fix_hint": self.fix_hint,
            "fingerprint": self.fingerprint(),
        }
