"""The whole-program model: modules, dotted names, and the import graph.

PR 1's reprolint looked at one module at a time, which is enough for the
syntactic rules (R001–R010) but blind to anything that flows *across*
modules: a wall-clock read three calls away from a digest, a mutation whose
cache invalidation lives in a different class, an import cycle.  This module
builds the shared substrate the graph-aware rules stand on:

* :class:`ProjectModule` — one parsed file with its dotted module name,
  suppression index and decorated-def line aliases;
* :class:`Project` — every module of one lint run, loaded in a single
  deterministic parse pass, plus the *import graph* (module-level edges
  kept apart from lazy function-level / ``TYPE_CHECKING`` imports, which
  are the sanctioned cycle-breaking idiom and therefore never count as
  cycle edges).

The call graph and symbol table live in :mod:`repro.analysis.callgraph`
and are built lazily from a :class:`Project` (one extra walk, cached).

Everything here is deterministic: files are visited in sorted order,
dictionaries are keyed by path or dotted name (never object identity), and
no step depends on hash order.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.analysis.suppressions import SuppressionIndex, build_suppression_index

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.callgraph import CallGraph


def _normalize(path: str) -> str:
    return path.replace(os.sep, "/").replace("\\", "/")


def module_name_for(path: str, root: str = "") -> str:
    """Dotted module name of ``path`` relative to ``root``.

    ``src/`` layout prefixes are dropped; a root directory that is itself a
    package (``tests/``, ``benchmarks/``) contributes its basename, so the
    computed names match the import system's view of the repo:
    ``src/repro/network/graph.py`` → ``repro.network.graph`` and
    ``tests/analysis/test_rules.py`` → ``tests.analysis.test_rules``.
    """
    norm = _normalize(path)
    if root:
        rel = _normalize(os.path.relpath(path, root))
        root_norm = _normalize(root).rstrip("/")
        if os.path.isdir(root) and os.path.exists(os.path.join(root, "__init__.py")):
            rel = f"{os.path.basename(root_norm)}/{rel}"
        norm = rel
    parts = [p for p in norm.split("/") if p not in ("", ".", "..")]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    # Drop src-layout prefixes so names line up with import names.
    while parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else "module"


@dataclass(frozen=True)
class ImportEdge:
    """One import statement, resolved to a dotted target module."""

    target: str
    line: int
    #: Lazy imports (inside a function body or a ``TYPE_CHECKING`` guard)
    #: never participate in cycle detection — deferring an import is the
    #: sanctioned way to break a cycle.
    lazy: bool


def _is_type_checking_guard(node: ast.If) -> bool:
    test = node.test
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


class ProjectModule:
    """One parsed source file plus its per-module derived structures."""

    def __init__(self, path: str, name: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.name = name
        self.source = source
        self.tree = tree
        self.suppressions: SuppressionIndex = build_suppression_index(source)
        #: def/class line → decorator lines, so a suppression comment on a
        #: decorator line also covers findings anchored at the decorated def.
        self.line_aliases: Dict[int, Tuple[int, ...]] = self._build_line_aliases(tree)
        self.import_edges: Tuple[ImportEdge, ...] = tuple(
            self._collect_imports(tree, lazy=False)
        )
        #: Module-level name bindings from imports: alias → dotted target.
        self.import_bindings: Dict[str, str] = self._build_bindings(tree)

    @staticmethod
    def _build_line_aliases(tree: ast.Module) -> Dict[int, Tuple[int, ...]]:
        aliases: Dict[int, Tuple[int, ...]] = {}
        for node in ast.walk(tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ) and node.decorator_list:
                aliases[node.lineno] = tuple(
                    sorted({d.lineno for d in node.decorator_list})
                )
        return aliases

    def _package(self) -> str:
        """The package this module lives in (itself, for ``__init__``)."""
        if self.path.replace("\\", "/").endswith("/__init__.py"):
            return self.name
        return self.name.rsplit(".", 1)[0] if "." in self.name else ""

    def _resolve_from(self, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        base = self._package()
        for _ in range(node.level - 1):
            if "." not in base:
                base = ""
                break
            base = base.rsplit(".", 1)[0]
        if node.module:
            return f"{base}.{node.module}" if base else node.module
        return base or None

    def _collect_imports(self, node: ast.AST, lazy: bool) -> Iterable[ImportEdge]:
        for child in ast.iter_child_nodes(node):
            child_lazy = lazy
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                child_lazy = True
            elif isinstance(child, ast.If) and _is_type_checking_guard(child):
                child_lazy = True
            if isinstance(child, ast.Import):
                for alias in child.names:
                    yield ImportEdge(alias.name, child.lineno, lazy)
            elif isinstance(child, ast.ImportFrom):
                target = self._resolve_from(child)
                if target:
                    yield ImportEdge(target, child.lineno, lazy)
            else:
                yield from self._collect_imports(child, child_lazy)

    def _build_bindings(self, tree: ast.Module) -> Dict[str, str]:
        bindings: Dict[str, str] = {}
        collect_import_bindings(tree.body, self, bindings)
        return bindings


def collect_import_bindings(
    statements: Iterable[ast.stmt],
    module: "ProjectModule",
    bindings: Dict[str, str],
) -> None:
    """Record alias → dotted-target bindings from import statements.

    Walks compound statements (``if``/``try``) but not into nested function
    or class scopes; used both for module-level bindings and, by the call
    graph, for function-local lazy imports.
    """
    for stmt in statements:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                name = alias.asname or alias.name.split(".")[0]
                bindings[name] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(stmt, ast.ImportFrom):
            target = module._resolve_from(stmt)
            if target is None:
                continue
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                bindings[alias.asname or alias.name] = f"{target}.{alias.name}"
        elif isinstance(stmt, (ast.If, ast.Try, ast.With, ast.For, ast.While)):
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.stmt):
                    collect_import_bindings([sub], module, bindings)


@dataclass
class Project:
    """Every module of one lint run, plus lazily built whole-program views."""

    modules: List[ProjectModule] = field(default_factory=list)
    #: Files that failed to parse: path → (line, col, message).
    parse_errors: Dict[str, Tuple[int, int, str]] = field(default_factory=dict)
    _by_name: Dict[str, ProjectModule] = field(default_factory=dict)
    _by_path: Dict[str, ProjectModule] = field(default_factory=dict)
    _callgraph: Optional["CallGraph"] = None

    def add_source(self, path: str, source: str, root: str = "") -> Optional[ProjectModule]:
        """Parse and register one module; record a parse error on failure."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.parse_errors[path] = (
                exc.lineno or 1,
                (exc.offset or 1) - 1,
                exc.msg or "invalid syntax",
            )
            return None
        module = ProjectModule(path, module_name_for(path, root), source, tree)
        self.modules.append(module)
        self._by_name.setdefault(module.name, module)
        self._by_path[path] = module
        self._callgraph = None
        return module

    @classmethod
    def from_sources(
        cls, sources: Mapping[str, str], root: str = ""
    ) -> "Project":
        """Build a project from an in-memory ``{path: source}`` mapping."""
        project = cls()
        for path in sorted(sources):
            project.add_source(path, sources[path], root)
        return project

    def module_named(self, name: str) -> Optional[ProjectModule]:
        return self._by_name.get(name)

    def module_at(self, path: str) -> Optional[ProjectModule]:
        return self._by_path.get(path)

    @property
    def callgraph(self) -> "CallGraph":
        """The symbol table + approximate call graph (built once, cached)."""
        if self._callgraph is None:
            from repro.analysis.callgraph import CallGraph

            self._callgraph = CallGraph.build(self)
        return self._callgraph

    # ------------------------------------------------------------------
    # Import graph
    # ------------------------------------------------------------------

    def internal_import_graph(self, include_lazy: bool = False) -> Dict[str, List[str]]:
        """Adjacency of project-internal imports, sorted for determinism.

        An edge ``a → b`` means module ``a`` imports module ``b`` (or a
        symbol from it) at module level; lazy edges are included only on
        request.  Targets naming a symbol inside a module (``from m import
        f``) resolve to the defining module ``m``.
        """
        graph: Dict[str, List[str]] = {}
        for module in sorted(self.modules, key=lambda m: m.name):
            targets: List[str] = []
            for edge in module.import_edges:
                if edge.lazy and not include_lazy:
                    continue
                resolved = self._resolve_to_module(edge.target)
                if resolved is not None and resolved != module.name:
                    targets.append(resolved)
            graph[module.name] = sorted(set(targets))
        return graph

    def _resolve_to_module(self, dotted: str) -> Optional[str]:
        """The project module a dotted import target lands in, if any."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in self._by_name:
                return candidate
        return None

    def import_cycles(self) -> List[Tuple[str, ...]]:
        """Strongly connected components with ≥ 2 modules (or a self-loop).

        Iterative Tarjan over the sorted eager import graph; each cycle is
        returned as the tuple of its member module names, sorted, and the
        cycle list itself is sorted — byte-stable output for the ratchet.
        """
        graph = self.internal_import_graph()
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Dict[str, bool] = {}
        stack: List[str] = []
        counter = [0]
        sccs: List[Tuple[str, ...]] = []

        def strongconnect(root: str) -> None:
            work: List[Tuple[str, int]] = [(root, 0)]
            while work:
                node, child_index = work.pop()
                if child_index == 0:
                    index[node] = counter[0]
                    lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack[node] = True
                recurse = False
                children = graph.get(node, [])
                for position in range(child_index, len(children)):
                    child = children[position]
                    if child not in index:
                        work.append((node, position + 1))
                        work.append((child, 0))
                        recurse = True
                        break
                    if on_stack.get(child, False):
                        lowlink[node] = min(lowlink[node], index[child])
                if recurse:
                    continue
                if lowlink[node] == index[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1 or node in graph.get(node, []):
                        sccs.append(tuple(sorted(component)))
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])

        for name in sorted(graph):
            if name not in index:
                strongconnect(name)
        return sorted(sccs)
