"""The built-in reprolint rules (R001–R010).

Each rule targets a failure mode this reproduction has actually hit (or is
one refactor away from hitting): nondeterminism that breaks the
bit-reproducibility of the paper's 10-networks × 100-tasks evaluation, and
drift from the :class:`~repro.routing.base.RoutingProtocol` contract the
engine relies on.  See ``docs/ANALYSIS.md`` for the narrative rule guide.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Type, Union

from repro.analysis.engine import ModuleContext, Rule
from repro.analysis.findings import Finding, Severity

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]
_FUNCTION_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_TYPES = _FUNCTION_TYPES + (ast.ClassDef,)


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _name_parts(node: ast.expr) -> Tuple[str, ...]:
    name = dotted_name(node)
    return tuple(name.split(".")) if name else ()


def _scope_statements(scope: ast.AST) -> Iterator[ast.AST]:
    """Nodes of ``scope`` excluding nested function/class scopes."""
    for child in ast.iter_child_nodes(scope):
        if isinstance(child, _SCOPE_TYPES):
            continue
        yield child
        yield from _scope_statements(child)


def _scopes(tree: ast.AST) -> Iterator[ast.AST]:
    """The module scope and every (possibly nested) function scope."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, _FUNCTION_TYPES):
            yield node


class SeededRandomnessRule(Rule):
    """R001 — all randomness must flow through ``simkit.rng``."""

    rule_id = "R001"
    severity = Severity.ERROR
    summary = (
        "no stdlib random / numpy global RNG outside simkit.rng; "
        "derive seeds with derive_seed and named streams"
    )
    fix_hint = (
        "use RandomStreams(master_seed).stream(...) or "
        "np.random.default_rng(derive_seed(...))"
    )

    #: (second-to-last, last) dotted-name parts of global-RNG calls.
    _FORBIDDEN_CALLS = frozenset(
        ("random", tail)
        for tail in (
            "seed",
            "RandomState",
            "rand",
            "randn",
            "randint",
            "random",
            "random_sample",
            "choice",
            "shuffle",
            "permutation",
            "uniform",
            "normal",
        )
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.in_module(ctx.config.rng_modules):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            ctx, node, "import of the global stdlib RNG module 'random'"
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield self.finding(
                        ctx, node, "import from the global stdlib RNG module 'random'"
                    )
            elif isinstance(node, ast.Call):
                parts = _name_parts(node.func)
                if len(parts) < 2:
                    continue
                tail = (parts[-2], parts[-1])
                if tail in self._FORBIDDEN_CALLS:
                    yield self.finding(
                        ctx,
                        node,
                        f"call to the global RNG API {'.'.join(parts)}()",
                    )
                elif tail == ("random", "default_rng") and not node.args and not node.keywords:
                    yield self.finding(
                        ctx,
                        node,
                        "default_rng() without a seed draws OS entropy; "
                        "runs become unreproducible",
                    )


class WallClockRule(Rule):
    """R002 — simulation code must not read the wall clock."""

    rule_id = "R002"
    severity = Severity.ERROR
    summary = "no wall-clock reads (time.time, datetime.now, ...) in simulation code"
    fix_hint = "thread simulated time (Simulator.now) or accept a timestamp parameter"

    _FORBIDDEN = frozenset(
        [
            ("time", "time"),
            ("time", "time_ns"),
            ("time", "monotonic"),
            ("time", "monotonic_ns"),
            ("time", "perf_counter"),
            ("time", "perf_counter_ns"),
            ("time", "process_time"),
            ("datetime", "now"),
            ("datetime", "utcnow"),
            ("datetime", "today"),
            ("date", "today"),
        ]
    )
    #: Forbidden only when called without an explicit time argument.
    _FORBIDDEN_NO_ARG = frozenset(
        [("time", "strftime"), ("time", "localtime"), ("time", "gmtime")]
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            parts = _name_parts(node.func)
            if len(parts) < 2:
                continue
            tail = (parts[-2], parts[-1])
            name = ".".join(parts)
            if tail in self._FORBIDDEN:
                yield self.finding(ctx, node, f"wall-clock read via {name}()")
            elif tail in self._FORBIDDEN_NO_ARG and len(node.args) < 2 and not node.keywords:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() without an explicit time argument reads the wall clock",
                )


class OrderedIterationRule(Rule):
    """R003 — decision-layer iteration over sets must be sorted."""

    rule_id = "R003"
    severity = Severity.ERROR
    summary = (
        "no iteration over set/dict.keys() in routing/steiner/engine code "
        "without an enclosing sorted(...)"
    )
    fix_hint = "wrap the iterable in sorted(...) to pin a hash-seed-independent order"

    _SET_BUILTINS = frozenset(["set", "frozenset"])
    _SET_METHODS = frozenset(
        ["union", "intersection", "difference", "symmetric_difference", "copy"]
    )
    _ORDERING_WRAPPERS = frozenset(["sorted"])
    _TRANSPARENT_WRAPPERS = frozenset(["enumerate", "reversed", "tuple", "list"])
    _SET_ANNOTATIONS = frozenset(["set", "Set", "frozenset", "FrozenSet", "AbstractSet"])

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_module(ctx.config.ordered_iteration_scopes):
            return
        for scope in _scopes(ctx.tree):
            yield from self._check_scope(ctx, scope)

    def _check_scope(self, ctx: ModuleContext, scope: ast.AST) -> Iterator[Finding]:
        statements = list(_scope_statements(scope))
        set_names = self._set_typed_names(statements)
        for node in statements:
            iters: List[ast.expr] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                iters.extend(gen.iter for gen in node.generators)
            for iter_expr in iters:
                reason = self._unordered_reason(iter_expr, set_names)
                if reason is not None:
                    yield self.finding(
                        ctx,
                        iter_expr,
                        f"iteration over {reason} has hash-seed-dependent order "
                        "in decision-making code",
                    )

    def _set_typed_names(self, statements: Sequence[ast.AST]) -> Set[str]:
        names: Set[str] = set()
        # Two passes so simple chains (a = set(); b = a | other) resolve.
        for _ in range(2):
            for node in statements:
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                    if self._is_set_annotation(node.annotation):
                        if isinstance(target, ast.Name):
                            names.add(target.id)
                        continue
                elif isinstance(node, ast.AugAssign):
                    target, value = node.target, node.value
                if (
                    isinstance(target, ast.Name)
                    and value is not None
                    and self._is_set_expr(value, names)
                ):
                    names.add(target.id)
        return names

    def _is_set_annotation(self, annotation: ast.expr) -> bool:
        base = annotation.value if isinstance(annotation, ast.Subscript) else annotation
        parts = _name_parts(base)
        return bool(parts) and parts[-1] in self._SET_ANNOTATIONS

    def _is_set_expr(self, node: ast.expr, known: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in known
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(node.left, known) or self._is_set_expr(
                node.right, known
            )
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in self._SET_BUILTINS:
                return True
            if isinstance(node.func, ast.Attribute) and node.func.attr in self._SET_METHODS:
                return self._is_set_expr(node.func.value, known)
        return False

    def _unordered_reason(self, iter_expr: ast.expr, known: Set[str]) -> Optional[str]:
        if isinstance(iter_expr, ast.Call) and isinstance(iter_expr.func, ast.Name):
            if iter_expr.func.id in self._ORDERING_WRAPPERS:
                return None
            if iter_expr.func.id in self._TRANSPARENT_WRAPPERS and iter_expr.args:
                return self._unordered_reason(iter_expr.args[0], known)
        if (
            isinstance(iter_expr, ast.Call)
            and isinstance(iter_expr.func, ast.Attribute)
            and iter_expr.func.attr == "keys"
            and not iter_expr.args
        ):
            return "dict.keys()"
        if self._is_set_expr(iter_expr, known):
            if isinstance(iter_expr, ast.Name):
                return f"the set {iter_expr.id!r}"
            return "an unordered set expression"
        return None


class FloatEqualityRule(Rule):
    """R004 — distances compare with epsilon helpers, never ``==``."""

    rule_id = "R004"
    severity = Severity.ERROR
    summary = (
        "no ==/!= on float literals or distance-valued expressions outside "
        "the epsilon-helper modules"
    )
    fix_hint = "use repro.geometry.primitives.is_zero / points_coincide (or math.isclose)"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.in_module(ctx.config.epsilon_modules):
            return
        distance_calls = frozenset(ctx.config.distance_functions)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                pair = (operands[index], operands[index + 1])
                reason = self._float_operand(pair, distance_calls)
                if reason is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"exact float comparison against {reason}",
                    )
                    break

    def _float_operand(
        self, pair: Tuple[ast.expr, ast.expr], distance_calls: frozenset
    ) -> Optional[str]:
        for side in pair:
            if isinstance(side, ast.UnaryOp) and isinstance(side.op, ast.USub):
                side = side.operand
            if isinstance(side, ast.Constant) and isinstance(side.value, float):
                return f"the float literal {side.value!r}"
            if isinstance(side, ast.Call):
                parts = _name_parts(side.func)
                if parts and parts[-1] in distance_calls:
                    return f"the distance expression {'.'.join(parts)}(...)"
        return None


class MutableDefaultRule(Rule):
    """R005 — no mutable default arguments."""

    rule_id = "R005"
    severity = Severity.ERROR
    summary = "no mutable default arguments (list/dict/set literals or constructors)"
    fix_hint = "default to None and create the container inside the function"

    _MUTABLE_CALLS = frozenset(["list", "dict", "set", "bytearray"])

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, _FUNCTION_TYPES):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default argument in {node.name}() is shared "
                        "across calls",
                    )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._MUTABLE_CALLS
            and not node.args
            and not node.keywords
        )


def _protocol_classes(tree: ast.AST) -> Iterator[ast.ClassDef]:
    """Classes directly subclassing ``RoutingProtocol``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and any(
            _name_parts(base)[-1:] == ("RoutingProtocol",) for base in node.bases
        ):
            yield node


def _positional_args(fn: _FunctionNode) -> List[ast.arg]:
    return list(getattr(fn.args, "posonlyargs", [])) + list(fn.args.args)


def _is_abstract(class_def: ast.ClassDef) -> bool:
    for base in class_def.bases:
        if _name_parts(base)[-1:] in (("ABC",), ("ABCMeta",)):
            return True
    for node in class_def.body:
        if isinstance(node, _FUNCTION_TYPES):
            for decorator in node.decorator_list:
                if _name_parts(decorator)[-1:] == ("abstractmethod",):
                    return True
    return False


class ProtocolContractRule(Rule):
    """R006 — protocol subclasses implement the full engine contract."""

    rule_id = "R006"
    severity = Severity.ERROR
    summary = (
        "RoutingProtocol subclasses must define handle(self, view, packet), "
        "a name attribute, and a compatible prepare_task"
    )
    fix_hint = "match the RoutingProtocol signatures in repro/routing/base.py"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for class_def in _protocol_classes(ctx.tree):
            if _is_abstract(class_def):
                continue
            methods = {
                stmt.name: stmt
                for stmt in class_def.body
                if isinstance(stmt, _FUNCTION_TYPES)
            }
            yield from self._check_handle(ctx, class_def, methods.get("handle"))
            if "prepare_task" in methods:
                yield from self._check_prepare_task(ctx, methods["prepare_task"])
            if not self._defines_name(class_def, methods):
                yield self.finding(
                    ctx,
                    class_def,
                    f"protocol {class_def.name} never sets its 'name' attribute "
                    "(reports and figures key on it)",
                )

    def _check_handle(
        self,
        ctx: ModuleContext,
        class_def: ast.ClassDef,
        handle: Optional[_FunctionNode],
    ) -> Iterator[Finding]:
        if handle is None:
            yield self.finding(
                ctx,
                class_def,
                f"protocol {class_def.name} does not implement handle(self, view, packet)",
            )
            return
        positional = _positional_args(handle)
        required = len(positional) - len(handle.args.defaults)
        if required != 3 and handle.args.vararg is None:
            yield self.finding(
                ctx,
                handle,
                f"{class_def.name}.handle must take exactly (self, view, packet); "
                f"it requires {required} positional argument(s)",
            )

    def _check_prepare_task(
        self, ctx: ModuleContext, prepare: _FunctionNode
    ) -> Iterator[Finding]:
        positional = _positional_args(prepare)
        required = len(positional) - len(prepare.args.defaults)
        accepts_four = len(positional) >= 4 or prepare.args.vararg is not None
        if required > 4 or not accepts_four:
            yield self.finding(
                ctx,
                prepare,
                "prepare_task must accept (self, network, source_id, destination_ids)",
            )

    def _defines_name(
        self, class_def: ast.ClassDef, methods: Dict[str, _FunctionNode]
    ) -> bool:
        for stmt in class_def.body:
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "name" for t in stmt.targets
            ):
                return True
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "name"
            ):
                return True
        init = methods.get("__init__")
        if init is None:
            return False
        for node in ast.walk(init):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "name"
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        return True
        return False


class StatelessProtocolRule(Rule):
    """R007 — protocols never mutate the view or the packet."""

    rule_id = "R007"
    severity = Severity.ERROR
    summary = (
        "no mutation of NodeView/MulticastPacket arguments inside protocol "
        "methods (forwarding must be stateless)"
    )
    fix_hint = "use the packet's with_* copy helpers; never write through the view"

    _MUTATORS = frozenset(
        [
            "append",
            "extend",
            "insert",
            "add",
            "update",
            "remove",
            "discard",
            "pop",
            "popitem",
            "clear",
            "setdefault",
            "sort",
        ]
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for class_def in _protocol_classes(ctx.tree):
            for method in class_def.body:
                if not isinstance(method, _FUNCTION_TYPES) or method.name == "__init__":
                    continue
                params = {
                    arg.arg
                    for arg in _positional_args(method) + method.args.kwonlyargs
                    if arg.arg != "self"
                }
                if not params:
                    continue
                yield from self._check_method(ctx, class_def, method, params)

    def _check_method(
        self,
        ctx: ModuleContext,
        class_def: ast.ClassDef,
        method: _FunctionNode,
        params: Set[str],
    ) -> Iterator[Finding]:
        def param_attribute(node: ast.expr) -> Optional[str]:
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in params
            ):
                return f"{node.value.id}.{node.attr}"
            return None

        for node in ast.walk(method):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in self._MUTATORS:
                    owner = param_attribute(node.func.value)
                    if owner is not None:
                        yield self.finding(
                            ctx,
                            node,
                            f"{class_def.name}.{method.name} mutates {owner} "
                            f"via .{node.func.attr}()",
                        )
                continue
            for target in targets:
                owner = param_attribute(target)
                if owner is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"{class_def.name}.{method.name} writes {owner}; protocol "
                        "arguments are read-only",
                    )


class InitExportsRule(Rule):
    """R008 — ``__init__.py`` re-exports and ``__all__`` stay in sync."""

    rule_id = "R008"
    severity = Severity.ERROR
    summary = "package __init__ re-exports must match __all__ exactly"
    fix_hint = "add the name to __all__ or drop the re-export"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.filename != "__init__.py":
            return
        assert isinstance(ctx.tree, ast.Module)
        imported: Dict[str, ast.stmt] = {}
        bound: Set[str] = set()
        all_node: Optional[ast.Assign] = None
        all_names: Optional[List[str]] = None
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.ImportFrom):
                internal = stmt.level > 0 or (stmt.module or "").split(".")[0] == "repro"
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    name = alias.asname or alias.name
                    bound.add(name)
                    if internal and not name.startswith("_"):
                        imported[name] = stmt
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(stmt, _FUNCTION_TYPES + (ast.ClassDef,)):
                bound.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
                        if target.id == "__all__":
                            all_node = stmt
                            all_names = self._string_list(stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                bound.add(stmt.target.id)

        if all_names is None:
            if imported:
                anchor = next(iter(imported.values()))
                yield self.finding(
                    ctx,
                    all_node or anchor,
                    "package __init__ re-exports names but defines no literal __all__",
                    fix_hint="add __all__ = [...] listing the public API",
                )
            return

        all_set = set(all_names)
        for name in sorted(set(all_names)):
            if all_names.count(name) > 1:
                yield self.finding(
                    ctx, all_node, f"__all__ lists {name!r} more than once"
                )
        for name, stmt in sorted(imported.items()):
            if name not in all_set:
                yield self.finding(
                    ctx,
                    stmt,
                    f"{name!r} is re-exported but missing from __all__",
                )
        for name in sorted(all_set - bound):
            yield self.finding(
                ctx,
                all_node,
                f"__all__ lists {name!r} but the module never binds it",
            )

    def _string_list(self, node: ast.expr) -> Optional[List[str]]:
        if not isinstance(node, (ast.List, ast.Tuple)):
            return None
        names: List[str] = []
        for element in node.elts:
            if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
                return None
            names.append(element.value)
        return names


class BareExceptRule(Rule):
    """R009 — no bare ``except:`` clauses."""

    rule_id = "R009"
    severity = Severity.ERROR
    summary = "no bare except: clauses (they swallow KeyboardInterrupt and bugs alike)"
    fix_hint = "catch a specific exception type (or Exception if truly broad)"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(ctx, node, "bare except: hides real failures")


class TypeIgnoreBudgetRule(Rule):
    """R010 — per-module budget for ``# type: ignore`` comments."""

    rule_id = "R010"
    severity = Severity.WARNING
    summary = "at most N '# type: ignore' comments per module (configurable budget)"
    fix_hint = "fix the type error, or tighten the annotation instead of ignoring it"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        budget = ctx.config.type_ignore_budget
        hits = [c for c in ctx.comments if "type: ignore" in c.text]
        if len(hits) <= budget:
            return
        overflow = hits[budget]
        yield Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=ctx.path,
            line=overflow.line,
            col=overflow.col,
            message=(
                f"{len(hits)} '# type: ignore' comments exceed the module "
                f"budget of {budget}"
            ),
            fix_hint=self.fix_hint,
        )


BUILTIN_RULES: Tuple[Type[Rule], ...] = (
    SeededRandomnessRule,
    WallClockRule,
    OrderedIterationRule,
    FloatEqualityRule,
    MutableDefaultRule,
    ProtocolContractRule,
    StatelessProtocolRule,
    InitExportsRule,
    BareExceptRule,
    TypeIgnoreBudgetRule,
)
