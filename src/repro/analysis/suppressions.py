"""Suppression comments: ``# reprolint: disable=R003`` and friends.

Two scopes, decided by comment placement:

* a comment **on its own line** disables the listed rules for the whole
  file (put it at the top, next to the module docstring, so reviewers see
  it);
* a comment **trailing a code line** disables the listed rules for that
  line only.

``disable=all`` disables every rule.  Rule lists are comma-separated:
``# reprolint: disable=R001,R004``.  Comments are found with
:mod:`tokenize`, so directive-looking text inside string literals is never
misread as a directive.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Tuple

_DIRECTIVE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")

#: Sentinel rule list meaning "every rule".
ALL_RULES = "all"


@dataclass(frozen=True)
class Comment:
    """One source comment, as placed (``standalone`` = comment-only line)."""

    line: int
    col: int
    text: str
    standalone: bool


def scan_comments(source: str) -> List[Comment]:
    """Every comment in ``source`` with its placement.

    Unparseable tails (tokenize errors on truncated input) end the scan
    early rather than raising: the AST pass will report the syntax error.
    """
    comments: List[Comment] = []
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type != tokenize.COMMENT:
                continue
            before = token.line[: token.start[1]]
            comments.append(
                Comment(
                    line=token.start[0],
                    col=token.start[1],
                    text=token.string,
                    standalone=not before.strip(),
                )
            )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


@dataclass(frozen=True)
class Directive:
    """One parsed ``# reprolint: disable=...`` comment, as placed."""

    line: int
    col: int
    rules: Tuple[str, ...]
    standalone: bool


@dataclass(frozen=True)
class SuppressionIndex:
    """Which rules are disabled where, for one file."""

    file_level: FrozenSet[str] = frozenset()
    by_line: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    directive_count: int = 0
    #: Every directive, in source order — the raw material for stale-
    #: suppression detection (a directive whose rules never fire).
    directives: Tuple[Directive, ...] = ()

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        for scope in (self.file_level, self.by_line.get(line, frozenset())):
            if rule_id in scope or ALL_RULES in scope:
                return True
        return False


def _parse_directive(text: str) -> Iterator[str]:
    match = _DIRECTIVE.search(text)
    if match is None:
        return
    for rule in match.group(1).split(","):
        rule = rule.strip()
        if rule:
            yield rule


def build_suppression_index(source: str) -> SuppressionIndex:
    """Parse every suppression directive in ``source``."""
    file_level: List[str] = []
    by_line: Dict[int, FrozenSet[str]] = {}
    directives: List[Directive] = []
    for comment in scan_comments(source):
        rules: Tuple[str, ...] = tuple(_parse_directive(comment.text))
        if not rules:
            continue
        directives.append(
            Directive(
                line=comment.line,
                col=comment.col,
                rules=rules,
                standalone=comment.standalone,
            )
        )
        if comment.standalone:
            file_level.extend(rules)
        else:
            by_line[comment.line] = by_line.get(comment.line, frozenset()) | frozenset(rules)
    return SuppressionIndex(
        file_level=frozenset(file_level),
        by_line=by_line,
        directive_count=len(directives),
        directives=tuple(directives),
    )
