"""Contract rules R012–R017: the cross-file invariants PRs 2–4 introduced.

These rules pin promises that live in *pairs of files*: a mutator here must
invalidate a cache there; a batch kernel here must have a scalar reference
and a parity test there; a record field here must be classified by the
digest policy there.  None of them is expressible per-module, which is why
they ride on the :class:`~repro.analysis.project.Project` call graph.

* **R012** — a method that mutates guarded network/grid state must reach a
  cache-invalidation call, or queries against the mutated object silently
  answer from stale caches.
* **R013** — every public batch kernel must appear in the kernels module's
  ``SCALAR_REFERENCES`` registry with a resolvable scalar reference, and be
  exercised by a parity test module.
* **R014** — every field of the digest-relevant record dataclasses must be
  declared digest-included or digest-excluded in the digest policy module;
  adding a field without deciding its digest fate is how silent
  reproducibility holes appear.
* **R015** — no module-level import cycles (lazy/``TYPE_CHECKING`` imports
  are the sanctioned break and do not count).
* **R016** — private functions never referenced anywhere in the project are
  dead code (warning; reference tracking is name-based and conservative —
  any mention by name anywhere keeps a function alive).
* **R017** — methods mutating state that may alias read-only shared-memory
  plane segments (:mod:`repro.perf.shm`) must reach a copy-on-write call,
  so pool workers' mutations stay worker-local instead of crashing on (or
  silently diverging from) the shared buffers.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple, Type

from repro.analysis.callgraph import CallGraph, call_chain
from repro.analysis.engine import LintConfig, ProjectRule, path_matches
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Project, ProjectModule

_FUNCTION_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Container methods that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    [
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "setdefault",
        "sort",
    ]
)


def _guarded_attr(node: ast.expr, guarded: frozenset) -> Optional[str]:
    """The guarded ``self.X`` attribute a target expression touches, if any.

    Handles ``self.X``, ``self.X[...]`` and nested subscripts.
    """
    current = node
    while isinstance(current, ast.Subscript):
        current = current.value
    if (
        isinstance(current, ast.Attribute)
        and isinstance(current.value, ast.Name)
        and current.value.id == "self"
        and current.attr in guarded
    ):
        return current.attr
    return None


class CacheInvalidationRule(ProjectRule):
    """R012 — guarded-state mutators must reach a cache invalidation.

    The structural skeleton — "a method mutating guarded ``self`` state
    must reach one of a set of sanctioned calls" — is shared with R017
    (:class:`SharedMutationRule`) through the ``_scopes`` / ``_guarded`` /
    ``_required`` / ``_message`` hooks; only the config fields and the
    story differ.
    """

    rule_id = "R012"
    severity = Severity.ERROR
    summary = (
        "methods mutating guarded network/grid state must reach a "
        "cache-invalidation call on some path"
    )
    fix_hint = (
        "call the owning class's invalidator (_invalidate_node / "
        "_refresh_cell / clear_caches) after the mutation"
    )

    def _scopes(self, config: LintConfig) -> Tuple[str, ...]:
        return config.mutation_scopes

    def _guarded(self, config: LintConfig) -> Tuple[str, ...]:
        return config.mutation_guarded_attrs

    def _required(self, config: LintConfig) -> Tuple[str, ...]:
        return config.invalidation_calls

    def _exempt(self, config: LintConfig) -> Tuple[str, ...]:
        # The copy-on-write hooks (R017's sanctioned calls) replace guarded
        # arrays with value-identical copies: no query answer can change,
        # so no cache can go stale and R012 does not apply to them.
        return config.cow_calls

    def _message(self, qualname: str, attrs: str) -> str:
        return (
            f"{qualname} mutates guarded state ({attrs}) without "
            "reaching a cache-invalidation call"
        )

    def check_project(
        self, project: Project, config: LintConfig
    ) -> Iterator[Finding]:
        guarded = frozenset(self._guarded(config))
        required = frozenset(self._required(config))
        exempt = frozenset(self._exempt(config))
        graph = project.callgraph
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            if info.class_qualname is None:
                continue
            if not path_matches(info.module_path, self._scopes(config)):
                continue
            if info.name == "__init__" or info.name in required:
                continue
            if info.name in exempt:
                continue
            mutated = self._mutated_attrs(info.node, guarded)
            if not mutated:
                continue
            if self._reaches_invalidation(graph, qualname, info.node, required):
                continue
            attrs = ", ".join(repr(a) for a in sorted(mutated))
            yield self.project_finding(
                path=info.module_path,
                line=info.line,
                col=0,
                message=self._message(qualname, attrs),
            )

    def _mutated_attrs(self, node: ast.AST, guarded: frozenset) -> Set[str]:
        mutated: Set[str] = set()
        for sub in ast.walk(node):
            targets: List[ast.expr] = []
            if isinstance(sub, ast.Assign):
                targets = list(sub.targets)
            elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
                targets = [sub.target]
            elif isinstance(sub, ast.Delete):
                targets = list(sub.targets)
            elif isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                if sub.func.attr in _MUTATOR_METHODS:
                    attr = _guarded_attr(sub.func.value, guarded)
                    if attr is not None:
                        mutated.add(attr)
                continue
            for target in targets:
                attr = _guarded_attr(target, guarded)
                if attr is not None:
                    mutated.add(attr)
        return mutated

    def _reaches_invalidation(
        self,
        graph: CallGraph,
        qualname: str,
        node: ast.AST,
        invalidators: frozenset,
    ) -> bool:
        # Direct call by name — robust even when graph resolution fails.
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                chain = call_chain(sub.func)
                if chain is not None and chain[-1] in invalidators:
                    return True
        # Transitive: some reachable callee is an invalidator.
        for callee in graph.reachable_from(qualname):
            info = graph.functions.get(callee)
            if info is not None and info.name in invalidators:
                return True
        return False


class SharedMutationRule(CacheInvalidationRule):
    """R017 — shared-plane-backed state is only mutated behind a CoW call.

    Networks attached from the shared-memory plane
    (:mod:`repro.perf.shm`) alias read-only segments mapped into every
    worker; a method that writes those attributes without first going
    through the copy-on-write API either crashes (the buffers are
    read-only) or — worse, on a privately rebuilt network — silently
    diverges from pooled runs.  Same skeleton as R012, different config
    fields and required calls.
    """

    rule_id = "R017"
    severity = Severity.ERROR
    summary = (
        "methods mutating shared-plane-backed network state must reach "
        "a copy-on-write call on some path"
    )
    fix_hint = (
        "call the copy-on-write hook (_ensure_private_node_state / "
        "_ensure_private_points) before the mutation"
    )

    def _scopes(self, config: LintConfig) -> Tuple[str, ...]:
        return config.shared_mutation_scopes

    def _guarded(self, config: LintConfig) -> Tuple[str, ...]:
        return config.shared_guarded_attrs

    def _required(self, config: LintConfig) -> Tuple[str, ...]:
        return config.cow_calls

    def _message(self, qualname: str, attrs: str) -> str:
        return (
            f"{qualname} mutates shared-plane-backed state ({attrs}) "
            "without reaching a copy-on-write call"
        )


def _literal_str_dict(node: ast.expr) -> Optional[Dict[str, Tuple[ast.expr, int]]]:
    """Parse ``{"key": value}`` with string keys; value kept as AST + line."""
    if not isinstance(node, ast.Dict):
        return None
    out: Dict[str, Tuple[ast.expr, int]] = {}
    for key, value in zip(node.keys, node.values):
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None
        out[key.value] = (value, key.lineno)
    return out


def _module_assignment(
    module: ProjectModule, name: str
) -> Optional[Tuple[ast.expr, int]]:
    """The value expression of a top-level ``name = ...`` assignment."""
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return stmt.value, stmt.lineno
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name) and stmt.target.id == name:
                return stmt.value, stmt.lineno
    return None


class KernelParityRule(ProjectRule):
    """R013 — batch kernels need registered scalar references and tests."""

    rule_id = "R013"
    severity = Severity.ERROR
    summary = (
        "every public perf kernel must have a SCALAR_REFERENCES entry "
        "resolving to real code and a parity test referencing it"
    )
    fix_hint = (
        "register the kernel's scalar reference in SCALAR_REFERENCES and "
        "add an exact-parity test under tests/perf/"
    )

    def check_project(
        self, project: Project, config: LintConfig
    ) -> Iterator[Finding]:
        kernel_modules = [
            m for m in project.modules if path_matches(m.path, config.kernel_modules)
        ]
        if not kernel_modules:
            return
        graph = project.callgraph
        test_identifiers = self._test_identifiers(project, config)
        for module in sorted(kernel_modules, key=lambda m: m.path):
            yield from self._check_module(
                module, graph, config, test_identifiers
            )

    def _check_module(
        self,
        module: ProjectModule,
        graph: CallGraph,
        config: LintConfig,
        test_identifiers: Optional[Set[str]],
    ) -> Iterator[Finding]:
        kernels: Dict[str, ast.AST] = {
            stmt.name: stmt
            for stmt in module.tree.body
            if isinstance(stmt, _FUNCTION_TYPES)
            and not stmt.name.startswith("_")
            and stmt.name not in config.kernel_exempt
        }
        registry_assignment = _module_assignment(module, "SCALAR_REFERENCES")
        registry: Dict[str, Tuple[ast.expr, int]] = {}
        registry_line = 1
        if registry_assignment is not None:
            parsed = _literal_str_dict(registry_assignment[0])
            registry_line = registry_assignment[1]
            if parsed is None:
                yield self.project_finding(
                    path=module.path,
                    line=registry_line,
                    col=0,
                    message=(
                        "SCALAR_REFERENCES must be a literal dict of "
                        "kernel name -> dotted scalar reference"
                    ),
                )
                return
            registry = parsed
        for name in sorted(kernels):
            node = kernels[name]
            if name not in registry:
                yield self.project_finding(
                    path=module.path,
                    line=getattr(node, "lineno", 1),
                    col=0,
                    message=(
                        f"batch kernel '{name}' has no SCALAR_REFERENCES "
                        "entry naming its scalar reference"
                    ),
                )
            if test_identifiers is not None and name not in test_identifiers:
                yield self.project_finding(
                    path=module.path,
                    line=getattr(node, "lineno", 1),
                    col=0,
                    message=(
                        f"batch kernel '{name}' is not referenced by any "
                        "parity test module"
                    ),
                )
        for name in sorted(registry):
            value, line = registry[name]
            if name not in kernels:
                yield self.project_finding(
                    path=module.path,
                    line=line,
                    col=0,
                    message=(
                        f"SCALAR_REFERENCES entry '{name}' matches no "
                        "public kernel in this module"
                    ),
                )
                continue
            if not (isinstance(value, ast.Constant) and isinstance(value.value, str)):
                yield self.project_finding(
                    path=module.path,
                    line=line,
                    col=0,
                    message=(
                        f"SCALAR_REFERENCES entry '{name}' must be a dotted "
                        "qualname string"
                    ),
                )
                continue
            if graph.functions.get(value.value) is None:
                yield self.project_finding(
                    path=module.path,
                    line=line,
                    col=0,
                    message=(
                        f"scalar reference '{value.value}' for kernel "
                        f"'{name}' does not resolve to a known function"
                    ),
                )

    def _test_identifiers(
        self, project: Project, config: LintConfig
    ) -> Optional[Set[str]]:
        """Identifiers mentioned in parity-test modules; None if not loaded."""
        test_modules = [
            m
            for m in project.modules
            if path_matches(m.path, config.kernel_test_scopes)
        ]
        if not test_modules:
            return None
        names: Set[str] = set()
        for module in test_modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Name):
                    names.add(node.id)
                elif isinstance(node, ast.Attribute):
                    names.add(node.attr)
                elif isinstance(node, (ast.Import, ast.ImportFrom)):
                    for alias in node.names:
                        names.add(alias.name.split(".")[-1])
                        if alias.asname:
                            names.add(alias.asname)
        return names


def _dataclass_records(
    module: ProjectModule,
) -> Iterator[Tuple[str, List[Tuple[str, int]]]]:
    """(class name, [(field, line), ...]) for every @dataclass in a module."""
    for stmt in module.tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        decorated = False
        for decorator in stmt.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            chain = call_chain(target)
            if chain is not None and chain[-1] == "dataclass":
                decorated = True
        if not decorated:
            continue
        fields: List[Tuple[str, int]] = []
        for item in stmt.body:
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                annotation = call_chain(item.annotation)
                if annotation is not None and annotation[-1] == "ClassVar":
                    continue
                fields.append((item.target.id, item.lineno))
        yield stmt.name, fields


class DigestFieldPolicyRule(ProjectRule):
    """R014 — every record field is digest-included or digest-excluded."""

    rule_id = "R014"
    severity = Severity.ERROR
    summary = (
        "every field of the trace/result record dataclasses must be "
        "declared in DIGEST_INCLUDED_FIELDS or DIGEST_EXCLUDED_FIELDS"
    )
    fix_hint = (
        "declare the field in engine/digest.py's policy tables (and make "
        "the serialization match)"
    )

    def check_project(
        self, project: Project, config: LintConfig
    ) -> Iterator[Finding]:
        policy_modules = [
            m
            for m in project.modules
            if path_matches(m.path, config.digest_policy_modules)
        ]
        record_modules = [
            m
            for m in project.modules
            if path_matches(m.path, config.digest_record_scopes)
        ]
        if not policy_modules or not record_modules:
            return
        policy = policy_modules[0]
        tables: Dict[str, Dict[str, Tuple[ast.expr, int]]] = {}
        for table_name in ("DIGEST_INCLUDED_FIELDS", "DIGEST_EXCLUDED_FIELDS"):
            assignment = _module_assignment(policy, table_name)
            parsed = (
                _literal_str_dict(assignment[0]) if assignment is not None else None
            )
            if parsed is None:
                yield self.project_finding(
                    path=policy.path,
                    line=assignment[1] if assignment is not None else 1,
                    col=0,
                    message=(
                        f"digest policy module must define {table_name} as a "
                        "literal dict of record name -> field-name tuple"
                    ),
                )
                return
            tables[table_name] = parsed
        included = self._field_sets(tables["DIGEST_INCLUDED_FIELDS"])
        excluded = self._field_sets(tables["DIGEST_EXCLUDED_FIELDS"])
        records: Dict[str, List[Tuple[str, int]]] = {}
        record_paths: Dict[str, str] = {}
        for module in sorted(record_modules, key=lambda m: m.path):
            for class_name, fields in _dataclass_records(module):
                records.setdefault(class_name, fields)
                record_paths.setdefault(class_name, module.path)
        for class_name in sorted(records):
            for field_name, line in records[class_name]:
                in_included = field_name in included.get(class_name, set())
                in_excluded = field_name in excluded.get(class_name, set())
                if in_included and in_excluded:
                    yield self.project_finding(
                        path=record_paths[class_name],
                        line=line,
                        col=0,
                        message=(
                            f"field '{field_name}' of {class_name} is declared "
                            "both digest-included and digest-excluded"
                        ),
                    )
                elif not in_included and not in_excluded:
                    yield self.project_finding(
                        path=record_paths[class_name],
                        line=line,
                        col=0,
                        message=(
                            f"field '{field_name}' of {class_name} is not "
                            "declared digest-included or digest-excluded"
                        ),
                    )
        for table_name, table in sorted(tables.items()):
            sets = self._field_sets(table)
            for class_name in sorted(sets):
                line = table[class_name][1]
                if class_name not in records:
                    yield self.project_finding(
                        path=policy.path,
                        line=line,
                        col=0,
                        message=(
                            f"{table_name} declares fields for unknown "
                            f"record '{class_name}'"
                        ),
                    )
                    continue
                known = {field for field, _ in records[class_name]}
                for field_name in sorted(sets[class_name] - known):
                    yield self.project_finding(
                        path=policy.path,
                        line=line,
                        col=0,
                        message=(
                            f"{table_name} declares unknown field "
                            f"'{field_name}' on {class_name}"
                        ),
                    )

    def _field_sets(
        self, table: Dict[str, Tuple[ast.expr, int]]
    ) -> Dict[str, Set[str]]:
        out: Dict[str, Set[str]] = {}
        for class_name, (value, _line) in table.items():
            names: Set[str] = set()
            if isinstance(value, (ast.Tuple, ast.List)):
                for element in value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        names.add(element.value)
            out[class_name] = names
        return out


class ImportCycleRule(ProjectRule):
    """R015 — no module-level import cycles."""

    rule_id = "R015"
    severity = Severity.ERROR
    summary = "no eager (module-level) import cycles between project modules"
    fix_hint = (
        "defer one edge of the cycle: move the import into the function "
        "that needs it or under a TYPE_CHECKING guard"
    )

    def check_project(
        self, project: Project, config: LintConfig
    ) -> Iterator[Finding]:
        for cycle in project.import_cycles():
            anchor = project.module_named(cycle[0])
            if anchor is None:
                continue
            loop = " -> ".join(cycle + (cycle[0],))
            yield self.project_finding(
                path=anchor.path,
                line=1,
                col=0,
                message=f"module-level import cycle: {loop}",
            )


class DeadPrivateCodeRule(ProjectRule):
    """R016 — private functions never referenced anywhere are dead."""

    rule_id = "R016"
    severity = Severity.WARNING
    summary = (
        "private (underscore) functions never referenced by name anywhere "
        "in the project are dead code"
    )
    fix_hint = "delete the function, or reference it from the code that needs it"

    def check_project(
        self, project: Project, config: LintConfig
    ) -> Iterator[Finding]:
        graph = project.callgraph
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            if not info.name.startswith("_"):
                continue
            if info.name.startswith("__") and info.name.endswith("__"):
                continue
            if not path_matches(info.module_path, config.dead_code_scopes):
                continue
            if getattr(info.node, "decorator_list", []):
                continue  # registered via decorator (property, fixture, ...)
            if info.name in graph.referenced_names:
                continue
            if graph.in_edges.get(qualname):
                continue
            yield self.project_finding(
                path=info.module_path,
                line=info.line,
                col=0,
                message=(
                    f"private function {qualname} is never referenced "
                    "anywhere in the project"
                ),
            )


CONTRACT_RULES: Tuple[Type[ProjectRule], ...] = (
    CacheInvalidationRule,
    KernelParityRule,
    DigestFieldPolicyRule,
    ImportCycleRule,
    DeadPrivateCodeRule,
    SharedMutationRule,
)
