"""reprolint: AST-based determinism & protocol-contract analysis.

The reproduction's credibility rests on bit-reproducible runs; this package
is the static gate that enforces the discipline making that possible.  It
is a small custom analyzer on :mod:`ast` — a rule registry, a per-module
context, a findings model and ten rules (R001–R010) targeting this
codebase's concrete failure modes: unseeded randomness, wall-clock reads,
hash-order-dependent iteration, exact float comparison on distances, and
drift from the :class:`~repro.routing.base.RoutingProtocol` contract.

Entry points: ``python -m repro.cli lint src/`` on the command line, the
self-test in ``tests/analysis/test_reprolint_self.py``, and the CI
workflow.  See ``docs/ANALYSIS.md`` for the rule guide and the suppression
syntax (``# reprolint: disable=R003``).
"""

from repro.analysis.engine import (
    LintConfig,
    LintReport,
    ModuleContext,
    Rule,
    RuleRegistry,
    analyze_paths,
    analyze_source,
    default_registry,
    iter_python_files,
    path_matches,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.suppressions import (
    SuppressionIndex,
    build_suppression_index,
    scan_comments,
)

__all__ = [
    "LintConfig",
    "LintReport",
    "ModuleContext",
    "Rule",
    "RuleRegistry",
    "analyze_paths",
    "analyze_source",
    "default_registry",
    "iter_python_files",
    "path_matches",
    "Finding",
    "Severity",
    "SuppressionIndex",
    "build_suppression_index",
    "scan_comments",
]
