"""reprolint: AST-based determinism & protocol-contract analysis.

The reproduction's credibility rests on bit-reproducible runs; this package
is the static gate that enforces the discipline making that possible.  It
is a small custom analyzer on :mod:`ast` — a rule registry, a per-module
context, a findings model, ten per-module rules (R001–R010) and six
whole-program rules (R011–R016) targeting this codebase's concrete failure
modes: unseeded randomness, wall-clock reads, hash-order-dependent
iteration, exact float comparison on distances, drift from the
:class:`~repro.routing.base.RoutingProtocol` contract, nondeterminism
flowing through call chains into digest-relevant code, mutations that skip
cache invalidation, vectorized kernels without scalar parity coverage,
undeclared digest fields, import cycles and dead private code.

The whole-program substrate lives in :mod:`repro.analysis.project` (module
table + import graph) and :mod:`repro.analysis.callgraph` (symbol table +
approximate call graph); :mod:`repro.analysis.output` serializes reports as
JSON (for the ratchet gate in ``scripts/lint_ratchet.py``) and SARIF (for
CI code scanning).

Entry points: ``python -m repro.cli lint`` on the command line, the
self-test in ``tests/analysis/test_reprolint_self.py``, and the CI
workflow.  See ``docs/ANALYSIS.md`` for the rule guide and the suppression
syntax (``# reprolint: disable=R003``).
"""

from repro.analysis.callgraph import CallGraph
from repro.analysis.engine import (
    PARSE_ERROR_RULE,
    STALE_SUPPRESSION_RULE,
    LintConfig,
    LintReport,
    ModuleContext,
    ProjectRule,
    Rule,
    RuleRegistry,
    analyze_paths,
    analyze_project,
    analyze_source,
    default_registry,
    iter_python_files,
    path_matches,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.output import report_to_json, report_to_sarif
from repro.analysis.project import Project, ProjectModule, module_name_for
from repro.analysis.suppressions import (
    Directive,
    SuppressionIndex,
    build_suppression_index,
    scan_comments,
)

__all__ = [
    "PARSE_ERROR_RULE",
    "STALE_SUPPRESSION_RULE",
    "CallGraph",
    "LintConfig",
    "LintReport",
    "ModuleContext",
    "Project",
    "ProjectModule",
    "ProjectRule",
    "Rule",
    "RuleRegistry",
    "analyze_paths",
    "analyze_project",
    "analyze_source",
    "default_registry",
    "iter_python_files",
    "module_name_for",
    "path_matches",
    "report_to_json",
    "report_to_sarif",
    "Finding",
    "Severity",
    "Directive",
    "SuppressionIndex",
    "build_suppression_index",
    "scan_comments",
]
