"""The reprolint engine: rule registry, module context and the lint driver.

Rules are small classes (see :mod:`repro.analysis.rules`) registered in a
:class:`RuleRegistry`; the driver parses each module once, hands every rule
a :class:`ModuleContext` (path, source, AST, comments, config) and collects
:class:`Finding` objects, dropping those silenced by suppression comments
(:mod:`repro.analysis.suppressions`).

The engine is deliberately deterministic itself: files are visited in
sorted order, findings are sorted, and no rule may depend on hash order.
"""

from __future__ import annotations

import abc
import ast
import os
from dataclasses import dataclass, field
from typing import (
    ClassVar,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.analysis.findings import Finding, Severity
from repro.analysis.suppressions import (
    Comment,
    SuppressionIndex,
    build_suppression_index,
    scan_comments,
)

#: Rule id reserved for files the parser rejects outright.
PARSE_ERROR_RULE = "E000"


@dataclass(frozen=True)
class LintConfig:
    """Project-level knobs for the rule set.

    Path patterns are POSIX-style suffixes: a pattern ending in ``/``
    matches any file under a directory of that relative path; otherwise it
    must match the file's relative path exactly (suffix-anchored at a path
    separator).
    """

    #: Modules allowed to own raw RNG construction (R001 skips them).
    rng_modules: Tuple[str, ...] = ("repro/simkit/rng.py",)
    #: Modules hosting the sanctioned epsilon helpers (R004 skips them).
    epsilon_modules: Tuple[str, ...] = (
        "repro/geometry/primitives.py",
        "repro/geometry/point.py",
    )
    #: Decision-making layers where unordered iteration is an error (R003).
    ordered_iteration_scopes: Tuple[str, ...] = (
        "repro/routing/",
        "repro/steiner/",
        "repro/engine/",
    )
    #: Call names whose results are float distances (R004 operand test).
    distance_functions: Tuple[str, ...] = (
        "distance",
        "distance_sq",
        "hypot",
        "norm",
        "total_distance",
        "total_length",
        "total_meters",
        "mean_hop_meters",
        "fermat_total_length",
        "root_path_length",
    )
    #: Maximum ``# type: ignore`` comments per module (R010).
    type_ignore_budget: int = 2


def _normalize(path: str) -> str:
    return path.replace(os.sep, "/").replace("\\", "/")


def path_matches(path: str, patterns: Sequence[str]) -> bool:
    """Whether ``path`` matches any configured path pattern."""
    norm = "/" + _normalize(path).lstrip("/")
    for pattern in patterns:
        pattern = pattern.strip("/") + ("/" if pattern.endswith("/") else "")
        if pattern.endswith("/"):
            if f"/{pattern}" in norm + "/":
                return True
        elif norm == f"/{pattern}" or norm.endswith(f"/{pattern}"):
            return True
    return False


class ModuleContext:
    """Everything a rule may look at for one module."""

    def __init__(self, path: str, source: str, tree: ast.AST, config: LintConfig) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.config = config
        self._comments: Optional[List[Comment]] = None

    @property
    def comments(self) -> List[Comment]:
        if self._comments is None:
            self._comments = scan_comments(self.source)
        return self._comments

    @property
    def filename(self) -> str:
        return _normalize(self.path).rsplit("/", 1)[-1]

    def in_module(self, patterns: Sequence[str]) -> bool:
        return path_matches(self.path, patterns)


class Rule(abc.ABC):
    """One lint rule: an id, a severity and an AST check."""

    rule_id: ClassVar[str]
    severity: ClassVar[Severity] = Severity.ERROR
    #: One-line description shown by ``repro lint --list-rules``.
    summary: ClassVar[str] = ""
    #: Default remediation advice (a finding may override it).
    fix_hint: ClassVar[str] = ""

    @abc.abstractmethod
    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module."""

    def finding(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        message: str,
        fix_hint: Optional[str] = None,
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            fix_hint=self.fix_hint if fix_hint is None else fix_hint,
        )


class RuleRegistry:
    """Id-keyed collection of rule classes."""

    def __init__(self) -> None:
        self._rules: Dict[str, Type[Rule]] = {}

    def register(self, rule_cls: Type[Rule]) -> Type[Rule]:
        rule_id = rule_cls.rule_id
        if rule_id in self._rules:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        self._rules[rule_id] = rule_cls
        return rule_cls

    def rule_ids(self) -> List[str]:
        return sorted(self._rules)

    def create_rules(self, only: Optional[Sequence[str]] = None) -> List[Rule]:
        ids = self.rule_ids() if only is None else list(only)
        rules = []
        for rule_id in ids:
            if rule_id not in self._rules:
                raise KeyError(f"unknown rule id {rule_id!r}")
            rules.append(self._rules[rule_id]())
        return rules

    def summaries(self) -> List[Tuple[str, str, str]]:
        """(rule id, severity, summary) rows for ``--list-rules``."""
        return [
            (rule_id, self._rules[rule_id].severity.value, self._rules[rule_id].summary)
            for rule_id in self.rule_ids()
        ]


def default_registry() -> RuleRegistry:
    """The registry with every built-in rule (imported lazily)."""
    from repro.analysis import rules as _rules

    registry = RuleRegistry()
    for rule_cls in _rules.BUILTIN_RULES:
        registry.register(rule_cls)
    return registry


@dataclass
class LintReport:
    """Aggregate outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    directive_count: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def merge(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files_checked += other.files_checked
        self.directive_count += other.directive_count

    def sorted_findings(self) -> List[Finding]:
        return sorted(self.findings, key=Finding.sort_key)

    def render(self) -> str:
        lines = [finding.render() for finding in self.sorted_findings()]
        noun = "finding" if len(self.findings) == 1 else "findings"
        lines.append(
            f"reprolint: {len(self.findings)} {noun} in {self.files_checked} "
            f"file(s) ({len(self.suppressed)} suppressed)"
        )
        return "\n".join(lines)


def analyze_source(
    source: str,
    path: str,
    registry: Optional[RuleRegistry] = None,
    config: Optional[LintConfig] = None,
) -> LintReport:
    """Lint one module given as a string."""
    registry = registry or default_registry()
    config = config or LintConfig()
    report = LintReport(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.findings.append(
            Finding(
                rule_id=PARSE_ERROR_RULE,
                severity=Severity.ERROR,
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"module does not parse: {exc.msg}",
                fix_hint="fix the syntax error before linting",
            )
        )
        return report

    suppressions: SuppressionIndex = build_suppression_index(source)
    report.directive_count = suppressions.directive_count
    ctx = ModuleContext(path=path, source=source, tree=tree, config=config)
    for rule in registry.create_rules():
        for finding in rule.check(ctx):
            if suppressions.is_suppressed(finding.rule_id, finding.line):
                report.suppressed.append(finding)
            else:
                report.findings.append(finding)
    report.findings.sort(key=Finding.sort_key)
    return report


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Every ``.py`` file under ``paths``, sorted, hidden dirs skipped."""
    for path in sorted(paths):
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs if not d.startswith(".") and d != "__pycache__"
            )
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def analyze_paths(
    paths: Iterable[str],
    registry: Optional[RuleRegistry] = None,
    config: Optional[LintConfig] = None,
) -> LintReport:
    """Lint every Python file under ``paths`` and aggregate the reports."""
    registry = registry or default_registry()
    config = config or LintConfig()
    total = LintReport()
    for file_path in iter_python_files(paths):
        with open(file_path, "r", encoding="utf-8") as handle:
            source = handle.read()
        total.merge(analyze_source(source, file_path, registry, config))
    total.findings.sort(key=Finding.sort_key)
    return total
