"""The reprolint engine: rule registry, contexts and the lint driver.

Two kinds of rules coexist in one registry:

* **module rules** (:class:`Rule`, R001–R010) see one
  :class:`ModuleContext` at a time — path, source, AST, comments, config;
* **project rules** (:class:`ProjectRule`, R011–R016) see the whole
  :class:`~repro.analysis.project.Project` — symbol table, import graph,
  call graph — and may anchor findings in any module.

The driver loads every file into a project in one parse pass, runs both
kinds, then post-processes findings in a fixed order: the *relaxed profile*
drops exempt rules for test/script/benchmark paths, suppression comments
(decorator-line aware) move findings to the suppressed list, and any
directive that silenced nothing becomes a W001 stale-suppression warning.

The engine is deliberately deterministic itself: files are visited in
sorted order, findings are sorted, and no rule may depend on hash order.
"""

from __future__ import annotations

import abc
import ast
import os
from dataclasses import dataclass, field
from typing import (
    ClassVar,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
    Union,
)

from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Project, ProjectModule
from repro.analysis.suppressions import Comment, Directive, scan_comments

#: Rule id reserved for files the parser rejects outright.
PARSE_ERROR_RULE = "E000"

#: Rule id for suppression directives that silence nothing (engine-level,
#: like E000 — not in the registry, but suppressible like any other rule).
STALE_SUPPRESSION_RULE = "W001"

_STALE_FIX_HINT = "remove the stale '# reprolint: disable' comment"


@dataclass(frozen=True)
class LintConfig:
    """Project-level knobs for the rule set.

    Path patterns are POSIX-style suffixes: a pattern ending in ``/``
    matches any file under a directory of that relative path; otherwise it
    must match the file's relative path exactly (suffix-anchored at a path
    separator).
    """

    #: Modules allowed to own raw RNG construction (R001 skips them).
    rng_modules: Tuple[str, ...] = ("repro/simkit/rng.py",)
    #: Modules hosting the sanctioned epsilon helpers (R004 skips them).
    epsilon_modules: Tuple[str, ...] = (
        "repro/geometry/primitives.py",
        "repro/geometry/point.py",
    )
    #: Decision-making layers where unordered iteration is an error (R003).
    ordered_iteration_scopes: Tuple[str, ...] = (
        "repro/routing/",
        "repro/steiner/",
        "repro/engine/",
    )
    #: Call names whose results are float distances (R004 operand test).
    distance_functions: Tuple[str, ...] = (
        "distance",
        "distance_sq",
        "hypot",
        "norm",
        "total_distance",
        "total_length",
        "total_meters",
        "mean_hop_meters",
        "fermat_total_length",
        "root_path_length",
    )
    #: Maximum ``# type: ignore`` comments per module (R010).
    type_ignore_budget: int = 2
    #: Paths never loaded by :func:`analyze_paths` (the seeded-violation
    #: fixture corpus must not pollute whole-repo runs).
    exclude_paths: Tuple[str, ...] = ("tests/analysis/corpus/",)
    #: Paths linted under the relaxed profile: tests and tooling may
    #: intentionally misbehave (ad-hoc RNG, timing asserts).
    relaxed_scopes: Tuple[str, ...] = ("tests/", "scripts/", "benchmarks/")
    #: Rules the relaxed profile exempts entirely in those scopes.  R004 is
    #: here because tests *assert* exact float equality on purpose — the
    #: bit-identity contracts are verified with ``==``, never ``isclose``.
    relaxed_exempt_rules: Tuple[str, ...] = (
        "R001",
        "R002",
        "R004",
        "R010",
        "R011",
    )
    #: Modules whose functions are digest-relevant taint sinks (R011).
    taint_sink_scopes: Tuple[str, ...] = (
        "repro/engine/",
        "repro/experiments/",
        "repro/fuzz/",
    )
    #: Modules whose classes hold cache-guarded mutable state (R012).
    mutation_scopes: Tuple[str, ...] = ("repro/network/",)
    #: ``self.<attr>`` names whose mutation must reach an invalidator.
    mutation_guarded_attrs: Tuple[str, ...] = (
        "_neighbors",
        "_cells",
        "_points",
        "locations",
        "nodes",
        "_failed",
        "alive",
        "indices",
    )
    #: Function names that count as cache invalidation (R012).
    invalidation_calls: Tuple[str, ...] = (
        "_invalidate_node",
        "_refresh_cell",
        "clear_caches",
        "invalidate",
    )
    #: Modules holding batch kernels that need scalar references (R013).
    kernel_modules: Tuple[str, ...] = ("repro/perf/kernels.py",)
    #: Public kernel-module functions exempt from the registry (toggles).
    kernel_exempt: Tuple[str, ...] = (
        "set_vectorized_enabled",
        "vectorized_enabled",
        "vectorized_disabled",
    )
    #: Modules whose identifiers count as kernel parity-test coverage.
    kernel_test_scopes: Tuple[str, ...] = ("tests/perf/",)
    #: Module declaring DIGEST_INCLUDED_FIELDS / DIGEST_EXCLUDED_FIELDS.
    digest_policy_modules: Tuple[str, ...] = ("repro/engine/digest.py",)
    #: Modules whose dataclasses every digest policy entry must cover.
    digest_record_scopes: Tuple[str, ...] = (
        "repro/engine/trace.py",
        "repro/engine/stats.py",
    )
    #: Scopes where unreferenced private functions are reported (R016).
    dead_code_scopes: Tuple[str, ...] = ("repro/",)
    #: Modules whose classes may hold shared-memory-backed state (R017).
    shared_mutation_scopes: Tuple[str, ...] = ("repro/network/",)
    #: ``self.<attr>`` names that may alias shared-plane segments; mutating
    #: them must go through a copy-on-write call first (R017).
    shared_guarded_attrs: Tuple[str, ...] = (
        "locations",
        "alive",
        "residual_energy_j",
        "_points",
    )
    #: Function names that count as the copy-on-write API (R017): they
    #: privatize (or deliberately install) the shared arrays, so methods
    #: reaching one — and the hooks themselves — are compliant.
    cow_calls: Tuple[str, ...] = (
        "_ensure_private_node_state",
        "_ensure_private_points",
        "adopt_shared_arrays",
    )


def _normalize(path: str) -> str:
    return path.replace(os.sep, "/").replace("\\", "/")


def path_matches(path: str, patterns: Sequence[str]) -> bool:
    """Whether ``path`` matches any configured path pattern."""
    norm = "/" + _normalize(path).lstrip("/")
    for pattern in patterns:
        pattern = pattern.strip("/") + ("/" if pattern.endswith("/") else "")
        if pattern.endswith("/"):
            if f"/{pattern}" in norm + "/":
                return True
        elif norm == f"/{pattern}" or norm.endswith(f"/{pattern}"):
            return True
    return False


class ModuleContext:
    """Everything a module rule may look at for one module."""

    def __init__(self, path: str, source: str, tree: ast.AST, config: LintConfig) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.config = config
        self._comments: Optional[List[Comment]] = None

    @property
    def comments(self) -> List[Comment]:
        if self._comments is None:
            self._comments = scan_comments(self.source)
        return self._comments

    @property
    def filename(self) -> str:
        return _normalize(self.path).rsplit("/", 1)[-1]

    def in_module(self, patterns: Sequence[str]) -> bool:
        return path_matches(self.path, patterns)


class Rule(abc.ABC):
    """One module-local lint rule: an id, a severity and an AST check."""

    rule_id: ClassVar[str]
    severity: ClassVar[Severity] = Severity.ERROR
    #: One-line description shown by ``repro lint --list-rules``.
    summary: ClassVar[str] = ""
    #: Default remediation advice (a finding may override it).
    fix_hint: ClassVar[str] = ""

    @abc.abstractmethod
    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module."""

    def finding(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        message: str,
        fix_hint: Optional[str] = None,
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            fix_hint=self.fix_hint if fix_hint is None else fix_hint,
        )


class ProjectRule(abc.ABC):
    """One whole-program rule: sees the project, anchors findings anywhere."""

    rule_id: ClassVar[str]
    severity: ClassVar[Severity] = Severity.ERROR
    summary: ClassVar[str] = ""
    fix_hint: ClassVar[str] = ""

    @abc.abstractmethod
    def check_project(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        """Yield findings over the whole project."""

    def project_finding(
        self,
        path: str,
        line: int,
        col: int,
        message: str,
        fix_hint: Optional[str] = None,
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=path,
            line=line,
            col=col,
            message=message,
            fix_hint=self.fix_hint if fix_hint is None else fix_hint,
        )


#: Either flavor of rule; the registry and driver handle both.
LintRule = Union[Rule, ProjectRule]
RuleType = Union[Type[Rule], Type[ProjectRule]]


class RuleRegistry:
    """Id-keyed collection of rule classes (module and project rules)."""

    def __init__(self) -> None:
        self._rules: Dict[str, RuleType] = {}

    def register(self, rule_cls: RuleType) -> RuleType:
        rule_id = rule_cls.rule_id
        if rule_id in self._rules:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        self._rules[rule_id] = rule_cls
        return rule_cls

    def rule_ids(self) -> List[str]:
        return sorted(self._rules)

    def create_rules(self, only: Optional[Sequence[str]] = None) -> List[LintRule]:
        ids = self.rule_ids() if only is None else list(only)
        rules: List[LintRule] = []
        for rule_id in ids:
            if rule_id not in self._rules:
                raise KeyError(f"unknown rule id {rule_id!r}")
            rules.append(self._rules[rule_id]())
        return rules

    def summaries(self) -> List[Tuple[str, str, str]]:
        """(rule id, severity, summary) rows for ``--list-rules``."""
        return [
            (rule_id, self._rules[rule_id].severity.value, self._rules[rule_id].summary)
            for rule_id in self.rule_ids()
        ]


def default_registry() -> RuleRegistry:
    """The registry with every built-in rule (imported lazily)."""
    from repro.analysis import contracts as _contracts
    from repro.analysis import rules as _rules
    from repro.analysis import taint as _taint

    registry = RuleRegistry()
    for rule_cls in (
        _rules.BUILTIN_RULES + _taint.TAINT_RULES + _contracts.CONTRACT_RULES
    ):
        registry.register(rule_cls)
    return registry


@dataclass
class LintReport:
    """Aggregate outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    directive_count: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def merge(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files_checked += other.files_checked
        self.directive_count += other.directive_count

    def sorted_findings(self) -> List[Finding]:
        return sorted(self.findings, key=Finding.sort_key)

    def render(self) -> str:
        lines = [finding.render() for finding in self.sorted_findings()]
        noun = "finding" if len(self.findings) == 1 else "findings"
        lines.append(
            f"reprolint: {len(self.findings)} {noun} in {self.files_checked} "
            f"file(s) ({len(self.suppressed)} suppressed)"
        )
        return "\n".join(lines)


def _candidate_lines(module: ProjectModule, line: int) -> Tuple[int, ...]:
    """The finding's line plus decorator lines of a def anchored there."""
    return (line,) + module.line_aliases.get(line, ())


def _directive_matches(
    directive: Directive, rule_id: str, lines: Tuple[int, ...]
) -> bool:
    if rule_id not in directive.rules and "all" not in directive.rules:
        return False
    return directive.standalone or directive.line in lines


def _suppress(
    module: ProjectModule,
    finding: Finding,
    used: Set[Tuple[str, int, int]],
) -> bool:
    """Whether a directive silences ``finding``; marks matches as used."""
    lines = _candidate_lines(module, finding.line)
    matched = False
    for directive in module.suppressions.directives:
        if _directive_matches(directive, finding.rule_id, lines):
            used.add((module.path, directive.line, directive.col))
            matched = True
    return matched


def analyze_project(
    project: Project,
    registry: Optional[RuleRegistry] = None,
    config: Optional[LintConfig] = None,
) -> LintReport:
    """Run every registered rule over an already-loaded project."""
    registry = registry or default_registry()
    config = config or LintConfig()
    report = LintReport(
        files_checked=len(project.modules) + len(project.parse_errors),
        directive_count=sum(
            m.suppressions.directive_count for m in project.modules
        ),
    )
    for path in sorted(project.parse_errors):
        line, col, message = project.parse_errors[path]
        report.findings.append(
            Finding(
                rule_id=PARSE_ERROR_RULE,
                severity=Severity.ERROR,
                path=path,
                line=line,
                col=col,
                message=f"module does not parse: {message}",
                fix_hint="fix the syntax error before linting",
            )
        )

    rules = registry.create_rules()
    raw: List[Finding] = []
    for module in sorted(project.modules, key=lambda m: m.path):
        ctx = ModuleContext(
            path=module.path, source=module.source, tree=module.tree, config=config
        )
        for rule in rules:
            if isinstance(rule, Rule):
                raw.extend(rule.check(ctx))
    for rule in rules:
        if isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(project, config))

    used: Set[Tuple[str, int, int]] = set()
    relaxed_exempt = frozenset(config.relaxed_exempt_rules)
    for finding in raw:
        if finding.rule_id in relaxed_exempt and path_matches(
            finding.path, config.relaxed_scopes
        ):
            continue  # not applicable under the relaxed profile
        module = project.module_at(finding.path)
        if module is not None and _suppress(module, finding, used):
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)

    # Stale-suppression pass: every directive must have earned its keep.
    for module in sorted(project.modules, key=lambda m: m.path):
        for directive in module.suppressions.directives:
            if (module.path, directive.line, directive.col) in used:
                continue
            if STALE_SUPPRESSION_RULE in directive.rules:
                continue
            stale = Finding(
                rule_id=STALE_SUPPRESSION_RULE,
                severity=Severity.WARNING,
                path=module.path,
                line=directive.line,
                col=directive.col,
                message=(
                    f"suppression of {', '.join(directive.rules)} silences "
                    "no finding"
                ),
                fix_hint=_STALE_FIX_HINT,
            )
            if _suppress(module, stale, used):
                report.suppressed.append(stale)
            else:
                report.findings.append(stale)

    report.findings.sort(key=Finding.sort_key)
    return report


def analyze_source(
    source: str,
    path: str,
    registry: Optional[RuleRegistry] = None,
    config: Optional[LintConfig] = None,
) -> LintReport:
    """Lint one module given as a string (a single-module project)."""
    project = Project()
    project.add_source(path, source)
    return analyze_project(project, registry, config)


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Every ``.py`` file under ``paths``, sorted, hidden dirs skipped."""
    for _root, file_path in _iter_with_roots(paths):
        yield file_path


def _iter_with_roots(paths: Iterable[str]) -> Iterator[Tuple[str, str]]:
    """(scan root, file path) pairs; the root anchors module naming."""
    for path in sorted(paths):
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield "", path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs if not d.startswith(".") and d != "__pycache__"
            )
            for name in sorted(files):
                if name.endswith(".py"):
                    yield path, os.path.join(root, name)


def analyze_paths(
    paths: Iterable[str],
    registry: Optional[RuleRegistry] = None,
    config: Optional[LintConfig] = None,
) -> LintReport:
    """Lint every Python file under ``paths`` as one whole program."""
    config = config or LintConfig()
    project = Project()
    for root, file_path in _iter_with_roots(paths):
        if path_matches(file_path, config.exclude_paths):
            continue
        with open(file_path, "r", encoding="utf-8") as handle:
            source = handle.read()
        project.add_source(file_path, source, root)
    return analyze_project(project, registry, config)
