"""R011 — interprocedural nondeterminism taint analysis.

The syntactic rules R001/R002 flag a stray RNG or wall-clock read *where it
happens*; this pass answers the harder question: does that value ever reach
code whose output is digested?  A single ``time.time()`` in a helper module
is invisible to per-module linting, but if ``engine.runner`` calls a chain
of functions ending at that helper, the experiment digests stop being
reproducible — exactly the failure mode the parallel engine's bit-identity
contract forbids.

The analysis is function-granular: a *source* is a call (or attribute read)
that produces a nondeterministic value — unseeded ``random``/
``numpy.random`` APIs, wall-clock reads, ``os.environ``/``os.getenv``/
``os.urandom``, ``uuid.uuid1/uuid4``, ``secrets.*`` and the builtin
``hash()`` (salted per process unless ``PYTHONHASHSEED`` is pinned).  A
*sink* is any function defined in a module matching
``LintConfig.taint_sink_scopes`` (the engine and experiment layers, whose
state feeds the digests).  A finding fires when BFS over *caller* edges
connects a source-bearing function to a sink, and the message carries the
full chain, sink first — the shortest such chain, with ties broken on
sorted qualname so reports are stable.

Suppressing the underlying syntactic rule also silences the taint path
through that line: a ``# reprolint: disable=R002`` on a sanctioned
wall-clock read (progress output, say) means the project has already
accepted that value, and R011 must not resurrect the argument.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Optional, Set, Tuple, Type

from repro.analysis.callgraph import call_chain
from repro.analysis.engine import LintConfig, ProjectRule, path_matches
from repro.analysis.findings import Finding, Severity
from repro.analysis.project import Project

#: Unseeded global-RNG call tails (mirrors R001's table).
_RNG_TAILS = frozenset(
    ("random", tail)
    for tail in (
        "seed",
        "RandomState",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
    )
)

#: Wall-clock call tails (mirrors R002's table).
_CLOCK_TAILS = frozenset(
    [
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("time", "process_time"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    ]
)
_CLOCK_NO_ARG_TAILS = frozenset(
    [("time", "strftime"), ("time", "localtime"), ("time", "gmtime")]
)

#: Environment / process-identity call tails.
_ENV_TAILS = frozenset([("os", "getenv"), ("os", "urandom")])
_UUID_TAILS = frozenset([("uuid", "uuid1"), ("uuid", "uuid4")])


@dataclass(frozen=True)
class TaintSource:
    """One nondeterministic value produced inside a function body."""

    line: int
    col: int
    #: Human label, e.g. ``"time.time()"`` or ``"os.environ"``.
    label: str
    #: The syntactic rule covering this construct (R001/R002), if any;
    #: suppressing it on the source line also silences the taint path.
    base_rule: Optional[str]


def iter_sources(node: ast.AST) -> Iterator[TaintSource]:
    """Every nondeterminism source in a function body, in AST walk order.

    Nested defs and lambdas are included — they execute on behalf of the
    enclosing function, which is where the call graph attributes them.
    """
    seen: Set[Tuple[int, int]] = set()
    for sub in ast.walk(node):
        source: Optional[TaintSource] = None
        if isinstance(sub, ast.Call):
            source = _call_source(sub)
        elif isinstance(sub, ast.Attribute):
            chain = call_chain(sub)
            if chain is not None and chain[-2:] == ("os", "environ"):
                source = TaintSource(sub.lineno, sub.col_offset, "os.environ", None)
        if source is None or (source.line, source.col) in seen:
            continue
        seen.add((source.line, source.col))
        yield source


def _call_source(node: ast.Call) -> Optional[TaintSource]:
    chain = call_chain(node.func)
    if chain is None:
        return None
    if len(chain) == 1:
        if chain[0] == "hash" and node.args:
            return TaintSource(
                node.lineno, node.col_offset, "builtin hash()", None
            )
        # Bare-name calls of from-imported sources: ``from os import
        # urandom`` / ``from numpy.random import default_rng`` shed the
        # module prefix that the dotted tables below key on.
        if chain[0] == "urandom":
            return TaintSource(node.lineno, node.col_offset, "os.urandom()", None)
        if chain[0] == "default_rng" and not node.args and not node.keywords:
            return TaintSource(
                node.lineno, node.col_offset, "unseeded default_rng()", "R001"
            )
        return None
    tail = (chain[-2], chain[-1])
    name = ".".join(chain)
    if tail in _RNG_TAILS:
        return TaintSource(node.lineno, node.col_offset, f"{name}()", "R001")
    if tail == ("random", "default_rng") and not node.args and not node.keywords:
        return TaintSource(
            node.lineno, node.col_offset, "unseeded default_rng()", "R001"
        )
    if tail in _CLOCK_TAILS:
        return TaintSource(node.lineno, node.col_offset, f"{name}()", "R002")
    if tail in _CLOCK_NO_ARG_TAILS and len(node.args) < 2 and not node.keywords:
        return TaintSource(node.lineno, node.col_offset, f"{name}()", "R002")
    if tail in _ENV_TAILS or tail in _UUID_TAILS or chain[0] == "secrets":
        return TaintSource(node.lineno, node.col_offset, f"{name}()", None)
    return None


class NondeterminismTaintRule(ProjectRule):
    """R011 — nondeterminism must not flow into digest-relevant code."""

    rule_id = "R011"
    severity = Severity.ERROR
    summary = (
        "no call chain from engine/experiment code down to an RNG, "
        "wall-clock, environment or hash-order source"
    )
    fix_hint = (
        "thread a seeded stream (simkit.rng) or simulated time down the "
        "reported call chain instead of reading ambient state"
    )

    def check_project(
        self, project: Project, config: LintConfig
    ) -> Iterator[Finding]:
        graph = project.callgraph
        sinks = {
            qualname
            for qualname, info in graph.functions.items()
            if path_matches(info.module_path, config.taint_sink_scopes)
        }
        if not sinks:
            return

        def is_sink(qualname: str) -> bool:
            return qualname in sinks

        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            module = project.module_at(info.module_path)
            if module is None:
                continue
            # The RNG home module constructs generators by design.
            if path_matches(info.module_path, config.rng_modules):
                continue
            chain: Optional[Tuple[str, ...]] = None
            for source in iter_sources(info.node):
                if source.base_rule is not None and module.suppressions.is_suppressed(
                    source.base_rule, source.line
                ):
                    continue
                if chain is None:
                    path = graph.shortest_caller_path(qualname, is_sink)
                    if path is None:
                        break  # no sink reaches this function at all
                    chain = tuple(path)
                yield self.project_finding(
                    path=info.module_path,
                    line=source.line,
                    col=source.col,
                    message=self._message(source, chain),
                )

    def _message(self, source: TaintSource, chain: Tuple[str, ...]) -> str:
        if len(chain) == 1:
            return (
                f"nondeterministic value from {source.label} inside "
                f"digest-relevant function {chain[0]}"
            )
        return (
            f"nondeterministic value from {source.label} reaches "
            f"digest-relevant function {chain[0]} via call chain "
            f"{' -> '.join(chain)}"
        )


TAINT_RULES: Tuple[Type[ProjectRule], ...] = (NondeterminismTaintRule,)
