"""Machine-readable lint output: JSON and SARIF 2.1.0.

The JSON form is reprolint's own schema — the ratchet gate consumes it.
The SARIF form targets GitHub code scanning: one run, one ``reprolint``
driver, rule metadata from the registry, and a stable
``partialFingerprints`` entry per result so annotations survive rebases.
Both serializations are deterministic (sorted findings, sorted keys left
to the caller's ``json.dumps``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.analysis.engine import (
    PARSE_ERROR_RULE,
    STALE_SUPPRESSION_RULE,
    LintReport,
    RuleRegistry,
    default_registry,
)

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Engine-level pseudo-rules that never appear in the registry.
_ENGINE_RULES = {
    PARSE_ERROR_RULE: "file does not parse",
    STALE_SUPPRESSION_RULE: "suppression directive silences no finding",
}


def report_to_json(report: LintReport) -> Dict[str, Any]:
    """The ratchet-gate schema: findings plus run-level counters."""
    return {
        "findings": [f.to_dict() for f in report.sorted_findings()],
        "suppressed": [
            f.to_dict() for f in sorted(report.suppressed, key=lambda f: f.sort_key())
        ],
        "files_checked": report.files_checked,
        "directive_count": report.directive_count,
        "clean": report.clean,
    }


def _sarif_rules(registry: RuleRegistry, used_ids: List[str]) -> List[Dict[str, Any]]:
    known = {rule_id: summary for rule_id, _sev, summary in registry.summaries()}
    known.update(_ENGINE_RULES)
    rules: List[Dict[str, Any]] = []
    for rule_id in sorted(set(used_ids) | set(known)):
        rules.append(
            {
                "id": rule_id,
                "shortDescription": {"text": known.get(rule_id, rule_id)},
            }
        )
    return rules


def report_to_sarif(
    report: LintReport, registry: Optional[RuleRegistry] = None
) -> Dict[str, Any]:
    """A single-run SARIF 2.1.0 log of the report's findings."""
    registry = registry or default_registry()
    findings = report.sorted_findings()
    results: List[Dict[str, Any]] = []
    for finding in findings:
        results.append(
            {
                "ruleId": finding.rule_id,
                "level": finding.severity.value,
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": finding.path.replace("\\", "/")},
                            "region": {
                                "startLine": max(finding.line, 1),
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
                "partialFingerprints": {"reprolint/v1": finding.fingerprint()},
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": "docs/ANALYSIS.md",
                        "rules": _sarif_rules(
                            registry, [f.rule_id for f in findings]
                        ),
                    }
                },
                "results": results,
            }
        ],
    }
