"""Project-wide symbol table and approximate call graph.

Python call resolution without running the program is necessarily
approximate; this module implements the cheap four-step resolution that is
*good enough* for the contract rules and the taint pass, in one extra AST
walk over an already-parsed :class:`~repro.analysis.project.Project`:

1. **Bindings** — a plain name resolves through function-local imports,
   then the module's own top-level defs, then module-level import aliases
   (``from repro.perf.cache import clear_caches`` makes ``clear_caches()``
   an edge to ``repro.perf.cache.clear_caches``).
2. **Self/cls dispatch** — ``self.m()`` inside a method resolves in the
   enclosing class, then its project-internal bases, depth-first.
3. **Constructors** — a call that resolves to a class becomes an edge to
   its ``__init__`` when one is defined.
4. **Unique-method fallback** — ``obj.m()`` on an untyped receiver resolves
   iff exactly one class in the whole project defines method ``m``.  This
   is what connects ``self._grid.remove_point(...)`` to
   ``SpatialGrid.remove_point`` without type inference.

Nested functions and lambdas are *inlined* into their enclosing function:
their call sites belong to the outer def (a closure executes on behalf of
its owner, and findings need a stable anchor).  Module-level statements are
outside every function and contribute no edges — the syntactic rules
R001/R002 already cover direct violations there.

All tables are keyed by dotted qualname and iterated in sorted order, so
graph construction and every traversal is deterministic.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.project import Project, ProjectModule

#: A predicate over function qualnames, used to direct BFS searches.
CallerGoal = Callable[[str], bool]

_FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


def call_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """The attribute chain of a call target: ``a.b.c`` → ``("a","b","c")``.

    Returns ``None`` for computed targets (subscripts, calls, literals)
    that name-based resolution cannot follow.
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return tuple(reversed(parts))
    return None


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method, addressable by dotted qualname."""

    qualname: str
    name: str
    module_name: str
    module_path: str
    line: int
    node: ast.AST
    #: Qualname of the enclosing class, or ``None`` for module-level defs.
    class_qualname: Optional[str] = None


@dataclass
class ClassInfo:
    """One class: its methods and (resolved-where-possible) bases."""

    qualname: str
    name: str
    module_name: str
    #: Base classes resolved to project-internal class qualnames; external
    #: bases (``abc.ABC``, ``Protocol``) are dropped — they cannot carry
    #: project methods.
    bases: Tuple[str, ...] = ()
    methods: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class CallEdge:
    """A resolved call: ``caller`` invokes ``callee`` at ``line``."""

    caller: str
    callee: str
    line: int


class CallGraph:
    """Symbol table + call edges for one :class:`Project`."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.edges: List[CallEdge] = []
        self.out_edges: Dict[str, List[CallEdge]] = {}
        self.in_edges: Dict[str, List[CallEdge]] = {}
        #: method name → sorted qualnames of every definition project-wide.
        self.method_index: Dict[str, List[str]] = {}
        #: Every identifier mentioned anywhere: ``Name.id``, attribute
        #: names, import aliases and identifier-shaped string constants.
        #: The raw material for reachability-style dead-code checks.
        self.referenced_names: Set[str] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, project: Project) -> "CallGraph":
        graph = cls()
        modules = sorted(project.modules, key=lambda m: m.name)
        for module in modules:
            graph._collect_definitions(module)
        for module in modules:
            graph._collect_references(module)
        graph._index_methods()
        graph._resolve_bases(project)
        for module in modules:
            graph._collect_calls(module)
        graph._index_edges()
        return graph

    def _collect_definitions(self, module: ProjectModule) -> None:
        for stmt in module.tree.body:
            if isinstance(stmt, _FunctionNode):
                self._add_function(module, stmt, class_qualname=None)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(module, stmt)

    def _add_function(
        self,
        module: ProjectModule,
        node: ast.AST,
        class_qualname: Optional[str],
    ) -> None:
        name = getattr(node, "name", "<lambda>")
        owner = class_qualname or module.name
        info = FunctionInfo(
            qualname=f"{owner}.{name}",
            name=name,
            module_name=module.name,
            module_path=module.path,
            line=getattr(node, "lineno", 1),
            node=node,
            class_qualname=class_qualname,
        )
        self.functions.setdefault(info.qualname, info)

    def _add_class(self, module: ProjectModule, node: ast.ClassDef) -> None:
        qualname = f"{module.name}.{node.name}"
        info = ClassInfo(qualname=qualname, name=node.name, module_name=module.name)
        raw_bases: List[str] = []
        for base in node.bases:
            chain = call_chain(base)
            if chain is not None:
                raw_bases.append(".".join(chain))
        info.bases = tuple(raw_bases)  # resolved against the project later
        for stmt in node.body:
            if isinstance(stmt, _FunctionNode):
                info.methods[stmt.name] = f"{qualname}.{stmt.name}"
                self._add_function(module, stmt, class_qualname=qualname)
        self.classes.setdefault(qualname, info)

    def _index_methods(self) -> None:
        for qualname in sorted(self.functions):
            info = self.functions[qualname]
            if info.class_qualname is not None:
                self.method_index.setdefault(info.name, []).append(qualname)

    def _resolve_bases(self, project: Project) -> None:
        for qualname in sorted(self.classes):
            info = self.classes[qualname]
            module = project.module_named(info.module_name)
            if module is None:
                continue
            resolved: List[str] = []
            for raw in info.bases:
                target = self._resolve_dotted(raw, module)
                if target is not None and target in self.classes:
                    resolved.append(target)
            info.bases = tuple(resolved)

    def _resolve_dotted(self, dotted: str, module: ProjectModule) -> Optional[str]:
        """Map a written name to a project qualname via module bindings."""
        parts = dotted.split(".")
        head = parts[0]
        local = f"{module.name}.{head}"
        if local in self.classes or local in self.functions:
            return ".".join([local] + parts[1:])
        bound = module.import_bindings.get(head)
        if bound is not None:
            return ".".join([bound] + parts[1:])
        return None

    def _collect_references(self, module: ProjectModule) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Name):
                self.referenced_names.add(node.id)
            elif isinstance(node, ast.Attribute):
                self.referenced_names.add(node.attr)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                if node.value.isidentifier():
                    self.referenced_names.add(node.value)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    self.referenced_names.add(alias.name.split(".")[-1])
                    if alias.asname:
                        self.referenced_names.add(alias.asname)

    # ------------------------------------------------------------------
    # Call extraction
    # ------------------------------------------------------------------

    def _collect_calls(self, module: ProjectModule) -> None:
        for qualname in sorted(self.functions):
            info = self.functions[qualname]
            if info.module_name != module.name or info.module_path != module.path:
                continue
            local_bindings = self._local_import_bindings(module, info.node)
            for call in self._iter_calls(info.node):
                chain = call_chain(call.func)
                if chain is None:
                    continue
                callee = self._resolve_call(chain, module, info, local_bindings)
                if callee is not None and callee != qualname:
                    self.edges.append(CallEdge(qualname, callee, call.lineno))

    @staticmethod
    def _local_import_bindings(
        module: ProjectModule, node: ast.AST
    ) -> Dict[str, str]:
        bindings: Dict[str, str] = {}
        for sub in ast.walk(node):
            if isinstance(sub, ast.Import):
                for alias in sub.names:
                    name = alias.asname or alias.name.split(".")[0]
                    bindings[name] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(sub, ast.ImportFrom):
                target = module._resolve_from(sub)
                if target is None:
                    continue
                for alias in sub.names:
                    if alias.name != "*":
                        bindings[alias.asname or alias.name] = f"{target}.{alias.name}"
        return bindings

    @staticmethod
    def _iter_calls(node: ast.AST) -> Iterator[ast.Call]:
        """All calls in a function, nested defs and lambdas included."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                yield sub

    def _resolve_call(
        self,
        chain: Tuple[str, ...],
        module: ProjectModule,
        caller: FunctionInfo,
        local_bindings: Dict[str, str],
    ) -> Optional[str]:
        head = chain[0]
        # Step 2: self/cls dispatch through the project-internal MRO.
        if head in ("self", "cls") and caller.class_qualname is not None:
            if len(chain) == 2:
                target = self._lookup_method(caller.class_qualname, chain[1])
                if target is not None:
                    return target
            return self._unique_method(chain[-1])
        # Step 1: bindings — local imports shadow module defs shadow
        # module-level import aliases.
        prefix: Optional[str] = None
        if head in local_bindings:
            prefix = local_bindings[head]
        else:
            local = f"{module.name}.{head}"
            if local in self.functions or local in self.classes:
                prefix = local
            elif head in module.import_bindings:
                prefix = module.import_bindings[head]
        if prefix is not None:
            dotted = ".".join([prefix] + list(chain[1:]))
            resolved = self._lookup_qualname(dotted)
            if resolved is not None:
                return resolved
        # Step 4: unique-method fallback for attribute calls on untyped
        # receivers (the common ``self._grid.remove_point(...)`` shape).
        if len(chain) >= 2:
            return self._unique_method(chain[-1])
        return None

    def _lookup_qualname(self, dotted: str) -> Optional[str]:
        if dotted in self.functions:
            return dotted
        if dotted in self.classes:
            # Step 3: constructing a class calls its __init__.
            return self.classes[dotted].methods.get("__init__")
        # ``ClassName.method`` called unbound, or through a module alias.
        if "." in dotted:
            owner, attr = dotted.rsplit(".", 1)
            if owner in self.classes:
                target = self._lookup_method(owner, attr)
                if target is not None:
                    return target
        return None

    def _lookup_method(self, class_qualname: str, method: str) -> Optional[str]:
        seen: Set[str] = set()
        queue: List[str] = [class_qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            queue.extend(info.bases)
        return None

    def _unique_method(self, method: str) -> Optional[str]:
        candidates = self.method_index.get(method, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _index_edges(self) -> None:
        self.edges.sort(key=lambda e: (e.caller, e.callee, e.line))
        for edge in self.edges:
            self.out_edges.setdefault(edge.caller, []).append(edge)
            self.in_edges.setdefault(edge.callee, []).append(edge)

    # ------------------------------------------------------------------
    # Traversal helpers
    # ------------------------------------------------------------------

    def reachable_from(self, qualname: str) -> Set[str]:
        """Every function transitively callable from ``qualname``."""
        seen: Set[str] = set()
        queue: List[str] = [qualname]
        while queue:
            current = queue.pop(0)
            for edge in self.out_edges.get(current, []):
                if edge.callee not in seen:
                    seen.add(edge.callee)
                    queue.append(edge.callee)
        return seen

    def shortest_caller_path(
        self, target: str, is_goal: CallerGoal
    ) -> Optional[List[str]]:
        """BFS over *caller* edges from ``target`` to the nearest goal.

        Returns the path goal-first (``[goal, ..., target]``), which reads
        in call order: the goal invokes its way down to ``target``.  Ties
        break on sorted qualname, so reported chains are stable.
        """
        if is_goal(target):
            return [target]
        parents: Dict[str, str] = {}
        seen: Set[str] = {target}
        frontier: List[str] = [target]
        while frontier:
            next_frontier: List[str] = []
            for current in frontier:
                for edge in self.in_edges.get(current, []):
                    caller = edge.caller
                    if caller in seen:
                        continue
                    seen.add(caller)
                    parents[caller] = current
                    if is_goal(caller):
                        path = [caller]
                        while path[-1] != target:
                            path.append(parents[path[-1]])
                        return path
                    next_frontier.append(caller)
            frontier = sorted(next_frontier)
        return None
