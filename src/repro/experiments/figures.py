"""Regeneration harnesses for the paper's Figures 11, 12, 14 and 15.

Figures 11 (total hops), 12 (per-destination hops) and 14 (energy) all
derive from the *same* sweep over group sizes — run it once with
:func:`run_group_size_sweep` and feed the result to each figure function.
Figure 15 (failed tasks vs. density) has its own sweep.

Absolute numbers will differ from the paper (our substrate is not ns-2.27);
the claims under test are the *shapes*: protocol ordering, the ~25% GMP
advantage in total hops/energy, per-destination parity with GRD, and the
failure ordering LGS > PBM > GMP at low densities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine import EngineConfig, TaskResult, summarize_results
from repro.experiments.config import ExperimentScale, PaperConfig
from repro.experiments.sweep import (
    ProtocolSpec,
    build_protocol,
    cached_network,
    run_tasks,
    select_best_lambda,
)
from repro.sessions.workload import MulticastTask, generate_tasks
from repro.perf.counters import GLOBAL_COUNTERS, merge_worker_perf
from repro.perf.parallel import run_units
from repro.simkit.rng import RandomStreams

ProgressFn = Callable[[str], None]

#: Display labels used across figures and reports.
LABEL_GMP = "GMP"
LABEL_GMPNR = "GMPnr"
LABEL_LGS = "LGS"
LABEL_PBM = "PBM"
LABEL_SMT = "SMT"
LABEL_GRD = "GRD"


@dataclass
class FigureResult:
    """One regenerated figure: named series of ``(x, y)`` points."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)

    def labels(self) -> List[str]:
        return list(self.series)

    def xs(self) -> List[float]:
        first = next(iter(self.series.values()), [])
        return [x for x, _ in first]

    def value(self, label: str, x: float) -> float:
        """The y value of ``label``'s series at ``x``."""
        for px, py in self.series[label]:
            if px == x:
                return py
        raise KeyError(f"series {label!r} has no point at x={x}")

    def to_json_dict(self) -> Dict:
        return {
            "figure_id": self.figure_id,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "series": {k: list(map(list, v)) for k, v in self.series.items()},
        }

    @classmethod
    def from_json_dict(cls, payload: Dict) -> "FigureResult":
        """Inverse of :meth:`to_json_dict` (for post-hoc analysis of saved runs)."""
        return cls(
            figure_id=payload["figure_id"],
            title=payload["title"],
            x_label=payload["x_label"],
            y_label=payload["y_label"],
            series={
                label: [(float(x), float(y)) for x, y in points]
                for label, points in payload["series"].items()
            },
        )


@dataclass
class GroupSizeSweep:
    """Raw task results of the shared k-sweep: label -> k -> results."""

    config: PaperConfig
    scale: ExperimentScale
    results: Dict[str, Dict[int, List[TaskResult]]] = field(default_factory=dict)

    def add(self, label: str, group_size: int, batch: Sequence[TaskResult]) -> None:
        self.results.setdefault(label, {}).setdefault(group_size, []).extend(batch)

    def mean_metric(
        self, label: str, group_size: int, metric: Callable[[TaskResult], float]
    ) -> float:
        batch = self.results[label][group_size]
        return sum(metric(r) for r in batch) / len(batch)


def _default_engine_config(config: PaperConfig) -> EngineConfig:
    return EngineConfig(max_path_length=config.max_path_length)


#: One work unit's payload: the task batch plus the perf-counter delta the
#: unit accumulated while computing it (merged back by the parent when the
#: unit ran in a worker process).
UnitOutput = Tuple[List[TaskResult], Dict[str, float]]


def _sweep_specs(scale: ExperimentScale, include_grd: bool) -> List[ProtocolSpec]:
    """Canonical per-cell protocol spec order for the shared k-sweep."""
    specs: List[ProtocolSpec] = [
        (LABEL_GMP,),
        (LABEL_GMPNR,),
        (LABEL_LGS,),
        (LABEL_SMT,),
    ]
    if include_grd:
        specs.append((LABEL_GRD,))
    specs.extend((LABEL_PBM, lam) for lam in scale.lambdas)
    return specs


def _sweep_tasks(
    config: PaperConfig, scale: ExperimentScale, net_index: int, group_size: int
) -> List[MulticastTask]:
    """The (network, k) cell's task batch, re-derived from the master seed."""
    network = cached_network(config, net_index)
    streams = RandomStreams(config.master_seed)
    return generate_tasks(
        network,
        scale.tasks_per_network,
        group_size,
        streams.stream("workload", net_index, group_size),
        first_task_id=net_index * 10_000 + group_size * 100,
    )


def run_sweep_unit(
    config: PaperConfig,
    scale: ExperimentScale,
    engine: EngineConfig,
    net_index: int,
    group_size: int,
    spec: ProtocolSpec,
) -> UnitOutput:
    """One (network, k, protocol) unit of the shared sweep.

    A pure function of its (picklable) arguments: the network and task batch
    are re-derived from seeds inside the executing process, so the result is
    identical whether it runs inline or in a pool worker.
    """
    network = cached_network(config, net_index)
    tasks = _sweep_tasks(config, scale, net_index, group_size)
    before = GLOBAL_COUNTERS.snapshot()
    batch = run_tasks(network, build_protocol(spec), tasks, engine)
    return batch, GLOBAL_COUNTERS.delta_since(before)


def run_group_size_sweep(
    config: PaperConfig | None = None,
    scale: ExperimentScale | None = None,
    engine_config: EngineConfig | None = None,
    include_grd: bool = True,
    progress: Optional[ProgressFn] = None,
    workers: int = 1,
) -> GroupSizeSweep:
    """The shared sweep behind Figures 11, 12 and 14.

    For each seeded network and each group size ``k``, the *same* tasks are
    run under GMP, GMPnr, LGS, SMT, (optionally) GRD, and PBM with the
    paper's per-task best-lambda selection.

    The work is sharded one unit per (network, k, protocol-or-lambda) and
    executed through :func:`repro.perf.parallel.run_units` — the same code
    path whether serial or parallel.  ``workers > 1`` distributes units over
    a process pool; the aggregated result is bit-identical to ``workers=1``
    because every unit is deterministic in its arguments, units are merged
    in canonical cell order, and PBM's per-task best-lambda selection runs
    at merge time via :func:`~repro.experiments.sweep.select_best_lambda`
    exactly as in the serial path.
    """
    from repro.experiments.config import QUICK_SCALE

    cfg = config or PaperConfig()
    scl = scale or QUICK_SCALE
    engine = engine_config or _default_engine_config(cfg)
    sweep = GroupSizeSweep(config=cfg, scale=scl)
    specs = _sweep_specs(scl, include_grd)
    fixed_count = len(specs) - len(scl.lambdas)
    cells = [
        (net_index, k)
        for net_index in range(scl.network_count)
        for k in scl.group_sizes
    ]
    units = [
        (cfg, scl, engine, net_index, k, spec)
        for net_index, k in cells
        for spec in specs
    ]

    finished = 0

    def cell_progress(_unit_message: str) -> None:
        # Units are reported in submission order, so every len(specs)-th
        # completion closes one (network, k) cell.
        nonlocal finished
        finished += 1
        if progress is not None and finished % len(specs) == 0:
            net_index, k = cells[finished // len(specs) - 1]
            progress(f"network {net_index + 1}/{scl.network_count} k={k} done")

    outputs = run_units(
        run_sweep_unit,
        units,
        workers=workers,
        progress=None if progress is None else cell_progress,
    )
    merge_worker_perf(
        (delta for _, delta in outputs),
        used_pool=workers > 1 and len(units) > 1,
    )

    index = 0
    for _, k in cells:
        per_spec = [batch for batch, _ in outputs[index : index + len(specs)]]
        index += len(specs)
        for spec, batch in zip(specs[:fixed_count], per_spec[:fixed_count]):
            sweep.add(str(spec[0]), k, batch)
        sweep.add(LABEL_PBM, k, select_best_lambda(per_spec[fixed_count:]))
    return sweep


def _series_from_sweep(
    sweep: GroupSizeSweep,
    metric: Callable[[TaskResult], float],
    labels: Sequence[str],
) -> Dict[str, List[Tuple[float, float]]]:
    return {
        label: [
            (float(k), sweep.mean_metric(label, k, metric))
            for k in sweep.scale.group_sizes
        ]
        for label in labels
        if label in sweep.results
    }


def figure11(sweep: GroupSizeSweep) -> FigureResult:
    """Figure 11: total number of hops in the multicast tree vs. k."""
    labels = [LABEL_PBM, LABEL_LGS, LABEL_GMP, LABEL_GMPNR, LABEL_SMT]
    return FigureResult(
        figure_id="figure11",
        title="Total number of hops",
        x_label="number of destinations (k)",
        y_label="mean transmissions per task",
        series=_series_from_sweep(sweep, lambda r: float(r.transmissions), labels),
    )


def figure12(sweep: GroupSizeSweep) -> FigureResult:
    """Figure 12: average per-destination hop count vs. k."""
    labels = [LABEL_PBM, LABEL_LGS, LABEL_GMP, LABEL_SMT, LABEL_GRD]
    return FigureResult(
        figure_id="figure12",
        title="Per-destination hop count",
        x_label="number of destinations (k)",
        y_label="mean hops per delivered destination",
        series=_series_from_sweep(
            sweep, lambda r: r.average_per_destination_hops, labels
        ),
    )


def figure14(sweep: GroupSizeSweep) -> FigureResult:
    """Figure 14: total energy cost vs. k (senders + all listeners)."""
    labels = [LABEL_PBM, LABEL_LGS, LABEL_GMP, LABEL_GMPNR, LABEL_SMT]
    return FigureResult(
        figure_id="figure14",
        title="Total energy cost",
        x_label="number of destinations (k)",
        y_label="mean energy per task (J)",
        series=_series_from_sweep(sweep, lambda r: r.energy_joules, labels),
    )


def run_density_unit(
    config: PaperConfig,
    scale: ExperimentScale,
    engine: EngineConfig,
    net_index: int,
    node_count: int,
    spec: ProtocolSpec,
) -> UnitOutput:
    """One (density, network, protocol) unit of the Figure-15 sweep."""
    network = cached_network(config, net_index, node_count=node_count)
    streams = RandomStreams(config.master_seed)
    tasks = generate_tasks(
        network,
        scale.tasks_per_network,
        scale.density_group_size,
        streams.stream("workload-density", net_index, node_count),
        first_task_id=net_index * 10_000,
    )
    before = GLOBAL_COUNTERS.snapshot()
    batch = run_tasks(network, build_protocol(spec), tasks, engine)
    return batch, GLOBAL_COUNTERS.delta_since(before)


def figure15(
    config: PaperConfig | None = None,
    scale: ExperimentScale | None = None,
    engine_config: EngineConfig | None = None,
    pbm_lambda: float = 0.3,
    progress: Optional[ProgressFn] = None,
    workers: int = 1,
) -> FigureResult:
    """Figure 15: failed tasks vs. network density.

    k = 12 destinations, TTL = 100 hops; only the protocols with perimeter
    recovery semantics are compared (PBM, LGS, GMP), exactly as in the
    paper.  The y value is the failure count normalized to the paper's
    1000-task total.  Sharded one unit per (density, network, protocol) via
    :func:`repro.perf.parallel.run_units`; the result is bit-identical for
    any worker count.
    """
    from repro.experiments.config import QUICK_SCALE

    cfg = config or PaperConfig()
    scl = scale or QUICK_SCALE
    engine = engine_config or _default_engine_config(cfg)
    specs: List[ProtocolSpec] = [
        (LABEL_PBM, pbm_lambda),
        (LABEL_LGS,),
        (LABEL_GMP,),
    ]
    cells = [
        (node_count, net_index)
        for node_count in scl.density_node_counts
        for net_index in range(scl.network_count)
    ]
    units = [
        (cfg, scl, engine, net_index, node_count, spec)
        for node_count, net_index in cells
        for spec in specs
    ]

    finished = 0

    def cell_progress(_unit_message: str) -> None:
        nonlocal finished
        finished += 1
        if progress is not None and finished % len(specs) == 0:
            node_count, net_index = cells[finished // len(specs) - 1]
            progress(
                f"density {node_count}: network {net_index + 1}/{scl.network_count} done"
            )

    outputs = run_units(
        run_density_unit,
        units,
        workers=workers,
        progress=None if progress is None else cell_progress,
    )
    merge_worker_perf(
        (delta for _, delta in outputs),
        used_pool=workers > 1 and len(units) > 1,
    )

    failures: Dict[str, List[Tuple[float, float]]] = {
        str(spec[0]): [] for spec in specs
    }
    total_tasks = scl.network_count * scl.tasks_per_network
    index = 0
    counts: Dict[str, int] = {}
    for node_count, net_index in cells:
        if net_index == 0:
            counts = {str(spec[0]): 0 for spec in specs}
        for spec, (batch, _) in zip(specs, outputs[index : index + len(specs)]):
            counts[str(spec[0])] += sum(0 if r.success else 1 for r in batch)
        index += len(specs)
        if net_index == scl.network_count - 1:
            for spec in specs:
                label = str(spec[0])
                # Normalize to the paper's 1000-task denominator.
                failures[label].append(
                    (float(node_count), counts[label] * 1000.0 / total_tasks)
                )
    return FigureResult(
        figure_id="figure15",
        title="Number of failed tasks for different network densities",
        x_label="number of nodes",
        y_label="failed tasks (per 1000)",
        series=failures,
    )


def figure_latency(sweep: GroupSizeSweep) -> FigureResult:
    """Extension figure: mean task completion time vs. group size.

    Not in the paper (ns-2 latency depends on MAC contention, which we do
    not model); in our substrate completion time is hop-depth times airtime
    along the slowest branch, so this is effectively a maximum-depth view
    of the multicast trees — sequential protocols (LGS) fare worst.
    """
    labels = [LABEL_PBM, LABEL_LGS, LABEL_GMP, LABEL_SMT, LABEL_GRD]
    return FigureResult(
        figure_id="latency",
        title="Task completion time (extension)",
        x_label="number of destinations (k)",
        y_label="mean time to quiescence (ms)",
        series=_series_from_sweep(
            sweep, lambda r: 1000.0 * r.duration_s, labels
        ),
    )


def delivery_summary(sweep: GroupSizeSweep) -> Dict[str, Dict[int, float]]:
    """Delivery ratio per protocol and group size (diagnostic, not a figure)."""
    out: Dict[str, Dict[int, float]] = {}
    for label, by_k in sweep.results.items():
        out[label] = {
            k: summarize_results(batch).delivery_ratio for k, batch in by_k.items()
        }
    return out
