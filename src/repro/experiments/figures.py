"""Regeneration harnesses for the paper's Figures 11, 12, 14 and 15.

Figures 11 (total hops), 12 (per-destination hops) and 14 (energy) all
derive from the *same* sweep over group sizes — run it once with
:func:`run_group_size_sweep` and feed the result to each figure function.
Figure 15 (failed tasks vs. density) has its own sweep.

Absolute numbers will differ from the paper (our substrate is not ns-2.27);
the claims under test are the *shapes*: protocol ordering, the ~25% GMP
advantage in total hops/energy, per-destination parity with GRD, and the
failure ordering LGS > PBM > GMP at low densities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine import EngineConfig, TaskResult, summarize_results
from repro.experiments.config import ExperimentScale, PaperConfig
from repro.experiments.sweep import best_lambda_results, make_network, run_tasks
from repro.experiments.workload import generate_tasks
from repro.routing.base import RoutingProtocol
from repro.routing.gmp import GMPProtocol
from repro.routing.grd import GRDProtocol
from repro.routing.lgs import LGSProtocol
from repro.routing.pbm import PBMProtocol
from repro.routing.smt import SMTProtocol
from repro.simkit.rng import RandomStreams

ProgressFn = Callable[[str], None]

#: Display labels used across figures and reports.
LABEL_GMP = "GMP"
LABEL_GMPNR = "GMPnr"
LABEL_LGS = "LGS"
LABEL_PBM = "PBM"
LABEL_SMT = "SMT"
LABEL_GRD = "GRD"


@dataclass
class FigureResult:
    """One regenerated figure: named series of ``(x, y)`` points."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)

    def labels(self) -> List[str]:
        return list(self.series)

    def xs(self) -> List[float]:
        first = next(iter(self.series.values()), [])
        return [x for x, _ in first]

    def value(self, label: str, x: float) -> float:
        """The y value of ``label``'s series at ``x``."""
        for px, py in self.series[label]:
            if px == x:
                return py
        raise KeyError(f"series {label!r} has no point at x={x}")

    def to_json_dict(self) -> Dict:
        return {
            "figure_id": self.figure_id,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "series": {k: list(map(list, v)) for k, v in self.series.items()},
        }

    @classmethod
    def from_json_dict(cls, payload: Dict) -> "FigureResult":
        """Inverse of :meth:`to_json_dict` (for post-hoc analysis of saved runs)."""
        return cls(
            figure_id=payload["figure_id"],
            title=payload["title"],
            x_label=payload["x_label"],
            y_label=payload["y_label"],
            series={
                label: [(float(x), float(y)) for x, y in points]
                for label, points in payload["series"].items()
            },
        )


@dataclass
class GroupSizeSweep:
    """Raw task results of the shared k-sweep: label -> k -> results."""

    config: PaperConfig
    scale: ExperimentScale
    results: Dict[str, Dict[int, List[TaskResult]]] = field(default_factory=dict)

    def add(self, label: str, group_size: int, batch: Sequence[TaskResult]) -> None:
        self.results.setdefault(label, {}).setdefault(group_size, []).extend(batch)

    def mean_metric(
        self, label: str, group_size: int, metric: Callable[[TaskResult], float]
    ) -> float:
        batch = self.results[label][group_size]
        return sum(metric(r) for r in batch) / len(batch)


def _default_engine_config(config: PaperConfig) -> EngineConfig:
    return EngineConfig(max_path_length=config.max_path_length)


def _sweep_cell(
    config: PaperConfig,
    scale: ExperimentScale,
    engine: EngineConfig,
    net_index: int,
    group_size: int,
    include_grd: bool,
) -> Dict[str, List[TaskResult]]:
    """One (network, k) cell of the shared sweep — picklable for workers."""
    network = make_network(config, net_index)
    streams = RandomStreams(config.master_seed)
    tasks = generate_tasks(
        network,
        scale.tasks_per_network,
        group_size,
        streams.stream("workload", net_index, group_size),
        first_task_id=net_index * 10_000 + group_size * 100,
    )
    fixed_protocols: List[Tuple[str, Callable[[], RoutingProtocol]]] = [
        (LABEL_GMP, lambda: GMPProtocol(radio_aware=True)),
        (LABEL_GMPNR, lambda: GMPProtocol(radio_aware=False)),
        (LABEL_LGS, LGSProtocol),
        (LABEL_SMT, SMTProtocol),
    ]
    if include_grd:
        fixed_protocols.append((LABEL_GRD, GRDProtocol))
    cell: Dict[str, List[TaskResult]] = {}
    for label, factory in fixed_protocols:
        cell[label] = run_tasks(network, factory(), tasks, engine)
    cell[LABEL_PBM] = best_lambda_results(network, tasks, scale.lambdas, engine)
    return cell


def run_group_size_sweep(
    config: PaperConfig | None = None,
    scale: ExperimentScale | None = None,
    engine_config: EngineConfig | None = None,
    include_grd: bool = True,
    progress: Optional[ProgressFn] = None,
    workers: int = 1,
) -> GroupSizeSweep:
    """The shared sweep behind Figures 11, 12 and 14.

    For each seeded network and each group size ``k``, the *same* tasks are
    run under GMP, GMPnr, LGS, SMT, (optionally) GRD, and PBM with the
    paper's per-task best-lambda selection.

    ``workers > 1`` distributes (network, k) cells over a process pool; the
    aggregated result is identical to the serial run because every cell is
    deterministic in ``(master_seed, net_index, k)``.
    """
    from repro.experiments.config import QUICK_SCALE

    cfg = config or PaperConfig()
    scl = scale or QUICK_SCALE
    engine = engine_config or _default_engine_config(cfg)
    sweep = GroupSizeSweep(config=cfg, scale=scl)
    cells = [
        (net_index, k)
        for net_index in range(scl.network_count)
        for k in scl.group_sizes
    ]

    if workers <= 1:
        for net_index, k in cells:
            cell = _sweep_cell(cfg, scl, engine, net_index, k, include_grd)
            for label, batch in cell.items():
                sweep.add(label, k, batch)
            if progress is not None:
                progress(f"network {net_index + 1}/{scl.network_count} k={k} done")
        return sweep

    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            pool.submit(
                _sweep_cell, cfg, scl, engine, net_index, k, include_grd
            ): (net_index, k)
            for net_index, k in cells
        }
        # Collect deterministically by cell order, not completion order.
        results = {}
        for future, cell_key in futures.items():
            results[cell_key] = future.result()
            if progress is not None:
                net_index, k = cell_key
                progress(f"network {net_index + 1}/{scl.network_count} k={k} done")
    for net_index, k in cells:
        for label, batch in results[(net_index, k)].items():
            sweep.add(label, k, batch)
    return sweep


def _series_from_sweep(
    sweep: GroupSizeSweep,
    metric: Callable[[TaskResult], float],
    labels: Sequence[str],
) -> Dict[str, List[Tuple[float, float]]]:
    return {
        label: [
            (float(k), sweep.mean_metric(label, k, metric))
            for k in sweep.scale.group_sizes
        ]
        for label in labels
        if label in sweep.results
    }


def figure11(sweep: GroupSizeSweep) -> FigureResult:
    """Figure 11: total number of hops in the multicast tree vs. k."""
    labels = [LABEL_PBM, LABEL_LGS, LABEL_GMP, LABEL_GMPNR, LABEL_SMT]
    return FigureResult(
        figure_id="figure11",
        title="Total number of hops",
        x_label="number of destinations (k)",
        y_label="mean transmissions per task",
        series=_series_from_sweep(sweep, lambda r: float(r.transmissions), labels),
    )


def figure12(sweep: GroupSizeSweep) -> FigureResult:
    """Figure 12: average per-destination hop count vs. k."""
    labels = [LABEL_PBM, LABEL_LGS, LABEL_GMP, LABEL_SMT, LABEL_GRD]
    return FigureResult(
        figure_id="figure12",
        title="Per-destination hop count",
        x_label="number of destinations (k)",
        y_label="mean hops per delivered destination",
        series=_series_from_sweep(
            sweep, lambda r: r.average_per_destination_hops, labels
        ),
    )


def figure14(sweep: GroupSizeSweep) -> FigureResult:
    """Figure 14: total energy cost vs. k (senders + all listeners)."""
    labels = [LABEL_PBM, LABEL_LGS, LABEL_GMP, LABEL_GMPNR, LABEL_SMT]
    return FigureResult(
        figure_id="figure14",
        title="Total energy cost",
        x_label="number of destinations (k)",
        y_label="mean energy per task (J)",
        series=_series_from_sweep(sweep, lambda r: r.energy_joules, labels),
    )


def figure15(
    config: PaperConfig | None = None,
    scale: ExperimentScale | None = None,
    engine_config: EngineConfig | None = None,
    pbm_lambda: float = 0.3,
    progress: Optional[ProgressFn] = None,
) -> FigureResult:
    """Figure 15: failed tasks vs. network density.

    k = 12 destinations, TTL = 100 hops; only the protocols with perimeter
    recovery semantics are compared (PBM, LGS, GMP), exactly as in the
    paper.  The y value is the failure count normalized to the paper's
    1000-task total.
    """
    from repro.experiments.config import QUICK_SCALE

    cfg = config or PaperConfig()
    scl = scale or QUICK_SCALE
    engine = engine_config or _default_engine_config(cfg)
    streams = RandomStreams(cfg.master_seed)
    protocols: List[Tuple[str, Callable[[], RoutingProtocol]]] = [
        (LABEL_PBM, lambda: PBMProtocol(lam=pbm_lambda)),
        (LABEL_LGS, LGSProtocol),
        (LABEL_GMP, lambda: GMPProtocol(radio_aware=True)),
    ]
    failures: Dict[str, List[Tuple[float, float]]] = {
        label: [] for label, _ in protocols
    }
    total_tasks = scl.network_count * scl.tasks_per_network
    for node_count in scl.density_node_counts:
        counts = {label: 0 for label, _ in protocols}
        for net_index in range(scl.network_count):
            network = make_network(cfg, net_index, node_count=node_count)
            tasks = generate_tasks(
                network,
                scl.tasks_per_network,
                scl.density_group_size,
                streams.stream("workload-density", net_index, node_count),
                first_task_id=net_index * 10_000,
            )
            for label, factory in protocols:
                results = run_tasks(network, factory(), tasks, engine)
                counts[label] += sum(0 if r.success else 1 for r in results)
            if progress is not None:
                progress(
                    f"density {node_count}: network {net_index + 1}/{scl.network_count} done"
                )
        for label, _ in protocols:
            # Normalize to the paper's 1000-task denominator.
            failures[label].append(
                (float(node_count), counts[label] * 1000.0 / total_tasks)
            )
    return FigureResult(
        figure_id="figure15",
        title="Number of failed tasks for different network densities",
        x_label="number of nodes",
        y_label="failed tasks (per 1000)",
        series=failures,
    )


def figure_latency(sweep: GroupSizeSweep) -> FigureResult:
    """Extension figure: mean task completion time vs. group size.

    Not in the paper (ns-2 latency depends on MAC contention, which we do
    not model); in our substrate completion time is hop-depth times airtime
    along the slowest branch, so this is effectively a maximum-depth view
    of the multicast trees — sequential protocols (LGS) fare worst.
    """
    labels = [LABEL_PBM, LABEL_LGS, LABEL_GMP, LABEL_SMT, LABEL_GRD]
    return FigureResult(
        figure_id="latency",
        title="Task completion time (extension)",
        x_label="number of destinations (k)",
        y_label="mean time to quiescence (ms)",
        series=_series_from_sweep(
            sweep, lambda r: 1000.0 * r.duration_s, labels
        ),
    )


def delivery_summary(sweep: GroupSizeSweep) -> Dict[str, Dict[int, float]]:
    """Delivery ratio per protocol and group size (diagnostic, not a figure)."""
    out: Dict[str, Dict[int, float]] = {}
    for label, by_k in sweep.results.items():
        out[label] = {
            k: summarize_results(batch).delivery_ratio for k, batch in by_k.items()
        }
    return out
