"""Random multicast task generation.

One *task* in the paper's evaluation is: pick a random source node and ``k``
random distinct destination nodes, then deliver one message from the source
to all destinations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.network.graph import WirelessNetwork


@dataclass(frozen=True)
class MulticastTask:
    """One multicast request: a source and its destination group."""

    task_id: int
    source_id: int
    destination_ids: Tuple[int, ...]

    @property
    def group_size(self) -> int:
        return len(self.destination_ids)


def generate_tasks(
    network: WirelessNetwork,
    task_count: int,
    group_size: int,
    rng: np.random.Generator,
    first_task_id: int = 0,
) -> List[MulticastTask]:
    """Sample ``task_count`` random tasks with ``group_size`` destinations.

    Source and destinations are drawn uniformly without replacement, so the
    source is never its own destination and destinations are distinct.
    """
    if task_count <= 0:
        raise ValueError(f"task count must be positive, got {task_count}")
    if group_size <= 0:
        raise ValueError(f"group size must be positive, got {group_size}")
    if group_size + 1 > network.node_count:
        raise ValueError(
            f"group size {group_size} needs at least {group_size + 1} nodes, "
            f"network has {network.node_count}"
        )
    tasks = []
    for i in range(task_count):
        picks = rng.choice(network.node_count, size=group_size + 1, replace=False)
        tasks.append(
            MulticastTask(
                task_id=first_task_id + i,
                source_id=int(picks[0]),
                destination_ids=tuple(int(p) for p in picks[1:]),
            )
        )
    return tasks
