"""Experiment harness reproducing the paper's evaluation (Section 5).

``config`` holds the Table-1 setup and the sweep scales; ``workload``
generates the random multicast tasks; ``sweep`` runs protocol batches over
seeded networks; ``figures`` regenerates Figures 11, 12, 14 and 15; and
``report`` renders the results as text tables mirroring the paper's plots.
"""

from repro.experiments.config import (
    ExperimentScale,
    PAPER_SCALE,
    QUICK_SCALE,
    SMOKE_SCALE,
    PaperConfig,
    scale_by_name,
)
from repro.sessions.workload import MulticastTask, generate_tasks
from repro.experiments.sweep import (
    best_lambda_results,
    make_network,
    run_tasks,
)
from repro.experiments.figures import (
    FigureResult,
    figure11,
    figure12,
    figure14,
    figure15,
    run_group_size_sweep,
)
from repro.experiments.report import (
    render_confidence_table,
    render_figure_table,
    render_ratio_summary,
)
from repro.experiments.ablations import (
    AblationOutcome,
    render_ablations,
    run_all_ablations,
)
from repro.experiments.dynamics import (
    SessionConfig,
    SessionResult,
    compare_protocols_under_churn,
    run_multicast_session,
)
from repro.experiments.robustness import (
    RobustnessScale,
    link_loss_sweep,
    node_failure_sweep,
    robustness_scale_by_name,
)
from repro.experiments.contention import (
    ContentionScale,
    arq_ablation,
    contention_scale_by_name,
    contention_sweep,
)
from repro.experiments.statistics import (
    MeanCI,
    PairedComparison,
    mean_confidence_interval,
    paired_comparison,
    win_matrix,
)

__all__ = [
    "PaperConfig",
    "ExperimentScale",
    "PAPER_SCALE",
    "QUICK_SCALE",
    "SMOKE_SCALE",
    "scale_by_name",
    "MulticastTask",
    "generate_tasks",
    "make_network",
    "run_tasks",
    "best_lambda_results",
    "FigureResult",
    "figure11",
    "figure12",
    "figure14",
    "figure15",
    "run_group_size_sweep",
    "render_figure_table",
    "render_ratio_summary",
    "render_confidence_table",
    "AblationOutcome",
    "run_all_ablations",
    "render_ablations",
    "SessionConfig",
    "SessionResult",
    "run_multicast_session",
    "compare_protocols_under_churn",
    "RobustnessScale",
    "link_loss_sweep",
    "node_failure_sweep",
    "robustness_scale_by_name",
    "ContentionScale",
    "contention_scale_by_name",
    "contention_sweep",
    "arq_ablation",
    "MeanCI",
    "PairedComparison",
    "mean_confidence_interval",
    "paired_comparison",
    "win_matrix",
]
