"""Streaming-session throughput sweep: GMP vs baselines under live arrivals.

Where :mod:`repro.experiments.scale` stresses *one-shot* batches at large
node counts, this sweep stresses the service regime: an open-ended stream
of multicast sessions arriving under seeded arrival processes (Poisson,
bursty MMPP, diurnal) with heavy-tailed Zipf group sizes, folded into
bounded-memory sketches as it completes.  It is the repo's first
*throughput-direction* harness — the operator-facing number is steady-state
sessions/sec (and peak RSS), not per-task transmissions.

Every cell (node count, arrival model, protocol) is an independent
resumable stream: the same seeded workload is replayed against each
protocol, cell checkpoints land in their own files, and the sweep digest
chains the per-cell chain digests — so serial, ``--workers N`` and
interrupted-then-resumed runs all render byte-identical reports.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.engine import EngineConfig
from repro.experiments.config import PaperConfig
from repro.experiments.scale import scaled_config
from repro.experiments.sweep import ProtocolSpec
from repro.perf.parallel import ProgressFn
from repro.perf.shm import SharedNetworkPlane, shared_plane_enabled
from repro.sessions.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    SessionWorkload,
    ZipfGroups,
)
from repro.sessions.runner import SessionReport, run_session_stream
from repro.sessions.store import CheckpointStore
from repro.simkit.rng import derive_seed

#: The arrival models a preset can enable, in canonical cell order.
ARRIVAL_MODELS: Dict[str, ArrivalProcess] = {
    "poisson": PoissonArrivals(rate_per_s=1.0),
    "mmpp": BurstyArrivals(
        on_rate_per_s=4.0, off_rate_per_s=0.2, mean_on_s=30.0, mean_off_s=60.0
    ),
    "diurnal": DiurnalArrivals(
        base_rate_per_s=1.0, amplitude=0.8, period_s=3600.0
    ),
}

#: Heavy-tailed group sizes shared by every preset: mostly small groups,
#: a tail out to 40 destinations.
SESSION_GROUPS = ZipfGroups(alpha=1.3, min_size=2, max_size=40)


@dataclass(frozen=True)
class SessionScale:
    """Statistical size of one streaming sweep preset."""

    name: str
    node_counts: Tuple[int, ...]
    arrivals: Tuple[str, ...]
    protocols: Tuple[ProtocolSpec, ...]
    sessions_per_cell: int
    epsilon: float = 0.01
    checkpoint_every: int = 8


#: CI preset: one small deployment, Poisson arrivals, GMP only — enough to
#: byte-diff serial vs ``--workers`` and interrupted vs resumed runs.
SESSIONS_SMOKE = SessionScale(
    name="smoke",
    node_counts=(2_000,),
    arrivals=("poisson",),
    protocols=(("GMP",),),
    sessions_per_cell=24,
)

#: Minutes-scale pass: the 10k-node point, bursty arrivals, all three
#: distributed protocols — the acceptance-criteria throughput run.
SESSIONS_QUICK = SessionScale(
    name="quick",
    node_counts=(2_000, 10_000),
    arrivals=("poisson", "mmpp"),
    protocols=(("GMP",), ("LGS",), ("GRD",)),
    sessions_per_cell=24,
)

#: The full streaming matrix out to 50k nodes and all arrival models.
SESSIONS_PAPER = SessionScale(
    name="paper",
    node_counts=(2_000, 10_000, 50_000),
    arrivals=("poisson", "mmpp", "diurnal"),
    protocols=(("GMP",), ("LGS",), ("GRD",)),
    sessions_per_cell=200,
)

_SESSION_SCALES = {
    s.name: s for s in (SESSIONS_SMOKE, SESSIONS_QUICK, SESSIONS_PAPER)
}


def session_scale_by_name(name: str) -> SessionScale:
    """Look up a streaming-sweep preset (``smoke``/``quick``/``paper``)."""
    try:
        return _SESSION_SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown sessions preset {name!r}; choose from {sorted(_SESSION_SCALES)}"
        ) from None


#: One sweep cell: (node count, arrival label, protocol spec).
SessionCell = Tuple[int, str, ProtocolSpec]


def session_cells(scale: SessionScale) -> List[SessionCell]:
    """Cells in canonical order — the fold/report/resume order."""
    return [
        (node_count, arrival, spec)
        for node_count in scale.node_counts
        for arrival in scale.arrivals
        for spec in scale.protocols
    ]


def cell_workload(
    config: PaperConfig, node_count: int, arrival: str
) -> SessionWorkload:
    """The seeded stream of one (node count, arrival) pair.

    Shared across the cell's protocols: every protocol replays the *same*
    sessions, so cells differ only in the forwarding discipline under test.
    """
    return SessionWorkload(
        seed=derive_seed(config.master_seed, "sessions", node_count, arrival),
        node_count=node_count,
        arrival=ARRIVAL_MODELS[arrival],
        groups=SESSION_GROUPS,
    )


def _cell_store(
    checkpoint_dir: Optional[str], scale: SessionScale, cell: SessionCell
) -> Optional[CheckpointStore]:
    if checkpoint_dir is None:
        return None
    node_count, arrival, spec = cell
    name = f"sessions-{scale.name}-n{node_count}-{arrival}-{spec[0]}.json"
    return CheckpointStore(os.path.join(checkpoint_dir, name))


@dataclass
class SessionsSweep:
    """Results of one streaming sweep, keyed by canonical cell."""

    config: PaperConfig
    scale: SessionScale
    reports: Dict[SessionCell, SessionReport] = field(default_factory=dict)
    #: True when ``stop_after`` halted the sweep before every cell finished.
    truncated: bool = False

    def cells(self) -> List[SessionCell]:
        return [cell for cell in session_cells(self.scale) if cell in self.reports]

    def digest(self) -> str:
        """SHA-256 over per-cell chain digests in canonical cell order.

        The sweep-level byte-identity handle: serial, pooled and resumed
        runs must agree on it.
        """
        h = hashlib.sha256()
        for node_count, arrival, spec in self.cells():
            report = self.reports[(node_count, arrival, spec)]
            h.update(
                f"n={node_count} {arrival} {spec[0]} {report.chain_digest}".encode(
                    "utf-8"
                )
            )
        return h.hexdigest()

    @property
    def completed_sessions(self) -> int:
        return sum(r.completed for r in self.reports.values())

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "scale": self.scale.name,
            "node_counts": list(self.scale.node_counts),
            "arrivals": list(self.scale.arrivals),
            "truncated": self.truncated,
            "completed_sessions": self.completed_sessions,
            "digest": self.digest(),
            "cells": [
                {
                    "node_count": node_count,
                    "arrival": arrival,
                    "protocol": str(spec[0]),
                    **self.reports[(node_count, arrival, spec)].to_json_dict(),
                }
                for node_count, arrival, spec in self.cells()
            ],
        }


def run_sessions_sweep(
    config: PaperConfig | None = None,
    scale: SessionScale | None = None,
    workers: int = 1,
    progress: Optional[ProgressFn] = None,
    checkpoint_dir: Optional[str] = None,
    stop_after: int = 0,
) -> SessionsSweep:
    """Run the streaming-session sweep; byte-identical at any worker count.

    Args:
        config: Table-1 base config; each node count is resized at constant
            density via :func:`repro.experiments.scale.scaled_config`.
        scale: Preset (default: smoke).
        workers: Pool size handed to every cell's stream.
        progress: Operator progress callback.
        checkpoint_dir: When set, every cell checkpoints into its own file
            there and resumes from it on a rerun.
        stop_after: When positive, halt the sweep once this many sessions
            (cumulative, canonical cell order) have completed *this run* —
            the deterministic interruption the CI resume test uses.  Only
            meaningful with ``checkpoint_dir``; the truncated sweep is
            marked :attr:`SessionsSweep.truncated`.

    Returns:
        The sweep with one :class:`~repro.sessions.runner.SessionReport`
        per completed cell.
    """
    base = config or PaperConfig()
    scl = scale or SESSIONS_SMOKE
    sweep = SessionsSweep(config=base, scale=scl)
    budget = stop_after if stop_after > 0 else None
    # One sweep-wide shared-memory plane: cells at the same node count share
    # a deployment, so publishing happens once per node count (publish is
    # idempotent per key) and every cell's pool attaches the same segments.
    plane: Optional[SharedNetworkPlane] = None
    if workers > 1 and shared_plane_enabled():
        plane = SharedNetworkPlane(seed=base.master_seed)
    try:
        for cell in session_cells(scl):
            node_count, arrival, spec = cell
            if budget is not None and budget <= 0:
                sweep.truncated = True
                break
            cell_config = scaled_config(base, node_count)
            workload = cell_workload(base, node_count, arrival)
            target = scl.sessions_per_cell
            if budget is not None and budget < target:
                target = budget
                sweep.truncated = True
            if progress is not None:
                progress(
                    f"cell n={node_count} {arrival} {spec[0]}: {target} sessions"
                )
            report = run_session_stream(
                workload,
                spec,
                cell_config,
                total_sessions=scl.sessions_per_cell if budget is None else target,
                engine=EngineConfig(max_path_length=cell_config.max_path_length),
                workers=workers,
                epsilon=scl.epsilon,
                checkpoint=_cell_store(checkpoint_dir, scl, cell),
                checkpoint_every=scl.checkpoint_every,
                progress=progress,
                plane=plane,
            )
            if budget is not None:
                budget -= report.completed
            if report.completed == scl.sessions_per_cell:
                sweep.reports[cell] = report
    finally:
        if plane is not None:
            plane.close()
    return sweep


def render_sessions_table(sweep: SessionsSweep) -> str:
    """Operator-facing per-cell summary (deterministic — CI byte-diffs it)."""
    header = [
        "nodes",
        "arrival",
        "proto",
        "sessions",
        "dlv",
        "lat p50",
        "lat p99",
        "tx mean",
    ]
    rows = [header]
    for node_count, arrival, spec in sweep.cells():
        report = sweep.reports[(node_count, arrival, spec)]
        latency = report.stats.metrics["latency_s"]
        tree = report.stats.metrics["tree_cost"]
        rows.append(
            [
                str(node_count),
                arrival,
                str(spec[0]),
                str(report.completed),
                f"{report.stats.aggregate_delivery_ratio:.3f}",
                f"{latency.quantiles.query(0.5):.4f}",
                f"{latency.quantiles.query(0.99):.4f}",
                f"{tree.moments.mean:.1f}",
            ]
        )
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = ["  ".join(cell.rjust(w) for cell, w in zip(row, widths)) for row in rows]
    lines.insert(1, "  ".join("-" * w for w in widths))
    title = (
        f"Streaming sessions ({sweep.scale.name}): arrival-process workloads, "
        f"sketch-aggregated"
    )
    if sweep.truncated:
        title += " [truncated by --stop-after]"
    return "\n".join([title] + lines)
