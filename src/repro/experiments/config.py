"""Simulation setup (paper Table 1) and sweep scales.

``PaperConfig`` defaults reproduce Table 1 exactly; ``ExperimentScale``
separates the *statistical* scale (how many networks/tasks/k-values) so the
same harness can run a minutes-long quick pass or the paper's full
10-networks x 100-tasks protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.network.radio import RadioConfig


@dataclass(frozen=True)
class PaperConfig:
    """Table 1 of the paper, plus the experiment-wide master seed."""

    field_width_m: float = 1000.0
    field_height_m: float = 1000.0
    node_count: int = 1000
    radio: RadioConfig = field(default_factory=RadioConfig)
    max_path_length: int = 100
    master_seed: int = 20060704

    def describe(self) -> str:
        """Human-readable rendition of the setup (mirrors Table 1)."""
        lines = [
            ("Simulator", "repro.simkit (discrete-event; ns-2.27 substitute)"),
            ("Network size", f"{self.field_width_m:g}m X {self.field_height_m:g}m"),
            ("Number of nodes", str(self.node_count)),
            ("Channel data rate", f"{self.radio.data_rate_bps / 1e6:g}Mbps"),
            ("Mac protocol", "idealized contention-free (see DESIGN.md)"),
            ("Transmission power", f"{self.radio.tx_power_w}W"),
            ("Receiving power", f"{self.radio.rx_power_w}W"),
            ("Message size", f"{self.radio.message_size_bytes}B"),
            ("Antenna", "OmniAntenna (disc model)"),
            ("Radio Range", f"{self.radio.radio_range_m:g}m"),
            ("Max path length", str(self.max_path_length)),
            ("Master seed", str(self.master_seed)),
        ]
        width = max(len(k) for k, _ in lines)
        return "\n".join(f"{k.ljust(width)}  {v}" for k, v in lines)


@dataclass(frozen=True)
class ExperimentScale:
    """How much statistics to gather (independent of the physical setup)."""

    name: str
    network_count: int
    tasks_per_network: int
    group_sizes: Tuple[int, ...]
    lambdas: Tuple[float, ...]
    density_node_counts: Tuple[int, ...]
    density_group_size: int = 12


#: The paper's protocol: 10 networks x 100 tasks, k in [3, 25], seven
#: lambda values in [0, 0.6], densities 400..1000 nodes.
PAPER_SCALE = ExperimentScale(
    name="paper",
    network_count=10,
    tasks_per_network=100,
    group_sizes=(3, 5, 10, 15, 20, 25),
    lambdas=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6),
    # The paper sweeps 400..1000 nodes; with our loss-free MAC the only
    # failure mechanism is geometric voids, so the sweep is extended into
    # the sparse regime where those actually occur (see EXPERIMENTS.md).
    density_node_counts=(150, 200, 250, 300, 400, 600, 800, 1000),
)

#: Minutes-scale pass preserving the figure shapes.
QUICK_SCALE = ExperimentScale(
    name="quick",
    network_count=2,
    tasks_per_network=25,
    group_sizes=(3, 10, 18, 25),
    lambdas=(0.0, 0.3, 0.6),
    density_node_counts=(150, 200, 300, 400, 1000),
)

#: Seconds-scale pass for benchmarks and CI smoke tests.
SMOKE_SCALE = ExperimentScale(
    name="smoke",
    network_count=1,
    tasks_per_network=6,
    group_sizes=(4, 10),
    lambdas=(0.0, 0.4),
    density_node_counts=(160, 300),
)

_SCALES = {s.name: s for s in (PAPER_SCALE, QUICK_SCALE, SMOKE_SCALE)}


def scale_by_name(name: str) -> ExperimentScale:
    """Look up a sweep scale (``paper`` / ``quick`` / ``smoke``)."""
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; choose from {sorted(_SCALES)}"
        ) from None
