"""Statistical treatment of experiment results.

The paper reports bare averages over 10 networks x 100 tasks.  For a
reproduction, knowing whether "GMP < LGS" is signal or noise matters, so
this module provides:

* mean + Student-t confidence intervals per protocol/metric,
* paired per-task comparisons (the same tasks run under two protocols),
  with a sign test — the robust way to call a winner on shared workloads,
* win matrices across a protocol set.

Implemented from scratch (normal/t quantiles via standard approximations)
so the core library keeps its numpy/networkx-only dependency footprint;
results agree with scipy to the precision that matters for reporting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Sequence, Tuple

from repro.engine.stats import TaskResult


@dataclass(frozen=True)
class MeanCI:
    """Sample mean with a two-sided Student-t confidence interval."""

    mean: float
    half_width: float
    confidence: float
    sample_size: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def overlaps(self, other: "MeanCI") -> bool:
        """Whether the two intervals intersect."""
        return self.low <= other.high and other.low <= self.high


@dataclass(frozen=True)
class PairedComparison:
    """Paired per-task comparison of one metric under two protocols."""

    label_a: str
    label_b: str
    mean_difference: float  # mean(metric_a - metric_b)
    wins_a: int
    wins_b: int
    ties: int
    sign_test_p: float

    @property
    def significant(self) -> bool:
        """Two-sided sign test at the 5% level."""
        return self.sign_test_p < 0.05


def _normal_quantile(p: float) -> float:
    """Acklam's rational approximation of the standard normal quantile."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"quantile probability must be in (0,1), got {p}")
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p > 1.0 - p_low:
        return -_normal_quantile(1.0 - p)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )


def _t_quantile(p: float, dof: int) -> float:
    """Student-t quantile via the Cornish–Fisher expansion in the normal one."""
    if dof <= 0:
        raise ValueError(f"degrees of freedom must be positive, got {dof}")
    z = _normal_quantile(p)
    g1 = (z**3 + z) / 4.0
    g2 = (5 * z**5 + 16 * z**3 + 3 * z) / 96.0
    g3 = (3 * z**7 + 19 * z**5 + 17 * z**3 - 15 * z) / 384.0
    g4 = (79 * z**9 + 776 * z**7 + 1482 * z**5 - 1920 * z**3 - 945 * z) / 92160.0
    return z + g1 / dof + g2 / dof**2 + g3 / dof**3 + g4 / dof**4


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> MeanCI:
    """Sample mean with a two-sided t-interval."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0,1), got {confidence}")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return MeanCI(mean=mean, half_width=float("inf"),
                      confidence=confidence, sample_size=1)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    se = math.sqrt(variance / n)
    t = _t_quantile(0.5 + confidence / 2.0, n - 1)
    return MeanCI(mean=mean, half_width=t * se, confidence=confidence, sample_size=n)


def _sign_test_p(wins_a: int, wins_b: int) -> float:
    """Two-sided exact binomial sign test (ties excluded)."""
    n = wins_a + wins_b
    if n == 0:
        return 1.0
    k = min(wins_a, wins_b)
    # P[X <= k] for X ~ Binomial(n, 1/2), doubled and capped at 1.
    total = 0.0
    for i in range(k + 1):
        total += math.comb(n, i)
    p = 2.0 * total / (2.0**n)
    return min(1.0, p)


def paired_comparison(
    results_a: Sequence[TaskResult],
    results_b: Sequence[TaskResult],
    metric: Callable[[TaskResult], float],
    label_a: str = "A",
    label_b: str = "B",
) -> PairedComparison:
    """Per-task paired comparison of ``metric`` between two result batches.

    The batches must be the *same tasks* in the same order (as produced by
    running one workload under two protocols).
    """
    if len(results_a) != len(results_b):
        raise ValueError("paired comparison needs equally long result lists")
    if not results_a:
        raise ValueError("paired comparison needs at least one task")
    for ra, rb in zip(results_a, results_b):
        if ra.task_id != rb.task_id:
            raise ValueError(
                f"task mismatch: {ra.task_id} vs {rb.task_id} — not paired runs"
            )
    differences = [metric(ra) - metric(rb) for ra, rb in zip(results_a, results_b)]
    wins_a = sum(1 for d in differences if d < 0)  # A smaller = A wins.
    wins_b = sum(1 for d in differences if d > 0)
    ties = len(differences) - wins_a - wins_b
    return PairedComparison(
        label_a=label_a,
        label_b=label_b,
        mean_difference=sum(differences) / len(differences),
        wins_a=wins_a,
        wins_b=wins_b,
        ties=ties,
        sign_test_p=_sign_test_p(wins_a, wins_b),
    )


def win_matrix(
    batches: Mapping[str, Sequence[TaskResult]],
    metric: Callable[[TaskResult], float],
) -> Dict[Tuple[str, str], PairedComparison]:
    """All pairwise paired comparisons across a protocol -> results mapping."""
    labels = list(batches)
    matrix: Dict[Tuple[str, str], PairedComparison] = {}
    for i, a in enumerate(labels):
        for b in labels[i + 1 :]:
            matrix[(a, b)] = paired_comparison(
                batches[a], batches[b], metric, label_a=a, label_b=b
            )
    return matrix


def render_win_matrix(
    matrix: Mapping[Tuple[str, str], PairedComparison]
) -> str:
    """Readable one-line-per-pair summary of a win matrix."""
    lines = []
    for (a, b), cmp in sorted(matrix.items()):
        marker = "**" if cmp.significant else "  "
        lines.append(
            f"{marker} {a} vs {b}: wins {cmp.wins_a}-{cmp.wins_b} "
            f"(ties {cmp.ties}), mean diff {cmp.mean_difference:+.2f}, "
            f"sign-test p={cmp.sign_test_p:.4f}"
        )
    return "\n".join(lines)
