"""Dynamic multicast sessions: group membership churn between packets.

The paper deliberately does not address group management (Section 2 cites
[25, 5, 20] and moves on) — but the *reason* stateless protocols like GMP
are attractive is precisely that membership churn costs them nothing: the
next packet simply carries the new destination list, with no tree or mesh
to repair.  This module makes that claim measurable: a session is a
sequence of rounds, each multicasting to the current member set, with
members joining and leaving between rounds under a seeded churn process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.engine import EngineConfig, TaskResult, run_task
from repro.network.graph import WirelessNetwork
from repro.routing.base import RoutingProtocol


@dataclass(frozen=True)
class SessionConfig:
    """Shape of a dynamic multicast session.

    Attributes:
        rounds: Number of data packets (multicast tasks) in the session.
        initial_group_size: Member count at session start.
        leave_probability: Per-member, per-round probability of leaving.
        join_probability: Per-round probability scale for joins: the number
            of joiners is binomial(initial_group_size, join_probability).
        min_group_size: Churn never shrinks the group below this.
    """

    rounds: int = 20
    initial_group_size: int = 10
    leave_probability: float = 0.15
    join_probability: float = 0.15
    min_group_size: int = 2

    def __post_init__(self) -> None:
        if self.rounds <= 0:
            raise ValueError(f"session needs at least one round, got {self.rounds}")
        if self.initial_group_size < self.min_group_size:
            raise ValueError("initial group smaller than the minimum size")
        for name, p in (
            ("leave_probability", self.leave_probability),
            ("join_probability", self.join_probability),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")


@dataclass(frozen=True)
class SessionRound:
    """One data packet of the session."""

    round_id: int
    members: Tuple[int, ...]
    joined: Tuple[int, ...]
    left: Tuple[int, ...]
    result: TaskResult


@dataclass
class SessionResult:
    """Aggregate outcome of a dynamic multicast session."""

    protocol: str
    rounds: List[SessionRound] = field(default_factory=list)

    @property
    def total_transmissions(self) -> int:
        return sum(r.result.transmissions for r in self.rounds)

    @property
    def total_energy_joules(self) -> float:
        return sum(r.result.energy_joules for r in self.rounds)

    @property
    def membership_changes(self) -> int:
        return sum(len(r.joined) + len(r.left) for r in self.rounds)

    @property
    def delivery_ratio(self) -> float:
        requested = sum(len(r.members) for r in self.rounds)
        delivered = sum(len(r.result.delivered_hops) for r in self.rounds)
        return delivered / requested if requested else 1.0

    @property
    def mean_transmissions_per_round(self) -> float:
        return self.total_transmissions / len(self.rounds) if self.rounds else 0.0


def run_multicast_session(
    network: WirelessNetwork,
    protocol: RoutingProtocol,
    source_id: int,
    config: SessionConfig,
    rng: np.random.Generator,
    engine_config: Optional[EngineConfig] = None,
) -> SessionResult:
    """Run a churning multicast session and collect per-round results.

    The churn sequence is driven entirely by ``rng``: pass generators with
    the same seed to subject different protocols to the *identical*
    membership history.
    """
    if not (0 <= source_id < network.node_count):
        raise ValueError(f"source {source_id} is not a node of the network")
    engine = engine_config or EngineConfig()
    candidates = [n for n in range(network.node_count) if n != source_id]
    members: Set[int] = set(
        int(x)
        for x in rng.choice(candidates, size=config.initial_group_size, replace=False)
    )
    session = SessionResult(protocol=protocol.name)

    for round_id in range(config.rounds):
        joined: Tuple[int, ...] = ()
        left: Tuple[int, ...] = ()
        if round_id > 0:
            leavers = [
                m
                for m in sorted(members)
                if rng.random() < config.leave_probability
            ]
            for m in leavers:
                if len(members) <= config.min_group_size:
                    break
                members.discard(m)
            left = tuple(leavers[: max(0, len(leavers))])
            join_count = int(
                rng.binomial(config.initial_group_size, config.join_probability)
            )
            pool = [n for n in candidates if n not in members]
            if join_count > 0 and pool:
                picks = rng.choice(
                    pool, size=min(join_count, len(pool)), replace=False
                )
                joined = tuple(int(p) for p in picks)
                members.update(joined)
        snapshot = tuple(sorted(members))
        result = run_task(
            network,
            protocol,
            source_id,
            snapshot,
            config=engine,
            task_id=round_id,
        )
        session.rounds.append(
            SessionRound(
                round_id=round_id,
                members=snapshot,
                joined=joined,
                left=left,
                result=result,
            )
        )
    return session


def compare_protocols_under_churn(
    network: WirelessNetwork,
    protocols: Sequence[RoutingProtocol],
    source_id: int,
    config: SessionConfig,
    seed: int,
    engine_config: Optional[EngineConfig] = None,
) -> List[SessionResult]:
    """Run the identical churn history under each protocol."""
    return [
        run_multicast_session(
            network,
            protocol,
            source_id,
            config,
            np.random.default_rng(seed),
            engine_config,
        )
        for protocol in protocols
    ]
