"""Large-scale constant-density sweep: 2k up to 100k nodes, groups up to 100.

The paper evaluates 1000-node deployments; this sweep stresses the
implementation well beyond that regime, which is what the batched geometry
kernels (:mod:`repro.perf.kernels`), the struct-of-arrays network core and
the calendar-queue scheduler exist for.
Density is held at the paper's Table-1 operating point — 1000 nodes per
km² with the 150 m radio — by growing the field side as
``1000 m * sqrt(n / 1000)``, so per-node degree (and thus protocol
behaviour) stays comparable across node counts while the *global* problem
size scales.

Protocols compared: GMP against the two cheap distributed baselines (GRD,
LGS).  The centralized SMT baseline is deliberately excluded — its global
``networkx`` Steiner approximation is super-linear in the node count and
would dominate the wall clock without exercising any distributed hot path.

The sweep is sharded one unit per (node count, group size, network,
protocol) and executed through :func:`repro.perf.parallel.run_units`, so
``--workers N`` output is bit-identical to the serial run; the contract is
enforced by comparing :meth:`ScaleSweep.digest` values.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine import EngineConfig, TaskResult
from repro.engine.digest import task_digest
from repro.experiments.config import PaperConfig
from repro.experiments.sweep import (
    ProtocolSpec,
    build_protocol,
    cached_network,
    run_tasks,
)
from repro.perf.counters import GLOBAL_COUNTERS, merge_worker_perf
from repro.perf.parallel import ProgressFn, run_units
from repro.perf.shm import SharedNetworkPlane, shared_plane_enabled
from repro.sessions.workload import MulticastTask, generate_tasks
from repro.simkit.rng import RandomStreams

#: TTL generous enough for the 10k-node field diagonal (~4.5 km at 150 m
#: per hop); the Table-1 value of 100 is tuned to the 1 km field.  Fields
#: whose diagonal needs more than this (the 100k preset's 14.1 km) scale it
#: up further — see :func:`scaled_config`.
_SCALE_MAX_PATH_LENGTH = 250


@dataclass(frozen=True)
class ScaleSweepScale:
    """Statistical size of the large-scale sweep (mirrors ExperimentScale)."""

    name: str
    node_counts: Tuple[int, ...]
    group_sizes: Tuple[int, ...]
    tasks_per_cell: int
    network_count: int


#: CI preset: one network, two tasks per cell, but the full 10k-node /
#: k=100 corner is exercised — the whole point of the smoke gate.
SCALE_SMOKE = ScaleSweepScale(
    name="smoke",
    node_counts=(2_000, 10_000),
    group_sizes=(20, 100),
    tasks_per_cell=2,
    network_count=1,
)

#: Minutes-scale pass with the intermediate density point.
SCALE_QUICK = ScaleSweepScale(
    name="quick",
    node_counts=(2_000, 5_000, 10_000),
    group_sizes=(20, 50, 100),
    tasks_per_cell=5,
    network_count=1,
)

#: Full statistics over several seeded deployments.
SCALE_PAPER = ScaleSweepScale(
    name="paper",
    node_counts=(2_000, 5_000, 10_000),
    group_sizes=(10, 25, 50, 100),
    tasks_per_cell=25,
    network_count=3,
)

#: Perf-smoke CI preset for the struct-of-arrays core: one 50k-node
#: deployment (a ~7.1 km field at Table-1 density, ~67 average degree),
#: run serial and with ``--workers`` and diffed byte-for-byte.
SCALE_SMOKE50K = ScaleSweepScale(
    name="smoke50k",
    node_counts=(50_000,),
    group_sizes=(20, 100),
    tasks_per_cell=2,
    network_count=1,
)

#: The headline scaling run: 50k and 100k nodes at constant density —
#: 50x-100x the paper's deployments on one machine.
SCALE_DEEP = ScaleSweepScale(
    name="deep",
    node_counts=(50_000, 100_000),
    group_sizes=(20, 100),
    tasks_per_cell=2,
    network_count=1,
)

_SCALE_SCALES = {
    s.name: s
    for s in (SCALE_SMOKE, SCALE_QUICK, SCALE_PAPER, SCALE_SMOKE50K, SCALE_DEEP)
}


def scale_sweep_scale_by_name(name: str) -> ScaleSweepScale:
    """Look up a sweep preset (``smoke``/``quick``/``paper``/``smoke50k``/``deep``)."""
    try:
        return _SCALE_SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown scale-sweep preset {name!r}; choose from {sorted(_SCALE_SCALES)}"
        ) from None


def scaled_config(base: PaperConfig, node_count: int) -> PaperConfig:
    """Table-1 config resized to ``node_count`` at constant node density.

    The hop TTL grows with the field: three radio ranges per diagonal
    kilometre leaves the same relative headroom for perimeter detours at
    100k nodes as the fixed 250 does at 10k.  Node counts at or below 10k
    keep the historical 250 (the diagonal bound is smaller there), so
    existing preset digests are unchanged.
    """
    side = 1000.0 * math.sqrt(node_count / 1000.0)
    diagonal_hops = math.ceil(
        3.0 * side * math.sqrt(2.0) / base.radio.radio_range_m
    )
    return dataclasses.replace(
        base,
        node_count=node_count,
        field_width_m=side,
        field_height_m=side,
        max_path_length=max(
            base.max_path_length, _SCALE_MAX_PATH_LENGTH, diagonal_hops
        ),
    )


def _scale_tasks(
    config: PaperConfig,
    scale: ScaleSweepScale,
    node_count: int,
    net_index: int,
    group_size: int,
) -> List[MulticastTask]:
    """The (n, network, k) cell's task batch, derived from the master seed."""
    network = cached_network(config, net_index)
    streams = RandomStreams(config.master_seed)
    return generate_tasks(
        network,
        scale.tasks_per_cell,
        group_size,
        streams.stream("scale-workload", node_count, net_index, group_size),
        first_task_id=(node_count // 100) * 1_000_000
        + net_index * 100_000
        + group_size * 100,
    )


def run_scale_unit(
    config: PaperConfig,
    scale: ScaleSweepScale,
    engine: EngineConfig,
    node_count: int,
    net_index: int,
    group_size: int,
    spec: ProtocolSpec,
) -> Tuple[List[TaskResult], Dict[str, float]]:
    """One (node count, network, k, protocol) unit; pure in its arguments."""
    network = cached_network(config, net_index)
    tasks = _scale_tasks(config, scale, node_count, net_index, group_size)
    before = GLOBAL_COUNTERS.snapshot()
    batch = run_tasks(network, build_protocol(spec), tasks, engine)
    return batch, GLOBAL_COUNTERS.delta_since(before)


@dataclass
class ScaleSweep:
    """Results of one large-scale sweep, keyed ``label -> (n, k) -> batch``."""

    config: PaperConfig
    scale: ScaleSweepScale
    results: Dict[str, Dict[Tuple[int, int], List[TaskResult]]] = field(
        default_factory=dict
    )

    def add(
        self, label: str, node_count: int, group_size: int, batch: Sequence[TaskResult]
    ) -> None:
        self.results.setdefault(label, {}).setdefault(
            (node_count, group_size), []
        ).extend(batch)

    def labels(self) -> List[str]:
        return sorted(self.results)

    def cells(self) -> List[Tuple[int, int]]:
        return [
            (n, k)
            for n in self.scale.node_counts
            for k in self.scale.group_sizes
        ]

    def batch(self, label: str, node_count: int, group_size: int) -> List[TaskResult]:
        return self.results[label][(node_count, group_size)]

    def mean_transmissions(self, label: str, node_count: int, group_size: int) -> float:
        batch = self.batch(label, node_count, group_size)
        return sum(r.transmissions for r in batch) / len(batch)

    def delivery_ratio(self, label: str, node_count: int, group_size: int) -> float:
        batch = self.batch(label, node_count, group_size)
        delivered = sum(len(r.delivered_hops) for r in batch)
        requested = sum(len(r.destination_ids) for r in batch)
        return delivered / requested if requested else 0.0

    def digest(self) -> str:
        """SHA-256 over every task digest in canonical (label, cell) order.

        Serial and ``--workers N`` runs of the same sweep must produce the
        same value — the parallel engine's bit-identity contract at scale.
        """
        h = hashlib.sha256()
        for label in self.labels():
            for cell in sorted(self.results[label]):
                h.update(f"{label}@{cell}".encode("utf-8"))
                for result in self.results[label][cell]:
                    h.update(task_digest(result).encode("utf-8"))
        return h.hexdigest()

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "scale": self.scale.name,
            "node_counts": list(self.scale.node_counts),
            "group_sizes": list(self.scale.group_sizes),
            "digest": self.digest(),
            "cells": [
                {
                    "label": label,
                    "node_count": n,
                    "group_size": k,
                    "mean_transmissions": self.mean_transmissions(label, n, k),
                    "delivery_ratio": self.delivery_ratio(label, n, k),
                }
                for label in self.labels()
                for n, k in self.cells()
            ],
        }


def _scale_specs(include_grd: bool) -> List[ProtocolSpec]:
    specs: List[ProtocolSpec] = [("GMP",), ("LGS",)]
    if include_grd:
        specs.append(("GRD",))
    return specs


def run_scale_sweep(
    config: PaperConfig | None = None,
    scale: ScaleSweepScale | None = None,
    workers: int = 1,
    include_grd: bool = True,
    progress: Optional[ProgressFn] = None,
) -> ScaleSweep:
    """Run the large-scale sweep; bit-identical for any ``workers`` value."""
    base = config or PaperConfig()
    scl = scale or SCALE_SMOKE
    sweep = ScaleSweep(config=base, scale=scl)
    specs = _scale_specs(include_grd)
    cells = [
        (node_count, net_index, k)
        for node_count in scl.node_counts
        for net_index in range(scl.network_count)
        for k in scl.group_sizes
    ]
    # One engine per node count: the TTL follows the scaled field diagonal
    # (identical to the old fixed 250 for every count at or below 10k).
    engines = {
        node_count: EngineConfig(
            max_path_length=scaled_config(base, node_count).max_path_length
        )
        for node_count in scl.node_counts
    }
    units = [
        (
            scaled_config(base, node_count),
            scl,
            engines[node_count],
            node_count,
            net_index,
            k,
            spec,
        )
        for node_count, net_index, k in cells
        for spec in specs
    ]

    def describe(index: int) -> str:
        node_count, net_index, k = cells[index // len(specs)]
        return (
            f"n={node_count} net={net_index} k={k} "
            f"{units[index][6][0]}"
        )

    # Publish each deployment to the shared-memory plane once, before the
    # fan-out, so pool workers attach zero-copy views instead of each
    # rebuilding every network (the plane is a no-op when disabled, and
    # serial runs skip it — cached_network already shares in-process).
    plane = SharedNetworkPlane(seed=base.master_seed)
    try:
        if workers > 1 and len(units) > 1 and shared_plane_enabled():
            for node_count in scl.node_counts:
                cfg_n = scaled_config(base, node_count)
                for net_index in range(scl.network_count):
                    plane.publish(
                        (cfg_n, net_index, None), cached_network(cfg_n, net_index)
                    )
            if progress is not None and plane.active:
                progress(
                    f"published {len(plane.manifests())} deployment(s) "
                    f"({plane.published_bytes() / 1048576.0:.1f} MiB) to the "
                    f"shared-memory plane"
                )
        outputs = run_units(
            run_scale_unit,
            units,
            workers=workers,
            progress=progress,
            describe=describe,
            plane=plane,
        )
    finally:
        plane.close()
    merge_worker_perf(
        (delta for _, delta in outputs),
        used_pool=workers > 1 and len(units) > 1,
    )

    index = 0
    for node_count, _net_index, k in cells:
        for spec in specs:
            batch, _ = outputs[index]
            index += 1
            sweep.add(str(spec[0]), node_count, k, batch)
    return sweep


def render_scale_table(sweep: ScaleSweep) -> str:
    """Operator-facing per-cell summary table."""
    labels = sweep.labels()
    header = ["nodes", "k"] + [
        f"{label} tx" for label in labels
    ] + [f"{label} dlv" for label in labels]
    rows = [header]
    for n, k in sweep.cells():
        row = [str(n), str(k)]
        row += [f"{sweep.mean_transmissions(label, n, k):.1f}" for label in labels]
        row += [f"{sweep.delivery_ratio(label, n, k):.3f}" for label in labels]
        rows.append(row)
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = ["  ".join(cell.rjust(w) for cell, w in zip(row, widths)) for row in rows]
    lines.insert(1, "  ".join("-" * w for w in widths))
    title = (
        f"Large-scale sweep ({sweep.scale.name}): GMP vs baselines at "
        f"constant density"
    )
    return "\n".join([title] + lines)
