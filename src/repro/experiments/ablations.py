"""Ablation harnesses for the design choices DESIGN.md calls out.

Each ablation runs two configurations of the system on an identical seeded
workload and reports the metric difference.  The pytest-benchmark suite
(`benchmarks/test_ablations.py`) asserts the expected directions; this
module is the reusable/programmatic form, also exposed as
``gmp-repro ablations``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.engine import EngineConfig, run_task
from repro.experiments.config import PaperConfig
from repro.experiments.sweep import make_network
from repro.sessions.workload import generate_tasks
from repro.geometry import Point
from repro.routing.base import RoutingProtocol
from repro.routing.gmp import GMPProtocol
from repro.simkit.rng import RandomStreams
from repro.steiner.rrstr import RRStrConfig, rrstr


@dataclass(frozen=True)
class AblationOutcome:
    """Result of one ablation: named metrics plus a one-line conclusion."""

    name: str
    question: str
    metrics: Dict[str, float] = field(default_factory=dict)
    conclusion: str = ""


def _mean_metrics(network, protocol: RoutingProtocol, tasks, engine) -> Dict[str, float]:
    results = [
        run_task(network, protocol, t.source_id, t.destination_ids, config=engine)
        for t in tasks
    ]
    return {
        "transmissions": sum(r.transmissions for r in results) / len(results),
        "per_destination_hops": sum(
            r.average_per_destination_hops for r in results
        ) / len(results),
        "energy_joules": sum(r.energy_joules for r in results) / len(results),
        "failures": float(sum(0 if r.success else 1 for r in results)),
    }


def _shared_workload(
    config: PaperConfig, group_size: int, task_count: int
) -> tuple:
    network = make_network(config, 0)
    streams = RandomStreams(config.master_seed)
    tasks = generate_tasks(
        network, task_count, group_size, streams.stream("ablation", group_size)
    )
    return network, tasks


def ablation_radio_range(
    config: Optional[PaperConfig] = None,
    group_size: int = 12,
    task_count: int = 15,
) -> AblationOutcome:
    """A: Section 3.3's radio-range rules on/off (GMP vs GMPnr)."""
    cfg = config or PaperConfig(node_count=400)
    network, tasks = _shared_workload(cfg, group_size, task_count)
    engine = EngineConfig(max_path_length=cfg.max_path_length)
    aware = _mean_metrics(network, GMPProtocol(radio_aware=True), tasks, engine)
    naive = _mean_metrics(network, GMPProtocol(radio_aware=False), tasks, engine)
    saving = 1.0 - aware["transmissions"] / naive["transmissions"]
    return AblationOutcome(
        name="radio-range-awareness",
        question="what do the Section-3.3 rules buy?",
        metrics={
            "gmp_transmissions": aware["transmissions"],
            "gmpnr_transmissions": naive["transmissions"],
            "saving_fraction": saving,
        },
        conclusion=f"radio awareness saves {100 * saving:.1f}% of transmissions",
    )


def ablation_next_hop_rule(
    config: Optional[PaperConfig] = None,
    group_size: int = 12,
    task_count: int = 15,
) -> AblationOutcome:
    """B: pivot-targeted next hops vs LGS-style closest-destination."""
    cfg = config or PaperConfig(node_count=400)
    network, tasks = _shared_workload(cfg, group_size, task_count)
    engine = EngineConfig(max_path_length=cfg.max_path_length)
    pivot = _mean_metrics(network, GMPProtocol(next_hop_rule="pivot"), tasks, engine)
    closest = _mean_metrics(
        network, GMPProtocol(next_hop_rule="closest-destination"), tasks, engine
    )
    return AblationOutcome(
        name="next-hop-rule",
        question="does aiming at the Steiner pivot beat aiming at the nearest destination?",
        metrics={
            "pivot_transmissions": pivot["transmissions"],
            "pivot_per_destination": pivot["per_destination_hops"],
            "closest_transmissions": closest["transmissions"],
            "closest_per_destination": closest["per_destination_hops"],
        },
        conclusion=(
            "pivot rule: "
            f"{pivot['transmissions']:.1f} tx / {pivot['per_destination_hops']:.2f} hops-per-dest, "
            f"closest-destination: {closest['transmissions']:.1f} / "
            f"{closest['per_destination_hops']:.2f}"
        ),
    )


def ablation_rrstr_rule(
    seed: int = 17, instance_count: int = 60, group_size: int = 12
) -> AblationOutcome:
    """C: Figure-3 pseudocode vs Section-3.3 prose for the in-range case."""
    rng = np.random.default_rng(seed)
    totals = {"pseudocode": 0.0, "prose": 0.0}
    for _ in range(instance_count):
        source = Point(*rng.uniform(0, 1000, 2))
        dests = [(i, Point(*rng.uniform(0, 1000, 2))) for i in range(group_size)]
        for label, prose in (("pseudocode", False), ("prose", True)):
            cfg = RRStrConfig(
                radio_aware=True, prose_one_in_range_rule=prose, refine=False
            )
            totals[label] += rrstr(source, dests, 150.0, cfg).total_length()
    return AblationOutcome(
        name="rrstr-rule-variant",
        question="pseudocode (defer pair) vs prose (commit both to source)?",
        metrics={
            "pseudocode_length": totals["pseudocode"],
            "prose_length": totals["prose"],
            "ratio": totals["pseudocode"] / totals["prose"],
        },
        conclusion=(
            f"pseudocode trees are {100 * (1 - totals['pseudocode'] / totals['prose']):.1f}% "
            "shorter (deferring keeps pairing options open)"
        ),
    )


def ablation_refinement(
    seed: int = 23, instance_count: int = 60, group_size: int = 12
) -> AblationOutcome:
    """D: the shallow-light re-attachment refinement pass."""
    rng = np.random.default_rng(seed)
    raw_total = refined_total = 0.0
    for _ in range(instance_count):
        source = Point(*rng.uniform(0, 1000, 2))
        dests = [(i, Point(*rng.uniform(0, 1000, 2))) for i in range(group_size)]
        raw_total += rrstr(
            source, dests, 150.0, RRStrConfig(refine=False)
        ).total_length()
        refined_total += rrstr(
            source, dests, 150.0, RRStrConfig(refine=True)
        ).total_length()
    saving = 1.0 - refined_total / raw_total
    return AblationOutcome(
        name="refinement",
        question="what does the re-attachment refinement buy?",
        metrics={
            "raw_length": raw_total,
            "refined_length": refined_total,
            "saving_fraction": saving,
        },
        conclusion=f"refinement shortens virtual trees by {100 * saving:.1f}%",
    )


def ablation_transmission_model(
    config: Optional[PaperConfig] = None,
    group_size: int = 12,
    task_count: int = 15,
) -> AblationOutcome:
    """E: broadcast frame aggregation vs per-copy unicast counting."""
    cfg = config or PaperConfig(node_count=400)
    network, tasks = _shared_workload(cfg, group_size, task_count)
    shared = _mean_metrics(
        network,
        GMPProtocol(),
        tasks,
        EngineConfig(max_path_length=cfg.max_path_length,
                     transmission_model="protocol"),
    )
    per_copy = _mean_metrics(
        network,
        GMPProtocol(),
        tasks,
        EngineConfig(max_path_length=cfg.max_path_length,
                     transmission_model="unicast"),
    )
    inflation = per_copy["transmissions"] / shared["transmissions"] - 1.0
    return AblationOutcome(
        name="transmission-model",
        question="how much does per-copy counting inflate GMP's totals?",
        metrics={
            "broadcast_transmissions": shared["transmissions"],
            "unicast_transmissions": per_copy["transmissions"],
            "inflation_fraction": inflation,
        },
        conclusion=f"per-copy counting inflates totals by {100 * inflation:.1f}%",
    )


#: All ablations in DESIGN.md order.
ALL_ABLATIONS: Sequence[Callable[..., AblationOutcome]] = (
    ablation_radio_range,
    ablation_next_hop_rule,
    ablation_rrstr_rule,
    ablation_refinement,
    ablation_transmission_model,
)


def run_all_ablations(
    config: Optional[PaperConfig] = None,
) -> List[AblationOutcome]:
    """Run every ablation (network-based ones on the given config)."""
    cfg = config or PaperConfig(node_count=400)
    outcomes = []
    for runner in ALL_ABLATIONS:
        if runner in (ablation_rrstr_rule, ablation_refinement):
            outcomes.append(runner())
        else:
            outcomes.append(runner(cfg))
    return outcomes


def render_ablations(outcomes: Sequence[AblationOutcome]) -> str:
    """Human-readable report of ablation outcomes."""
    lines = []
    for outcome in outcomes:
        lines.append(f"== {outcome.name} ==")
        lines.append(f"   {outcome.question}")
        for key, value in outcome.metrics.items():
            lines.append(f"   {key}: {value:.3f}")
        lines.append(f"   -> {outcome.conclusion}")
        lines.append("")
    return "\n".join(lines)
