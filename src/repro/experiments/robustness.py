"""Robustness experiments: delivery under link loss and node failures.

Extensions beyond the paper's evaluation (which assumes a loss-free MAC and
live nodes): sweep the injected link-loss rate and the fraction of crashed
nodes, and measure each protocol's delivery ratio and energy.  Flooding is
included as the redundancy reference — it pays maximal energy but tolerates
loss best, bracketing the stateless protocols from above.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.adversary import DROPPER, SPOOFER, SUPPRESSOR, AdversarySchedule, AdversarySpec
from repro.engine import EngineConfig, run_task, summarize_results
from repro.experiments.config import PaperConfig
from repro.experiments.figures import FigureResult
from repro.experiments.sweep import make_network
from repro.sessions.workload import generate_tasks
from repro.routing.base import RoutingProtocol
from repro.routing.flooding import FloodingProtocol
from repro.routing.gmp import GMPProtocol
from repro.routing.lgs import LGSProtocol
from repro.simkit.rng import RandomStreams, derive_seed

ProtocolFactory = Callable[[], RoutingProtocol]

#: Default protocol set for robustness sweeps.
DEFAULT_PROTOCOLS: Tuple[Tuple[str, ProtocolFactory], ...] = (
    ("GMP", GMPProtocol),
    ("LGS", LGSProtocol),
    ("FLOOD", FloodingProtocol),
)


@dataclass(frozen=True)
class RobustnessScale:
    """Statistical scale of the robustness sweeps."""

    name: str = "quick"
    network_count: int = 2
    tasks_per_network: int = 15
    group_size: int = 8
    loss_rates: Tuple[float, ...] = (0.0, 0.1, 0.2, 0.35, 0.5)
    failed_fractions: Tuple[float, ...] = (0.0, 0.05, 0.1, 0.2)
    adversary_counts: Tuple[int, ...] = (0, 1, 2, 4, 8)


SMOKE_ROBUSTNESS_SCALE = RobustnessScale(
    name="smoke",
    network_count=1,
    tasks_per_network=5,
    group_size=5,
    loss_rates=(0.0, 0.2),
    failed_fractions=(0.0, 0.1),
    adversary_counts=(0, 4),
)

QUICK_ROBUSTNESS_SCALE = RobustnessScale()

PAPER_ROBUSTNESS_SCALE = RobustnessScale(
    name="paper",
    network_count=5,
    tasks_per_network=40,
    group_size=10,
    loss_rates=(0.0, 0.05, 0.1, 0.2, 0.35, 0.5),
    failed_fractions=(0.0, 0.05, 0.1, 0.2, 0.3),
    adversary_counts=(0, 1, 2, 4, 8, 16),
)


def robustness_scale_by_name(name: str) -> RobustnessScale:
    """Resolve a scale preset; raises ``ValueError`` on unknown names."""
    scales = {
        "smoke": SMOKE_ROBUSTNESS_SCALE,
        "quick": QUICK_ROBUSTNESS_SCALE,
        "paper": PAPER_ROBUSTNESS_SCALE,
    }
    try:
        return scales[name]
    except KeyError:
        raise ValueError(
            f"unknown robustness scale {name!r} (expected one of "
            f"{sorted(scales)})"
        ) from None


def _delivery_and_energy(
    network,
    factory: ProtocolFactory,
    tasks,
    engine: EngineConfig,
) -> Tuple[float, float]:
    results = [
        run_task(network, factory(), t.source_id, t.destination_ids,
                 config=engine, task_id=t.task_id)
        for t in tasks
    ]
    summary = summarize_results(results)
    return summary.delivery_ratio, summary.mean_energy_joules


def link_loss_sweep(
    config: Optional[PaperConfig] = None,
    scale: Optional[RobustnessScale] = None,
    protocols: Sequence[Tuple[str, ProtocolFactory]] = DEFAULT_PROTOCOLS,
) -> Tuple[FigureResult, FigureResult]:
    """Delivery ratio and energy vs. injected link-loss rate.

    Returns ``(delivery_figure, energy_figure)``.
    """
    cfg = config or PaperConfig(node_count=400)
    scl = scale or RobustnessScale()
    streams = RandomStreams(cfg.master_seed)
    delivery: Dict[str, List[Tuple[float, float]]] = {n: [] for n, _ in protocols}
    energy: Dict[str, List[Tuple[float, float]]] = {n: [] for n, _ in protocols}
    for loss in scl.loss_rates:
        sums = {n: [0.0, 0.0] for n, _ in protocols}
        for net_index in range(scl.network_count):
            network = make_network(cfg, net_index)
            tasks = generate_tasks(
                network,
                scl.tasks_per_network,
                scl.group_size,
                streams.stream("robust-loss", net_index),
            )
            engine = EngineConfig(
                max_path_length=cfg.max_path_length,
                link_loss_rate=loss,
                loss_seed=derive_seed(cfg.master_seed, "loss", net_index),
            )
            for name, factory in protocols:
                ratio, joules = _delivery_and_energy(network, factory, tasks, engine)
                sums[name][0] += ratio
                sums[name][1] += joules
        for name, _ in protocols:
            delivery[name].append((loss, sums[name][0] / scl.network_count))
            energy[name].append((loss, sums[name][1] / scl.network_count))
    return (
        FigureResult(
            figure_id="robust-loss-delivery",
            title="Delivery ratio under link loss",
            x_label="per-copy loss probability",
            y_label="delivered / requested",
            series=delivery,
        ),
        FigureResult(
            figure_id="robust-loss-energy",
            title="Energy under link loss",
            x_label="per-copy loss probability",
            y_label="mean energy per task (J)",
            series=energy,
        ),
    )


def node_failure_sweep(
    config: Optional[PaperConfig] = None,
    scale: Optional[RobustnessScale] = None,
    protocols: Sequence[Tuple[str, ProtocolFactory]] = DEFAULT_PROTOCOLS,
) -> FigureResult:
    """Delivery ratio vs. fraction of silently crashed nodes.

    Crashed nodes are chosen uniformly (excluding each task's source); the
    protocols keep using stale neighbor tables, so copies routed into dead
    nodes vanish — the between-beacons failure window.
    """
    cfg = config or PaperConfig(node_count=400)
    scl = scale or RobustnessScale()
    streams = RandomStreams(cfg.master_seed)
    series: Dict[str, List[Tuple[float, float]]] = {n: [] for n, _ in protocols}
    for fraction in scl.failed_fractions:
        sums = {n: 0.0 for n, _ in protocols}
        for net_index in range(scl.network_count):
            network = make_network(cfg, net_index)
            fail_rng = np.random.default_rng(
                derive_seed(cfg.master_seed, "crash", net_index, fraction)
            )
            failed_count = int(round(fraction * network.node_count))
            failed = frozenset(
                int(x)
                for x in fail_rng.choice(
                    network.node_count, size=failed_count, replace=False
                )
            )
            tasks = [
                t
                for t in generate_tasks(
                    network,
                    scl.tasks_per_network * 2,
                    scl.group_size,
                    streams.stream("robust-crash", net_index, fraction),
                )
                if t.source_id not in failed
            ][: scl.tasks_per_network]
            engine = EngineConfig(
                max_path_length=cfg.max_path_length, failed_node_ids=failed
            )
            for name, factory in protocols:
                ratio, _ = _delivery_and_energy(network, factory, tasks, engine)
                sums[name] += ratio
        for name, _ in protocols:
            series[name].append((fraction, sums[name] / scl.network_count))
    return FigureResult(
        figure_id="robust-crash-delivery",
        title="Delivery ratio under silent node failures",
        x_label="fraction of crashed nodes",
        y_label="delivered / requested",
        series=series,
    )


#: Behaviors the adversary sweep exercises.  Jammers are excluded: they only
#: exist on the contended transmission model, while this sweep (like the rest
#: of the robustness family) runs the per-copy protocol model.
ADVERSARY_SWEEP_BEHAVIORS: Tuple[str, ...] = (DROPPER, SPOOFER, SUPPRESSOR)


def _behavior_spec(behavior: str, node_id: int, cfg: PaperConfig) -> AdversarySpec:
    if behavior == DROPPER:
        return AdversarySpec(node_id, DROPPER)
    if behavior == SPOOFER:
        return AdversarySpec(
            node_id, SPOOFER, spoof_offset_m=0.4 * cfg.field_width_m
        )
    if behavior == SUPPRESSOR:
        return AdversarySpec(node_id, SUPPRESSOR)
    raise ValueError(
        f"behavior {behavior!r} is not sweepable on the protocol model "
        f"(expected one of {list(ADVERSARY_SWEEP_BEHAVIORS)})"
    )


def adversary_sweep(
    config: Optional[PaperConfig] = None,
    scale: Optional[RobustnessScale] = None,
    behaviors: Tuple[str, ...] = ADVERSARY_SWEEP_BEHAVIORS,
    protocols: Sequence[Tuple[str, ProtocolFactory]] = DEFAULT_PROTOCOLS,
) -> Tuple[FigureResult, ...]:
    """Delivery ratio vs. number of adversarial nodes, one figure per behavior.

    Adversaries are placed uniformly; sources are filtered to honest nodes
    (an adversarial *source* would trivially sabotage its own task), but
    destinations and relays are left alone — routing *through* or *to* a
    compromised node is exactly the exposure being measured.  Count zero is
    the benign baseline: the schedule is empty, so the engine runs the
    adversary-free code path bit-for-bit.
    """
    cfg = config or PaperConfig(node_count=400)
    scl = scale or RobustnessScale()
    streams = RandomStreams(cfg.master_seed)
    figures: List[FigureResult] = []
    for behavior in behaviors:
        series: Dict[str, List[Tuple[float, float]]] = {n: [] for n, _ in protocols}
        for count in scl.adversary_counts:
            sums = {n: 0.0 for n, _ in protocols}
            for net_index in range(scl.network_count):
                network = make_network(cfg, net_index)
                adv_rng = np.random.default_rng(
                    derive_seed(cfg.master_seed, "adv-place", behavior, net_index, count)
                )
                chosen = sorted(
                    int(x)
                    for x in adv_rng.choice(
                        network.node_count, size=count, replace=False
                    )
                )
                schedule = AdversarySchedule(
                    specs=tuple(
                        _behavior_spec(behavior, node_id, cfg) for node_id in chosen
                    ),
                    seed=derive_seed(
                        cfg.master_seed, "adv-state", behavior, net_index, count
                    ),
                )
                adversarial = frozenset(chosen)
                tasks = [
                    t
                    for t in generate_tasks(
                        network,
                        scl.tasks_per_network * 2,
                        scl.group_size,
                        streams.stream("robust-adv", behavior, net_index, count),
                    )
                    if t.source_id not in adversarial
                ][: scl.tasks_per_network]
                engine = EngineConfig(
                    max_path_length=cfg.max_path_length, adversary=schedule
                )
                for name, factory in protocols:
                    ratio, _ = _delivery_and_energy(network, factory, tasks, engine)
                    sums[name] += ratio
            for name, _ in protocols:
                series[name].append((float(count), sums[name] / scl.network_count))
        figures.append(
            FigureResult(
                figure_id=f"robust-adv-{behavior}",
                title=f"Delivery ratio under {behavior} adversaries",
                x_label="adversarial node count",
                y_label="delivered / requested",
                series=series,
            )
        )
    return tuple(figures)
