"""Robustness experiments: delivery under link loss and node failures.

Extensions beyond the paper's evaluation (which assumes a loss-free MAC and
live nodes): sweep the injected link-loss rate and the fraction of crashed
nodes, and measure each protocol's delivery ratio and energy.  Flooding is
included as the redundancy reference — it pays maximal energy but tolerates
loss best, bracketing the stateless protocols from above.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine import EngineConfig, run_task, summarize_results
from repro.experiments.config import PaperConfig
from repro.experiments.figures import FigureResult
from repro.experiments.sweep import make_network
from repro.sessions.workload import generate_tasks
from repro.routing.base import RoutingProtocol
from repro.routing.flooding import FloodingProtocol
from repro.routing.gmp import GMPProtocol
from repro.routing.lgs import LGSProtocol
from repro.simkit.rng import RandomStreams, derive_seed

ProtocolFactory = Callable[[], RoutingProtocol]

#: Default protocol set for robustness sweeps.
DEFAULT_PROTOCOLS: Tuple[Tuple[str, ProtocolFactory], ...] = (
    ("GMP", GMPProtocol),
    ("LGS", LGSProtocol),
    ("FLOOD", FloodingProtocol),
)


@dataclass(frozen=True)
class RobustnessScale:
    """Statistical scale of the robustness sweeps."""

    name: str = "quick"
    network_count: int = 2
    tasks_per_network: int = 15
    group_size: int = 8
    loss_rates: Tuple[float, ...] = (0.0, 0.1, 0.2, 0.35, 0.5)
    failed_fractions: Tuple[float, ...] = (0.0, 0.05, 0.1, 0.2)


SMOKE_ROBUSTNESS_SCALE = RobustnessScale(
    name="smoke",
    network_count=1,
    tasks_per_network=5,
    group_size=5,
    loss_rates=(0.0, 0.2),
    failed_fractions=(0.0, 0.1),
)

QUICK_ROBUSTNESS_SCALE = RobustnessScale()

PAPER_ROBUSTNESS_SCALE = RobustnessScale(
    name="paper",
    network_count=5,
    tasks_per_network=40,
    group_size=10,
    loss_rates=(0.0, 0.05, 0.1, 0.2, 0.35, 0.5),
    failed_fractions=(0.0, 0.05, 0.1, 0.2, 0.3),
)


def robustness_scale_by_name(name: str) -> RobustnessScale:
    """Resolve a scale preset; raises ``ValueError`` on unknown names."""
    scales = {
        "smoke": SMOKE_ROBUSTNESS_SCALE,
        "quick": QUICK_ROBUSTNESS_SCALE,
        "paper": PAPER_ROBUSTNESS_SCALE,
    }
    try:
        return scales[name]
    except KeyError:
        raise ValueError(
            f"unknown robustness scale {name!r} (expected one of "
            f"{sorted(scales)})"
        ) from None


def _delivery_and_energy(
    network,
    factory: ProtocolFactory,
    tasks,
    engine: EngineConfig,
) -> Tuple[float, float]:
    results = [
        run_task(network, factory(), t.source_id, t.destination_ids,
                 config=engine, task_id=t.task_id)
        for t in tasks
    ]
    summary = summarize_results(results)
    return summary.delivery_ratio, summary.mean_energy_joules


def link_loss_sweep(
    config: Optional[PaperConfig] = None,
    scale: Optional[RobustnessScale] = None,
    protocols: Sequence[Tuple[str, ProtocolFactory]] = DEFAULT_PROTOCOLS,
) -> Tuple[FigureResult, FigureResult]:
    """Delivery ratio and energy vs. injected link-loss rate.

    Returns ``(delivery_figure, energy_figure)``.
    """
    cfg = config or PaperConfig(node_count=400)
    scl = scale or RobustnessScale()
    streams = RandomStreams(cfg.master_seed)
    delivery: Dict[str, List[Tuple[float, float]]] = {n: [] for n, _ in protocols}
    energy: Dict[str, List[Tuple[float, float]]] = {n: [] for n, _ in protocols}
    for loss in scl.loss_rates:
        sums = {n: [0.0, 0.0] for n, _ in protocols}
        for net_index in range(scl.network_count):
            network = make_network(cfg, net_index)
            tasks = generate_tasks(
                network,
                scl.tasks_per_network,
                scl.group_size,
                streams.stream("robust-loss", net_index),
            )
            engine = EngineConfig(
                max_path_length=cfg.max_path_length,
                link_loss_rate=loss,
                loss_seed=derive_seed(cfg.master_seed, "loss", net_index),
            )
            for name, factory in protocols:
                ratio, joules = _delivery_and_energy(network, factory, tasks, engine)
                sums[name][0] += ratio
                sums[name][1] += joules
        for name, _ in protocols:
            delivery[name].append((loss, sums[name][0] / scl.network_count))
            energy[name].append((loss, sums[name][1] / scl.network_count))
    return (
        FigureResult(
            figure_id="robust-loss-delivery",
            title="Delivery ratio under link loss",
            x_label="per-copy loss probability",
            y_label="delivered / requested",
            series=delivery,
        ),
        FigureResult(
            figure_id="robust-loss-energy",
            title="Energy under link loss",
            x_label="per-copy loss probability",
            y_label="mean energy per task (J)",
            series=energy,
        ),
    )


def node_failure_sweep(
    config: Optional[PaperConfig] = None,
    scale: Optional[RobustnessScale] = None,
    protocols: Sequence[Tuple[str, ProtocolFactory]] = DEFAULT_PROTOCOLS,
) -> FigureResult:
    """Delivery ratio vs. fraction of silently crashed nodes.

    Crashed nodes are chosen uniformly (excluding each task's source); the
    protocols keep using stale neighbor tables, so copies routed into dead
    nodes vanish — the between-beacons failure window.
    """
    cfg = config or PaperConfig(node_count=400)
    scl = scale or RobustnessScale()
    streams = RandomStreams(cfg.master_seed)
    series: Dict[str, List[Tuple[float, float]]] = {n: [] for n, _ in protocols}
    for fraction in scl.failed_fractions:
        sums = {n: 0.0 for n, _ in protocols}
        for net_index in range(scl.network_count):
            network = make_network(cfg, net_index)
            fail_rng = np.random.default_rng(
                derive_seed(cfg.master_seed, "crash", net_index, fraction)
            )
            failed_count = int(round(fraction * network.node_count))
            failed = frozenset(
                int(x)
                for x in fail_rng.choice(
                    network.node_count, size=failed_count, replace=False
                )
            )
            tasks = [
                t
                for t in generate_tasks(
                    network,
                    scl.tasks_per_network * 2,
                    scl.group_size,
                    streams.stream("robust-crash", net_index, fraction),
                )
                if t.source_id not in failed
            ][: scl.tasks_per_network]
            engine = EngineConfig(
                max_path_length=cfg.max_path_length, failed_node_ids=failed
            )
            for name, factory in protocols:
                ratio, _ = _delivery_and_energy(network, factory, tasks, engine)
                sums[name] += ratio
        for name, _ in protocols:
            series[name].append((fraction, sums[name] / scl.network_count))
    return FigureResult(
        figure_id="robust-crash-delivery",
        title="Delivery ratio under silent node failures",
        x_label="fraction of crashed nodes",
        y_label="delivered / requested",
        series=series,
    )
