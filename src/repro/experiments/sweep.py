"""Batch execution: seeded networks, task batches, and the PBM lambda sweep.

This module also hosts the pieces shared by the parallel experiment engine
(:mod:`repro.perf.parallel`):

* :func:`cached_network` — a per-process memo so each worker reconstructs a
  given deployment once and reuses it across all units it executes;
* :func:`build_protocol` — protocol construction from a picklable spec tuple,
  so work units ship ``("PBM", 0.3)`` instead of protocol instances;
* :func:`select_best_lambda` — the paper's per-task best-lambda selection,
  shared between the serial :func:`best_lambda_results` and the merge step of
  the parallel sweep so both paths apply byte-identical semantics.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine import DEFAULT_ENGINE_CONFIG, EngineConfig, TaskResult, run_task
from repro.experiments.config import PaperConfig
from repro.sessions.workload import MulticastTask
from repro.network.graph import WirelessNetwork, build_network
from repro.network.topology import uniform_random_topology
from repro.routing.base import RoutingProtocol
from repro.routing.gmp import GMPProtocol
from repro.routing.grd import GRDProtocol
from repro.routing.lgs import LGSProtocol
from repro.routing.pbm import PBMProtocol
from repro.routing.smt import SMTProtocol
from repro.perf.shm import attached_network
from repro.simkit.rng import RandomStreams

#: A picklable protocol description: ``(name,)`` or ``("PBM", lam)``.
ProtocolSpec = Tuple[object, ...]

_PROTOCOL_FACTORIES: Dict[str, Callable[[], RoutingProtocol]] = {
    "GMP": lambda: GMPProtocol(radio_aware=True),
    "GMPnr": lambda: GMPProtocol(radio_aware=False),
    "LGS": LGSProtocol,
    "SMT": SMTProtocol,
    "GRD": GRDProtocol,
}


def build_protocol(spec: ProtocolSpec) -> RoutingProtocol:
    """Construct a protocol instance from a picklable spec tuple.

    ``("GMP",)``, ``("GMPnr",)``, ``("LGS",)``, ``("SMT",)``, ``("GRD",)``
    take no parameters; ``("PBM", lam)`` carries its lambda.  Work units ship
    specs across the process boundary instead of live protocol objects, so a
    worker always starts from a freshly-constructed (stateless) instance.
    """
    name = spec[0]
    if name == "PBM":
        if len(spec) != 2:
            raise ValueError(f"PBM spec needs a lambda: {spec!r}")
        return PBMProtocol(lam=float(spec[1]))  # type: ignore[arg-type]
    if len(spec) != 1 or not isinstance(name, str):
        raise ValueError(f"malformed protocol spec {spec!r}")
    try:
        return _PROTOCOL_FACTORIES[name]()
    except KeyError:
        raise ValueError(f"unknown protocol spec {spec!r}") from None


def make_network(
    config: PaperConfig,
    network_index: int,
    node_count: Optional[int] = None,
) -> WirelessNetwork:
    """Deterministically build the ``network_index``-th evaluation network.

    The same ``(master_seed, network_index, node_count)`` triple always
    yields the identical deployment, so results are exactly reproducible.
    """
    count = node_count if node_count is not None else config.node_count
    streams = RandomStreams(config.master_seed)
    rng = streams.stream("topology", network_index, count)
    points = uniform_random_topology(
        count, config.field_width_m, config.field_height_m, rng
    )
    return build_network(points, config.radio)


#: Per-process deployment memo (see :func:`cached_network`).
_NETWORK_MEMO: "OrderedDict[Tuple[PaperConfig, int, Optional[int]], WirelessNetwork]" = (
    OrderedDict()
)
_NETWORK_MEMO_CAP = 64


def cached_network(
    config: PaperConfig,
    network_index: int,
    node_count: Optional[int] = None,
) -> WirelessNetwork:
    """:func:`make_network`, memoized per process.

    Parallel work units are sharded finer than one-unit-per-network (one per
    network x k x protocol), so each worker would otherwise rebuild the same
    deployment dozens of times.  Deployments are deterministic in the key and
    immutable in use, so sharing one instance is safe; the memo is a bounded
    LRU — hits move the entry to the back, eviction takes the *least
    recently used* front — so long many-density sessions neither accumulate
    networks without bound nor evict the deployment they are actively using.

    Before building, a miss consults the shared-memory plane
    (:func:`repro.perf.shm.attached_network`): when the parent published
    this deployment, the worker attaches a zero-copy view instead of
    rebuilding — bit-identical state for a fraction of the warm-up.
    """
    key = (config, network_index, node_count)
    network = _NETWORK_MEMO.get(key)
    if network is not None:
        _NETWORK_MEMO.move_to_end(key)
        return network
    network = attached_network(key)
    if network is None:
        network = make_network(config, network_index, node_count=node_count)
    if len(_NETWORK_MEMO) >= _NETWORK_MEMO_CAP:
        _NETWORK_MEMO.popitem(last=False)
    _NETWORK_MEMO[key] = network
    return network


def run_tasks(
    network: WirelessNetwork,
    protocol: RoutingProtocol,
    tasks: Sequence[MulticastTask],
    engine_config: EngineConfig | None = None,
) -> List[TaskResult]:
    """Run each task under ``protocol`` and collect the results."""
    cfg = engine_config or DEFAULT_ENGINE_CONFIG
    return [
        run_task(
            network,
            protocol,
            task.source_id,
            task.destination_ids,
            config=cfg,
            task_id=task.task_id,
        )
        for task in tasks
    ]


def select_best_lambda(
    per_lambda: Sequence[Sequence[TaskResult]],
) -> List[TaskResult]:
    """Per-task best result across lambda-ordered batches (Section 5.1).

    ``per_lambda[i][t]`` is task ``t`` run with the ``i``-th lambda; the
    winner per task is the minimum under ``(failed, transmissions)`` with
    ties broken by lambda order.  Kept as a standalone function because the
    parallel sweep applies it at merge time to batches computed by
    independent workers — both paths must agree exactly.
    """
    if not per_lambda:
        raise ValueError("need at least one lambda batch")
    task_count = len(per_lambda[0])
    if any(len(batch) != task_count for batch in per_lambda):
        raise ValueError("lambda batches must cover the same tasks")
    best: List[TaskResult] = []
    for task_index in range(task_count):
        candidates = [batch[task_index] for batch in per_lambda]
        best.append(
            min(
                candidates,
                key=lambda r: (0 if r.success else 1, r.transmissions),
            )
        )
    return best


def best_lambda_results(
    network: WirelessNetwork,
    tasks: Sequence[MulticastTask],
    lambdas: Sequence[float],
    engine_config: EngineConfig | None = None,
    protocol_factory: Callable[[float], RoutingProtocol] = PBMProtocol,
) -> List[TaskResult]:
    """The paper's PBM protocol: run each task once per lambda, keep the best.

    Section 5.1: "we have run the same routing task seven times, with the
    value of lambda varying from 0 to 0.6.  Among the results corresponding
    to these lambda values, only the best (minimum number of hops) one is
    included".  Failed runs are always dominated by successful ones.
    """
    if not lambdas:
        raise ValueError("need at least one lambda value")
    cfg = engine_config or DEFAULT_ENGINE_CONFIG
    per_lambda = [
        run_tasks(network, protocol_factory(lam), tasks, cfg) for lam in lambdas
    ]
    return select_best_lambda(per_lambda)
