"""Batch execution: seeded networks, task batches, and the PBM lambda sweep."""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.engine import EngineConfig, TaskResult, run_task
from repro.experiments.config import PaperConfig
from repro.experiments.workload import MulticastTask
from repro.network.graph import WirelessNetwork, build_network
from repro.network.topology import uniform_random_topology
from repro.routing.base import RoutingProtocol
from repro.routing.pbm import PBMProtocol
from repro.simkit.rng import RandomStreams


def make_network(
    config: PaperConfig,
    network_index: int,
    node_count: Optional[int] = None,
) -> WirelessNetwork:
    """Deterministically build the ``network_index``-th evaluation network.

    The same ``(master_seed, network_index, node_count)`` triple always
    yields the identical deployment, so results are exactly reproducible.
    """
    count = node_count if node_count is not None else config.node_count
    streams = RandomStreams(config.master_seed)
    rng = streams.stream("topology", network_index, count)
    points = uniform_random_topology(
        count, config.field_width_m, config.field_height_m, rng
    )
    return build_network(points, config.radio)


def run_tasks(
    network: WirelessNetwork,
    protocol: RoutingProtocol,
    tasks: Sequence[MulticastTask],
    engine_config: EngineConfig | None = None,
) -> List[TaskResult]:
    """Run each task under ``protocol`` and collect the results."""
    cfg = engine_config or EngineConfig()
    return [
        run_task(
            network,
            protocol,
            task.source_id,
            task.destination_ids,
            config=cfg,
            task_id=task.task_id,
        )
        for task in tasks
    ]


def best_lambda_results(
    network: WirelessNetwork,
    tasks: Sequence[MulticastTask],
    lambdas: Sequence[float],
    engine_config: EngineConfig | None = None,
    protocol_factory: Callable[[float], RoutingProtocol] = PBMProtocol,
) -> List[TaskResult]:
    """The paper's PBM protocol: run each task once per lambda, keep the best.

    Section 5.1: "we have run the same routing task seven times, with the
    value of lambda varying from 0 to 0.6.  Among the results corresponding
    to these lambda values, only the best (minimum number of hops) one is
    included".  Failed runs are always dominated by successful ones.
    """
    if not lambdas:
        raise ValueError("need at least one lambda value")
    cfg = engine_config or EngineConfig()
    per_lambda = [
        run_tasks(network, protocol_factory(lam), tasks, cfg) for lam in lambdas
    ]
    best: List[TaskResult] = []
    for task_index in range(len(tasks)):
        candidates = [results[task_index] for results in per_lambda]
        best.append(
            min(
                candidates,
                key=lambda r: (0 if r.success else 1, r.transmissions),
            )
        )
    return best
