"""Contention experiments: concurrent sessions on the shared channel.

The paper's figures assume a collision-free MAC; these extension sweeps run
the same protocols through the contended link layer
(:mod:`repro.linklayer`), where concurrent multicast sessions genuinely
fight for the air.  Two questions are measured:

* **Scaling with load** — :func:`contention_sweep`: delivery ratio, latency
  and energy as the number of concurrent sessions grows, at one or more
  offered loads (mean session inter-arrival times).  Flooding is included
  as the redundancy reference: its broadcast storm is exactly what CSMA
  punishes, so the loss-free ordering inverts under contention.
* **What ARQ buys** — :func:`arq_ablation`: GMP delivery vs. injected link
  loss with retransmission on and off, at fixed concurrency.

Everything is sharded into pure work units and executed through
:func:`repro.perf.parallel.run_units`, so results are bit-identical for any
worker count: tasks, arrival times, MAC backoff and loss coins all re-derive
from the master seed inside the executing process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine import EngineConfig, TaskResult, run_contended_tasks, summarize_results
from repro.experiments.config import PaperConfig
from repro.experiments.figures import FigureResult
from repro.experiments.sweep import ProtocolSpec, build_protocol, cached_network
from repro.linklayer import LinkLayerConfig
from repro.perf.counters import GLOBAL_COUNTERS, merge_worker_perf
from repro.perf.parallel import run_units
from repro.sessions.arrivals import exponential_starts
from repro.sessions.workload import generate_tasks
from repro.routing.base import RoutingProtocol
from repro.routing.flooding import FloodingProtocol
from repro.simkit.rng import RandomStreams

ProgressFn = Callable[[str], None]

#: Protocols compared under contention (order fixes unit submission order).
CONTENTION_SPECS: Tuple[ProtocolSpec, ...] = (
    ("GMP",),
    ("LGS",),
    ("GRD",),
    ("FLOOD",),
)


def contention_protocol(spec: ProtocolSpec) -> RoutingProtocol:
    """Like :func:`~repro.experiments.sweep.build_protocol`, plus FLOOD."""
    if spec == ("FLOOD",):
        return FloodingProtocol()
    return build_protocol(spec)


@dataclass(frozen=True)
class ContentionScale:
    """Statistical scale of the contention sweeps.

    Attributes:
        name: Preset name (``smoke`` / ``quick`` / ``paper``).
        network_count: Seeded deployments averaged per cell.
        node_count: Deployment size (contended runs cost far more events
            per task than the default model, so this is deliberately
            smaller than Table 1's 1000).
        group_size: Destinations per multicast session.
        session_counts: Concurrency levels (x axis of the sweep figures).
        interarrival_s: Mean session inter-arrival times — one full sweep
            is run per value; smaller means higher offered load.
        ablation_loss_rates: Injected per-copy loss rates of the ARQ
            ablation (its x axis).
        ablation_sessions: Fixed concurrency of the ARQ ablation.
    """

    name: str = "quick"
    network_count: int = 2
    node_count: int = 300
    group_size: int = 8
    session_counts: Tuple[int, ...] = (1, 2, 4, 8)
    interarrival_s: Tuple[float, ...] = (0.05, 0.005)
    ablation_loss_rates: Tuple[float, ...] = (0.0, 0.1, 0.25, 0.4)
    ablation_sessions: int = 2


SMOKE_CONTENTION_SCALE = ContentionScale(
    name="smoke",
    network_count=1,
    node_count=150,
    group_size=5,
    session_counts=(1, 3),
    interarrival_s=(0.01,),
    ablation_loss_rates=(0.0, 0.25),
    ablation_sessions=2,
)

QUICK_CONTENTION_SCALE = ContentionScale()

PAPER_CONTENTION_SCALE = ContentionScale(
    name="paper",
    network_count=5,
    node_count=500,
    group_size=10,
    session_counts=(1, 2, 4, 8, 16),
    interarrival_s=(0.1, 0.01, 0.001),
    ablation_loss_rates=(0.0, 0.05, 0.1, 0.2, 0.35, 0.5),
    ablation_sessions=4,
)


def contention_scale_by_name(name: str) -> ContentionScale:
    """Resolve a scale preset; raises ``ValueError`` on unknown names."""
    scales = {
        "smoke": SMOKE_CONTENTION_SCALE,
        "quick": QUICK_CONTENTION_SCALE,
        "paper": PAPER_CONTENTION_SCALE,
    }
    try:
        return scales[name]
    except KeyError:
        raise ValueError(
            f"unknown contention scale {name!r} (expected one of "
            f"{sorted(scales)})"
        ) from None


#: One unit's payload: session results plus the perf-counter delta.
UnitOutput = Tuple[List[TaskResult], Dict[str, float]]


def _session_specs_and_starts(
    config: PaperConfig,
    scale: ContentionScale,
    net_index: int,
    session_count: int,
    interarrival_s: float,
) -> Tuple[List[Tuple[int, int, Tuple[int, ...]]], List[float]]:
    """The cell's sessions (same for every protocol) and arrival times.

    Task ids are unique per (network, concurrency) cell so each session's
    loss stream is distinct, but independent of the offered load — the same
    sessions are replayed at every load, only their spacing changes.
    """
    network = cached_network(config, net_index, node_count=scale.node_count)
    streams = RandomStreams(config.master_seed)
    tasks = generate_tasks(
        network,
        session_count,
        scale.group_size,
        streams.stream("contention-tasks", net_index, session_count),
        first_task_id=net_index * 10_000 + session_count * 100,
    )
    arrival_rng = streams.stream(
        "contention-arrivals", net_index, session_count, interarrival_s
    )
    starts = exponential_starts(arrival_rng, len(tasks), interarrival_s)
    return [t.as_session_tuple() for t in tasks], starts


def run_contention_unit(
    config: PaperConfig,
    scale: ContentionScale,
    engine: EngineConfig,
    net_index: int,
    session_count: int,
    interarrival_s: float,
    spec: ProtocolSpec,
) -> UnitOutput:
    """One (network, concurrency, load, protocol) unit of the sweep.

    Pure in its picklable arguments — the deployment, the sessions, their
    arrival times, and every random MAC delay re-derive from seeds inside
    the executing process, so inline and pooled execution agree byte for
    byte.
    """
    network = cached_network(config, net_index, node_count=scale.node_count)
    sessions, starts = _session_specs_and_starts(
        config, scale, net_index, session_count, interarrival_s
    )
    before = GLOBAL_COUNTERS.snapshot()
    results = run_contended_tasks(
        network,
        sessions,
        lambda: contention_protocol(spec),
        config=engine,
        start_times=starts,
    )
    return results, GLOBAL_COUNTERS.delta_since(before)


def _contended_engine(
    config: PaperConfig,
    loss_rate: float = 0.0,
    link: Optional[LinkLayerConfig] = None,
) -> EngineConfig:
    kwargs = {}
    if link is not None:
        kwargs["link"] = link
    return EngineConfig(
        max_path_length=config.max_path_length,
        transmission_model="contended",
        link_loss_rate=loss_rate,
        loss_seed=config.master_seed,
        **kwargs,
    )


def contention_sweep(
    config: Optional[PaperConfig] = None,
    scale: Optional[ContentionScale] = None,
    progress: Optional[ProgressFn] = None,
    workers: int = 1,
) -> Dict[str, FigureResult]:
    """Delivery, latency and energy vs. concurrent session count.

    One series per (protocol, offered load); x is the number of concurrent
    sessions sharing the channel.  Returns figures keyed
    ``contention-delivery`` / ``contention-latency`` / ``contention-energy``.
    """
    cfg = config or PaperConfig()
    scl = scale or QUICK_CONTENTION_SCALE
    engine = _contended_engine(cfg)
    cells = [
        (net_index, sessions, interarrival)
        for interarrival in scl.interarrival_s
        for sessions in scl.session_counts
        for net_index in range(scl.network_count)
    ]
    units = [
        (cfg, scl, engine, net_index, sessions, interarrival, spec)
        for net_index, sessions, interarrival in cells
        for spec in CONTENTION_SPECS
    ]

    finished = 0

    def cell_progress(_unit_message: str) -> None:
        nonlocal finished
        finished += 1
        if progress is not None and finished % len(CONTENTION_SPECS) == 0:
            net_index, sessions, interarrival = cells[
                finished // len(CONTENTION_SPECS) - 1
            ]
            progress(
                f"load {interarrival}s: {sessions} sessions, "
                f"network {net_index + 1}/{scl.network_count} done"
            )

    outputs = run_units(
        run_contention_unit,
        units,
        workers=workers,
        progress=None if progress is None else cell_progress,
    )
    merge_worker_perf(
        (delta for _, delta in outputs),
        used_pool=workers > 1 and len(units) > 1,
    )

    def series_label(spec: ProtocolSpec, interarrival: float) -> str:
        base = str(spec[0])
        if len(scl.interarrival_s) == 1:
            return base
        return f"{base} ia={interarrival:g}s"

    delivery: Dict[str, List[Tuple[float, float]]] = {}
    latency: Dict[str, List[Tuple[float, float]]] = {}
    energy: Dict[str, List[Tuple[float, float]]] = {}
    index = 0
    accumulators: Dict[str, List[float]] = {}
    for net_index, sessions, interarrival in cells:
        if net_index == 0:
            accumulators = {
                series_label(spec, interarrival): [0.0, 0.0, 0.0]
                for spec in CONTENTION_SPECS
            }
        for spec, (results, _) in zip(
            CONTENTION_SPECS, outputs[index : index + len(CONTENTION_SPECS)]
        ):
            summary = summarize_results(results)
            label = series_label(spec, interarrival)
            accumulators[label][0] += summary.delivery_ratio
            accumulators[label][1] += summary.mean_duration_s
            accumulators[label][2] += summary.mean_energy_joules
        index += len(CONTENTION_SPECS)
        if net_index == scl.network_count - 1:
            for spec in CONTENTION_SPECS:
                label = series_label(spec, interarrival)
                sums = accumulators[label]
                x = float(sessions)
                delivery.setdefault(label, []).append(
                    (x, sums[0] / scl.network_count)
                )
                latency.setdefault(label, []).append(
                    (x, 1000.0 * sums[1] / scl.network_count)
                )
                energy.setdefault(label, []).append(
                    (x, sums[2] / scl.network_count)
                )
    return {
        "contention-delivery": FigureResult(
            figure_id="contention-delivery",
            title="Delivery ratio under channel contention",
            x_label="concurrent sessions",
            y_label="delivered / requested",
            series=delivery,
        ),
        "contention-latency": FigureResult(
            figure_id="contention-latency",
            title="Latency under channel contention",
            x_label="concurrent sessions",
            y_label="mean session completion time (ms)",
            series=latency,
        ),
        "contention-energy": FigureResult(
            figure_id="contention-energy",
            title="Energy under channel contention",
            x_label="concurrent sessions",
            y_label="mean energy per session (J)",
            series=energy,
        ),
    }


def arq_ablation(
    config: Optional[PaperConfig] = None,
    scale: Optional[ContentionScale] = None,
    progress: Optional[ProgressFn] = None,
    workers: int = 1,
) -> FigureResult:
    """GMP delivery ratio vs. injected link loss, ARQ on vs. off.

    Same sessions, same loss coins (the loss stream is keyed by task id and
    seed, not by the MAC configuration) — the only difference is whether
    destroyed copies are retransmitted.
    """
    cfg = config or PaperConfig()
    scl = scale or QUICK_CONTENTION_SCALE
    arms: Tuple[Tuple[str, Optional[LinkLayerConfig]], ...] = (
        ("GMP ARQ", None),
        ("GMP no-ARQ", LinkLayerConfig(arq=False)),
    )
    interarrival = scl.interarrival_s[0]
    cells = [
        (loss, net_index)
        for loss in scl.ablation_loss_rates
        for net_index in range(scl.network_count)
    ]
    units = [
        (
            cfg,
            scl,
            _contended_engine(cfg, loss_rate=loss, link=link),
            net_index,
            scl.ablation_sessions,
            interarrival,
            ("GMP",),
        )
        for loss, net_index in cells
        for _, link in arms
    ]

    finished = 0

    def cell_progress(_unit_message: str) -> None:
        nonlocal finished
        finished += 1
        if progress is not None and finished % len(arms) == 0:
            loss, net_index = cells[finished // len(arms) - 1]
            progress(
                f"loss {loss}: network {net_index + 1}/{scl.network_count} done"
            )

    outputs = run_units(
        run_contention_unit,
        units,
        workers=workers,
        progress=None if progress is None else cell_progress,
    )
    merge_worker_perf(
        (delta for _, delta in outputs),
        used_pool=workers > 1 and len(units) > 1,
    )

    series: Dict[str, List[Tuple[float, float]]] = {name: [] for name, _ in arms}
    index = 0
    sums: Dict[str, float] = {}
    for loss, net_index in cells:
        if net_index == 0:
            sums = {name: 0.0 for name, _ in arms}
        for (name, _), (results, _) in zip(
            arms, outputs[index : index + len(arms)]
        ):
            sums[name] += summarize_results(results).delivery_ratio
        index += len(arms)
        if net_index == scl.network_count - 1:
            for name, _ in arms:
                series[name].append((loss, sums[name] / scl.network_count))
    return FigureResult(
        figure_id="contention-arq",
        title="ARQ under injected link loss (GMP)",
        x_label="per-copy loss probability",
        y_label="delivered / requested",
        series=series,
    )
