"""Text rendering of regenerated figures.

The paper's figures are line plots; in a terminal we render each as a table
(rows = x values, columns = series) plus, where meaningful, the headline
ratios the paper calls out (e.g. GMP's ~25% saving over PBM/LGS).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.figures import FigureResult


def render_figure_table(figure: FigureResult, precision: int = 2) -> str:
    """ASCII table of a :class:`FigureResult`."""
    labels = figure.labels()
    xs = figure.xs()
    header = [figure.x_label] + labels
    rows: List[List[str]] = [header]
    for x in xs:
        row = [f"{x:g}"]
        for label in labels:
            row.append(f"{figure.value(label, x):.{precision}f}")
        rows.append(row)
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = [f"== {figure.title} ({figure.figure_id}) ==", f"   y: {figure.y_label}"]
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(widths[j]) for j, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_ratio_summary(
    figure: FigureResult,
    reference_label: str,
    against: Sequence[str],
) -> str:
    """Relative savings of ``reference_label`` vs. each label in ``against``.

    Reported as the mean and max percentage saving across x values,
    mirroring the paper's "up to 25% less hops and energy" claims.
    """
    if reference_label not in figure.series:
        raise KeyError(f"no series {reference_label!r} in {figure.figure_id}")
    lines = [f"-- {reference_label} savings ({figure.figure_id}) --"]
    for label in against:
        if label not in figure.series:
            continue
        savings: List[float] = []
        for x in figure.xs():
            other = figure.value(label, x)
            if other <= 0:
                continue
            savings.append(100.0 * (1.0 - figure.value(reference_label, x) / other))
        if not savings:
            lines.append(f"vs {label}: n/a")
            continue
        lines.append(
            f"vs {label}: mean {sum(savings) / len(savings):.1f}% "
            f"(max {max(savings):.1f}%)"
        )
    return "\n".join(lines)


def render_confidence_table(
    sweep,
    metric,
    metric_name: str,
    confidence: float = 0.95,
    precision: int = 2,
) -> str:
    """Per-protocol mean ± CI table for one metric of a group-size sweep.

    Args:
        sweep: A :class:`repro.experiments.figures.GroupSizeSweep`.
        metric: ``TaskResult -> float`` extractor (e.g. transmissions).
        metric_name: Heading for the table.
        confidence: Two-sided confidence level for the Student-t interval.
    """
    from repro.experiments.statistics import mean_confidence_interval

    labels = list(sweep.results)
    ks = sweep.scale.group_sizes
    header = ["k"] + labels
    rows: List[List[str]] = [header]
    for k in ks:
        row = [f"{k}"]
        for label in labels:
            batch = sweep.results[label].get(k, [])
            if not batch:
                row.append("n/a")
                continue
            ci = mean_confidence_interval(
                [metric(r) for r in batch], confidence=confidence
            )
            row.append(f"{ci.mean:.{precision}f}±{ci.half_width:.{precision}f}")
        rows.append(row)
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = [
        f"== {metric_name} (mean ± {int(confidence * 100)}% CI) =="
    ]
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(widths[j]) for j, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def figure_as_dict_rows(figure: FigureResult) -> List[Dict[str, float]]:
    """Figure points as flat dict rows (handy for JSON/CSV export)."""
    rows = []
    for x in figure.xs():
        row: Dict[str, float] = {"x": x}
        for label in figure.labels():
            row[label] = figure.value(label, x)
        rows.append(row)
    return rows
