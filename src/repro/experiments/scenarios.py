"""The paper's worked examples as executable scenarios.

The paper explains its mechanisms on six hand-drawn figures.  This module
reconstructs each as a concrete network geometry whose defining property is
*checkable*, so the worked examples double as regression anchors:

* :func:`figure4_instance` — the rrSTR walk-through (far pair merges under
  a virtual destination, mid/near destinations chain onto the trunk);
* :func:`figure8_network` — the GMP routing example (relays n1..n5 between
  a source and destinations c, u, v, d);
* :func:`figure9_network` — the group-splitting situation (one pivot for
  all destinations but no single valid next hop; lateral neighbors serve
  the two branches after the split);
* :func:`figure10_network` — the void destination that GMP absorbs into a
  routable group while PBM sends it to perimeter mode;
* :func:`figure13_instance` — the LGS sequential-visit pathology (the MST
  from the current node is a chain, so LGS never splits).

Exact coordinates are not published in the paper; these reconstructions
preserve each figure's *qualitative* geometry, which is what the claims
attach to.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.geometry import Point
from repro.network import RadioConfig, build_network
from repro.network.graph import WirelessNetwork

#: Radio range shared by every scenario (the paper's Table-1 value).
SCENARIO_RADIO_RANGE = 150.0


def _network(points: Sequence[Point]) -> WirelessNetwork:
    return build_network(points, RadioConfig(radio_range_m=SCENARIO_RADIO_RANGE))


@dataclass(frozen=True)
class SteinerInstance:
    """A source plus destinations for tree-construction scenarios."""

    source: Point
    destinations: Tuple[Tuple[int, Point], ...]
    description: str


@dataclass(frozen=True)
class RoutingScenario:
    """A network plus a multicast task for routing scenarios."""

    network: WirelessNetwork
    source_id: int
    destination_ids: Tuple[int, ...]
    description: str


def figure4_instance() -> SteinerInstance:
    """Figures 1 and 4: destinations c (near), d (mid), u and v (far pair).

    rrSTR merges (u, v) first (largest reduction ratio), then chains the
    trunk toward the source through d's and c's neighborhood.
    """
    return SteinerInstance(
        source=Point(0.0, 0.0),
        destinations=(
            (1, Point(140.0, 30.0)),   # c
            (2, Point(380.0, 20.0)),   # d
            (3, Point(620.0, 110.0)),  # u
            (4, Point(650.0, 30.0)),   # v
        ),
        description="rrSTR walk-through (paper Figures 1 and 4)",
    )


def figure8_network() -> RoutingScenario:
    """Figure 8: GMP routing with relays n1..n5 between s and {c, u, v, d}.

    Node ids: 0=s, 1=n1, 2=c, 3=n2, 4=n3, 5=n4, 6=n5, 7=u, 8=v, 9=d.
    """
    points = [
        Point(0.0, 0.0),      # 0: s
        Point(80.0, 20.0),    # 1: n1
        Point(190.0, 40.0),   # 2: c (destination and relay)
        Point(320.0, 50.0),   # 3: n2
        Point(450.0, 60.0),   # 4: n3
        Point(560.0, 130.0),  # 5: n4
        Point(560.0, -20.0),  # 6: n5
        Point(660.0, 180.0),  # 7: u
        Point(690.0, 90.0),   # 8: v
        Point(670.0, -60.0),  # 9: d
    ]
    return RoutingScenario(
        network=_network(points),
        source_id=0,
        destination_ids=(2, 7, 8, 9),
        description="GMP routing example (paper Figure 8)",
    )


def figure9_network() -> RoutingScenario:
    """Figure 9: splitting when no single next hop serves the whole group.

    Two destination branches ~110 degrees apart; the source's only useful
    neighbors are lateral (n1 up, n2 down), each valid for one branch only.
    Node ids: 0=s, 1=n1, 2=n2, 3=u, 4=v, 5=c, 6=d, 7+=relays.
    """

    def polar(r: float, deg: float) -> Point:
        return Point(r * math.cos(math.radians(deg)), r * math.sin(math.radians(deg)))

    points = [
        Point(0.0, 0.0),   # 0: s
        polar(140, 95),    # 1: n1
        polar(140, -95),   # 2: n2
        polar(800, 55),    # 3: u
        polar(810, 52),    # 4: v
        polar(800, -55),   # 5: c
        polar(810, -52),   # 6: d
        # Relay chains so the branches are actually reachable end-to-end
        # (consecutive chain hops are within the 150 m radio range).
        polar(270, 80), polar(400, 70), polar(530, 63), polar(660, 58),
        polar(270, -80), polar(400, -70), polar(530, -63), polar(660, -58),
    ]
    return RoutingScenario(
        network=_network(points),
        source_id=0,
        destination_ids=(3, 4, 5, 6),
        description="group splitting at the source (paper Figure 9)",
    )


def figure10_network() -> RoutingScenario:
    """Figure 10: a void destination joins a routable group under GMP.

    v (node 3) has no neighbor of s closer to it, so PBM immediately puts
    it into perimeter mode; under GMP the group {u, v} still has a valid
    next hop n, so the source keeps the whole group greedy.  Relays r1, r2
    connect v to the rest so the task can complete end-to-end.
    Node ids: 0=s, 1=n, 2=u, 3=v, 4=r1, 5=r2.
    """
    points = [
        Point(0.0, 0.0),
        Point(120.0, 80.0),
        Point(200.0, 150.0),
        Point(-100.0, 250.0),
        Point(130.0, 270.0),
        Point(0.0, 280.0),
    ]
    return RoutingScenario(
        network=_network(points),
        source_id=0,
        destination_ids=(2, 3),
        description="void destination absorbed into a group (paper Figure 10)",
    )


def figure13_instance() -> SteinerInstance:
    """Figure 13: the LGS chain — from c, the MST over {c,u,v,d} is a path."""
    return SteinerInstance(
        source=Point(0.0, 0.0),        # c (the current node)
        destinations=(
            (1, Point(120.0, 40.0)),   # u
            (2, Point(240.0, 30.0)),   # v
            (3, Point(380.0, 60.0)),   # d
        ),
        description="LGS sequential-visit pathology (paper Figure 13)",
    )


def figure13_network() -> RoutingScenario:
    """Figure 13 with relays, runnable end-to-end."""
    points = [
        Point(0.0, 0.0),     # 0: c (source here)
        Point(120.0, 20.0),  # 1: relay
        Point(240.0, 40.0),  # 2: u
        Point(360.0, 30.0),  # 3: relay
        Point(480.0, 50.0),  # 4: v
        Point(600.0, 40.0),  # 5: relay
        Point(720.0, 60.0),  # 6: d
    ]
    return RoutingScenario(
        network=_network(points),
        source_id=0,
        destination_ids=(2, 4, 6),
        description="LGS chains destinations sequentially (paper Figure 13)",
    )


def all_scenarios() -> List[RoutingScenario]:
    """Every runnable routing scenario (for smoke sweeps)."""
    return [
        figure8_network(),
        figure9_network(),
        figure10_network(),
        figure13_network(),
    ]
