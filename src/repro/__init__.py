"""repro: a full reproduction of *GMP: Distributed Geographic Multicast
Routing in Wireless Sensor Networks* (Wu & Candan, ICDCS 2006).

Public API tour
---------------

Build a network, pick a protocol, run a task::

    import numpy as np
    from repro import (
        GMPProtocol, PaperConfig, build_network, run_task,
        uniform_random_topology,
    )

    rng = np.random.default_rng(7)
    points = uniform_random_topology(1000, 1000.0, 1000.0, rng)
    network = build_network(points)
    result = run_task(network, GMPProtocol(), source_id=0,
                      destination_ids=[10, 20, 30])
    print(result.total_hops, result.average_per_destination_hops)

Regenerate the paper's figures::

    from repro.experiments import (
        PaperConfig, QUICK_SCALE, run_group_size_sweep, figure11,
    )
    sweep = run_group_size_sweep(PaperConfig(), QUICK_SCALE)
    print(figure11(sweep).series["GMP"])

Package map: :mod:`repro.geometry` (plane geometry, Fermat points),
:mod:`repro.simkit` (DES kernel), :mod:`repro.network` (WSN substrate),
:mod:`repro.steiner` (rrSTR / MST / KMB), :mod:`repro.routing` (GMP and
baselines), :mod:`repro.engine` (task execution), and
:mod:`repro.experiments` (the evaluation harness).
"""

from repro.geometry import Point
from repro.network import (
    RadioConfig,
    SensorNode,
    WirelessNetwork,
    build_network,
    clustered_topology,
    grid_topology,
    topology_with_voids,
    uniform_random_topology,
)
from repro.packets import Destination, MulticastPacket
from repro.steiner import RRStrConfig, SteinerTree, euclidean_mst, kmb_steiner_tree, rrstr
from repro.routing import (
    FloodingProtocol,
    GMPProtocol,
    GPSRProtocol,
    GRDProtocol,
    LGKProtocol,
    LGSProtocol,
    NodeView,
    PBMProtocol,
    RoutingProtocol,
    SMTProtocol,
)
from repro.engine import EngineConfig, TaskResult, run_task, summarize_results
from repro.experiments.config import PaperConfig

__version__ = "1.0.0"

__all__ = [
    "Point",
    "RadioConfig",
    "SensorNode",
    "WirelessNetwork",
    "build_network",
    "uniform_random_topology",
    "grid_topology",
    "clustered_topology",
    "topology_with_voids",
    "Destination",
    "MulticastPacket",
    "SteinerTree",
    "RRStrConfig",
    "rrstr",
    "euclidean_mst",
    "kmb_steiner_tree",
    "RoutingProtocol",
    "NodeView",
    "FloodingProtocol",
    "GMPProtocol",
    "GPSRProtocol",
    "GRDProtocol",
    "LGSProtocol",
    "LGKProtocol",
    "PBMProtocol",
    "SMTProtocol",
    "EngineConfig",
    "TaskResult",
    "run_task",
    "summarize_results",
    "PaperConfig",
    "__version__",
]
