"""Scenario sampling: one root seed fans out into complete test scenarios.

A :class:`ScenarioSpec` is everything needed to reproduce one fuzz case —
deployment, protocol, workload, fault and adversary schedules — as plain
JSON-round-trippable data.  :func:`sample_scenario` derives scenario ``i``
of a campaign from ``derive_seed(root_seed, "fuzz-scenario", i)`` alone, so
scenarios are independent of each other and of the budget: growing a
campaign appends scenarios without perturbing earlier ones.

The sampling ranges live in :class:`FuzzLimits`.  The defaults deliberately
skew *sparse*: on a 1000 m field with a 150 m radio, 110–230 nodes produce
mean degrees around 8–16 — dense enough to be mostly connected, sparse
enough that geometric voids (and therefore perimeter routing, the paper's
recovery path and the fuzzer's richest bug surface) actually occur.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.adversary.schedule import (
    DROPPER,
    JAMMER,
    SPOOFER,
    SUPPRESSOR,
    AdversarySchedule,
    AdversarySpec,
)
from repro.simkit.rng import derive_seed


@dataclass(frozen=True)
class FuzzLimits:
    """Sampling ranges of one campaign (repeated entries skew the odds)."""

    node_counts: Tuple[int, ...] = (110, 140, 180, 230)
    field_sizes_m: Tuple[float, ...] = (800.0, 1000.0)
    group_sizes: Tuple[int, ...] = (2, 3, 5, 8, 12)
    task_counts: Tuple[int, ...] = (1, 2, 3)
    protocols: Tuple[str, ...] = ("GMP", "LGS", "GRD")
    loss_rates: Tuple[float, ...] = (0.0, 0.0, 0.1, 0.3)
    failure_fractions: Tuple[float, ...] = (0.0, 0.0, 0.05, 0.1)
    adversary_counts: Tuple[int, ...] = (0, 1, 1, 2, 3)
    behaviors: Tuple[str, ...] = (DROPPER, SPOOFER, SUPPRESSOR)
    #: Probability a scenario runs on the contended CSMA/ARQ link layer
    #: (slower, so a minority of the budget) — which also unlocks jammers.
    contended_fraction: float = 0.15
    #: Contended scenarios are capped at this many nodes to stay fast.
    contended_node_cap: int = 140
    max_path_length: int = 100

    def __post_init__(self) -> None:
        for name in (
            "node_counts",
            "field_sizes_m",
            "group_sizes",
            "task_counts",
            "protocols",
            "loss_rates",
            "failure_fractions",
            "adversary_counts",
            "behaviors",
        ):
            if not getattr(self, name):
                raise ValueError(f"fuzz limits field {name!r} must be non-empty")
        if not 0.0 <= self.contended_fraction <= 1.0:
            raise ValueError(
                f"contended fraction must be in [0, 1], got {self.contended_fraction}"
            )
        if self.max_path_length <= 0:
            raise ValueError(
                f"max path length must be positive, got {self.max_path_length}"
            )

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "node_counts": list(self.node_counts),
            "field_sizes_m": list(self.field_sizes_m),
            "group_sizes": list(self.group_sizes),
            "task_counts": list(self.task_counts),
            "protocols": list(self.protocols),
            "loss_rates": list(self.loss_rates),
            "failure_fractions": list(self.failure_fractions),
            "adversary_counts": list(self.adversary_counts),
            "behaviors": list(self.behaviors),
            "contended_fraction": self.contended_fraction,
            "contended_node_cap": self.contended_node_cap,
            "max_path_length": self.max_path_length,
        }


#: Shared immutable default ranges.
DEFAULT_FUZZ_LIMITS = FuzzLimits()


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, self-describing fuzz case.

    ``seed`` alone determines the deployment, the workload draws, the loss
    process, and every adversary's random choices; the remaining fields are
    the sampled shape.  Specs round-trip exactly through JSON, which is
    what makes shrunk repros committable as regression fixtures.
    """

    seed: int
    node_count: int
    field_size_m: float
    protocol: str
    transmission_model: str
    task_count: int
    group_size: int
    link_loss_rate: float
    failed_node_ids: Tuple[int, ...] = ()
    adversaries: Tuple[AdversarySpec, ...] = ()
    max_path_length: int = 100

    def __post_init__(self) -> None:
        if self.node_count < 2:
            raise ValueError(f"need at least 2 nodes, got {self.node_count}")
        if self.field_size_m <= 0.0:
            raise ValueError(f"field size must be positive, got {self.field_size_m}")
        if self.transmission_model not in ("protocol", "contended"):
            raise ValueError(
                f"unknown scenario transmission model {self.transmission_model!r}"
            )
        if self.task_count <= 0:
            raise ValueError(f"task count must be positive, got {self.task_count}")
        if not 1 <= self.group_size < self.node_count:
            raise ValueError(
                f"group size must be in [1, node_count), got {self.group_size}"
            )
        if not 0.0 <= self.link_loss_rate < 1.0:
            raise ValueError(
                f"loss rate must be in [0, 1), got {self.link_loss_rate}"
            )
        ordered_failed = tuple(sorted(set(self.failed_node_ids)))
        if ordered_failed != self.failed_node_ids:
            object.__setattr__(self, "failed_node_ids", ordered_failed)

    def node_ids_of_adversaries(self) -> Tuple[int, ...]:
        return tuple(spec.node_id for spec in self.adversaries)

    @property
    def adversary_schedule(self) -> AdversarySchedule:
        """The spec's cast as an engine-ready schedule (seeded off ``seed``)."""
        return AdversarySchedule(
            specs=self.adversaries, seed=derive_seed(self.seed, "adv")
        )

    def describe(self) -> str:
        """One-line label for tables and progress output."""
        parts = [
            f"n={self.node_count}",
            self.protocol,
            f"k={self.group_size}",
            f"tasks={self.task_count}",
        ]
        if self.transmission_model != "protocol":
            parts.append(self.transmission_model)
        if self.link_loss_rate > 0.0:
            parts.append(f"loss={self.link_loss_rate:g}")
        if self.failed_node_ids:
            parts.append(f"failed={len(self.failed_node_ids)}")
        if self.adversaries:
            parts.append(
                "adv="
                + ",".join(
                    f"{spec.behavior}@{spec.node_id}" for spec in self.adversaries
                )
            )
        return " ".join(parts)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "node_count": self.node_count,
            "field_size_m": self.field_size_m,
            "protocol": self.protocol,
            "transmission_model": self.transmission_model,
            "task_count": self.task_count,
            "group_size": self.group_size,
            "link_loss_rate": self.link_loss_rate,
            "failed_node_ids": list(self.failed_node_ids),
            "adversaries": [spec.to_json_dict() for spec in self.adversaries],
            "max_path_length": self.max_path_length,
        }

    @staticmethod
    def from_json_dict(data: Mapping[str, Any]) -> "ScenarioSpec":
        return ScenarioSpec(
            seed=int(data["seed"]),
            node_count=int(data["node_count"]),
            field_size_m=float(data["field_size_m"]),
            protocol=str(data["protocol"]),
            transmission_model=str(data["transmission_model"]),
            task_count=int(data["task_count"]),
            group_size=int(data["group_size"]),
            link_loss_rate=float(data["link_loss_rate"]),
            failed_node_ids=tuple(int(n) for n in data["failed_node_ids"]),
            adversaries=tuple(
                AdversarySpec.from_json_dict(item) for item in data["adversaries"]
            ),
            max_path_length=int(data["max_path_length"]),
        )

    def benign_twin(self) -> "ScenarioSpec":
        """The same scenario with every perturbation stripped.

        The executor runs the twin next to the real case: the delivery
        oracle only fires when the *benign* world delivers (so a sparse
        disconnected topology is not mistaken for an adversary win).
        """
        return replace(
            self,
            link_loss_rate=0.0,
            failed_node_ids=(),
            adversaries=(),
        )


def _pick(rng: np.random.Generator, options: Sequence[Any]) -> Any:
    return options[int(rng.integers(0, len(options)))]


def _sample_distinct(
    rng: np.random.Generator, pool: Sequence[int], count: int
) -> List[int]:
    """``count`` distinct draws from ``pool``, sorted ascending."""
    if count >= len(pool):
        return sorted(pool)
    picked = rng.choice(np.asarray(pool, dtype=np.int64), size=count, replace=False)
    return sorted(int(x) for x in picked)


def sample_scenario(
    root_seed: int,
    index: int,
    limits: FuzzLimits = DEFAULT_FUZZ_LIMITS,
) -> ScenarioSpec:
    """Deterministically sample campaign scenario ``index``.

    Draw order is fixed, and every scenario owns a fresh generator derived
    from ``(root_seed, index)``, so changing the budget or the order of
    execution can never change what any scenario contains.
    """
    seed = derive_seed(root_seed, "fuzz-scenario", index)
    rng = np.random.default_rng(seed)
    node_count = int(_pick(rng, limits.node_counts))
    field_size = float(_pick(rng, limits.field_sizes_m))
    protocol = str(_pick(rng, limits.protocols))
    contended = (
        bool(rng.random() < limits.contended_fraction)
        and node_count <= limits.contended_node_cap
    )
    group_size = min(int(_pick(rng, limits.group_sizes)), node_count - 1)
    task_count = int(_pick(rng, limits.task_counts))
    loss_rate = float(_pick(rng, limits.loss_rates))
    failure_fraction = float(_pick(rng, limits.failure_fractions))
    failed_count = int(round(failure_fraction * node_count))
    failed = _sample_distinct(rng, range(node_count), failed_count)

    adversary_count = int(_pick(rng, limits.adversary_counts))
    behaviors = limits.behaviors + ((JAMMER,) if contended else ())
    candidates = [i for i in range(node_count) if i not in set(failed)]
    adversary_nodes = _sample_distinct(rng, candidates, adversary_count)
    specs = []
    for node_id in adversary_nodes:
        behavior = str(_pick(rng, behaviors))
        if behavior == DROPPER:
            drop_rate = float(_pick(rng, (1.0, 1.0, 0.5)))
            targets: Tuple[int, ...] = ()
            if rng.random() < 0.3:
                targets = tuple(_sample_distinct(rng, range(node_count), 2))
            specs.append(
                AdversarySpec(
                    node_id,
                    DROPPER,
                    drop_rate=drop_rate,
                    target_destinations=targets,
                )
            )
        elif behavior == SPOOFER:
            offset = field_size * float(_pick(rng, (0.2, 0.4)))
            specs.append(AdversarySpec(node_id, SPOOFER, spoof_offset_m=offset))
        elif behavior == SUPPRESSOR:
            specs.append(AdversarySpec(node_id, SUPPRESSOR))
        else:
            specs.append(
                AdversarySpec(
                    node_id, JAMMER, jam_duty=float(_pick(rng, (0.5, 0.9)))
                )
            )

    return ScenarioSpec(
        seed=seed,
        node_count=node_count,
        field_size_m=field_size,
        protocol=protocol,
        transmission_model="contended" if contended else "protocol",
        task_count=task_count,
        group_size=group_size,
        link_loss_rate=loss_rate,
        failed_node_ids=tuple(failed),
        adversaries=tuple(specs),
        max_path_length=limits.max_path_length,
    )
