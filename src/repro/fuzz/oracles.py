"""Failure oracles: what counts as a finding.

Each oracle is a pure function of one executed scenario — the adversarial
run's task results (with traces), the benign twin's delivery ratio, and any
engine errors.  Thresholds live in :class:`OracleConfig` so experiments can
tighten or relax them without touching detection logic.

Oracles (names are stable identifiers — fixtures pin them):

``delivery_below_floor``
    The benign twin delivers (so the topology itself is fine) but the
    perturbed run's delivery ratio falls below the floor: the injected
    faults/adversaries actually broke multicast delivery.
``routing_loop``
    Some node received the *same* packet state (destination set and
    routing mode) over and over within one task — the signature of a
    forwarding cycle, e.g. perimeter routing around spoofed geometry.
``perimeter_livelock``
    A task burned an outsized number of perimeter-mode transmissions and
    still failed: recovery mode circled without making progress until the
    TTL bled the packet dry.
``non_termination``
    The engine's event budget tripped (:class:`~repro.simkit.SimulationError`)
    — the task would not quiesce against the TTL at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Sequence, Tuple

from repro.engine.stats import TaskResult


@dataclass(frozen=True)
class OracleConfig:
    """Detection thresholds (defaults tuned on the default fuzz limits)."""

    #: The perturbed run is a finding when it delivers less than this…
    delivery_floor: float = 0.6
    #: …while the benign twin delivers at least this much.
    benign_reference: float = 0.95
    #: Same (receiver, destinations, mode) delivered this often = a loop.
    loop_repeats: int = 4
    #: Perimeter copies in one *failed* task marking a livelock.
    livelock_min_copies: int = 96

    def __post_init__(self) -> None:
        if not 0.0 < self.delivery_floor <= 1.0:
            raise ValueError(
                f"delivery floor must be in (0, 1], got {self.delivery_floor}"
            )
        if not 0.0 < self.benign_reference <= 1.0:
            raise ValueError(
                f"benign reference must be in (0, 1], got {self.benign_reference}"
            )
        if self.loop_repeats < 2:
            raise ValueError(f"loop repeats must be >= 2, got {self.loop_repeats}")
        if self.livelock_min_copies < 1:
            raise ValueError(
                f"livelock copies must be >= 1, got {self.livelock_min_copies}"
            )

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "delivery_floor": self.delivery_floor,
            "benign_reference": self.benign_reference,
            "loop_repeats": self.loop_repeats,
            "livelock_min_copies": self.livelock_min_copies,
        }

    @staticmethod
    def from_json_dict(data: Mapping[str, Any]) -> "OracleConfig":
        return OracleConfig(
            delivery_floor=float(data["delivery_floor"]),
            benign_reference=float(data["benign_reference"]),
            loop_repeats=int(data["loop_repeats"]),
            livelock_min_copies=int(data["livelock_min_copies"]),
        )


#: Shared immutable default thresholds.
DEFAULT_ORACLE_CONFIG = OracleConfig()


@dataclass(frozen=True)
class OracleReport:
    """One oracle's verdict on one scenario."""

    name: str
    triggered: bool
    detail: str

    def to_json_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "triggered": self.triggered, "detail": self.detail}

    @staticmethod
    def from_json_dict(data: Mapping[str, Any]) -> "OracleReport":
        return OracleReport(
            name=str(data["name"]),
            triggered=bool(data["triggered"]),
            detail=str(data["detail"]),
        )


def delivery_ratio_of(results: Sequence[TaskResult]) -> float:
    """Delivered / requested destinations over a batch (1.0 when empty)."""
    requested = sum(len(r.destination_ids) for r in results)
    delivered = sum(len(r.delivered_hops) for r in results)
    return delivered / requested if requested else 1.0


def _loop_evidence(result: TaskResult) -> Tuple[int, int]:
    """Worst repeat count of one packet state and the node it looped at."""
    if result.trace is None:
        return 0, -1
    counts: Dict[Tuple[int, Tuple[int, ...], bool], int] = {}
    for frame in result.trace.frames:
        for copy in frame.copies:
            if copy.lost:
                continue
            key = (copy.receiver_id, copy.destination_ids, copy.in_perimeter_mode)
            counts[key] = counts.get(key, 0) + 1
    if not counts:
        return 0, -1
    worst_key = max(counts, key=lambda k: (counts[k], k))
    return counts[worst_key], worst_key[0]


def _perimeter_copies(result: TaskResult) -> int:
    if result.trace is None:
        return 0
    return sum(
        1
        for frame in result.trace.frames
        for copy in frame.copies
        if copy.in_perimeter_mode
    )


def evaluate_oracles(
    results: Sequence[TaskResult],
    benign_delivery_ratio: float,
    engine_errors: Sequence[str],
    config: OracleConfig = DEFAULT_ORACLE_CONFIG,
) -> Tuple[OracleReport, ...]:
    """All four oracle verdicts for one executed scenario, in stable order."""
    ratio = delivery_ratio_of(results)
    delivery_triggered = (
        benign_delivery_ratio >= config.benign_reference
        and ratio < config.delivery_floor
    )
    delivery = OracleReport(
        name="delivery_below_floor",
        triggered=delivery_triggered,
        detail=(
            f"delivered {ratio:.3f} vs benign {benign_delivery_ratio:.3f} "
            f"(floor {config.delivery_floor:g})"
        ),
    )

    worst_repeats, loop_node = 0, -1
    for result in results:
        repeats, node = _loop_evidence(result)
        if repeats > worst_repeats:
            worst_repeats, loop_node = repeats, node
    loop = OracleReport(
        name="routing_loop",
        triggered=worst_repeats >= config.loop_repeats,
        detail=(
            f"same packet state delivered {worst_repeats}x at node {loop_node}"
            if worst_repeats >= config.loop_repeats
            else f"max packet-state repeats {worst_repeats}"
        ),
    )

    livelock_copies, livelock_task = 0, -1
    for result in results:
        copies = _perimeter_copies(result)
        if not result.success and copies > livelock_copies:
            livelock_copies, livelock_task = copies, result.task_id
    livelock = OracleReport(
        name="perimeter_livelock",
        triggered=livelock_copies >= config.livelock_min_copies,
        detail=(
            f"{livelock_copies} perimeter copies in failed task {livelock_task}"
            if livelock_copies >= config.livelock_min_copies
            else f"max perimeter copies in a failed task: {livelock_copies}"
        ),
    )

    non_termination = OracleReport(
        name="non_termination",
        triggered=bool(engine_errors),
        detail="; ".join(engine_errors) if engine_errors else "all tasks quiesced",
    )

    return (delivery, loop, livelock, non_termination)
