"""Canonical campaign results store.

One :class:`FuzzResultsStore` is the complete record of one campaign: the
root seed and knobs that define it, every scenario's outcome in index
order, and every finding with its shrunk repro.  Serialization is
canonical — sorted keys, fixed indentation, no timestamps, no paths — so
the bytes (and the store digest derived from them) are a pure function of
``(root_seed, budget, limits, oracle thresholds)``.  That is the contract
CI leans on: running the same campaign twice must produce identical files.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.fuzz.executor import ScenarioOutcome
from repro.fuzz.generator import FuzzLimits
from repro.fuzz.oracles import OracleConfig
from repro.fuzz.shrink import ShrinkResult

#: Store format version (bump on any serialization change).
STORE_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One triggered scenario and (when shrinking ran) its minimal repro."""

    index: int
    outcome: ScenarioOutcome
    shrunk: "ShrinkResult | None" = None

    def to_json_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "index": self.index,
            "failures": list(self.outcome.failures),
            "outcome": self.outcome.to_json_dict(),
        }
        if self.shrunk is not None:
            data["shrunk"] = self.shrunk.to_json_dict()
        return data


@dataclass
class FuzzResultsStore:
    """Everything one campaign produced, in canonical serializable form."""

    root_seed: int
    budget: int
    limits: FuzzLimits
    oracle_config: OracleConfig
    outcomes: List[ScenarioOutcome] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)

    def record(self, outcome: ScenarioOutcome) -> None:
        self.outcomes.append(outcome)

    def record_finding(self, finding: Finding) -> None:
        self.findings.append(finding)

    @property
    def finding_count(self) -> int:
        return len(self.findings)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "version": STORE_VERSION,
            "root_seed": self.root_seed,
            "budget": self.budget,
            "limits": self.limits.to_json_dict(),
            "oracle_config": self.oracle_config.to_json_dict(),
            "outcomes": [outcome.to_json_dict() for outcome in self.outcomes],
            "findings": [finding.to_json_dict() for finding in self.findings],
        }

    def canonical_bytes(self) -> bytes:
        """The store's one true serialization (sorted keys, fixed layout)."""
        return (
            json.dumps(self.to_json_dict(), sort_keys=True, indent=2) + "\n"
        ).encode("utf-8")

    def digest(self) -> str:
        """SHA-256 over :meth:`canonical_bytes` — the campaign's identity."""
        return hashlib.sha256(self.canonical_bytes()).hexdigest()

    def save(self, path: str) -> None:
        with open(path, "wb") as handle:
            handle.write(self.canonical_bytes())
