"""Deterministic coverage-driven scenario fuzzer for the GMP reproduction.

The pipeline is generator → executor → results store → autopilot:

* :mod:`repro.fuzz.generator` samples complete scenarios (topology,
  workload, fault and adversary schedules) from a single root seed;
* :mod:`repro.fuzz.executor` runs one scenario through the engine next to
  its benign twin and evaluates the failure oracles of
  :mod:`repro.fuzz.oracles` — delivery below floor, routing loops,
  perimeter-mode livelock, and non-termination against the TTL;
* :mod:`repro.fuzz.shrink` greedily minimizes a failing scenario (fewer
  adversaries/faults, fewer tasks, smaller groups, fewer nodes) while its
  oracles keep firing;
* :mod:`repro.fuzz.store` serializes a campaign into a canonical JSON
  results store whose bytes (and digest) are a pure function of the root
  seed, budget and knobs;
* :mod:`repro.fuzz.autopilot` drives the whole campaign and writes shrunk
  findings as regression fixtures that ``tests/fuzz`` replays under pytest.

Everything is seeded through :func:`~repro.simkit.rng.derive_seed`: the
same ``repro fuzz --seed S --budget N`` invocation always produces
byte-identical stores.
"""

from repro.fuzz.autopilot import (
    FuzzFixture,
    load_fixture,
    render_fuzz_table,
    replay_fixture,
    run_fuzz_campaign,
    write_fixtures,
)
from repro.fuzz.executor import ScenarioOutcome, run_scenario
from repro.fuzz.generator import (
    DEFAULT_FUZZ_LIMITS,
    FuzzLimits,
    ScenarioSpec,
    sample_scenario,
)
from repro.fuzz.oracles import DEFAULT_ORACLE_CONFIG, OracleConfig, OracleReport
from repro.fuzz.shrink import shrink_scenario
from repro.fuzz.store import FuzzResultsStore

__all__ = [
    "DEFAULT_FUZZ_LIMITS",
    "DEFAULT_ORACLE_CONFIG",
    "FuzzFixture",
    "FuzzLimits",
    "FuzzResultsStore",
    "OracleConfig",
    "OracleReport",
    "ScenarioOutcome",
    "ScenarioSpec",
    "load_fixture",
    "render_fuzz_table",
    "replay_fixture",
    "run_fuzz_campaign",
    "run_scenario",
    "sample_scenario",
    "shrink_scenario",
    "write_fixtures",
]
