"""Scenario execution: one spec in, one oracle-judged outcome out.

The executor realizes a :class:`~repro.fuzz.generator.ScenarioSpec` —
deterministic topology, deterministic workload, engine config with the
spec's fault and adversary schedules — runs every task with traces on, runs
the *benign twin* (same topology, same workload, perturbations stripped)
for the delivery oracle's reference, and evaluates all oracles.

The workload is drawn once per scenario from nodes that are neither failed
nor adversarial, and both runs execute that identical workload: the
delivery oracle therefore compares like with like, and a disconnected
topology (where the twin fails too) never masquerades as a finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.engine.digest import batch_digest
from repro.engine.runner import EngineConfig, run_task
from repro.engine.stats import TaskResult
from repro.fuzz.generator import ScenarioSpec
from repro.fuzz.oracles import (
    DEFAULT_ORACLE_CONFIG,
    OracleConfig,
    OracleReport,
    delivery_ratio_of,
    evaluate_oracles,
)
from repro.network.graph import WirelessNetwork, build_network
from repro.network.radio import RadioConfig
from repro.network.topology import uniform_random_topology
from repro.experiments.sweep import build_protocol
from repro.simkit import SimulationError
from repro.simkit.rng import derive_seed

#: One multicast task: (task_id, source, destinations).
ScenarioTask = Tuple[int, int, Tuple[int, ...]]

#: Per-process deployment memo (the shrinker re-runs one topology often).
_NETWORK_MEMO: Dict[Tuple[int, int, float], WirelessNetwork] = {}
_NETWORK_MEMO_CAP = 32


def build_scenario_network(spec: ScenarioSpec) -> WirelessNetwork:
    """The spec's deployment: uniform placement on a square field."""
    key = (spec.seed, spec.node_count, spec.field_size_m)
    found = _NETWORK_MEMO.get(key)
    if found is not None:
        return found
    rng = np.random.default_rng(derive_seed(spec.seed, "topology"))
    points = uniform_random_topology(
        spec.node_count, spec.field_size_m, spec.field_size_m, rng
    )
    network = build_network(points, RadioConfig())
    if len(_NETWORK_MEMO) >= _NETWORK_MEMO_CAP:
        _NETWORK_MEMO.clear()
    _NETWORK_MEMO[key] = network
    return network


def scenario_tasks(spec: ScenarioSpec) -> List[ScenarioTask]:
    """The spec's workload: sources and groups from unperturbed nodes.

    Failed and adversarial nodes are excluded from both roles — adversaries
    here attack the *infrastructure*, they are not group members — so the
    benign twin can replay the exact same workload.  Each task draws from
    its own ``(seed, "workload", task_id)`` stream: shrinking ``task_count``
    keeps the surviving tasks bit-identical.
    """
    excluded = set(spec.failed_node_ids)
    excluded.update(spec.node_ids_of_adversaries())
    eligible = np.array(
        [i for i in range(spec.node_count) if i not in excluded], dtype=np.int64
    )
    if len(eligible) < 2:
        raise ValueError(
            f"scenario leaves {len(eligible)} unperturbed nodes; need >= 2"
        )
    group_size = min(spec.group_size, len(eligible) - 1)
    tasks: List[ScenarioTask] = []
    for task_id in range(spec.task_count):
        rng = np.random.default_rng(
            derive_seed(spec.seed, "workload", task_id)
        )
        picked = rng.choice(eligible, size=group_size + 1, replace=False)
        source = int(picked[0])
        destinations = tuple(sorted(int(x) for x in picked[1:]))
        tasks.append((task_id, source, destinations))
    return tasks


@dataclass(frozen=True)
class ScenarioOutcome:
    """One executed scenario: measurements, verdicts, and a digest.

    ``results_digest`` is the engine's batch digest over the adversarial
    run's task results (traces included): two executions of the same spec
    must agree byte for byte, which is what the campaign store's own
    digest — and the CI double-run diff — ultimately rests on.
    """

    spec: ScenarioSpec
    delivery_ratio: float
    benign_delivery_ratio: float
    reports: Tuple[OracleReport, ...]
    errors: Tuple[str, ...]
    results_digest: str

    @property
    def failures(self) -> Tuple[str, ...]:
        """Names of the oracles that fired, in stable report order."""
        return tuple(r.name for r in self.reports if r.triggered)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_json_dict(),
            "delivery_ratio": self.delivery_ratio,
            "benign_delivery_ratio": self.benign_delivery_ratio,
            "reports": [r.to_json_dict() for r in self.reports],
            "errors": list(self.errors),
            "results_digest": self.results_digest,
        }

    @staticmethod
    def from_json_dict(data: Mapping[str, Any]) -> "ScenarioOutcome":
        return ScenarioOutcome(
            spec=ScenarioSpec.from_json_dict(data["spec"]),
            delivery_ratio=float(data["delivery_ratio"]),
            benign_delivery_ratio=float(data["benign_delivery_ratio"]),
            reports=tuple(
                OracleReport.from_json_dict(item) for item in data["reports"]
            ),
            errors=tuple(str(e) for e in data["errors"]),
            results_digest=str(data["results_digest"]),
        )


def _engine_config(spec: ScenarioSpec) -> EngineConfig:
    return EngineConfig(
        max_path_length=spec.max_path_length,
        transmission_model=spec.transmission_model,
        link_loss_rate=spec.link_loss_rate,
        loss_seed=derive_seed(spec.seed, "loss"),
        failed_node_ids=frozenset(spec.failed_node_ids),
        collect_traces=True,
        adversary=spec.adversary_schedule,
    )


def _execute(
    network: WirelessNetwork,
    spec: ScenarioSpec,
    tasks: Sequence[ScenarioTask],
) -> Tuple[List[TaskResult], List[str]]:
    """Run the workload under the spec's config, isolating engine blowups."""
    config = _engine_config(spec)
    results: List[TaskResult] = []
    errors: List[str] = []
    for task_id, source, destinations in tasks:
        protocol = build_protocol((spec.protocol,))
        try:
            results.append(
                run_task(
                    network,
                    protocol,
                    source,
                    destinations,
                    config=config,
                    task_id=task_id,
                )
            )
        except SimulationError as error:
            errors.append(f"task {task_id}: {error}")
    return results, errors


def run_scenario(
    spec: ScenarioSpec,
    oracle_config: OracleConfig = DEFAULT_ORACLE_CONFIG,
) -> ScenarioOutcome:
    """Execute ``spec`` and its benign twin; judge it with every oracle."""
    network = build_scenario_network(spec)
    tasks = scenario_tasks(spec)
    results, errors = _execute(network, spec, tasks)
    twin = spec.benign_twin()
    if twin == spec:
        benign_results, benign_errors = results, errors
    else:
        benign_results, benign_errors = _execute(network, twin, tasks)
    benign_ratio = delivery_ratio_of(benign_results)
    all_errors = list(errors)
    all_errors.extend(f"benign {e}" for e in benign_errors if e not in errors)
    reports = evaluate_oracles(results, benign_ratio, all_errors, oracle_config)
    return ScenarioOutcome(
        spec=spec,
        delivery_ratio=delivery_ratio_of(results),
        benign_delivery_ratio=benign_ratio,
        reports=reports,
        errors=tuple(all_errors),
        results_digest=batch_digest(results),
    )
