"""Greedy deterministic shrinking of failing scenarios.

Given a scenario whose oracles fired, try progressively smaller variants —
fewer adversaries, no injected loss, fewer failed nodes, fewer tasks,
smaller groups, fewer nodes — and keep a variant only if *all* of the
original finding's oracles still fire on it.  The passes and their order
are fixed, every candidate is evaluated by the same deterministic executor,
and the loop restarts after each accepted step, so the same failing input
always shrinks to the same minimal repro.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.fuzz.executor import ScenarioOutcome, run_scenario
from repro.fuzz.generator import ScenarioSpec
from repro.fuzz.oracles import DEFAULT_ORACLE_CONFIG, OracleConfig


@dataclass(frozen=True)
class ShrinkResult:
    """A minimized failing scenario and the work it took."""

    spec: ScenarioSpec
    outcome: ScenarioOutcome
    attempts: int
    accepted_steps: int

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "outcome": self.outcome.to_json_dict(),
            "attempts": self.attempts,
            "accepted_steps": self.accepted_steps,
        }


def _size_of(spec: ScenarioSpec) -> Tuple[int, ...]:
    """Lexicographic "cost" a shrink step must strictly reduce."""
    return (
        spec.node_count,
        spec.task_count,
        spec.group_size,
        len(spec.adversaries),
        len(spec.failed_node_ids),
        1 if spec.link_loss_rate > 0.0 else 0,
    )


def _candidates(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    """Smaller variants to try, cheapest-first.

    Order matters for determinism *and* effectiveness: stripping whole
    perturbations (adversaries, loss, failures) first usually isolates the
    one mechanism behind a finding before the structural passes (tasks,
    group, nodes) trim the stage it plays out on.
    """
    for spec_to_drop in spec.adversaries:
        yield replace(
            spec,
            adversaries=tuple(
                a for a in spec.adversaries if a.node_id != spec_to_drop.node_id
            ),
        )
    if spec.link_loss_rate > 0.0:
        yield replace(spec, link_loss_rate=0.0)
    if spec.failed_node_ids:
        yield replace(spec, failed_node_ids=())
        half = len(spec.failed_node_ids) // 2
        if half:
            yield replace(spec, failed_node_ids=spec.failed_node_ids[:half])
    for count in range(1, spec.task_count):
        yield replace(spec, task_count=count)
    k = spec.group_size // 2
    while k >= 1:
        yield replace(spec, group_size=k)
        k //= 2
    if spec.group_size > 1:
        yield replace(spec, group_size=spec.group_size - 1)
    floor = _node_floor(spec)
    for factor in (0.5, 0.75, 0.9):
        smaller = int(spec.node_count * factor)
        if floor <= smaller < spec.node_count:
            yield _with_node_count(spec, smaller)


def _node_floor(spec: ScenarioSpec) -> int:
    """Smallest node count that keeps every referenced id addressable."""
    referenced = [spec.group_size + 1]
    for node_id in spec.failed_node_ids:
        referenced.append(node_id + 1)
    for adversary in spec.adversaries:
        referenced.append(adversary.node_id + 1)
        for target in adversary.target_destinations:
            referenced.append(target + 1)
    return max(max(referenced) + 1, 2)


def _with_node_count(spec: ScenarioSpec, node_count: int) -> ScenarioSpec:
    return replace(spec, node_count=node_count)


def _still_fails(
    candidate: ScenarioSpec,
    expected: FrozenSet[str],
    oracle_config: OracleConfig,
) -> Optional[ScenarioOutcome]:
    outcome = run_scenario(candidate, oracle_config)
    if expected.issubset(set(outcome.failures)):
        return outcome
    return None


def shrink_scenario(
    spec: ScenarioSpec,
    expected_failures: Tuple[str, ...],
    oracle_config: OracleConfig = DEFAULT_ORACLE_CONFIG,
    max_attempts: int = 64,
) -> ShrinkResult:
    """Minimize ``spec`` while every oracle in ``expected_failures`` fires.

    Greedy first-improvement descent over :func:`_candidates`, restarted
    after every accepted step, bounded by ``max_attempts`` scenario
    executions.  Returns the smallest accepted variant (possibly the
    original) together with its outcome.
    """
    if not expected_failures:
        raise ValueError("shrinking needs at least one expected oracle")
    expected = frozenset(expected_failures)
    current = spec
    current_outcome = run_scenario(current, oracle_config)
    if not expected.issubset(set(current_outcome.failures)):
        raise ValueError(
            f"scenario does not fail with {sorted(expected)}; "
            f"observed {list(current_outcome.failures)}"
        )
    attempts = 0
    accepted = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _candidates(current):
            if attempts >= max_attempts:
                break
            if _size_of(candidate) >= _size_of(current):
                continue
            attempts += 1
            try:
                outcome = _still_fails(candidate, expected, oracle_config)
            except ValueError:
                continue  # candidate became structurally invalid; skip it
            if outcome is not None:
                current, current_outcome = candidate, outcome
                accepted += 1
                improved = True
                break
    return ShrinkResult(
        spec=current,
        outcome=current_outcome,
        attempts=attempts,
        accepted_steps=accepted,
    )
