"""Campaign driver: sample → execute → shrink → store → fixtures.

:func:`run_fuzz_campaign` is the whole fuzzer as one deterministic
function of ``(root_seed, budget, limits, oracle thresholds)``.  Findings
are shrunk on the spot and can be written out as JSON regression fixtures;
``tests/fuzz/test_fixtures.py`` replays every committed fixture and asserts
the stored oracle verdict still holds, which is how a one-off fuzz finding
becomes a permanent regression test.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.fuzz.executor import ScenarioOutcome, run_scenario
from repro.fuzz.generator import (
    DEFAULT_FUZZ_LIMITS,
    FuzzLimits,
    ScenarioSpec,
    sample_scenario,
)
from repro.fuzz.oracles import DEFAULT_ORACLE_CONFIG, OracleConfig
from repro.fuzz.shrink import shrink_scenario
from repro.fuzz.store import Finding, FuzzResultsStore

#: Fixture format version (bump on any serialization change).
FIXTURE_VERSION = 1

#: Optional progress sink (one short line per scenario).
ProgressHook = Callable[[str], None]


def run_fuzz_campaign(
    root_seed: int,
    budget: int,
    limits: FuzzLimits = DEFAULT_FUZZ_LIMITS,
    oracle_config: OracleConfig = DEFAULT_ORACLE_CONFIG,
    shrink: bool = True,
    max_shrink_attempts: int = 48,
    progress: Optional[ProgressHook] = None,
) -> FuzzResultsStore:
    """Run ``budget`` scenarios derived from ``root_seed``; shrink findings.

    Deterministic end to end: scenario ``i`` depends only on
    ``(root_seed, i, limits)``, execution is seeded, and shrinking is a
    fixed greedy descent — so two invocations with the same arguments
    produce byte-identical stores (see :meth:`FuzzResultsStore.digest`).
    """
    if budget <= 0:
        raise ValueError(f"campaign budget must be positive, got {budget}")
    store = FuzzResultsStore(
        root_seed=root_seed,
        budget=budget,
        limits=limits,
        oracle_config=oracle_config,
    )
    for index in range(budget):
        spec = sample_scenario(root_seed, index, limits)
        outcome = run_scenario(spec, oracle_config)
        store.record(outcome)
        if progress is not None:
            verdict = ",".join(outcome.failures) if outcome.failures else "ok"
            progress(f"[{index + 1}/{budget}] {spec.describe()} -> {verdict}")
        if not outcome.failures:
            continue
        shrunk = None
        if shrink:
            shrunk = shrink_scenario(
                spec,
                outcome.failures,
                oracle_config,
                max_attempts=max_shrink_attempts,
            )
            if progress is not None:
                progress(
                    f"    shrunk to {shrunk.spec.describe()} "
                    f"({shrunk.attempts} attempts, "
                    f"{shrunk.accepted_steps} accepted)"
                )
        store.record_finding(Finding(index=index, outcome=outcome, shrunk=shrunk))
    return store


def render_fuzz_table(store: FuzzResultsStore) -> str:
    """Deterministic human-readable campaign report (stdout material)."""
    lines = [
        f"fuzz campaign: seed={store.root_seed} budget={store.budget}",
        "",
        f"{'#':>4}  {'scenario':<58} {'deliv':>6} {'benign':>6}  verdict",
    ]
    for index, outcome in enumerate(store.outcomes):
        verdict = ",".join(outcome.failures) if outcome.failures else "ok"
        lines.append(
            f"{index:>4}  {outcome.spec.describe():<58} "
            f"{outcome.delivery_ratio:>6.3f} "
            f"{outcome.benign_delivery_ratio:>6.3f}  {verdict}"
        )
    lines.append("")
    lines.append(
        f"findings: {store.finding_count} / {len(store.outcomes)} scenarios"
    )
    for finding in store.findings:
        shrunk = finding.shrunk
        repro = (
            shrunk.spec.describe() if shrunk is not None else "(not shrunk)"
        )
        lines.append(
            f"  #{finding.index}: {','.join(finding.outcome.failures)}"
            f" -> {repro}"
        )
    lines.append("")
    lines.append(f"store digest: {store.digest()}")
    return "\n".join(lines)


@dataclass(frozen=True)
class FuzzFixture:
    """One committed regression fixture: a shrunk spec and its verdict."""

    root_seed: int
    scenario_index: int
    spec: ScenarioSpec
    expected_failures: Tuple[str, ...]
    oracle_config: OracleConfig

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "version": FIXTURE_VERSION,
            "root_seed": self.root_seed,
            "scenario_index": self.scenario_index,
            "spec": self.spec.to_json_dict(),
            "expected_failures": list(self.expected_failures),
            "oracle_config": self.oracle_config.to_json_dict(),
        }

    @staticmethod
    def from_json_dict(data: Mapping[str, Any]) -> "FuzzFixture":
        version = int(data["version"])
        if version != FIXTURE_VERSION:
            raise ValueError(
                f"unsupported fuzz fixture version {version} "
                f"(this build reads {FIXTURE_VERSION})"
            )
        return FuzzFixture(
            root_seed=int(data["root_seed"]),
            scenario_index=int(data["scenario_index"]),
            spec=ScenarioSpec.from_json_dict(data["spec"]),
            expected_failures=tuple(
                str(name) for name in data["expected_failures"]
            ),
            oracle_config=OracleConfig.from_json_dict(data["oracle_config"]),
        )


def fixture_name(root_seed: int, scenario_index: int) -> str:
    return f"fuzz_{root_seed}_{scenario_index:04d}.json"


def write_fixtures(store: FuzzResultsStore, directory: str) -> List[str]:
    """Write every shrunk finding as a fixture file; return the paths."""
    os.makedirs(directory, exist_ok=True)
    paths: List[str] = []
    for finding in store.findings:
        if finding.shrunk is None:
            continue
        fixture = FuzzFixture(
            root_seed=store.root_seed,
            scenario_index=finding.index,
            spec=finding.shrunk.spec,
            expected_failures=finding.shrunk.outcome.failures,
            oracle_config=store.oracle_config,
        )
        path = os.path.join(
            directory, fixture_name(store.root_seed, finding.index)
        )
        payload = json.dumps(fixture.to_json_dict(), sort_keys=True, indent=2)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        paths.append(path)
    return paths


def load_fixture(path: str) -> FuzzFixture:
    with open(path, "r", encoding="utf-8") as handle:
        return FuzzFixture.from_json_dict(json.load(handle))


def replay_fixture(path: str) -> Tuple[ScenarioOutcome, FuzzFixture]:
    """Re-run a committed fixture; callers assert the verdict still matches."""
    fixture = load_fixture(path)
    outcome = run_scenario(fixture.spec, fixture.oracle_config)
    return outcome, fixture
