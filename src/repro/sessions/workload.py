"""Multicast workload construction — the single source of truth.

One *task* in the paper's evaluation is: pick a random source node and ``k``
random distinct destination nodes, then deliver one message from the source
to all destinations.  This module owns that construction for every consumer
— the figure sweeps, the robustness and contention harnesses, the scale
sweep, and the streaming session engine — so task sampling semantics cannot
drift between experiments.  (It absorbs the old
``repro.experiments.workload`` stub; the arrival-process layer on top lives
in :mod:`repro.sessions.arrivals`.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.network.graph import WirelessNetwork


@dataclass(frozen=True)
class MulticastTask:
    """One multicast request: a source and its destination group."""

    task_id: int
    source_id: int
    destination_ids: Tuple[int, ...]

    @property
    def group_size(self) -> int:
        return len(self.destination_ids)

    def as_session_tuple(self) -> Tuple[int, int, Tuple[int, ...]]:
        """The ``(task_id, source_id, destination_ids)`` triple the
        session-based engines (:func:`repro.engine.run_contended_tasks`,
        the streaming runner) consume."""
        return (self.task_id, self.source_id, self.destination_ids)


def sample_group(
    node_count: int, group_size: int, rng: np.random.Generator
) -> Tuple[int, Tuple[int, ...]]:
    """Draw one ``(source, destinations)`` group uniformly without replacement.

    The source is never its own destination and destinations are distinct —
    the invariant every workload in the repository relies on.
    """
    if group_size <= 0:
        raise ValueError(f"group size must be positive, got {group_size}")
    if group_size + 1 > node_count:
        raise ValueError(
            f"group size {group_size} needs at least {group_size + 1} nodes, "
            f"network has {node_count}"
        )
    picks = rng.choice(node_count, size=group_size + 1, replace=False)
    return int(picks[0]), tuple(int(p) for p in picks[1:])


def generate_tasks(
    network: WirelessNetwork,
    task_count: int,
    group_size: int,
    rng: np.random.Generator,
    first_task_id: int = 0,
) -> List[MulticastTask]:
    """Sample ``task_count`` random tasks with ``group_size`` destinations.

    Source and destinations are drawn uniformly without replacement, so the
    source is never its own destination and destinations are distinct.
    """
    if task_count <= 0:
        raise ValueError(f"task count must be positive, got {task_count}")
    tasks = []
    for i in range(task_count):
        source_id, destination_ids = sample_group(
            network.node_count, group_size, rng
        )
        tasks.append(
            MulticastTask(
                task_id=first_task_id + i,
                source_id=source_id,
                destination_ids=destination_ids,
            )
        )
    return tasks
