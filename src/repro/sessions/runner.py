"""The long-running session scheduler over the deterministic pool engine.

``run_session_stream`` multiplexes an unbounded arrival stream over the
process-pool engine with a bounded in-flight window
(:func:`repro.perf.parallel.stream_units`), folding each completed session
into bounded-memory sketches instead of accumulating
:class:`~repro.engine.stats.TaskResult` objects.  Three contracts hold:

* **Worker-count identity** — sessions are generated in the parent, chunks
  are executed as pure functions of their arguments, and outcomes are
  folded strictly in session order, so the final
  :class:`SessionReport` is byte-identical for any ``workers`` value.
* **Resume identity** — every ``checkpoint_every`` completed sessions the
  stream cursor, sketch state, and running chain digest are snapshotted
  through :class:`~repro.sessions.store.CheckpointStore`; a run resumed
  from any checkpoint produces the same report bytes as an uninterrupted
  one.
* **Bounded memory** — the parent retains the sketches, the chain digest,
  and at most ``window`` in-flight chunks; nothing grows with the number
  of completed sessions (up to the GK sketch's logarithmic factor).

Per-session result digests (:func:`repro.engine.digest.task_digest`) are
computed inside the worker and chained as
``chain = sha256(chain_hex + line)`` — an order-sensitive, constant-space,
serializable equivalent of :func:`repro.engine.digest.batch_digest`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.engine import DEFAULT_ENGINE_CONFIG, EngineConfig, run_task
from repro.engine.digest import task_digest
from repro.experiments.config import PaperConfig
from repro.perf.counters import GLOBAL_COUNTERS, merge_worker_perf
from repro.perf.parallel import ProgressFn, stream_units
from repro.perf.shm import SharedNetworkPlane, shared_plane_enabled
from repro.sessions.arrivals import SessionRequest, SessionWorkload, StreamCursor
from repro.sessions.sketches import StreamStats
from repro.sessions.store import CheckpointStore

#: Seed of the digest chain before any session is folded.
CHAIN_SEED = "session-stream-v1"

#: Sessions shipped to a worker per unit; purely a batching knob — results
#: are folded per session in stream order, so the chunk size can never
#: change a report (asserted by the determinism tests).
DEFAULT_CHUNK = 8


@dataclass(frozen=True)
class SessionOutcome:
    """Compact, picklable outcome of one streamed session.

    Everything the parent folds into sketches and the digest chain —
    deliberately *not* the full :class:`~repro.engine.stats.TaskResult`
    (whose trace and per-node maps would reintroduce linear memory).
    """

    task_id: int
    digest: str
    latency_s: float
    energy_joules: float
    transmissions: int
    delivered: int
    requested: int

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.requested if self.requested else 1.0

    @property
    def success(self) -> bool:
        return self.delivered == self.requested


def run_session_chunk(
    config: PaperConfig,
    net_index: int,
    engine: EngineConfig,
    spec: Tuple[object, ...],
    sessions: Tuple[Tuple[int, int, Tuple[int, ...]], ...],
) -> Tuple[Tuple[SessionOutcome, ...], Dict[str, float]]:
    """One pool unit: run a chunk of sessions, return compact outcomes.

    Pure in its picklable arguments: the deployment re-derives from
    ``(config, net_index)`` via the per-process network memo, the protocol
    from its spec, and each session is an independent task under the
    default engine model.  The per-session digest is computed here so the
    parent never needs the full result.
    """
    from repro.experiments.sweep import build_protocol, cached_network

    network = cached_network(config, net_index)
    protocol = build_protocol(spec)
    before = GLOBAL_COUNTERS.snapshot()
    outcomes: List[SessionOutcome] = []
    for task_id, source_id, destination_ids in sessions:
        result = run_task(
            network,
            protocol,
            source_id,
            destination_ids,
            config=engine,
            task_id=task_id,
        )
        outcomes.append(
            SessionOutcome(
                task_id=result.task_id,
                digest=task_digest(result),
                latency_s=result.duration_s,
                energy_joules=result.energy_joules,
                transmissions=result.transmissions,
                delivered=len(result.delivered_hops),
                requested=len(result.destination_ids),
            )
        )
    return tuple(outcomes), GLOBAL_COUNTERS.delta_since(before)


def fold_chain(chain_hex: str, outcome: SessionOutcome, arrival_s: float) -> str:
    """Advance the running digest chain by one session.

    Constant-space and serializable (the chain is just a hex string), yet
    order-sensitive over every session's full result digest *and* its
    arrival time — two streams agree iff every session agreed.
    """
    line = f"{chain_hex}|{outcome.digest}|arrival={arrival_s!r}"
    return hashlib.sha256(line.encode("ascii")).hexdigest()


@dataclass
class SessionReport:
    """Deterministic final report of one streamed run.

    Built exclusively from prefix-deterministic state (completed count,
    sketches, chain digest), so serial/parallel and interrupted/resumed
    runs render byte-identical reports.  Wall-clock throughput is *not*
    part of the report — the operator layer measures and prints it
    separately (stderr), keeping stdout diffable.
    """

    workload: SessionWorkload
    protocol: str
    completed: int
    chain_digest: str
    stats: StreamStats
    cursor: StreamCursor

    @property
    def failure_rate(self) -> float:
        return self.stats.failures / self.completed if self.completed else 0.0

    def to_json_dict(self) -> Dict[str, Any]:
        rows = {
            name: {
                "mean": mean,
                "std": std,
                "p50": p50,
                "p90": p90,
                "p99": p99,
            }
            for name, mean, std, p50, p90, p99 in self.stats.summary_rows()
        }
        return {
            "workload": self.workload.describe(),
            "protocol": self.protocol,
            "completed": self.completed,
            "failures": self.stats.failures,
            "delivery_ratio": self.stats.aggregate_delivery_ratio,
            "virtual_horizon_s": self.cursor.clock_s,
            "chain_digest": self.chain_digest,
            "metrics": rows,
        }


def _checkpoint_payload(
    report_cursor: StreamCursor,
    completed: int,
    chain_hex: str,
    stats: StreamStats,
) -> Dict[str, Any]:
    return {
        "cursor": report_cursor.to_json_dict(),
        "completed": completed,
        "chain": chain_hex,
        "stats": stats.state(),
    }


def stream_identity(
    workload: SessionWorkload,
    spec: Tuple[object, ...],
    config: PaperConfig,
    net_index: int,
    engine: EngineConfig,
    epsilon: float,
) -> Dict[str, Any]:
    """The run identity a checkpoint must match to be resumable.

    Everything that changes simulation outcomes or sketch content is in;
    operator knobs that provably cannot (workers, window, chunk,
    checkpoint cadence) are out — resuming with a different worker count
    is explicitly supported.
    """
    return {
        "workload": workload.describe(),
        "first_task_id": workload.first_task_id,
        "protocol": repr(spec),
        "master_seed": config.master_seed,
        "node_count": config.node_count,
        "net_index": net_index,
        "max_path_length": engine.max_path_length,
        "epsilon": epsilon,
    }


def run_session_stream(
    workload: SessionWorkload,
    spec: Tuple[object, ...],
    config: PaperConfig,
    total_sessions: int,
    engine: EngineConfig | None = None,
    net_index: int = 0,
    workers: int = 1,
    window: int = 0,
    chunk: int = DEFAULT_CHUNK,
    epsilon: float = 0.01,
    checkpoint: Optional[CheckpointStore] = None,
    checkpoint_every: int = 0,
    progress: Optional[ProgressFn] = None,
    on_sessions_done: Optional[Callable[[int], None]] = None,
    plane: Optional[SharedNetworkPlane] = None,
) -> SessionReport:
    """Run ``total_sessions`` sessions of ``workload`` under one protocol.

    Args:
        workload: The seeded arrival stream (node count must match
            ``config.node_count`` — the deployment is built from config).
        spec: Picklable protocol spec (see
            :func:`repro.experiments.sweep.build_protocol`).
        config: Deployment config; ``(config, net_index)`` keys the
            per-process network memo in the workers.
        total_sessions: Stop after this many completed sessions.  With a
            checkpoint this is the *cumulative* target: a resumed run
            continues from the stored position toward the same total.
        engine: Engine knobs (default model; TTL etc.).
        workers / window / chunk: Execution shape — provably incapable of
            changing the report (asserted by tests).
        epsilon: GK sketch error bound for the report quantiles.
        checkpoint: Where to persist progress; ``None`` disables both
            checkpointing and resume.
        checkpoint_every: Snapshot cadence in completed sessions (0 with a
            store set means "only at the end").
        progress: Operator progress callback.
        on_sessions_done: Called with the cumulative completed-session
            count after each fold batch — the operator layer's throughput
            hook (wall-clock stays outside this module).
        plane: Shared-memory plane for the pool workers.  ``None`` with
            ``workers > 1`` makes the stream publish (and own) one for its
            deployment; a caller-provided plane is published into but left
            open — the sweep layer shares a single plane across cells.

    Returns:
        The deterministic :class:`SessionReport`.
    """
    if total_sessions < 0:
        raise ValueError(f"total sessions must be >= 0, got {total_sessions}")
    if chunk <= 0:
        raise ValueError(f"chunk must be positive, got {chunk}")
    if workload.node_count != config.node_count:
        raise ValueError(
            f"workload is sized for {workload.node_count} nodes but the "
            f"deployment config builds {config.node_count}"
        )
    cfg = engine or DEFAULT_ENGINE_CONFIG
    identity = stream_identity(workload, spec, config, net_index, cfg, epsilon)

    cursor = StreamCursor()
    stats = StreamStats(epsilon)
    chain_hex = hashlib.sha256(CHAIN_SEED.encode("ascii")).hexdigest()
    completed = 0
    if checkpoint is not None:
        stored = checkpoint.load(identity)
        if stored is not None:
            cursor = StreamCursor.from_json_dict(stored["cursor"])
            stats = StreamStats.from_state(stored["stats"])
            chain_hex = str(stored["chain"])
            completed = int(stored["completed"])
            if progress is not None:
                progress(
                    f"resuming from checkpoint: {completed} sessions done"
                )

    # In-flight bookkeeping the worker output does not carry: each chunk's
    # arrival times and the cursor *after* its last session (for
    # checkpoints).  Bounded by the in-flight window.
    from collections import deque

    side: "deque[Tuple[Tuple[float, ...], StreamCursor]]" = deque()

    def chunk_args() -> Iterator[
        Tuple[
            PaperConfig,
            int,
            EngineConfig,
            Tuple[object, ...],
            Tuple[Tuple[int, int, Tuple[int, ...]], ...],
        ]
    ]:
        position = cursor
        produced = completed
        while produced < total_sessions:
            take = min(chunk, total_sessions - produced)
            requests: List[SessionRequest] = []
            for _ in range(take):
                request, position = workload.session_at(position)
                requests.append(request)
            produced += take
            side.append(
                (tuple(r.arrival_s for r in requests), position)
            )
            yield (
                config,
                net_index,
                cfg,
                spec,
                tuple(r.task.as_session_tuple() for r in requests),
            )

    pooled = workers > 1
    owns_plane = False
    if pooled and completed < total_sessions and shared_plane_enabled():
        if plane is None:
            plane = SharedNetworkPlane(seed=config.master_seed)
            owns_plane = True
        # Publish (idempotent per key) the one deployment every chunk of
        # this stream re-derives, so workers attach instead of rebuilding.
        from repro.experiments.sweep import cached_network

        plane.publish((config, net_index, None), cached_network(config, net_index))

    since_snapshot = 0
    try:
        for outcomes, perf_delta in stream_units(
            run_session_chunk,
            chunk_args(),
            workers=workers,
            window=window,
            plane=plane,
        ):
            arrivals, cursor_after = side.popleft()
            merge_worker_perf([perf_delta], used_pool=pooled)
            for outcome, arrival_s in zip(outcomes, arrivals):
                chain_hex = fold_chain(chain_hex, outcome, arrival_s)
                stats.observe(
                    latency_s=outcome.latency_s,
                    delivery_ratio=outcome.delivery_ratio,
                    energy_joules=outcome.energy_joules,
                    tree_cost=float(outcome.transmissions),
                    delivered=outcome.delivered,
                    requested=outcome.requested,
                )
            completed += len(outcomes)
            since_snapshot += len(outcomes)
            cursor = cursor_after
            if on_sessions_done is not None:
                on_sessions_done(completed)
            if (
                checkpoint is not None
                and checkpoint_every > 0
                and since_snapshot >= checkpoint_every
            ):
                checkpoint.save(
                    identity,
                    _checkpoint_payload(cursor, completed, chain_hex, stats),
                )
                since_snapshot = 0
                if progress is not None:
                    progress(f"checkpoint at {completed} sessions")
    finally:
        if owns_plane and plane is not None:
            plane.close()

    if checkpoint is not None:
        checkpoint.save(
            identity, _checkpoint_payload(cursor, completed, chain_hex, stats)
        )

    return SessionReport(
        workload=workload,
        protocol=str(spec[0]),
        completed=completed,
        chain_digest=chain_hex,
        stats=stats,
        cursor=cursor,
    )
