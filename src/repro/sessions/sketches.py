"""Memory-bounded online statistics for unbounded session streams.

Accumulating one :class:`~repro.engine.stats.TaskResult` per completed
session makes a multi-hour sweep's memory grow linearly with throughput;
these sketches replace that accumulation with O(1)-to-O(log n) state:

* :class:`Welford` — numerically-stable running mean/variance (Welford's
  online algorithm, with Chan's parallel merge rule);
* :class:`GKQuantiles` — the Greenwald-Khanna epsilon-approximate quantile
  summary: any quantile query is answered within ``epsilon * n`` ranks of
  the exact answer, with ``O((1/epsilon) * log(epsilon * n))`` stored
  tuples — the bound the property tests assert against
  ``numpy.percentile``;
* :class:`P2Quantile` — the Jain-Chlamtac P² estimator: a single target
  quantile tracked in five markers, constant space, no error bound (kept
  for the cheapest telemetry paths; the session reports use GK).

All sketches are deterministic in their input order and serialize exactly
(:meth:`state` / ``from_state``): floats round-trip through JSON by
shortest-repr, so a sketch restored from a checkpoint continues
bit-identically — the property the resume tests pin.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Dict, List, Sequence, Tuple


class Welford:
    """Running mean and variance via Welford's online update."""

    __slots__ = ("count", "mean", "m2", "min_value", "max_value")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf

    def update(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0 for fewer than two values."""
        return self.m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "Welford") -> None:
        """Fold another accumulator in (Chan et al. parallel combination)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.min_value = other.min_value
            self.max_value = other.max_value
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.m2 += other.m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)

    def state(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "m2": self.m2,
            "min": self.min_value,
            "max": self.max_value,
        }

    @staticmethod
    def from_state(state: Dict[str, float]) -> "Welford":
        out = Welford()
        out.count = int(state["count"])
        out.mean = float(state["mean"])
        out.m2 = float(state["m2"])
        out.min_value = float(state["min"])
        out.max_value = float(state["max"])
        return out


class GKQuantiles:
    """Greenwald-Khanna epsilon-approximate quantile summary.

    Stores tuples ``(value, g, delta)`` in value order where ``g`` is the
    gap in minimum rank to the previous tuple and ``delta`` the rank
    uncertainty.  :meth:`query` returns a stored value whose true rank is
    within ``epsilon * count`` of the requested one (GK Theorem 1); space
    stays ``O((1/epsilon) * log(epsilon * n))``.
    """

    __slots__ = ("epsilon", "count", "_tuples", "_since_compress")

    def __init__(self, epsilon: float = 0.01) -> None:
        if not 0.0 < epsilon < 0.5:
            raise ValueError(f"epsilon must be in (0, 0.5), got {epsilon}")
        self.epsilon = float(epsilon)
        self.count = 0
        #: ``[value, g, delta]`` lists, sorted by value.
        self._tuples: List[List[float]] = []
        self._since_compress = 0

    def __len__(self) -> int:
        """Number of stored tuples (the memory bound under test)."""
        return len(self._tuples)

    def update(self, value: float) -> None:
        value = float(value)
        position = bisect.bisect_left(
            [t[0] for t in self._tuples], value
        )
        if position == 0 or position == len(self._tuples):
            # New minimum or maximum is always exact: delta = 0.
            entry = [value, 1.0, 0.0]
        else:
            entry = [value, 1.0, math.floor(2.0 * self.epsilon * self.count)]
        self._tuples.insert(position, entry)
        self.count += 1
        self._since_compress += 1
        if self._since_compress >= int(math.ceil(1.0 / (2.0 * self.epsilon))):
            self._compress()
            self._since_compress = 0

    def _compress(self) -> None:
        """Merge adjacent tuples whose combined uncertainty stays in bound."""
        if len(self._tuples) < 3:
            return
        budget = math.floor(2.0 * self.epsilon * self.count)
        merged: List[List[float]] = [self._tuples[0]]
        for entry in self._tuples[1:-1]:
            nxt = entry
            prev = merged[-1]
            # Merging prev into nxt keeps the bound if g_prev + g_next +
            # delta_next <= 2 * epsilon * n; never merge into the first
            # tuple (the minimum must stay exact).
            if (
                len(merged) > 1
                and prev[1] + nxt[1] + nxt[2] <= budget
            ):
                merged.pop()
                nxt = [nxt[0], prev[1] + nxt[1], nxt[2]]
            merged.append(nxt)
        merged.append(self._tuples[-1])
        self._tuples = merged

    def query(self, quantile: float) -> float:
        """A value whose rank is within ``epsilon * count`` of ``quantile``."""
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {quantile}")
        if not self._tuples:
            raise ValueError("cannot query an empty sketch")
        if quantile <= 0.0:
            return self._tuples[0][0]
        if quantile >= 1.0:
            return self._tuples[-1][0]
        # Canonical GK query: return the predecessor of the first tuple
        # whose maximum possible rank overshoots target + allowed — its
        # true rank is then within ``allowed`` of the target (GK Thm. 1).
        target = math.ceil(quantile * self.count)
        allowed = max(self.epsilon * self.count, 1.0)
        min_rank = 0.0
        best = self._tuples[0][0]
        for value, g, delta in self._tuples:
            min_rank += g
            if min_rank + delta > target + allowed:
                return best
            best = value
        return self._tuples[-1][0]

    def state(self) -> Dict[str, Any]:
        return {
            "epsilon": self.epsilon,
            "count": self.count,
            "since_compress": self._since_compress,
            "tuples": [list(t) for t in self._tuples],
        }

    @staticmethod
    def from_state(state: Dict[str, Any]) -> "GKQuantiles":
        out = GKQuantiles(float(state["epsilon"]))
        out.count = int(state["count"])
        out._since_compress = int(state["since_compress"])
        out._tuples = [
            [float(v), float(g), float(d)]
            for v, g, d in state["tuples"]
        ]
        return out


class P2Quantile:
    """Jain-Chlamtac P² single-quantile estimator (five markers, O(1) space).

    Until five observations arrive the exact sorted sample is kept, so
    small streams report exact quantiles; afterwards marker heights move by
    the piecewise-parabolic (P²) update.  No error bound — use
    :class:`GKQuantiles` when the report must be defensible.
    """

    __slots__ = ("quantile", "_heights", "_positions", "_desired", "_rates")

    def __init__(self, quantile: float) -> None:
        if not 0.0 < quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {quantile}")
        self.quantile = float(quantile)
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._rates: List[float] = []

    @property
    def count(self) -> int:
        if len(self._heights) < 5 or not self._positions:
            return len(self._heights) if not self._positions else 5
        return int(self._positions[-1])

    def update(self, value: float) -> None:
        value = float(value)
        q = self.quantile
        if not self._positions:
            self._heights.append(value)
            self._heights.sort()
            if len(self._heights) == 5:
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0,
                    1.0 + 2.0 * q,
                    1.0 + 4.0 * q,
                    3.0 + 2.0 * q,
                    5.0,
                ]
                self._rates = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
            return
        heights, positions = self._heights, self._positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._rates[i]
        for i in (1, 2, 3):
            d = self._desired[i] - positions[i]
            if (d >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                d <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, p = self._heights, self._positions
        return h[i] + step / (p[i + 1] - p[i - 1]) * (
            (p[i] - p[i - 1] + step) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
            + (p[i + 1] - p[i] - step) * (h[i] - h[i - 1]) / (p[i] - p[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        j = i + int(step)
        return self._heights[i] + step * (self._heights[j] - self._heights[i]) / (
            self._positions[j] - self._positions[i]
        )

    def value(self) -> float:
        """The current estimate of the target quantile."""
        if not self._heights:
            raise ValueError("cannot query an empty estimator")
        if not self._positions:
            exact = sorted(self._heights)
            rank = self.quantile * (len(exact) - 1)
            low = int(math.floor(rank))
            high = min(low + 1, len(exact) - 1)
            return exact[low] + (rank - low) * (exact[high] - exact[low])
        return self._heights[2]

    def state(self) -> Dict[str, Any]:
        return {
            "quantile": self.quantile,
            "heights": list(self._heights),
            "positions": list(self._positions),
            "desired": list(self._desired),
            "rates": list(self._rates),
        }

    @staticmethod
    def from_state(state: Dict[str, Any]) -> "P2Quantile":
        out = P2Quantile(float(state["quantile"]))
        out._heights = [float(x) for x in state["heights"]]
        out._positions = [float(x) for x in state["positions"]]
        out._desired = [float(x) for x in state["desired"]]
        out._rates = [float(x) for x in state["rates"]]
        return out


#: Quantiles every metric reports (order fixes the rendered columns).
REPORT_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)

#: Metric names of one session outcome, in fold order.
STREAM_METRICS: Tuple[str, ...] = (
    "latency_s",
    "delivery_ratio",
    "energy_joules",
    "tree_cost",
)


class MetricSketch:
    """One metric's bounded-memory aggregate: moments plus GK quantiles."""

    __slots__ = ("moments", "quantiles")

    def __init__(self, epsilon: float = 0.01) -> None:
        self.moments = Welford()
        self.quantiles = GKQuantiles(epsilon)

    def update(self, value: float) -> None:
        self.moments.update(value)
        self.quantiles.update(value)

    def state(self) -> Dict[str, Any]:
        return {"moments": self.moments.state(), "quantiles": self.quantiles.state()}

    @staticmethod
    def from_state(state: Dict[str, Any]) -> "MetricSketch":
        out = MetricSketch()
        out.moments = Welford.from_state(state["moments"])
        out.quantiles = GKQuantiles.from_state(state["quantiles"])
        return out


class StreamStats:
    """Bounded-memory statistics of one session stream.

    Tracks the four report metrics (latency, per-session delivery ratio,
    energy, tree cost) as :class:`MetricSketch` plus exact integer tallies
    (sessions, failures, delivered/requested destination counts).  State
    size is independent of the number of completed sessions up to the GK
    logarithmic factor — the memory-growth test pins this.
    """

    __slots__ = ("epsilon", "metrics", "sessions", "failures", "delivered", "requested")

    def __init__(self, epsilon: float = 0.01) -> None:
        self.epsilon = float(epsilon)
        self.metrics: Dict[str, MetricSketch] = {
            name: MetricSketch(epsilon) for name in STREAM_METRICS
        }
        self.sessions = 0
        self.failures = 0
        self.delivered = 0
        self.requested = 0

    def observe(
        self,
        latency_s: float,
        delivery_ratio: float,
        energy_joules: float,
        tree_cost: float,
        delivered: int,
        requested: int,
    ) -> None:
        self.metrics["latency_s"].update(latency_s)
        self.metrics["delivery_ratio"].update(delivery_ratio)
        self.metrics["energy_joules"].update(energy_joules)
        self.metrics["tree_cost"].update(tree_cost)
        self.sessions += 1
        self.delivered += int(delivered)
        self.requested += int(requested)
        if delivered < requested:
            self.failures += 1

    @property
    def aggregate_delivery_ratio(self) -> float:
        return self.delivered / self.requested if self.requested else 1.0

    def summary_rows(self) -> List[Tuple[str, float, float, float, float, float]]:
        """``(metric, mean, std, p50, p90, p99)`` per metric, fold order."""
        rows = []
        for name in STREAM_METRICS:
            sketch = self.metrics[name]
            if sketch.moments.count == 0:
                rows.append((name, 0.0, 0.0, 0.0, 0.0, 0.0))
                continue
            p50, p90, p99 = (
                sketch.quantiles.query(q) for q in REPORT_QUANTILES
            )
            rows.append(
                (name, sketch.moments.mean, sketch.moments.std, p50, p90, p99)
            )
        return rows

    def state(self) -> Dict[str, Any]:
        return {
            "epsilon": self.epsilon,
            "sessions": self.sessions,
            "failures": self.failures,
            "delivered": self.delivered,
            "requested": self.requested,
            "metrics": {
                name: self.metrics[name].state() for name in STREAM_METRICS
            },
        }

    @staticmethod
    def from_state(state: Dict[str, Any]) -> "StreamStats":
        out = StreamStats(float(state["epsilon"]))
        out.sessions = int(state["sessions"])
        out.failures = int(state["failures"])
        out.delivered = int(state["delivered"])
        out.requested = int(state["requested"])
        metric_states: Dict[str, Dict[str, Any]] = state["metrics"]
        out.metrics = {
            name: MetricSketch.from_state(metric_states[name])
            for name in STREAM_METRICS
        }
        return out


def exact_quantile(values: Sequence[float], quantile: float) -> float:
    """Exact nearest-rank quantile of a finite sample (test reference)."""
    if not values:
        raise ValueError("cannot query an empty sample")
    ordered = sorted(float(v) for v in values)
    rank = max(1, int(math.ceil(quantile * len(ordered))))
    return ordered[rank - 1]
