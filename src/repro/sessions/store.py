"""Incremental, resumable result store for streaming session runs.

A checkpoint is one JSON document holding everything needed to continue a
stream and to reproduce its final report byte-for-byte:

* the run *identity* (workload spec, protocol, engine knobs) — resume
  refuses a checkpoint written by a different run;
* the :class:`~repro.sessions.arrivals.StreamCursor` (arrival position +
  RNG cursor — session randomness re-derives from the index);
* the sketch state of :class:`~repro.sessions.sketches.StreamStats`;
* the running chain digest over per-session result digests.

Floats survive the JSON round trip exactly (shortest-repr serialization),
so a resumed run folds from the identical sketch state the interrupted run
held — the digest-equality tests pin this end to end.

Writes are atomic (temp file + ``os.replace``): a crash mid-checkpoint
leaves the previous checkpoint intact, never a torn file.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

#: Format version; bump on any incompatible layout change.
CHECKPOINT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint exists but cannot be used (corrupt or wrong identity)."""


class CheckpointStore:
    """Atomic JSON snapshots of one streaming run's progress."""

    def __init__(self, path: str) -> None:
        self.path = path

    def save(self, identity: Dict[str, Any], payload: Dict[str, Any]) -> None:
        """Atomically write ``payload`` tagged with ``identity``."""
        document = {
            "version": CHECKPOINT_VERSION,
            "identity": identity,
            **payload,
        }
        tmp_path = self.path + ".tmp"
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, self.path)

    def load(self, identity: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """The stored payload, or ``None`` when no checkpoint exists.

        Raises :class:`CheckpointError` when a file exists but is corrupt,
        from an incompatible version, or was written by a run with a
        different identity — silently resuming someone else's stream would
        poison the digest chain.
        """
        if not os.path.exists(self.path):
            return None
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise CheckpointError(
                f"unreadable checkpoint {self.path!r}: {error}"
            ) from error
        if document.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path!r} has version "
                f"{document.get('version')!r}, expected {CHECKPOINT_VERSION}"
            )
        stored = document.get("identity")
        if stored != identity:
            raise CheckpointError(
                f"checkpoint {self.path!r} belongs to a different run: "
                f"stored identity {stored!r} != expected {identity!r}"
            )
        return {
            key: value
            for key, value in document.items()
            if key not in ("version", "identity")
        }
