"""Seeded arrival-process generators for open-ended session streams.

A *session stream* turns the paper's fixed task batches into a service-shaped
workload: multicast sessions arrive over virtual time under a configurable
arrival process, with heavy-tailed group sizes.  Three arrival models are
provided:

* :class:`PoissonArrivals` — memoryless arrivals at a constant rate;
* :class:`BurstyArrivals` — a two-state MMPP (Markov-modulated Poisson
  process): exponentially-distributed ON/OFF dwell periods with a distinct
  arrival rate in each phase, the classic bursty-traffic model;
* :class:`DiurnalArrivals` — a sinusoidally-modulated rate (day/night load
  swing), sampled exactly via Lewis-Shedler thinning.

Determinism and resumability are structural: session ``i`` draws *all* of
its randomness (inter-arrival gap, group size, source, destinations) from a
private generator seeded by ``derive_seed(seed, "session", i)``, and any
cross-session arrival state (the MMPP phase, the diurnal clock) lives in an
explicit, JSON-serializable :class:`StreamCursor`.  Advancing a cursor is a
pure function, so a stream interrupted at session ``i`` and resumed from a
stored cursor replays sessions ``i, i+1, ...`` bit-identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Tuple, Union

import numpy as np

from repro.sessions.workload import MulticastTask, sample_group
from repro.simkit.rng import derive_seed

#: Sentinel for "dwell time not yet drawn" in a fresh MMPP cursor.
_UNDRAWN = -1.0


def exponential_starts(
    rng: np.random.Generator, count: int, mean_interarrival_s: float
) -> List[float]:
    """Poisson-process start times: ``count`` arrivals, first at t=0.

    The cumulative form used by the contention sweep: session ``i`` starts
    where session ``i-1``'s exponential gap ended.  Shared here so every
    harness that needs simple seeded arrival times draws them identically.
    """
    starts: List[float] = []
    clock = 0.0
    for _ in range(count):
        starts.append(clock)
        clock += float(rng.exponential(mean_interarrival_s))
    return starts


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PoissonArrivals:
    """Constant-rate memoryless arrivals."""

    rate_per_s: float

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0.0:
            raise ValueError(f"arrival rate must be positive, got {self.rate_per_s}")

    def next_gap(
        self,
        rng: np.random.Generator,
        clock_s: float,
        state: Tuple[float, ...],
    ) -> Tuple[float, Tuple[float, ...]]:
        del clock_s, state  # memoryless
        return float(rng.exponential(1.0 / self.rate_per_s)), ()

    def describe(self) -> str:
        return f"poisson({self.rate_per_s:g}/s)"


@dataclass(frozen=True)
class BurstyArrivals:
    """Two-state MMPP: ON/OFF phases with exponential dwell times.

    Phase 0 (ON) emits at ``on_rate_per_s``; phase 1 (OFF) at
    ``off_rate_per_s`` (which may be zero — a true silence period).  The
    cursor state is ``(phase, residual dwell seconds)``.
    """

    on_rate_per_s: float
    off_rate_per_s: float
    mean_on_s: float
    mean_off_s: float

    def __post_init__(self) -> None:
        if self.on_rate_per_s <= 0.0:
            raise ValueError(f"ON rate must be positive, got {self.on_rate_per_s}")
        if self.off_rate_per_s < 0.0:
            raise ValueError(
                f"OFF rate must be non-negative, got {self.off_rate_per_s}"
            )
        if self.mean_on_s <= 0.0 or self.mean_off_s <= 0.0:
            raise ValueError("MMPP dwell means must be positive")

    def _phase_rate(self, phase: int) -> float:
        return self.on_rate_per_s if phase == 0 else self.off_rate_per_s

    def _phase_mean(self, phase: int) -> float:
        return self.mean_on_s if phase == 0 else self.mean_off_s

    def next_gap(
        self,
        rng: np.random.Generator,
        clock_s: float,
        state: Tuple[float, ...],
    ) -> Tuple[float, Tuple[float, ...]]:
        del clock_s
        if state:
            phase, left = int(state[0]), float(state[1])
        else:
            phase, left = 0, _UNDRAWN
        if left < 0.0:
            left = float(rng.exponential(self._phase_mean(phase)))
        gap = 0.0
        while True:
            rate = self._phase_rate(phase)
            if rate > 0.0:
                draw = float(rng.exponential(1.0 / rate))
                if draw <= left:
                    gap += draw
                    left -= draw
                    return gap, (float(phase), left)
            # No arrival within this dwell period: burn it and switch phase.
            gap += left
            phase = 1 - phase
            left = float(rng.exponential(self._phase_mean(phase)))

    def describe(self) -> str:
        return (
            f"mmpp(on={self.on_rate_per_s:g}/s x {self.mean_on_s:g}s, "
            f"off={self.off_rate_per_s:g}/s x {self.mean_off_s:g}s)"
        )


@dataclass(frozen=True)
class DiurnalArrivals:
    """Sinusoidally-modulated rate, sampled exactly by thinning.

    The instantaneous rate is ``base * (1 + amplitude * sin(2*pi*t/period))``
    — never negative for ``amplitude <= 1``.  Lewis-Shedler thinning draws
    candidates from the peak-rate Poisson process and accepts each with
    probability ``rate(t)/rate_max``, which samples the inhomogeneous
    process without discretization error.
    """

    base_rate_per_s: float
    amplitude: float
    period_s: float

    def __post_init__(self) -> None:
        if self.base_rate_per_s <= 0.0:
            raise ValueError(
                f"base rate must be positive, got {self.base_rate_per_s}"
            )
        if not 0.0 <= self.amplitude <= 1.0:
            raise ValueError(f"amplitude must be in [0, 1], got {self.amplitude}")
        if self.period_s <= 0.0:
            raise ValueError(f"period must be positive, got {self.period_s}")

    def rate_at(self, t_s: float) -> float:
        """The instantaneous arrival rate at virtual time ``t_s``."""
        return self.base_rate_per_s * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * t_s / self.period_s)
        )

    def next_gap(
        self,
        rng: np.random.Generator,
        clock_s: float,
        state: Tuple[float, ...],
    ) -> Tuple[float, Tuple[float, ...]]:
        del state
        rate_max = self.base_rate_per_s * (1.0 + self.amplitude)
        t = clock_s
        while True:
            t += float(rng.exponential(1.0 / rate_max))
            if float(rng.random()) * rate_max <= self.rate_at(t):
                return t - clock_s, ()

    def describe(self) -> str:
        return (
            f"diurnal({self.base_rate_per_s:g}/s +/-{self.amplitude:g}, "
            f"period {self.period_s:g}s)"
        )


ArrivalProcess = Union[PoissonArrivals, BurstyArrivals, DiurnalArrivals]


# ----------------------------------------------------------------------
# Group-size samplers
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FixedGroups:
    """Every session multicasts to exactly ``size`` destinations."""

    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"group size must be positive, got {self.size}")

    def sample(self, rng: np.random.Generator) -> int:
        del rng
        return self.size

    @property
    def max_size(self) -> int:
        return self.size

    def describe(self) -> str:
        return f"k={self.size}"


@dataclass(frozen=True)
class ZipfGroups:
    """Heavy-tailed group sizes: truncated Zipf over ``[min_size, max_size]``.

    ``P(k) \\propto k**-alpha`` — most sessions are small unicast-ish groups,
    a heavy tail reaches the ``max_size`` broadcast-ish ones, matching
    measured multicast group populations far better than a constant ``k``.
    """

    alpha: float
    min_size: int
    max_size: int

    def __post_init__(self) -> None:
        if self.alpha <= 0.0:
            raise ValueError(f"Zipf exponent must be positive, got {self.alpha}")
        if self.min_size <= 0 or self.max_size < self.min_size:
            raise ValueError(
                f"need 0 < min_size <= max_size, got "
                f"[{self.min_size}, {self.max_size}]"
            )

    def _cdf(self) -> np.ndarray:
        sizes = np.arange(self.min_size, self.max_size + 1, dtype=np.float64)
        weights = sizes**-self.alpha
        return np.cumsum(weights / weights.sum())

    def sample(self, rng: np.random.Generator) -> int:
        u = float(rng.random())
        return self.min_size + int(np.searchsorted(self._cdf(), u, side="right"))

    def probabilities(self) -> Dict[int, float]:
        """Exact ``{k: P(k)}`` table (for tests and documentation)."""
        cdf = self._cdf()
        probs = np.diff(np.concatenate(([0.0], cdf)))
        return {
            self.min_size + i: float(p) for i, p in enumerate(probs)
        }

    def describe(self) -> str:
        return f"zipf(a={self.alpha:g}, k={self.min_size}..{self.max_size})"


GroupSampler = Union[FixedGroups, ZipfGroups]


# ----------------------------------------------------------------------
# The resumable stream
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SessionRequest:
    """One session of the stream: a multicast task plus its arrival time."""

    task: MulticastTask
    arrival_s: float


@dataclass(frozen=True)
class StreamCursor:
    """Position of a session stream — everything needed to continue it.

    Serializable to/from a flat JSON dict; advancing a cursor is pure, so
    checkpointing a cursor and resuming from it replays the remaining
    stream bit-identically.
    """

    index: int = 0
    clock_s: float = 0.0
    arrival_state: Tuple[float, ...] = ()

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "clock_s": self.clock_s,
            "arrival_state": list(self.arrival_state),
        }

    @staticmethod
    def from_json_dict(payload: Dict[str, Any]) -> "StreamCursor":
        return StreamCursor(
            index=int(payload["index"]),
            clock_s=float(payload["clock_s"]),
            arrival_state=tuple(
                float(x) for x in payload["arrival_state"]
            ),
        )


@dataclass(frozen=True)
class SessionWorkload:
    """A fully-seeded, unbounded session stream specification.

    Immutable and picklable: the stream is a pure function of this spec and
    a :class:`StreamCursor`, which is what makes checkpoint/resume exact.
    """

    seed: int
    node_count: int
    arrival: ArrivalProcess
    groups: GroupSampler
    first_task_id: int = 0

    def __post_init__(self) -> None:
        if self.node_count < 2:
            raise ValueError(
                f"a session stream needs at least 2 nodes, got {self.node_count}"
            )

    @property
    def max_group_size(self) -> int:
        """Largest group the stream can emit (clipped to the network)."""
        return min(self.groups.max_size, self.node_count - 1)

    def session_at(
        self, cursor: StreamCursor
    ) -> Tuple[SessionRequest, StreamCursor]:
        """The session at ``cursor`` and the advanced cursor.

        All randomness of session ``i`` comes from a generator seeded by
        ``(seed, "session", i)``: gap first, then group size, then the
        source/destination picks — a fixed draw order that any future
        consumer must preserve.
        """
        rng = np.random.default_rng(
            derive_seed(self.seed, "session", cursor.index)
        )
        gap, arrival_state = self.arrival.next_gap(
            rng, cursor.clock_s, cursor.arrival_state
        )
        arrival_s = cursor.clock_s + gap
        group_size = min(self.groups.sample(rng), self.node_count - 1)
        source_id, destination_ids = sample_group(
            self.node_count, group_size, rng
        )
        request = SessionRequest(
            task=MulticastTask(
                task_id=self.first_task_id + cursor.index,
                source_id=source_id,
                destination_ids=destination_ids,
            ),
            arrival_s=arrival_s,
        )
        return request, StreamCursor(
            index=cursor.index + 1,
            clock_s=arrival_s,
            arrival_state=arrival_state,
        )

    def describe(self) -> str:
        return (
            f"{self.arrival.describe()} {self.groups.describe()} "
            f"n={self.node_count} seed={self.seed}"
        )


@dataclass
class SessionStream:
    """Iterator façade over :meth:`SessionWorkload.session_at`.

    Mutable convenience wrapper: holds the current cursor so callers can
    pull sessions one at a time and snapshot :attr:`cursor` for
    checkpoints at any point.
    """

    workload: SessionWorkload
    cursor: StreamCursor = field(default_factory=StreamCursor)

    def take(self, count: int) -> List[SessionRequest]:
        """The next ``count`` sessions, advancing the stream."""
        out: List[SessionRequest] = []
        for _ in range(count):
            request, self.cursor = self.workload.session_at(self.cursor)
            out.append(request)
        return out

    def __iter__(self) -> Iterator[SessionRequest]:
        while True:
            request, self.cursor = self.workload.session_at(self.cursor)
            yield request
