"""Streaming session subsystem: arrival processes, sketches, checkpoints.

The paper evaluates fixed batches of multicast tasks; the service-shaped
regime the ROADMAP targets is an *open-ended stream* of sessions arriving
over time.  This package provides the pieces that regime needs:

* :mod:`repro.sessions.workload` — the one source of truth for multicast
  workload construction (:class:`MulticastTask`, :func:`generate_tasks`),
  absorbed from the old ``repro.experiments.workload`` stub;
* :mod:`repro.sessions.arrivals` — seeded arrival-process generators
  (Poisson, bursty MMPP on/off, diurnal rate) with heavy-tailed group
  sizes, exposed as a resumable :class:`SessionStream` cursor;
* :mod:`repro.sessions.sketches` — memory-bounded online statistics
  (Welford mean/variance, Greenwald-Khanna and P² quantile sketches);
* :mod:`repro.sessions.store` — the incremental, resumable checkpoint
  store (atomic JSON snapshots of sketch state + stream cursor);
* :mod:`repro.sessions.runner` — the long-running session scheduler that
  multiplexes an unbounded stream over the deterministic process-pool
  engine with a bounded in-flight window.

Everything here honours the PR 2 bit-identity contract: the final report
of a stream run is byte-identical at any worker count, and an interrupted
run resumed from a checkpoint reproduces the uninterrupted report exactly.
"""

from repro.sessions.arrivals import (
    BurstyArrivals,
    DiurnalArrivals,
    FixedGroups,
    PoissonArrivals,
    SessionRequest,
    SessionStream,
    SessionWorkload,
    StreamCursor,
    ZipfGroups,
    exponential_starts,
)
from repro.sessions.runner import (
    SessionOutcome,
    SessionReport,
    run_session_stream,
)
from repro.sessions.sketches import GKQuantiles, P2Quantile, StreamStats, Welford
from repro.sessions.store import CheckpointStore
from repro.sessions.workload import MulticastTask, generate_tasks

__all__ = [
    "BurstyArrivals",
    "CheckpointStore",
    "DiurnalArrivals",
    "FixedGroups",
    "GKQuantiles",
    "MulticastTask",
    "P2Quantile",
    "PoissonArrivals",
    "SessionOutcome",
    "SessionReport",
    "SessionRequest",
    "SessionStream",
    "SessionWorkload",
    "StreamCursor",
    "StreamStats",
    "Welford",
    "ZipfGroups",
    "exponential_starts",
    "generate_tasks",
    "run_session_stream",
]
