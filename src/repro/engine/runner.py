"""Running one multicast task through the discrete-event simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.stats import TaskResult
from repro.engine.trace import CopyRecord, FrameRecord, TaskTrace
from repro.network.energy import EnergyMeter, EnergyModel
from repro.network.graph import WirelessNetwork
from repro.packets import Destination, MulticastPacket
from repro.perf.counters import GLOBAL_COUNTERS
from repro.routing.base import ForwardDecision, NodeView, RoutingProtocol
from repro.simkit import SimulationError, Simulator
from repro.simkit.rng import derive_seed


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of the execution engine.

    Attributes:
        max_path_length: Hop-count TTL; packets are not forwarded beyond
            this many hops (the paper's Figure-15 experiment uses 100).
        processing_delay_s: Per-hop processing latency added to the airtime.
        max_events_per_task: Hard safety valve against pathological loops.
        validate_decisions: Check that protocols only forward to actual
            neighbors and never duplicate a destination across copies.
        transmission_model: How one forwarding step's copies map to radio
            transmissions — ``"protocol"`` (default) honours each
            protocol's :attr:`RoutingProtocol.aggregates_copies`
            declaration; ``"broadcast"`` forces single-frame aggregation
            for everyone; ``"unicast"`` forces one transmission per copy
            (the counting-model ablation).
        link_loss_rate: Probability that a transmitted copy is destroyed in
            flight (failure injection; energy is still charged — the frame
            was sent).  Zero by default: the paper's metrics assume a
            loss-free MAC.
        loss_seed: Seed for the loss process (combined with the task id, so
            loss patterns are reproducible per task).
        failed_node_ids: Crashed nodes — they neither receive nor forward.
            Protocols do not know (their neighbor tables are stale), so
            packets routed into them are lost: models unannounced node
            death between neighbor-table refreshes.
        charge_header_overhead: Charge airtime/energy for the geographic
            header (next-hop/source/destination locations, perimeter
            state) on top of the fixed payload, instead of the paper's
            flat message size.  Off by default to match Table 1; turning
            it on penalizes protocols that carry long destination lists
            deep into the network.
        collect_traces: Record the full on-air trace of every task (the
            per-call ``collect_trace`` argument of :func:`run_task` still
            works for one-off traces).  Used by the parallel-vs-serial
            bit-identity tests, which digest complete frame histories.
        collect_perf: Attach per-task perf-cache counter deltas (hits and
            misses moved during the task) as :attr:`TaskResult.perf`.
            Instrumentation only — excluded from result digests.
    """

    max_path_length: int = 100
    processing_delay_s: float = 0.0
    max_events_per_task: int = 500_000
    validate_decisions: bool = True
    transmission_model: str = "protocol"
    link_loss_rate: float = 0.0
    loss_seed: int = 0
    failed_node_ids: FrozenSet[int] = field(default_factory=frozenset)
    charge_header_overhead: bool = False
    collect_traces: bool = False
    collect_perf: bool = False

    def __post_init__(self) -> None:
        if self.transmission_model not in ("protocol", "broadcast", "unicast"):
            raise ValueError(
                f"unknown transmission model {self.transmission_model!r}"
            )
        if not 0.0 <= self.link_loss_rate < 1.0:
            raise ValueError(
                f"link loss rate must be in [0, 1), got {self.link_loss_rate}"
            )


#: Shared immutable default: every entry point that accepts an optional
#: :class:`EngineConfig` falls back to this one instance instead of
#: constructing a fresh (identical) config per call.
DEFAULT_ENGINE_CONFIG = EngineConfig()


class _TaskExecution:
    """Mutable state of one in-flight task (one source, many branches)."""

    def __init__(
        self,
        network: WirelessNetwork,
        protocol: RoutingProtocol,
        config: EngineConfig,
        task_id: int,
        trace: Optional[TaskTrace] = None,
    ) -> None:
        self.network = network
        self.protocol = protocol
        self.config = config
        self.simulator = Simulator()
        self.energy = EnergyMeter(EnergyModel(network.radio))
        self.delivered_hops: Dict[int, int] = {}
        self.dropped_ttl = 0
        self.trace = trace
        self._loss_rng = (
            np.random.default_rng(derive_seed(config.loss_seed, "loss", task_id))
            if config.link_loss_rate > 0.0
            else None
        )

    def transmit(self, sender_id: int, decisions: Sequence[ForwardDecision]) -> None:
        """Send the decided copies: charge energy, schedule the arrivals.

        Copy aggregation follows the protocol's declaration (see
        :attr:`RoutingProtocol.aggregates_copies`) unless the engine forces
        a model: with aggregation, all copies of one forwarding step ride a
        single broadcast frame (one transmission, one listener charge);
        without, every copy is its own transmission.
        """
        if self.config.validate_decisions:
            self._validate(sender_id, decisions)
        live: List[ForwardDecision] = []
        for decision in decisions:
            if decision.packet.hop_count + 1 > self.config.max_path_length:
                self.dropped_ttl += 1
                continue
            live.append(decision)
        if not live:
            return
        if self.config.transmission_model == "broadcast":
            aggregate = True
        elif self.config.transmission_model == "unicast":
            aggregate = False
        else:  # "protocol" — each protocol declares its own frame usage.
            aggregate = self.protocol.aggregates_copies
        transmissions = 1 if aggregate else len(live)
        frame_bytes = None  # Table-1 flat message size.
        if self.config.charge_header_overhead:
            payload = live[0].packet.payload_bytes
            headers = sum(d.packet.header_size_bytes() for d in live)
            if aggregate:
                frame_bytes = payload + headers
            else:
                # Per-copy frames: charge the mean size per transmission.
                frame_bytes = payload + max(1, headers // len(live))
        airtime = self.network.radio.transmission_time(frame_bytes)
        for _ in range(transmissions):
            self.energy.record_transmission(
                sender_id,
                self.network.listeners_of(sender_id),
                size_bytes=frame_bytes,
            )
        copy_records = []
        for decision in live:
            forwarded = decision.packet.hopped()
            receiver = decision.next_hop_id
            lost = self._copy_is_lost(receiver)
            if self.trace is not None:
                copy_records.append(
                    CopyRecord(
                        receiver_id=receiver,
                        destination_ids=forwarded.destination_ids,
                        hop_count=forwarded.hop_count,
                        in_perimeter_mode=forwarded.in_perimeter_mode,
                        lost=lost,
                    )
                )
            if lost:
                continue
            self.simulator.schedule_after(
                airtime + self.config.processing_delay_s,
                lambda r=receiver, p=forwarded: self.receive(r, p),
                label=f"rx@{receiver}",
            )
        if self.trace is not None:
            self.trace.record(
                FrameRecord(
                    time_s=self.simulator.now,
                    sender_id=sender_id,
                    copies=tuple(copy_records),
                    transmissions_charged=transmissions,
                )
            )

    def _copy_is_lost(self, receiver_id: int) -> bool:
        """Injected failure check for one in-flight copy."""
        if receiver_id in self.config.failed_node_ids:
            return True
        if self._loss_rng is not None:
            return bool(self._loss_rng.random() < self.config.link_loss_rate)
        return False

    def receive(self, node_id: int, packet: MulticastPacket) -> None:
        """Arrival processing: record delivery, then let the protocol forward."""
        if any(d.node_id == node_id for d in packet.destinations):
            if node_id not in self.delivered_hops:
                self.delivered_hops[node_id] = packet.hop_count
            packet = packet.without_destination(node_id)
        if not packet.destinations:
            return
        view = NodeView(self.network, node_id)
        decisions = self.protocol.handle(view, packet)
        self.transmit(node_id, decisions)

    def _validate(self, sender_id: int, decisions: Sequence[ForwardDecision]) -> None:
        seen: set = set()
        for decision in decisions:
            if not self.network.are_neighbors(sender_id, decision.next_hop_id):
                raise SimulationError(
                    f"{self.protocol.name} forwarded from {sender_id} to "
                    f"non-neighbor {decision.next_hop_id}"
                )
            if self.protocol.duplicates_allowed:
                continue
            for dest in decision.packet.destinations:
                if dest.node_id in seen:
                    raise SimulationError(
                        f"{self.protocol.name} duplicated destination "
                        f"{dest.node_id} across copies at node {sender_id}"
                    )
                seen.add(dest.node_id)


def run_task(
    network: WirelessNetwork,
    protocol: RoutingProtocol,
    source_id: int,
    destination_ids: Sequence[int],
    config: EngineConfig | None = None,
    task_id: int = 0,
    payload_bytes: int | None = None,
    collect_trace: bool = False,
) -> TaskResult:
    """Execute one multicast task and return its measured outcome.

    Args:
        network: The deployed network (global state owned by the engine).
        protocol: Forwarding discipline under test.
        source_id: Originating node.
        destination_ids: Target nodes; the source itself is filtered out.
        config: Engine knobs (TTL etc.); defaults to :class:`EngineConfig`.
        task_id: Id recorded in the result.
        payload_bytes: Message size (defaults to the radio's Table-1 size).
        collect_trace: Record every frame; the trace is attached to the
            result as :attr:`TaskResult.trace`.

    Returns:
        A :class:`TaskResult`; ``result.success`` is False when any
        destination was unreachable (void without recovery, TTL, injected
        losses, or a disconnected topology for the centralized SMT
        baseline).
    """
    cfg = config or DEFAULT_ENGINE_CONFIG
    perf_before: Optional[Dict[str, float]] = (
        GLOBAL_COUNTERS.snapshot() if cfg.collect_perf else None
    )
    unique_destinations = []
    seen = set()
    for d in destination_ids:
        if d == source_id or d in seen:
            continue
        if not (0 <= d < network.node_count):
            raise ValueError(f"destination {d} is not a node of the network")
        seen.add(d)
        unique_destinations.append(d)
    if not (0 <= source_id < network.node_count):
        raise ValueError(f"source {source_id} is not a node of the network")
    if source_id in cfg.failed_node_ids:
        raise ValueError(f"source {source_id} is marked as a failed node")

    trace = TaskTrace() if (collect_trace or cfg.collect_traces) else None
    execution = _TaskExecution(network, protocol, cfg, task_id, trace)
    dest_tuple = tuple(unique_destinations)

    def finish(transmissions: int = 0, energy: float = 0.0, duration: float = 0.0,
               delivered: Optional[Dict[int, int]] = None) -> TaskResult:
        per_node: Dict[int, float] = dict(execution.energy.tx_joules_by_node)
        for node, joules in execution.energy.rx_joules_by_node.items():
            per_node[node] = per_node.get(node, 0.0) + joules
        perf = (
            GLOBAL_COUNTERS.delta_since(perf_before)
            if perf_before is not None
            else None
        )
        return TaskResult(
            task_id=task_id,
            protocol=protocol.name,
            source_id=source_id,
            destination_ids=dest_tuple,
            delivered_hops=delivered or {},
            transmissions=transmissions,
            energy_joules=energy,
            duration_s=duration,
            dropped_ttl=execution.dropped_ttl,
            trace=trace,
            hotspot_energy_joules=max(per_node.values(), default=0.0),
            perf=perf,
        )

    if not dest_tuple:
        return finish()

    try:
        protocol.prepare_task(network, source_id, dest_tuple)
    except ValueError:
        # Centralized preparation can fail outright on partitioned networks
        # (e.g. KMB with unreachable terminals): the whole task fails.
        return finish()

    packet = MulticastPacket(
        task_id=task_id,
        source=Destination(source_id, network.location_of(source_id)),
        destinations=tuple(
            Destination(d, network.location_of(d)) for d in dest_tuple
        ),
        payload_bytes=payload_bytes or network.radio.message_size_bytes,
    )
    execution.simulator.schedule_at(
        0.0, lambda: execution.receive(source_id, packet), label="task-start"
    )
    execution.simulator.run(max_events=cfg.max_events_per_task)

    return finish(
        transmissions=execution.energy.transmissions,
        energy=execution.energy.total_joules,
        duration=execution.simulator.now,
        delivered=dict(execution.delivered_hops),
    )
