"""Running one multicast task through the discrete-event simulator.

The engine never writes a network's state arrays directly: every mutation
it performs (node failures via ``failed_node_ids``, energy drain through
the meter) goes through :class:`~repro.network.graph.WirelessNetwork`'s
mutators, which copy-on-write when the network is a zero-copy view over
the shared-memory plane (:mod:`repro.perf.shm`).  That keeps pool workers'
``fail_node``/``move_node``/``drain_energy`` effects worker-local while
the published segments stay byte-identical for every other attacher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.adversary.schedule import EMPTY_ADVERSARY_SCHEDULE, AdversarySchedule
from repro.adversary.state import AdversaryState
from repro.engine.stats import TaskResult
from repro.engine.trace import CopyRecord, FrameRecord, TaskTrace
from repro.linklayer.config import DEFAULT_LINK_CONFIG, LinkLayerConfig
from repro.linklayer.frame import DATA
from repro.linklayer.mac import CopyOutcome, LinkLayer
from repro.network.energy import EnergyMeter, EnergyModel
from repro.network.graph import WirelessNetwork
from repro.packets import Destination, MulticastPacket
from repro.perf.counters import GLOBAL_COUNTERS
from repro.routing.base import ForwardDecision, NodeView, RoutingProtocol
from repro.simkit import SimulationError, Simulator
from repro.simkit.rng import RandomStreams, derive_seed


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of the execution engine.

    Attributes:
        max_path_length: Hop-count TTL; packets are not forwarded beyond
            this many hops (the paper's Figure-15 experiment uses 100).
        processing_delay_s: Per-hop processing latency added to the airtime.
        max_events_per_task: Hard safety valve against pathological loops.
        validate_decisions: Check that protocols only forward to actual
            neighbors and never duplicate a destination across copies.
        transmission_model: How one forwarding step's copies map to radio
            transmissions — ``"protocol"`` (default) honours each
            protocol's :attr:`RoutingProtocol.aggregates_copies`
            declaration; ``"broadcast"`` forces single-frame aggregation
            for everyone; ``"unicast"`` forces one transmission per copy
            (the counting-model ablation); ``"contended"`` routes every
            frame through the CSMA/ARQ link layer of
            :mod:`repro.linklayer` — frames queue per node, contend for
            the shared channel, collide, and are retransmitted, with
            neighbor knowledge served from HELLO-beacon tables.
        link: Link-layer knobs, used only by the ``"contended"`` model.
        link_loss_rate: Probability that a transmitted copy is destroyed in
            flight (failure injection; energy is still charged — the frame
            was sent).  Zero by default: the paper's metrics assume a
            loss-free MAC.
        loss_seed: Seed for the loss process (combined with the task id, so
            loss patterns are reproducible per task).
        failed_node_ids: Crashed nodes — they neither receive nor forward.
            Protocols do not know (their neighbor tables are stale), so
            packets routed into them are lost: models unannounced node
            death between neighbor-table refreshes.
        charge_header_overhead: Charge airtime/energy for the geographic
            header (next-hop/source/destination locations, perimeter
            state) on top of the fixed payload, instead of the paper's
            flat message size.  Off by default to match Table 1; turning
            it on penalizes protocols that carry long destination lists
            deep into the network.
        collect_traces: Record the full on-air trace of every task (the
            per-call ``collect_trace`` argument of :func:`run_task` still
            works for one-off traces).  Used by the parallel-vs-serial
            bit-identity tests, which digest complete frame histories.
        collect_perf: Attach per-task perf-cache counter deltas (hits and
            misses moved during the task) as :attr:`TaskResult.perf`.
            Instrumentation only — excluded from result digests.
        adversary: The misbehaving-node cast (see :mod:`repro.adversary`).
            Empty by default — and with an empty schedule every code path
            below is byte-identical to the adversary-free engine (the A/B
            switch contract the digest tests pin).  Jammers additionally
            require the contended transmission model: they exist to occupy
            a channel, and only ``"contended"`` has one.
    """

    max_path_length: int = 100
    processing_delay_s: float = 0.0
    max_events_per_task: int = 500_000
    validate_decisions: bool = True
    transmission_model: str = "protocol"
    link_loss_rate: float = 0.0
    loss_seed: int = 0
    failed_node_ids: FrozenSet[int] = field(default_factory=frozenset)
    charge_header_overhead: bool = False
    collect_traces: bool = False
    collect_perf: bool = False
    link: LinkLayerConfig = DEFAULT_LINK_CONFIG
    adversary: AdversarySchedule = EMPTY_ADVERSARY_SCHEDULE

    def __post_init__(self) -> None:
        if self.transmission_model not in (
            "protocol",
            "broadcast",
            "unicast",
            "contended",
        ):
            raise ValueError(
                f"unknown transmission model {self.transmission_model!r}"
            )
        if not 0.0 <= self.link_loss_rate < 1.0:
            raise ValueError(
                f"link loss rate must be in [0, 1), got {self.link_loss_rate}"
            )
        for node_id in self.adversary.node_ids:
            if node_id in self.failed_node_ids:
                raise ValueError(
                    f"node {node_id} is both failed and adversarial; a "
                    "crashed node cannot misbehave"
                )


#: Shared immutable default: every entry point that accepts an optional
#: :class:`EngineConfig` falls back to this one instance instead of
#: constructing a fresh (identical) config per call.
DEFAULT_ENGINE_CONFIG = EngineConfig()


class _TaskExecution:
    """Mutable state of one in-flight task (one source, many branches)."""

    def __init__(
        self,
        network: WirelessNetwork,
        protocol: RoutingProtocol,
        config: EngineConfig,
        task_id: int,
        trace: Optional[TaskTrace] = None,
    ) -> None:
        self.network = network
        self.protocol = protocol
        self.config = config
        self.simulator = Simulator()
        self.energy = EnergyMeter(EnergyModel(network.radio))
        self.delivered_hops: Dict[int, int] = {}
        self.dropped_ttl = 0
        self.trace = trace
        # Created unconditionally so that turning loss on/off cannot shift
        # any *other* stream's draws, and a zero-rate config still owns a
        # well-defined loss process (it just never consumes from it).
        self._loss_rng = np.random.default_rng(
            derive_seed(config.loss_seed, "loss", task_id)
        )
        # None when the schedule is empty: the benign path below must stay
        # byte-identical to the pre-adversary engine (A/B switch contract).
        if config.adversary.enabled:
            if config.adversary.has_jammers:
                raise ValueError(
                    "jammers require the contended transmission model"
                )
            self.adversary: Optional[AdversaryState] = AdversaryState(
                config.adversary, network, ("task", task_id)
            )
        else:
            self.adversary = None

    def transmit(self, sender_id: int, decisions: Sequence[ForwardDecision]) -> None:
        """Send the decided copies: charge energy, schedule the arrivals.

        Copy aggregation follows the protocol's declaration (see
        :attr:`RoutingProtocol.aggregates_copies`) unless the engine forces
        a model: with aggregation, all copies of one forwarding step ride a
        single broadcast frame (one transmission, one listener charge);
        without, every copy is its own transmission.
        """
        if self.config.validate_decisions:
            self._validate(sender_id, decisions)
        live: List[ForwardDecision] = []
        for decision in decisions:
            if decision.packet.hop_count + 1 > self.config.max_path_length:
                self.dropped_ttl += 1
                continue
            live.append(decision)
        if not live:
            return
        if self.config.transmission_model == "broadcast":
            aggregate = True
        elif self.config.transmission_model == "unicast":
            aggregate = False
        else:  # "protocol" — each protocol declares its own frame usage.
            aggregate = self.protocol.aggregates_copies
        transmissions = 1 if aggregate else len(live)
        frame_bytes = None  # Table-1 flat message size.
        if self.config.charge_header_overhead:
            payload = live[0].packet.payload_bytes
            headers = sum(d.packet.header_size_bytes() for d in live)
            if aggregate:
                frame_bytes = payload + headers
            else:
                # Per-copy frames: charge the mean size per transmission.
                frame_bytes = payload + max(1, headers // len(live))
        airtime = self.network.radio.transmission_time(frame_bytes)
        for _ in range(transmissions):
            self.energy.record_transmission(
                sender_id,
                self.network.listeners_of(sender_id),
                size_bytes=frame_bytes,
            )
        copy_records = []
        for decision in live:
            forwarded = decision.packet.hopped()
            receiver = decision.next_hop_id
            lost = self._copy_is_lost(receiver)
            if self.trace is not None:
                copy_records.append(
                    CopyRecord(
                        receiver_id=receiver,
                        destination_ids=forwarded.destination_ids,
                        hop_count=forwarded.hop_count,
                        in_perimeter_mode=forwarded.in_perimeter_mode,
                        lost=lost,
                    )
                )
            if lost:
                continue
            self.simulator.schedule_after(
                airtime + self.config.processing_delay_s,
                lambda r=receiver, p=forwarded: self.receive(r, p),
                label=f"rx@{receiver}",
            )
        if self.trace is not None:
            self.trace.record(
                FrameRecord(
                    time_s=self.simulator.now,
                    sender_id=sender_id,
                    copies=tuple(copy_records),
                    transmissions_charged=transmissions,
                )
            )

    def _copy_is_lost(self, receiver_id: int) -> bool:
        """Injected failure check for one in-flight copy."""
        if receiver_id in self.config.failed_node_ids:
            return True
        if self.config.link_loss_rate > 0.0:
            return bool(self._loss_rng.random() < self.config.link_loss_rate)
        return False

    def receive(self, node_id: int, packet: MulticastPacket) -> None:
        """Arrival processing: record delivery, then let the protocol forward.

        A dropper adversary swallows the packet *before* any bookkeeping:
        a malicious group member suppresses even its own delivery.
        """
        if self.adversary is not None and self.adversary.should_drop(
            node_id, packet
        ):
            return
        if any(d.node_id == node_id for d in packet.destinations):
            if node_id not in self.delivered_hops:
                self.delivered_hops[node_id] = packet.hop_count
            packet = packet.without_destination(node_id)
        if not packet.destinations:
            return
        view: NodeView = NodeView(self.network, node_id)
        if self.adversary is not None:
            view = self.adversary.wrap_view(view)
        decisions = self.protocol.handle(view, packet)
        self.transmit(node_id, decisions)

    def _validate(self, sender_id: int, decisions: Sequence[ForwardDecision]) -> None:
        seen: set = set()
        for decision in decisions:
            if not self.network.are_neighbors(sender_id, decision.next_hop_id):
                raise SimulationError(
                    f"{self.protocol.name} forwarded from {sender_id} to "
                    f"non-neighbor {decision.next_hop_id}"
                )
            if self.protocol.duplicates_allowed:
                continue
            for dest in decision.packet.destinations:
                if dest.node_id in seen:
                    raise SimulationError(
                        f"{self.protocol.name} duplicated destination "
                        f"{dest.node_id} across copies at node {sender_id}"
                    )
                seen.add(dest.node_id)


def run_task(
    network: WirelessNetwork,
    protocol: RoutingProtocol,
    source_id: int,
    destination_ids: Sequence[int],
    config: EngineConfig | None = None,
    task_id: int = 0,
    payload_bytes: int | None = None,
    collect_trace: bool = False,
) -> TaskResult:
    """Execute one multicast task and return its measured outcome.

    Args:
        network: The deployed network (global state owned by the engine).
        protocol: Forwarding discipline under test.
        source_id: Originating node.
        destination_ids: Target nodes; the source itself is filtered out.
        config: Engine knobs (TTL etc.); defaults to :class:`EngineConfig`.
        task_id: Id recorded in the result.
        payload_bytes: Message size (defaults to the radio's Table-1 size).
        collect_trace: Record every frame; the trace is attached to the
            result as :attr:`TaskResult.trace`.

    Returns:
        A :class:`TaskResult`; ``result.success`` is False when any
        destination was unreachable (void without recovery, TTL, injected
        losses, or a disconnected topology for the centralized SMT
        baseline).
    """
    cfg = config or DEFAULT_ENGINE_CONFIG
    if cfg.transmission_model == "contended":
        # One task is one session on the contended channel; the single
        # protocol instance is safe to reuse as the session "factory".
        return run_contended_tasks(
            network,
            [(task_id, source_id, tuple(destination_ids))],
            lambda: protocol,
            config=cfg,
            payload_bytes=payload_bytes,
            collect_trace=collect_trace,
        )[0]
    perf_before: Optional[Dict[str, float]] = (
        GLOBAL_COUNTERS.snapshot() if cfg.collect_perf else None
    )
    unique_destinations = []
    seen = set()
    for d in destination_ids:
        if d == source_id or d in seen:
            continue
        if not (0 <= d < network.node_count):
            raise ValueError(f"destination {d} is not a node of the network")
        seen.add(d)
        unique_destinations.append(d)
    if not (0 <= source_id < network.node_count):
        raise ValueError(f"source {source_id} is not a node of the network")
    if source_id in cfg.failed_node_ids:
        raise ValueError(f"source {source_id} is marked as a failed node")

    trace = TaskTrace() if (collect_trace or cfg.collect_traces) else None
    execution = _TaskExecution(network, protocol, cfg, task_id, trace)
    dest_tuple = tuple(unique_destinations)

    def finish(transmissions: int = 0, energy: float = 0.0, duration: float = 0.0,
               delivered: Optional[Dict[int, int]] = None) -> TaskResult:
        per_node: Dict[int, float] = dict(execution.energy.tx_joules_by_node)
        for node, joules in execution.energy.rx_joules_by_node.items():
            per_node[node] = per_node.get(node, 0.0) + joules
        perf = (
            GLOBAL_COUNTERS.delta_since(perf_before)
            if perf_before is not None
            else None
        )
        if execution.adversary is not None and execution.adversary.counters:
            merged: Dict[str, float] = dict(perf) if perf else {}
            merged.update(execution.adversary.perf_counters())
            perf = merged
        return TaskResult(
            task_id=task_id,
            protocol=protocol.name,
            source_id=source_id,
            destination_ids=dest_tuple,
            delivered_hops=delivered or {},
            transmissions=transmissions,
            energy_joules=energy,
            duration_s=duration,
            dropped_ttl=execution.dropped_ttl,
            trace=trace,
            hotspot_energy_joules=max(per_node.values(), default=0.0),
            perf=perf,
        )

    if not dest_tuple:
        return finish()

    try:
        protocol.prepare_task(network, source_id, dest_tuple)
    except ValueError:
        # Centralized preparation can fail outright on partitioned networks
        # (e.g. KMB with unreachable terminals): the whole task fails.
        return finish()

    packet = MulticastPacket(
        task_id=task_id,
        source=Destination(source_id, network.location_of(source_id)),
        destinations=tuple(
            Destination(d, network.location_of(d)) for d in dest_tuple
        ),
        payload_bytes=payload_bytes or network.radio.message_size_bytes,
    )
    execution.simulator.schedule_at(
        0.0, lambda: execution.receive(source_id, packet), label="task-start"
    )
    execution.simulator.run(max_events=cfg.max_events_per_task)

    return finish(
        transmissions=execution.energy.transmissions,
        energy=execution.energy.total_joules,
        duration=execution.simulator.now,
        delivered=dict(execution.delivered_hops),
    )


class _ContendedSession:
    """Mutable state of one multicast session on the contended channel."""

    __slots__ = (
        "task_id",
        "source_id",
        "destination_ids",
        "protocol",
        "meter",
        "delivered_hops",
        "dropped_ttl",
        "trace",
        "loss_rng",
        "start_s",
        "last_activity_s",
    )

    def __init__(
        self,
        task_id: int,
        source_id: int,
        destination_ids: Tuple[int, ...],
        protocol: RoutingProtocol,
        meter: EnergyMeter,
        trace: Optional[TaskTrace],
        loss_rng: np.random.Generator,
        start_s: float,
    ) -> None:
        self.task_id = task_id
        self.source_id = source_id
        self.destination_ids = destination_ids
        self.protocol = protocol
        self.meter = meter
        self.delivered_hops: Dict[int, int] = {}
        self.dropped_ttl = 0
        self.trace = trace
        self.loss_rng = loss_rng
        self.start_s = start_s
        self.last_activity_s = start_s


class _ContendedRun:
    """One simulator clock, one channel, many concurrent multicast sessions.

    The routing semantics (validation, TTL, copy aggregation, header
    accounting) intentionally mirror :class:`_TaskExecution` line for line;
    only the medium differs — frames go through :class:`LinkLayer` queues
    instead of arriving exactly one airtime later.
    """

    def __init__(
        self,
        network: WirelessNetwork,
        tasks: Sequence[Tuple[int, int, Tuple[int, ...]]],
        protocol_factory: Callable[[], RoutingProtocol],
        config: EngineConfig,
        start_times: Sequence[float],
        payload_bytes: Optional[int],
        collect_trace: bool,
    ) -> None:
        self.network = network
        self.config = config
        self.payload_bytes = payload_bytes
        self.simulator = Simulator()
        self.order: List[int] = [task_id for task_id, _, _ in tasks]
        want_trace = collect_trace or config.collect_traces
        self.sessions: Dict[int, _ContendedSession] = {}
        for (task_id, source_id, dest_ids), start_s in zip(tasks, start_times):
            self.sessions[task_id] = _ContendedSession(
                task_id=task_id,
                source_id=source_id,
                destination_ids=dest_ids,
                protocol=protocol_factory(),
                meter=EnergyMeter(EnergyModel(network.radio)),
                trace=TaskTrace() if want_trace else None,
                loss_rng=np.random.default_rng(
                    derive_seed(config.loss_seed, "loss", task_id)
                ),
                start_s=start_s,
            )
        #: Energy of traffic owned by no session (HELLO beacons).
        self.infra_meter = EnergyMeter(EnergyModel(network.radio))
        streams = RandomStreams(
            derive_seed(config.loss_seed, "mac", tuple(self.order))
        )
        # None when the schedule is empty: the LinkLayer then gets its
        # exact pre-adversary arguments, keeping benign contended runs
        # byte-identical (A/B switch contract).  The counter hook routes
        # behavior tallies into the link stats' ``adv.*`` bucket;
        # ``self.link`` exists before any bump can fire.
        self.adversary: Optional[AdversaryState] = (
            AdversaryState(
                config.adversary,
                network,
                ("run", tuple(self.order)),
                on_count=lambda key, amount: self.link.stats.bump_adv(
                    key, amount
                ),
            )
            if config.adversary.enabled
            else None
        )
        self.link = LinkLayer(
            network=network,
            simulator=self.simulator,
            config=config.link,
            streams=streams,
            failed_node_ids=config.failed_node_ids,
            deliver=self._deliver,
            charge=self._charge,
            copy_loss=self._copy_loss,
            on_frame=self._on_frame if want_trace else None,
            advertised_location=(
                self.adversary.advertised_location
                if self.adversary is not None and self.adversary.distorts_views
                else None
            ),
            beacon_silenced=(
                self.adversary.suppressed
                if self.adversary is not None
                else frozenset()
            ),
        )

    # ------------------------------------------------------ link callbacks

    def _charge(
        self,
        session_id: Optional[int],
        sender_id: int,
        size_bytes: Optional[int],
        count_transmission: bool,
    ) -> None:
        meter = (
            self.sessions[session_id].meter
            if session_id is not None
            else self.infra_meter
        )
        meter.record_transmission(
            sender_id,
            self.network.listeners_of(sender_id),
            size_bytes=size_bytes,
            count_transmission=count_transmission,
        )

    def _copy_loss(self, session_id: int, receiver_id: int) -> bool:
        del receiver_id  # the Bernoulli coin is per copy, not per receiver
        if self.config.link_loss_rate <= 0.0:
            return False
        session = self.sessions[session_id]
        return bool(session.loss_rng.random() < self.config.link_loss_rate)

    def _on_frame(
        self,
        session_id: Optional[int],
        kind: str,
        sender_id: int,
        start_s: float,
        retry: int,
        outcomes: Sequence[CopyOutcome],
    ) -> None:
        if session_id is None or kind != DATA:
            return  # control traffic stays out of session traces
        session = self.sessions[session_id]
        if session.trace is None:
            return
        records = tuple(
            CopyRecord(
                receiver_id=receiver_id,
                destination_ids=packet.destination_ids,
                hop_count=packet.hop_count,
                in_perimeter_mode=packet.in_perimeter_mode,
                lost=lost,
            )
            for receiver_id, packet, lost in outcomes
        )
        session.trace.record(
            FrameRecord(
                time_s=start_s,
                sender_id=sender_id,
                copies=records,
                transmissions_charged=1,
                kind=kind,
                retry=retry,
            )
        )

    def _deliver(
        self, session_id: int, receiver_id: int, packet: MulticastPacket
    ) -> None:
        session = self.sessions[session_id]
        session.last_activity_s = self.simulator.now
        if self.config.processing_delay_s > 0.0:
            self.simulator.schedule_after(
                self.config.processing_delay_s,
                lambda: self._receive(session, receiver_id, packet),
                label=f"rx@{receiver_id}",
            )
        else:
            self._receive(session, receiver_id, packet)

    # --------------------------------------------------------- routing path

    def _receive(
        self, session: _ContendedSession, node_id: int, packet: MulticastPacket
    ) -> None:
        if self.adversary is not None and self.adversary.should_drop(
            node_id, packet
        ):
            return
        if any(d.node_id == node_id for d in packet.destinations):
            if node_id not in session.delivered_hops:
                session.delivered_hops[node_id] = packet.hop_count
            packet = packet.without_destination(node_id)
        if not packet.destinations:
            return
        view = self.link.view(node_id)
        if self.adversary is not None and self.link.beacon_service is None:
            # Without beacons the view is the graph oracle; apply the same
            # spoof/suppress distortion the beacon process would have fed it.
            view = self.adversary.wrap_view(view)
        decisions = session.protocol.handle(view, packet)
        self._transmit(session, node_id, decisions)

    def _transmit(
        self,
        session: _ContendedSession,
        sender_id: int,
        decisions: Sequence[ForwardDecision],
    ) -> None:
        if self.config.validate_decisions:
            self._validate(session, sender_id, decisions)
        live: List[ForwardDecision] = []
        for decision in decisions:
            if decision.packet.hop_count + 1 > self.config.max_path_length:
                session.dropped_ttl += 1
                continue
            live.append(decision)
        if not live:
            return
        # "contended" honours each protocol's framing, like "protocol".
        aggregate = session.protocol.aggregates_copies
        frame_bytes = None  # Table-1 flat message size.
        if self.config.charge_header_overhead:
            payload = live[0].packet.payload_bytes
            headers = sum(d.packet.header_size_bytes() for d in live)
            if aggregate:
                frame_bytes = payload + headers
            else:
                frame_bytes = payload + max(1, headers // len(live))
        copies = [(d.next_hop_id, d.packet.hopped()) for d in live]
        if aggregate:
            self.link.send_data(session.task_id, sender_id, copies, frame_bytes)
        else:
            for copy in copies:
                self.link.send_data(
                    session.task_id, sender_id, [copy], frame_bytes
                )
        session.last_activity_s = self.simulator.now

    def _validate(
        self,
        session: _ContendedSession,
        sender_id: int,
        decisions: Sequence[ForwardDecision],
    ) -> None:
        seen: set = set()
        for decision in decisions:
            if not self.network.are_neighbors(sender_id, decision.next_hop_id):
                raise SimulationError(
                    f"{session.protocol.name} forwarded from {sender_id} to "
                    f"non-neighbor {decision.next_hop_id}"
                )
            if session.protocol.duplicates_allowed:
                continue
            for dest in decision.packet.destinations:
                if dest.node_id in seen:
                    raise SimulationError(
                        f"{session.protocol.name} duplicated destination "
                        f"{dest.node_id} across copies at node {sender_id}"
                    )
                seen.add(dest.node_id)

    # ------------------------------------------------------------ execution

    def _start_session(self, session: _ContendedSession) -> None:
        try:
            session.protocol.prepare_task(
                self.network, session.source_id, session.destination_ids
            )
        except ValueError:
            return  # centralized preparation failed; session never starts
        packet = MulticastPacket(
            task_id=session.task_id,
            source=Destination(
                session.source_id, self.network.location_of(session.source_id)
            ),
            destinations=tuple(
                Destination(d, self.network.location_of(d))
                for d in session.destination_ids
            ),
            payload_bytes=self.payload_bytes
            or self.network.radio.message_size_bytes,
        )
        self._receive(session, session.source_id, packet)

    def run(self) -> List[TaskResult]:
        horizon = (
            max(session.start_s for session in self.sessions.values())
            + self.config.link.session_timeout_s
        )
        for task_id in self.order:
            session = self.sessions[task_id]
            if session.destination_ids:
                self.simulator.schedule_at(
                    session.start_s,
                    lambda s=session: self._start_session(s),
                    label=f"session-start@{task_id}",
                )
        self.link.start_beacons(horizon)
        max_events = self.config.max_events_per_task * max(1, len(self.order))
        if self.config.link.beacons:
            ticks = int(horizon / self.config.link.beacon_period_s) + 2
            max_events += ticks * self.network.node_count * 8
        if self.adversary is not None:
            jam_frames = self.adversary.start_jammers(
                self.link, horizon, self.config.failed_node_ids
            )
            # Every jam frame is a schedule + finish event; widen the
            # budget so saturation cannot masquerade as a routing loop.
            max_events += jam_frames * 4
        self.simulator.run(until=horizon, max_events=max_events)
        return [self._result_of(task_id) for task_id in self.order]

    def _result_of(self, task_id: int) -> TaskResult:
        session = self.sessions[task_id]
        per_node: Dict[int, float] = dict(session.meter.tx_joules_by_node)
        for node, joules in session.meter.rx_joules_by_node.items():
            per_node[node] = per_node.get(node, 0.0) + joules
        return TaskResult(
            task_id=task_id,
            protocol=session.protocol.name,
            source_id=session.source_id,
            destination_ids=session.destination_ids,
            delivered_hops=dict(session.delivered_hops),
            transmissions=session.meter.transmissions,
            energy_joules=session.meter.total_joules,
            duration_s=max(session.last_activity_s - session.start_s, 0.0),
            dropped_ttl=session.dropped_ttl,
            trace=session.trace,
            hotspot_energy_joules=max(per_node.values(), default=0.0),
            perf=self.link.stats.session_perf(task_id),
        )


def run_contended_tasks(
    network: WirelessNetwork,
    tasks: Sequence[Tuple[int, int, Sequence[int]]],
    protocol_factory: Callable[[], RoutingProtocol],
    config: EngineConfig | None = None,
    start_times: Sequence[float] | None = None,
    payload_bytes: int | None = None,
    collect_trace: bool = False,
) -> List[TaskResult]:
    """Run multicast sessions concurrently over the contended link layer.

    All sessions share one simulator clock, one CSMA channel, and one
    beacon process, so they contend with each other for the air — the
    regime the :mod:`repro.experiments.contention` sweep measures.

    Args:
        network: The deployed network.
        tasks: ``(task_id, source_id, destination_ids)`` per session;
            task ids must be unique (they key the sessions).
        protocol_factory: Builds one *fresh* protocol instance per session
            (protocols carry per-task state, which concurrent sessions must
            not share).
        config: Engine knobs; :attr:`EngineConfig.link` configures the MAC.
            ``transmission_model`` is not consulted — calling this function
            *is* choosing the contended model.
        start_times: Session start time (seconds of virtual time) per task,
            defaulting to all-zero (maximum contention).  The run ends
            :attr:`LinkLayerConfig.session_timeout_s` after the last start.
        payload_bytes: Message size (defaults to the radio's Table-1 size).
        collect_trace: Attach a per-session :class:`TaskTrace` of DATA
            frames (including retransmissions; control traffic excluded).

    Returns:
        One :class:`TaskResult` per task, in submission order.
        ``result.perf`` carries the session's link-layer counters
        (``mac.*``) plus the run-global infrastructure counters
        (``link.*``) — instrumentation, excluded from digests.
    """
    cfg = config or DEFAULT_ENGINE_CONFIG
    if start_times is None:
        start_times = [0.0] * len(tasks)
    if len(start_times) != len(tasks):
        raise ValueError(
            f"{len(tasks)} tasks but {len(start_times)} start times"
        )
    seen_ids: set = set()
    normalized: List[Tuple[int, int, Tuple[int, ...]]] = []
    for task_id, source_id, destination_ids in tasks:
        if task_id in seen_ids:
            raise ValueError(f"duplicate task id {task_id} in contended run")
        seen_ids.add(task_id)
        if not (0 <= source_id < network.node_count):
            raise ValueError(f"source {source_id} is not a node of the network")
        if source_id in cfg.failed_node_ids:
            raise ValueError(f"source {source_id} is marked as a failed node")
        unique: List[int] = []
        dest_seen: set = set()
        for d in destination_ids:
            if d == source_id or d in dest_seen:
                continue
            if not (0 <= d < network.node_count):
                raise ValueError(f"destination {d} is not a node of the network")
            dest_seen.add(d)
            unique.append(d)
        normalized.append((task_id, source_id, tuple(unique)))
    for start in start_times:
        if start < 0.0:
            raise ValueError(f"session start times must be >= 0, got {start}")
    run = _ContendedRun(
        network=network,
        tasks=normalized,
        protocol_factory=protocol_factory,
        config=cfg,
        start_times=start_times,
        payload_bytes=payload_bytes,
        collect_trace=collect_trace,
    )
    return run.run()
