"""Execution engine: runs multicast tasks over the simulation kernel.

The engine plays the role of the radio medium and the measurement rig that
ns-2 played for the paper: it delivers location-addressed packets after
their airtime, charges the Section-5.3 energy model for every transmission
(sender power plus every in-range listener), enforces the hop-count TTL of
the Figure-15 experiment, and collects per-task statistics.
"""

from repro.engine.digest import batch_digest, delivery_digest, task_digest
from repro.engine.runner import (
    DEFAULT_ENGINE_CONFIG,
    EngineConfig,
    run_contended_tasks,
    run_task,
)
from repro.engine.stats import TaskResult, summarize_results
from repro.engine.trace import CopyRecord, FrameRecord, TaskTrace

__all__ = [
    "DEFAULT_ENGINE_CONFIG",
    "EngineConfig",
    "run_task",
    "run_contended_tasks",
    "TaskResult",
    "summarize_results",
    "TaskTrace",
    "FrameRecord",
    "CopyRecord",
    "task_digest",
    "batch_digest",
    "delivery_digest",
]
