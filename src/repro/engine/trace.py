"""Execution traces: what actually happened on the air.

A :class:`TaskTrace` records every frame and every copy it carried, enabling
route reconstruction (the *realized* multicast tree, as opposed to the
virtual trees nodes plan with), split statistics, perimeter-mode usage and
geometric efficiency analysis.  Used by the route-tracing example and the
diagnostics in :mod:`repro.experiments.ablations`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.geometry import distance
from repro.network.graph import WirelessNetwork


@dataclass(frozen=True)
class CopyRecord:
    """One packet copy inside a transmitted frame."""

    receiver_id: int
    destination_ids: Tuple[int, ...]
    hop_count: int
    in_perimeter_mode: bool
    lost: bool = False


@dataclass(frozen=True)
class FrameRecord:
    """One radio transmission (frame) and the copies it carried.

    ``kind`` and ``retry`` only vary under the contended link layer (the
    default engine emits ``kind="data"``, ``retry=0`` frames); they are
    *not* part of the digest serialization so default-model digests are
    unchanged by their existence.
    """

    time_s: float
    sender_id: int
    copies: Tuple[CopyRecord, ...]
    transmissions_charged: int
    kind: str = "data"
    retry: int = 0

    @property
    def receiver_ids(self) -> Tuple[int, ...]:
        return tuple(c.receiver_id for c in self.copies)

    @property
    def is_split(self) -> bool:
        """Whether this forwarding step fanned out to several next hops."""
        return len(set(self.receiver_ids)) > 1


@dataclass
class TaskTrace:
    """Complete on-air history of one task."""

    frames: List[FrameRecord] = field(default_factory=list)

    def record(self, frame: FrameRecord) -> None:
        self.frames.append(frame)

    # ------------------------------------------------------------------
    # Route reconstruction
    # ------------------------------------------------------------------

    def traversed_edges(self) -> Set[Tuple[int, int]]:
        """Distinct directed (sender, receiver) pairs that carried a copy."""
        return {
            (frame.sender_id, copy.receiver_id)
            for frame in self.frames
            for copy in frame.copies
            if not copy.lost
        }

    def relay_nodes(self) -> Set[int]:
        """Every node that transmitted at least one frame."""
        return {frame.sender_id for frame in self.frames}

    def split_events(self) -> int:
        """Forwarding steps that fanned out to more than one next hop."""
        return sum(1 for frame in self.frames if frame.is_split)

    def perimeter_copy_count(self) -> int:
        """Copies forwarded while in perimeter mode."""
        return sum(
            1
            for frame in self.frames
            for copy in frame.copies
            if copy.in_perimeter_mode
        )

    def lost_copy_count(self) -> int:
        """Copies destroyed by injected losses or failed receivers."""
        return sum(
            1 for frame in self.frames for copy in frame.copies if copy.lost
        )

    # ------------------------------------------------------------------
    # Geometric efficiency
    # ------------------------------------------------------------------

    def total_meters(self, network: WirelessNetwork) -> float:
        """Ground distance covered by all distinct traversed edges."""
        return sum(
            distance(network.location_of(a), network.location_of(b))
            for a, b in self.traversed_edges()
        )

    def mean_hop_meters(self, network: WirelessNetwork) -> float:
        """Average ground length of a traversed edge (progress per hop)."""
        edges = self.traversed_edges()
        if not edges:
            return 0.0
        return self.total_meters(network) / len(edges)

    def fanout_histogram(self) -> Dict[int, int]:
        """Frame count by number of distinct next hops."""
        histogram: Dict[int, int] = {}
        for frame in self.frames:
            fanout = len(set(frame.receiver_ids))
            histogram[fanout] = histogram.get(fanout, 0) + 1
        return histogram
