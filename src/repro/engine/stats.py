"""Per-task and aggregate statistics.

The paper reports, per multicasting task: the total number of hops (=
transmissions/forwardings, Figure 11), the average per-destination hop count
(Figure 12), the total energy (Figure 14) and whether the task failed to
reach every destination (Figure 15).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.trace import TaskTrace


@dataclass(frozen=True)
class TaskResult:
    """Outcome of one multicast task under one protocol.

    Attributes:
        task_id: Workload-assigned id of the task.
        protocol: Display name of the protocol that ran it.
        source_id: The originating node.
        destination_ids: All requested destinations (excluding the source).
        delivered_hops: Destination id -> hop count at which its packet
            arrived.
        transmissions: Total number of forwardings — the paper's "total
            number of hops in the multicast tree".
        energy_joules: Total energy charged (senders + all listeners).
        duration_s: Virtual time from first transmission to quiescence.
        dropped_ttl: Transmissions suppressed by the hop-count TTL.
        trace: Full on-air history (only when the task was run with
            ``collect_trace=True``).
        perf: Per-task perf-cache counter movement (only when run under
            ``EngineConfig(collect_perf=True)``).  Instrumentation, not a
            simulation outcome: excluded from result digests, and two runs
            may legitimately differ here while being simulation-identical.
    """

    task_id: int
    protocol: str
    source_id: int
    destination_ids: Tuple[int, ...]
    delivered_hops: Mapping[int, int]
    transmissions: int
    energy_joules: float
    duration_s: float
    dropped_ttl: int = 0
    trace: Optional["TaskTrace"] = None
    #: Largest total energy any single node spent on this task — the
    #: network-lifetime proxy (the first node to die ends coverage).
    hotspot_energy_joules: float = 0.0
    perf: Optional[Mapping[str, float]] = None

    @property
    def failed_destinations(self) -> Tuple[int, ...]:
        """Destinations never reached."""
        return tuple(
            d for d in self.destination_ids if d not in self.delivered_hops
        )

    @property
    def success(self) -> bool:
        """A task succeeds iff *all* destinations were reached (Section 5.4)."""
        return not self.failed_destinations

    @property
    def total_hops(self) -> int:
        """Alias for ``transmissions`` matching the paper's terminology."""
        return self.transmissions

    @property
    def per_destination_hops(self) -> List[int]:
        """Hop counts of the delivered destinations."""
        return [self.delivered_hops[d] for d in self.destination_ids if d in self.delivered_hops]

    @property
    def average_per_destination_hops(self) -> float:
        """Mean hop count over delivered destinations (0 when none)."""
        hops = self.per_destination_hops
        return sum(hops) / len(hops) if hops else 0.0


@dataclass
class ResultSummary:
    """Aggregate over a batch of :class:`TaskResult`."""

    task_count: int = 0
    failure_count: int = 0
    mean_total_hops: float = 0.0
    mean_per_destination_hops: float = 0.0
    mean_energy_joules: float = 0.0
    mean_duration_s: float = 0.0
    delivery_ratio: float = 1.0
    extras: Dict[str, float] = field(default_factory=dict)


def summarize_results(results: Sequence[TaskResult]) -> ResultSummary:
    """Mean metrics over a batch of task results."""
    if not results:
        return ResultSummary()
    task_count = len(results)
    failure_count = sum(0 if r.success else 1 for r in results)
    total_requested = sum(len(r.destination_ids) for r in results)
    total_delivered = sum(len(r.delivered_hops) for r in results)
    all_per_dest: List[int] = []
    for r in results:
        all_per_dest.extend(r.per_destination_hops)
    return ResultSummary(
        task_count=task_count,
        failure_count=failure_count,
        mean_total_hops=sum(r.transmissions for r in results) / task_count,
        mean_per_destination_hops=(
            sum(all_per_dest) / len(all_per_dest) if all_per_dest else 0.0
        ),
        mean_energy_joules=sum(r.energy_joules for r in results) / task_count,
        mean_duration_s=sum(r.duration_s for r in results) / task_count,
        delivery_ratio=(
            total_delivered / total_requested if total_requested else 1.0
        ),
    )
