"""Canonical digests of task outcomes, for bit-identity guarantees.

The parallel experiment engine promises that ``--workers N`` output is
*bit-identical* to the serial run, and the perf caches promise that a cache
hit changes nothing.  Both contracts are enforced by comparing SHA-256
digests over a canonical serialization of :class:`TaskResult` — including,
when collected, the complete on-air :class:`TaskTrace` (every frame, every
copy, every virtual timestamp).

Floats are serialized with :func:`repr`, the shortest round-trip
representation — two results digest equal iff every float is the same
IEEE-754 double.  Instrumentation (:attr:`TaskResult.perf`) is deliberately
excluded: cache hit rates legitimately differ between runs that are
simulation-identical.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Tuple

from repro.engine.stats import TaskResult
from repro.engine.trace import TaskTrace

#: Record field → digest policy, checked by reprolint R014: every field of
#: every record dataclass in the trace/stats layer must appear in exactly one
#: of these two tables, so adding a field forces an explicit decision about
#: whether it changes the digest.  The serialization functions below remain
#: the single source of truth for *how* included fields are hashed; these
#: tables only declare *which* fields participate.
DIGEST_INCLUDED_FIELDS: Dict[str, Tuple[str, ...]] = {
    "TaskResult": (
        "task_id",
        "protocol",
        "source_id",
        "destination_ids",
        "delivered_hops",
        "transmissions",
        "energy_joules",
        "duration_s",
        "dropped_ttl",
        "hotspot_energy_joules",
        "trace",
    ),
    "TaskTrace": ("frames",),
    "FrameRecord": ("time_s", "sender_id", "copies", "transmissions_charged"),
    "CopyRecord": (
        "receiver_id",
        "destination_ids",
        "hop_count",
        "in_perimeter_mode",
        "lost",
    ),
}

DIGEST_EXCLUDED_FIELDS: Dict[str, Tuple[str, ...]] = {
    # Instrumentation: cache hit rates differ between simulation-identical runs.
    "TaskResult": ("perf",),
    # Contended-link metadata; the default engine emits constant values.
    "FrameRecord": ("kind", "retry"),
    # Aggregates are derived from TaskResults and never digested directly.
    "ResultSummary": (
        "task_count",
        "failure_count",
        "mean_total_hops",
        "mean_per_destination_hops",
        "mean_energy_joules",
        "mean_duration_s",
        "delivery_ratio",
        "extras",
    ),
}


def _trace_lines(trace: TaskTrace) -> List[str]:
    lines = []
    for frame in trace.frames:
        copies = ";".join(
            f"{c.receiver_id},{c.destination_ids},{c.hop_count},"
            f"{c.in_perimeter_mode},{c.lost}"
            for c in frame.copies
        )
        lines.append(
            f"frame {frame.sender_id} t={frame.time_s!r} "
            f"tx={frame.transmissions_charged} [{copies}]"
        )
    return lines


def task_digest(result: TaskResult) -> str:
    """Hex SHA-256 of everything simulation-meaningful in ``result``."""
    lines = [
        f"task={result.task_id}",
        f"protocol={result.protocol}",
        f"source={result.source_id}",
        f"destinations={result.destination_ids}",
        f"delivered={sorted(result.delivered_hops.items())}",
        f"transmissions={result.transmissions}",
        f"energy={result.energy_joules!r}",
        f"duration={result.duration_s!r}",
        f"dropped_ttl={result.dropped_ttl}",
        f"hotspot={result.hotspot_energy_joules!r}",
    ]
    if result.trace is not None:
        lines.extend(_trace_lines(result.trace))
    payload = "\n".join(lines).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def delivery_digest(result: TaskResult) -> str:
    """Hex SHA-256 of the *delivery outcome* only.

    Hashes who was asked for and who was reached at what hop count —
    nothing about timing, energy, or the on-air history.  This is the
    equivalence currency between transmission models: a loss-free contended
    run must reproduce the default model's delivery digest exactly even
    though MAC timing makes every timestamp (and hence :func:`task_digest`)
    differ.
    """
    lines = [
        f"task={result.task_id}",
        f"protocol={result.protocol}",
        f"source={result.source_id}",
        f"destinations={result.destination_ids}",
        f"delivered={sorted(result.delivered_hops.items())}",
    ]
    payload = "\n".join(lines).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def batch_digest(results: Iterable[TaskResult]) -> str:
    """Order-sensitive digest of a whole result batch."""
    digest = hashlib.sha256()
    for result in results:
        digest.update(task_digest(result).encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()
