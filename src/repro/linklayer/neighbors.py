"""HELLO-beacon neighbor tables and the view protocols read them through.

The paper's locality model assumes every node knows its neighbors' locations
(Section 2); in the field that knowledge is *soft state* maintained by
periodic HELLO beacons — entries appear when a beacon is heard and silently
age out when beacons stop.  :class:`BeaconService` owns one
:class:`NeighborTable` per node and is fed by the link layer whenever a
beacon survives the channel; :meth:`BeaconService.view` carves the same
:class:`~repro.routing.base.NodeView` capability the engine normally builds
from the graph oracle, except every answer comes from the possibly-stale
table: a crashed node lingers in its neighbors' tables (and keeps attracting
packets) for up to the expiry interval.

With ``warm_start`` (the default) every table starts as a completed beacon
round at time zero, so a loss-free run with live nodes sees tables identical
to the oracle adjacency — which is what makes the contended engine's
delivery set reproduce the default model's exactly in that regime.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.geometry import Point
from repro.network.graph import WirelessNetwork
from repro.network.planar import gabriel_neighbors
from repro.routing.base import NodeView


class NeighborTable:
    """One node's soft-state neighbor map: id -> (location, last-heard)."""

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: Dict[int, Tuple[Point, float]] = {}

    def update(self, node_id: int, location: Point, heard_at_s: float) -> None:
        """Insert or refresh an entry from a received HELLO."""
        self._entries[node_id] = (location, heard_at_s)

    def live_ids(self, now_s: float, expiry_s: float) -> Tuple[int, ...]:
        """Ascending ids of entries younger than ``expiry_s``."""
        deadline = now_s - expiry_s
        return tuple(
            sorted(
                node_id
                for node_id, (_, heard) in self._entries.items()
                if heard >= deadline
            )
        )

    def location_entry(self, node_id: int) -> Optional[Point]:
        """Last advertised location of ``node_id`` (``None`` if never heard)."""
        entry = self._entries.get(node_id)
        return entry[0] if entry is not None else None

    def __len__(self) -> int:
        return len(self._entries)


class BeaconNodeView(NodeView):
    """A :class:`NodeView` answered from a beacon table snapshot.

    The node's *own* id/location still come from the network (a node always
    knows where it is); everything about other nodes comes from the table as
    it stood at construction time.
    """

    __slots__ = ("_ids", "_locations", "_array", "_planar")

    def __init__(
        self,
        network: WirelessNetwork,
        node_id: int,
        neighbor_ids: Tuple[int, ...],
        locations: Dict[int, Point],
    ) -> None:
        super().__init__(network, node_id)
        self._ids = neighbor_ids
        self._locations = locations
        self._array: Optional[np.ndarray] = None
        self._planar: Optional[Tuple[int, ...]] = None

    @property
    def neighbor_ids(self) -> Tuple[int, ...]:
        return self._ids

    @property
    def planar_neighbor_ids(self) -> Tuple[int, ...]:
        if self._planar is None:
            self._planar = gabriel_neighbors(
                self.node_id, self._ids, self.location_of
            )
        return self._planar

    def location_of(self, neighbor_id: int) -> Point:
        if neighbor_id == self.node_id:
            return self.location
        found = self._locations.get(neighbor_id)
        if found is None:
            raise ValueError(
                f"node {self.node_id} has heard no beacon from {neighbor_id}"
            )
        return found

    def neighbor_location_array(self) -> np.ndarray:
        if self._array is None:
            if self._ids:
                array = np.array(
                    [[self._locations[i][0], self._locations[i][1]] for i in self._ids],
                    dtype=float,
                )
            else:
                array = np.empty((0, 2), dtype=float)
            array.setflags(write=False)
            self._array = array
        return self._array


class BeaconService:
    """The neighbor/location service fed by HELLO beacons.

    Pure bookkeeping: the link layer decides *when* beacons go on the air
    and which listeners survive the channel; this class only records what
    was heard and answers view queries against it.
    """

    def __init__(
        self,
        network: WirelessNetwork,
        expiry_s: float,
        warm_start: bool = True,
        advertised_location: Optional[Callable[[int], Point]] = None,
        silenced: FrozenSet[int] = frozenset(),
    ) -> None:
        if expiry_s <= 0.0:
            raise ValueError(f"beacon expiry must be positive, got {expiry_s}")
        self._network = network
        self._expiry_s = expiry_s
        #: Adversary seams (mirroring :class:`~repro.linklayer.mac.LinkLayer`):
        #: spoofed HELLO positions and nodes that never beaconed, applied to
        #: the warm-start round too — a spoofer lied from the first HELLO
        #: and a suppressor was never heard at all.
        self._advertised = advertised_location or network.location_of
        self._silenced = silenced
        self._tables: List[NeighborTable] = [
            NeighborTable() for _ in range(network.node_count)
        ]
        #: Gabriel subsets are pure in (node, live-id set) for a static
        #: deployment, so they are memoized across view constructions.
        self._planar_memo: Dict[Tuple[int, Tuple[int, ...]], Tuple[int, ...]] = {}
        if warm_start:
            self._warm_start()

    def _warm_start(self) -> None:
        """Populate every table as if a full beacon round ended at time 0.

        Crashed nodes beaconed *before* crashing, so they are present too —
        exactly the stale state a between-refresh failure leaves behind.
        Suppressed nodes are the exception: they never sent that round's
        HELLO, so no table ever lists them.  Reads neighbor ids straight
        off the network's CSR adjacency rows (one O(1) slice per node) and
        resolves each advertised location once, instead of chasing node
        objects per (node, neighbor) pair.
        """
        network = self._network
        advertised = [self._advertised(i) for i in range(network.node_count)]
        for node_id, table in enumerate(self._tables):
            for neighbor in network.neighbors_of(node_id):
                if neighbor in self._silenced:
                    continue
                table.update(neighbor, advertised[neighbor], 0.0)

    @property
    def expiry_s(self) -> float:
        return self._expiry_s

    def table_of(self, node_id: int) -> NeighborTable:
        return self._tables[node_id]

    def hear_beacon(
        self, listener_id: int, sender_id: int, location: Point, now_s: float
    ) -> None:
        """Record that ``listener_id`` heard ``sender_id``'s HELLO."""
        self._tables[listener_id].update(sender_id, location, now_s)

    def view(self, node_id: int, now_s: float) -> BeaconNodeView:
        """The node's routing view as its beacon table stands at ``now_s``."""
        table = self._tables[node_id]
        ids = table.live_ids(now_s, self._expiry_s)
        locations: Dict[int, Point] = {}
        for neighbor_id in ids:
            location = table.location_entry(neighbor_id)
            assert location is not None  # live_ids only returns heard entries
            locations[neighbor_id] = location
        view = BeaconNodeView(self._network, node_id, ids, locations)
        memo_key = (node_id, ids)
        planar = self._planar_memo.get(memo_key)
        if planar is None:
            planar = view.planar_neighbor_ids
            self._planar_memo[memo_key] = planar
        else:
            view._planar = planar
        return view
