"""Link/MAC layer parameters.

The paper evaluates GMP on ns-2.27 with an 802.11 MAC (Table 1); the
defaults here are scaled to the same 1 Mbps channel: CSMA slot/IFS timings
in the tens of microseconds, a contention window doubling from 8 to 256
slots, and a seven-retry ARQ cap (802.11's short retry limit).  All values
are plain engine knobs — none of them is drawn from the paper's tables, so
sweeps over them are extensions, not reproductions.

Determinism contract: nothing in this module (or the rest of
:mod:`repro.linklayer`) reads a clock or a global RNG.  Every random MAC
delay is drawn from a named :class:`repro.simkit.rng.RandomStreams` stream
(``("backoff", node_id)`` / ``("beacon", node_id)``) whose seed derives from
the engine's ``loss_seed`` and the task ids, so any worker count replays the
same contention history byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkLayerConfig:
    """Knobs of the contended CSMA/ARQ/beacon link layer.

    Attributes:
        slot_time_s: Backoff slot length; also the carrier-sense delay (a
            transmission is audible to other nodes only once it has been on
            the air this long — the classic vulnerable window that makes
            collisions possible at all).
        sifs_s: Short inter-frame space before each ACK of the ACK train.
        difs_s: Idle time a sender waits before (re)sensing the channel.
        cw_min_slots: Initial contention window (backoff drawn uniformly
            from ``[0, cw)`` slots).
        cw_max_slots: Contention-window cap under exponential backoff.
        arq: Per-copy acknowledgements and retransmission.  Off, a frame is
            sent exactly once and collided/lost copies are gone — the
            no-recovery ablation the robustness sweeps compare against.
        max_retries: Retransmission attempts per copy before giving up.
        ack_bytes: ACK frame size (charged to the session's energy).
        carrier_sense_factor: Carrier-sense/interference radius as a
            multiple of the radio range.  Transmissions from inside this
            radius are sensed before transmitting and destroy overlapping
            receptions; senders between 1x and this factor are the hidden /
            exposed terminal band.
        beacons: Run the HELLO beacon service during the simulation (beacon
            frames contend for the channel like data).
        beacon_period_s: Nominal HELLO period per node.
        beacon_jitter_s: Uniform +/- jitter applied to each period so the
            network never beacon-synchronizes.
        beacon_expiry_s: Neighbor-table entries older than this are dropped;
            crashed (or departed) nodes linger in their neighbors' tables
            for up to this long — the stale-table failure window.
        beacon_bytes: HELLO frame size (infrastructure energy, not charged
            to any session).
        warm_start: Pre-populate every neighbor table from a completed
            beacon round at time zero (entries stamped ``last_heard=0``).
            Without it the network is deaf until the first HELLO period.
        session_timeout_s: Virtual-time horizon past the last session start
            after which a contended run stops (bounds the beacon process;
            data traffic normally quiesces long before).
    """

    slot_time_s: float = 20e-6
    sifs_s: float = 10e-6
    difs_s: float = 50e-6
    cw_min_slots: int = 8
    cw_max_slots: int = 256
    arq: bool = True
    max_retries: int = 7
    ack_bytes: int = 14
    carrier_sense_factor: float = 1.5
    beacons: bool = True
    beacon_period_s: float = 1.0
    beacon_jitter_s: float = 0.2
    beacon_expiry_s: float = 3.5
    beacon_bytes: int = 32
    warm_start: bool = True
    session_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        for name in ("slot_time_s", "sifs_s", "difs_s"):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")
        if self.cw_min_slots < 1:
            raise ValueError(f"cw_min_slots must be >= 1, got {self.cw_min_slots}")
        if self.cw_max_slots < self.cw_min_slots:
            raise ValueError(
                f"cw_max_slots {self.cw_max_slots} < cw_min_slots {self.cw_min_slots}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.ack_bytes <= 0 or self.beacon_bytes <= 0:
            raise ValueError("control frame sizes must be positive")
        if self.carrier_sense_factor < 1.0:
            raise ValueError(
                "carrier_sense_factor below 1.0 would let a node talk over "
                f"its own neighbors, got {self.carrier_sense_factor}"
            )
        if self.beacon_period_s <= 0.0 or self.beacon_expiry_s <= 0.0:
            raise ValueError("beacon period and expiry must be positive")
        if self.beacon_jitter_s < 0.0 or self.beacon_jitter_s >= self.beacon_period_s:
            raise ValueError(
                f"beacon jitter must be in [0, period), got {self.beacon_jitter_s}"
            )
        if self.beacon_expiry_s <= self.beacon_period_s:
            raise ValueError(
                "beacon expiry must exceed the period or live nodes would "
                "flicker out of their neighbors' tables"
            )
        if self.session_timeout_s <= 0.0:
            raise ValueError(
                f"session timeout must be positive, got {self.session_timeout_s}"
            )


#: Shared immutable default, mirroring ``DEFAULT_ENGINE_CONFIG``.
DEFAULT_LINK_CONFIG = LinkLayerConfig()
