"""Contended link/MAC layer: CSMA collisions, ARQ, and HELLO beacons.

The default engine models a perfect scheduled channel — every transmission
takes exactly its airtime and arrives unless explicitly failed or lossy.
This package replaces that with the medium the paper actually simulated
(ns-2 with an 802.11-style MAC): per-node FIFO transmit queues, carrier
sense with a one-slot vulnerable window, per-receiver collision arbitration
over a shared channel, per-copy acknowledgement/retransmission, and a HELLO
beacon process that maintains the soft-state neighbor tables protocols
route from.  The engine drives it through
:class:`~repro.linklayer.mac.LinkLayer` when ``transmission_model`` is
``"contended"``.
"""

from repro.linklayer.channel import Channel, Transmission
from repro.linklayer.config import DEFAULT_LINK_CONFIG, LinkLayerConfig
from repro.linklayer.frame import ACK, BEACON, DATA, Frame, FrameCopy
from repro.linklayer.mac import LinkLayer, NodeMac
from repro.linklayer.neighbors import BeaconNodeView, BeaconService, NeighborTable
from repro.linklayer.stats import LinkStats

__all__ = [
    "ACK",
    "BEACON",
    "DATA",
    "Channel",
    "Transmission",
    "DEFAULT_LINK_CONFIG",
    "LinkLayerConfig",
    "Frame",
    "FrameCopy",
    "LinkLayer",
    "NodeMac",
    "BeaconNodeView",
    "BeaconService",
    "NeighborTable",
    "LinkStats",
]
