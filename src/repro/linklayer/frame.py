"""Link-layer frames: what actually occupies the channel.

Four frame kinds share the air.  ``DATA`` frames carry one or more routed
packet copies (one per addressed receiver — the engine's copy-aggregation
semantics decide how many copies ride one frame); ``ACK`` frames are the
per-copy acknowledgements of the ARQ machinery; ``BEACON`` frames are the
HELLO broadcasts feeding the neighbor/location tables; ``JAM`` frames are
adversarial junk that only exists to keep the channel busy.

Every copy carries a link-layer unique id (:attr:`FrameCopy.copy_uid`)
assigned once when the copy is first queued and preserved across
retransmissions, so receivers can suppress the duplicate deliveries that a
lost ACK would otherwise cause (send-side retransmission of an
already-delivered copy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.packets import MulticastPacket

#: Frame kinds (plain strings so traces stay readable).
DATA = "data"
ACK = "ack"
BEACON = "beacon"
#: Junk traffic keyed by a jamming adversary: occupies the air (deferring
#: carrier-sensing senders, colliding receptions) but carries no copies and
#: is never delivered or acknowledged.
JAM = "jam"


@dataclass
class FrameCopy:
    """One routed packet copy addressed to one receiver inside a DATA frame.

    Mutable on purpose: ``acked`` flips when the copy's ACK survives the
    trip back, which is the single piece of send-side ARQ state.
    """

    receiver_id: int
    packet: MulticastPacket
    copy_uid: int
    acked: bool = False


@dataclass
class Frame:
    """One transmission's worth of bits.

    Attributes:
        kind: ``DATA`` / ``ACK`` / ``BEACON`` / ``JAM``.
        sender_id: Transmitting node.
        size_bytes: On-air size (drives airtime and energy).
        session_id: Owning multicast session for DATA/ACK (``None`` for
            beacons — infrastructure traffic belongs to no session).
        copies: The packet copies a DATA frame carries (empty otherwise).
        retry: Retransmission attempt number of a DATA frame (0 = first).
        ack_copy_uid: For ACK frames, the :attr:`FrameCopy.copy_uid` being
            acknowledged.
        ack_target_id: For ACK frames, the DATA sender the ACK travels to.
    """

    kind: str
    sender_id: int
    size_bytes: int
    session_id: Optional[int] = None
    copies: Tuple[FrameCopy, ...] = field(default_factory=tuple)
    retry: int = 0
    ack_copy_uid: int = -1
    ack_target_id: int = -1

    def __post_init__(self) -> None:
        if self.kind not in (DATA, ACK, BEACON, JAM):
            raise ValueError(f"unknown frame kind {self.kind!r}")
        if self.size_bytes <= 0:
            raise ValueError(f"frame size must be positive, got {self.size_bytes}")
