"""Link-layer counters: what the channel did to the traffic.

Counters are split by owning multicast session (collisions, retransmissions,
ARQ drops, ...) with a global bucket for infrastructure traffic (beacons).
They surface through ``TaskResult.perf`` — instrumentation that is excluded
from result digests, like the perf-cache counters, because they describe the
*path* the simulation took, not its outcome; the outcome (delivery, energy,
timing) is digested separately.
"""

from __future__ import annotations

from typing import Dict, Optional


class LinkStats:
    """Per-session and global tallies of link-layer events."""

    def __init__(self) -> None:
        self._per_session: Dict[int, Dict[str, int]] = {}
        self._global: Dict[str, int] = {}
        self._adversary: Dict[str, int] = {}

    def bump(
        self, key: str, session_id: Optional[int] = None, amount: int = 1
    ) -> None:
        """Add ``amount`` to ``key`` (session bucket, or global if ``None``)."""
        if session_id is None:
            self._global[key] = self._global.get(key, 0) + amount
        else:
            bucket = self._per_session.setdefault(session_id, {})
            bucket[key] = bucket.get(key, 0) + amount

    def session_count(self, session_id: int, key: str) -> int:
        return self._per_session.get(session_id, {}).get(key, 0)

    def global_count(self, key: str) -> int:
        return self._global.get(key, 0)

    def bump_adv(self, key: str, amount: int = 1) -> None:
        """Add ``amount`` to the adversary-behavior counter ``key``.

        Adversarial traffic (jam frames, swallowed packets) belongs to no
        session, like beacons, but is kept in its own bucket so benign
        infrastructure counters stay comparable across A/B runs.
        """
        self._adversary[key] = self._adversary.get(key, 0) + amount

    def adversary_count(self, key: str) -> int:
        return self._adversary.get(key, 0)

    def session_perf(self, session_id: int) -> Dict[str, float]:
        """Flat perf mapping for one session: ``mac.*``, ``link.*``, ``adv.*``.

        The global (infrastructure) and adversary counters are repeated in
        every session's view — they describe the shared channel all
        sessions ran over.
        """
        out: Dict[str, float] = {}
        bucket = self._per_session.get(session_id, {})
        for key in sorted(bucket):
            out[f"mac.{key}"] = float(bucket[key])
        for key in sorted(self._global):
            out[f"link.{key}"] = float(self._global[key])
        for key in sorted(self._adversary):
            out[f"adv.{key}"] = float(self._adversary[key])
        return out
