"""The shared radio medium: carrier sense and collision arbitration.

The channel tracks every transmission currently on the air.  Two geometric
relations, both answered by the network's :class:`~repro.network.graph`
spatial index, drive the MAC:

* **Carrier sense** — a node about to transmit asks :meth:`Channel.busy_until`
  whether any audible transmission (sender within the carrier-sense radius)
  is in progress.  A transmission only becomes audible
  ``sensing_delay_s`` after it starts: two nodes that sense an idle channel
  within one slot of each other both transmit — the vulnerable window that
  produces real CSMA collisions.

* **Collision at a receiver** — a reception fails when any *other*
  transmission from a sender inside the receiver's interference radius
  overlapped it in time, or when the receiver itself was transmitting
  (half-duplex).  The rule is applied per receiver, so one broadcast frame
  can be destroyed at one receiver and survive at another (capture), and two
  frames overlapping at a common receiver destroy each other there.

Overlap bookkeeping is exact and cheap: every pair of time-overlapping
transmissions registers mutually at ``begin`` time, so the collision check
at ``finish`` time only scans that (small) list.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from repro.linklayer.frame import Frame
from repro.network.graph import WirelessNetwork


class Transmission:
    """One frame's occupancy of the air, ``[start_s, end_s)``."""

    __slots__ = ("frame", "start_s", "end_s", "overlaps")

    def __init__(self, frame: Frame, start_s: float, end_s: float) -> None:
        self.frame = frame
        self.start_s = start_s
        self.end_s = end_s
        #: Every transmission whose airtime overlapped this one (mutual).
        self.overlaps: List["Transmission"] = []


class Channel:
    """Collision-domain model over a deployed :class:`WirelessNetwork`."""

    def __init__(
        self, network: WirelessNetwork, carrier_sense_factor: float
    ) -> None:
        if carrier_sense_factor < 1.0:
            raise ValueError(
                f"carrier-sense factor must be >= 1, got {carrier_sense_factor}"
            )
        self._network = network
        self._radius = carrier_sense_factor * network.radio.radio_range_m
        self._active: List[Transmission] = []
        self._interferers: Dict[int, FrozenSet[int]] = {}
        #: Virtual carrier sense: node -> NAV expiry.  A node that heard a
        #: DATA frame's duration field treats the channel as busy through
        #: the frame's ACK train even during the (short) SIFS gaps.
        self._nav: Dict[int, float] = {}

    def interferers_of(self, node_id: int) -> FrozenSet[int]:
        """Nodes whose transmissions are audible at ``node_id`` (excl. itself).

        Symmetric by construction (pure distance threshold); memoized per
        node since the deployment is static for the run.
        """
        cached = self._interferers.get(node_id)
        if cached is None:
            within = self._network.nodes_within(
                self._network.location_of(node_id), self._radius
            )
            cached = frozenset(i for i in within if i != node_id)
            self._interferers[node_id] = cached
        return cached

    @property
    def active_count(self) -> int:
        """Transmissions currently on the air."""
        return len(self._active)

    def begin(self, frame: Frame, now_s: float, airtime_s: float) -> Transmission:
        """Put ``frame`` on the air; registers overlaps with live traffic."""
        if airtime_s <= 0.0:
            raise ValueError(f"airtime must be positive, got {airtime_s}")
        tx = Transmission(frame, now_s, now_s + airtime_s)
        for other in self._active:
            other.overlaps.append(tx)
            tx.overlaps.append(other)
        self._active.append(tx)
        return tx

    def finish(self, tx: Transmission) -> None:
        """Take ``tx`` off the air (its overlap history is preserved)."""
        self._active.remove(tx)

    def reserve(self, node_ids: FrozenSet[int], until_s: float) -> None:
        """Set the NAV of every node in ``node_ids`` to at least ``until_s``.

        Called by the MAC when a DATA frame goes on the air: everyone in
        carrier-sense range of the sender hears the frame's duration field
        and defers through its ACK train (802.11 virtual carrier sense).
        """
        for node_id in node_ids:
            current = self._nav.get(node_id)
            if current is None or until_s > current:
                self._nav[node_id] = until_s

    def busy_until(
        self, node_id: int, now_s: float, sensing_delay_s: float
    ) -> Optional[float]:
        """Carrier sense at ``node_id``: end time of audible traffic, if any.

        A transmission is audible once it has been on the air for at least
        ``sensing_delay_s`` and its sender lies within the carrier-sense
        radius; an unexpired NAV reservation counts as busy too.  Returns
        the latest such end time, or ``None`` when the channel appears idle
        (possibly wrongly — that is the point).
        """
        audible = self.interferers_of(node_id)
        latest: Optional[float] = None
        for tx in self._active:
            if tx.start_s + sensing_delay_s > now_s:
                continue  # Still inside the vulnerable window: inaudible.
            if tx.frame.sender_id not in audible:
                continue
            if latest is None or tx.end_s > latest:
                latest = tx.end_s
        nav = self._nav.get(node_id)
        if nav is not None and nav > now_s and (latest is None or nav > latest):
            latest = nav
        return latest

    def reception_collided(self, tx: Transmission, receiver_id: int) -> bool:
        """Whether ``receiver_id``'s copy of ``tx`` was destroyed.

        True when the receiver transmitted during ``tx``'s airtime
        (half-duplex) or any overlapping transmission came from inside the
        receiver's interference radius.
        """
        interferers = self.interferers_of(receiver_id)
        for other in tx.overlaps:
            sender = other.frame.sender_id
            if sender == receiver_id or sender in interferers:
                return True
        return False
